module github.com/egs-synthesis/egs

go 1.22
