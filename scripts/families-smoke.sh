#!/bin/sh
# families-smoke: generate the scenario-factory family grid twice,
# assert byte-determinism across the two runs, then solve the
# smallest instance of every program class end to end with the egs
# CLI. Used by `make families-smoke`.
set -eu

BIN_DATAGEN=${BIN_DATAGEN:-bin/egs-datagen}
BIN_EGS=${BIN_EGS:-bin/egs}
SEED=${SEED:-1}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

"$BIN_DATAGEN" -grid -seed "$SEED" -out "$TMP/run1" >/dev/null
"$BIN_DATAGEN" -grid -seed "$SEED" -out "$TMP/run2" >/dev/null

if ! diff -r "$TMP/run1" "$TMP/run2" >/dev/null; then
    echo "families-smoke: grid generation is not byte-deterministic" >&2
    diff -r "$TMP/run1" "$TMP/run2" >&2 || true
    exit 1
fi
echo "families-smoke: grid byte-deterministic across two runs"

# Solve the smallest (d12) instance of each class; every one is
# declared `expect sat`, and the egs CLI exits nonzero on a mismatch.
for class_dir in "$TMP"/run1/*/; do
    class=$(basename "$class_dir")
    task=$(ls "$class_dir" | sort | head -n 1)
    out=$("$BIN_EGS" "$class_dir$task") || {
        echo "families-smoke: $class/$task failed to solve" >&2
        exit 1
    }
    if [ -z "$out" ]; then
        echo "families-smoke: $class/$task produced no program" >&2
        exit 1
    fi
    echo "families-smoke: solved $class/$task: $(printf '%s' "$out" | head -n 1)"
done

echo "families-smoke: OK"
