#!/bin/sh
# serve-smoke: boot egs-serve, run one synthesis through the full
# HTTP path, assert the answer and the metric surface, shut down.
# Used by `make serve-smoke`; needs curl (falls back to wget).
set -eu

BIN=${BIN:-bin/egs-serve}
PORT=${PORT:-8199}
ADDR="127.0.0.1:$PORT"
TASK=${TASK:-testdata/benchmarks/knowledge-discovery/kinship.task}

fetch() { # fetch <url> [curl-args...]
    url=$1; shift
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$@" "$url"
    else
        wget -qO- "$url"
    fi
}

"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null; wait "$PID" 2>/dev/null || true' EXIT INT TERM

# Wait for readiness (the server binds in milliseconds; allow 5s).
i=0
until fetch "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "serve-smoke: server did not become healthy" >&2
        exit 1
    fi
    sleep 0.1
done

RESP=$(fetch "http://$ADDR/synthesize" -X POST -H 'Content-Type: text/plain' --data-binary "@$TASK")
echo "$RESP" | grep -q '"status": "sat"' || {
    echo "serve-smoke: expected sat, got: $RESP" >&2
    exit 1
}
echo "$RESP" | grep -q 'mother' || {
    echo "serve-smoke: answer does not mention the input relations: $RESP" >&2
    exit 1
}

METRICS=$(fetch "http://$ADDR/metrics")
echo "$METRICS" | grep -q 'egs_requests_total' || {
    echo "serve-smoke: /metrics missing egs_requests_total" >&2
    exit 1
}
echo "$METRICS" | grep -q 'egs_syntheses_total{outcome="sat"} 1' || {
    echo "serve-smoke: /metrics missing the sat synthesis count" >&2
    exit 1
}

echo "serve-smoke: OK"
