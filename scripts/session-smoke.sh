#!/bin/sh
# session-smoke: boot egs-serve, drive an incremental session through
# create -> staged delta -> delta-and-solve over HTTP, assert that the
# warm revision does strictly less assessment work than the creation
# solve (the warm-state proof, read off the stats payload), then tear
# the session down. Used by `make session-smoke`; needs curl (falls
# back to wget).
set -eu

BIN=${BIN:-bin/egs-serve}
PORT=${PORT:-8198}
ADDR="127.0.0.1:$PORT"

fetch() { # fetch <url> [curl-args...]
    url=$1; shift
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$@" "$url"
    else
        wget -qO- "$url"
    fi
}

# extract_int <json> <field>: first integer value of a JSON field in
# the server's indented output.
extract_int() {
    printf '%s\n' "$1" | grep -o "\"$2\": [0-9]*" | head -n 1 | tr -dc 0-9
}

extract_str() {
    printf '%s\n' "$1" | grep -o "\"$2\": \"[^\"]*\"" | head -n 1 | sed 's/.*: "\(.*\)"/\1/'
}

"$BIN" -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null; wait "$PID" 2>/dev/null || true' EXIT INT TERM

i=0
until fetch "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "session-smoke: server did not become healthy" >&2
        exit 1
    fi
    sleep 0.1
done

TASK='{
  "name": "gp-session",
  "inputs": [{"name": "parent", "arity": 2}],
  "outputs": [{"name": "grandparent", "arity": 2}],
  "facts": [
    {"rel": "parent", "args": ["alice", "bob"]},
    {"rel": "parent", "args": ["bob", "carol"]},
    {"rel": "parent", "args": ["carol", "dave"]}
  ],
  "positive": [
    {"rel": "grandparent", "args": ["alice", "carol"]},
    {"rel": "grandparent", "args": ["bob", "dave"]}
  ],
  "negative": [{"rel": "grandparent", "args": ["alice", "bob"]}]
}'

CREATE=$(fetch "http://$ADDR/sessions" -X POST -H 'Content-Type: application/json' --data-binary "$TASK")
echo "$CREATE" | grep -q '"status": "sat"' || {
    echo "session-smoke: creation solve not sat: $CREATE" >&2
    exit 1
}
SID=$(extract_str "$CREATE" session_id)
COLD=$(extract_int "$CREATE" candidates_evaluated)
[ -n "$SID" ] && [ -n "$COLD" ] || {
    echo "session-smoke: creation response missing session_id/stats: $CREATE" >&2
    exit 1
}

# Stage a label removal without solving, then restore it and solve:
# the revised task equals revision 0, so the warm memo should answer
# almost every assessment.
STAGED=$(fetch "http://$ADDR/sessions/$SID/delta" -X POST -H 'Content-Type: application/json' --data-binary \
    '{"deltas": [{"op": "remove_example", "rel": "grandparent", "args": ["bob", "dave"]}], "solve": false}')
echo "$STAGED" | grep -q '"status": "pending"' || {
    echo "session-smoke: staged delta not pending: $STAGED" >&2
    exit 1
}

WARM_RESP=$(fetch "http://$ADDR/sessions/$SID/delta" -X POST -H 'Content-Type: application/json' --data-binary \
    '{"deltas": [{"op": "add_example", "positive": true, "rel": "grandparent", "args": ["bob", "dave"]}]}')
echo "$WARM_RESP" | grep -q '"status": "sat"' || {
    echo "session-smoke: warm solve not sat: $WARM_RESP" >&2
    exit 1
}
WARM=$(extract_int "$WARM_RESP" candidates_evaluated)
HITS=$(extract_int "$WARM_RESP" candidates_cached)

if [ "$WARM" -ge "$COLD" ]; then
    echo "session-smoke: warm revision evaluated $WARM candidates, cold did $COLD — no warm-state reuse" >&2
    exit 1
fi
if [ "${HITS:-0}" -eq 0 ]; then
    echo "session-smoke: warm revision reported no memo hits: $WARM_RESP" >&2
    exit 1
fi

METRICS=$(fetch "http://$ADDR/metrics")
for want in 'egs_sessions_active 1' 'egs_session_deltas_total 2' 'egs_session_memo_reuse_ratio'; do
    echo "$METRICS" | grep -q "$want" || {
        echo "session-smoke: /metrics missing $want" >&2
        exit 1
    }
done

fetch "http://$ADDR/sessions/$SID" -X DELETE -o /dev/null 2>/dev/null || \
    fetch "http://$ADDR/sessions/$SID" -X DELETE >/dev/null
fetch "http://$ADDR/metrics" | grep -q 'egs_sessions_active 0' || {
    echo "session-smoke: session not removed after DELETE" >&2
    exit 1
}

echo "session-smoke: OK (cold evals=$COLD warm evals=$WARM memo hits=$HITS)"
