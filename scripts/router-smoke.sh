#!/bin/sh
# router-smoke: boot two egs-serve replicas plus an egs-router, assert
# consistent-hash routing stickiness, then replay a short low-rate load
# with egs-load and assert p99 latency and 429-rate thresholds.
# Used by `make router-smoke`; needs curl (falls back to wget) and jq.
#
# Every process binds -addr 127.0.0.1:0 and the script parses the
# kernel-assigned port from the machine-parseable "listening addr="
# log line — which is itself part of what this smoke test covers.
set -eu

BIN_SERVE=${BIN_SERVE:-bin/egs-serve}
BIN_ROUTER=${BIN_ROUTER:-bin/egs-router}
BIN_LOAD=${BIN_LOAD:-bin/egs-load}
TASK=${TASK:-testdata/benchmarks/knowledge-discovery/kinship.task}
# A small artificial service time keeps the replicas busy enough for
# queue-wait attribution to show up without slowing the smoke test.
SOLVE_DELAY=${SOLVE_DELAY:-10ms}

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fetch() { # fetch <url> [curl-args...]
    url=$1; shift
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$@" "$url"
    else
        wget -qO- "$url"
    fi
}

# bound_addr <logfile>: poll for the "listening addr=host:port" line.
bound_addr() {
    i=0
    while :; do
        addr=$(sed -n 's/.*msg=listening addr=\([0-9.:]*\).*/\1/p' "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "router-smoke: no listening line in $1:" >&2
            cat "$1" >&2
            return 1
        fi
        sleep 0.1
    done
}

"$BIN_SERVE" -addr 127.0.0.1:0 -workers 1 -solve-delay "$SOLVE_DELAY" >"$TMP/r1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN_SERVE" -addr 127.0.0.1:0 -workers 1 -solve-delay "$SOLVE_DELAY" >"$TMP/r2.log" 2>&1 &
PIDS="$PIDS $!"
R1=$(bound_addr "$TMP/r1.log")
R2=$(bound_addr "$TMP/r2.log")

"$BIN_ROUTER" -addr 127.0.0.1:0 -replicas "http://$R1,http://$R2" -check-interval 200ms \
    >"$TMP/router.log" 2>&1 &
PIDS="$PIDS $!"
RT=$(bound_addr "$TMP/router.log")

i=0
until fetch "http://$RT/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "router-smoke: router never became healthy" >&2
        cat "$TMP/router.log" >&2
        exit 1
    fi
    sleep 0.1
done

# One synthesis through the router must answer exactly like a replica.
RESP=$(fetch "http://$RT/synthesize" -X POST -H 'Content-Type: text/plain' --data-binary "@$TASK")
echo "$RESP" | grep -q '"status": "sat"' || {
    echo "router-smoke: expected sat via router, got: $RESP" >&2
    exit 1
}

# Routing stickiness: re-POSTing the same task must land on the same
# replica every time — after 4 sends, one replica owns all 4 routed
# requests and the other owns 0.
for _ in 1 2 3; do
    fetch "http://$RT/synthesize" -X POST -H 'Content-Type: text/plain' --data-binary "@$TASK" >/dev/null
done
fetch "http://$RT/metrics" >"$TMP/router-metrics.txt"
COUNTS=$(sed -n 's/^egs_router_requests_total{replica="[^"]*"} \([0-9]*\)$/\1/p' "$TMP/router-metrics.txt" | sort -n | tr '\n' ' ')
case "$COUNTS" in
*"4 "*) : ;;
*)
    echo "router-smoke: identical tasks split across replicas (counts: $COUNTS)" >&2
    exit 1
    ;;
esac

# Low-rate replay through the router: open-loop Poisson arrivals, a
# mixed task mix, both replicas scraped for the counter aggregation.
"$BIN_LOAD" -target "http://$RT" -scrape "http://$R1,http://$R2" \
    -mode open -rate 10 -duration 5s -mix mixed -seed 7 \
    -scenario router-smoke >"$TMP/load.json"
cat "$TMP/load.json"

jq -e '.ok >= 1' "$TMP/load.json" >/dev/null || {
    echo "router-smoke: no successful requests in the replay" >&2
    exit 1
}
# Thresholds: effectively zero admission pressure at 10 qps against
# two replicas (allow one stray 429), and p99 well under a second
# when each solve costs ~SOLVE_DELAY.
jq -e '.reject_pct <= 5' "$TMP/load.json" >/dev/null || {
    echo "router-smoke: 429 rate above threshold" >&2
    exit 1
}
jq -e '.client_p99_ms > 0 and .client_p99_ms <= 1000' "$TMP/load.json" >/dev/null || {
    echo "router-smoke: client p99 outside (0, 1000] ms" >&2
    exit 1
}
# Both replicas must have taken routed traffic (the mixed mix spreads
# unique tasks across the ring).
jq -e '(.per_replica | length) == 2 and ([.per_replica[]] | min) >= 1' "$TMP/load.json" >/dev/null || {
    echo "router-smoke: load did not spread across both replicas" >&2
    exit 1
}
# The queue-wait vs solve split must be populated on the replicas.
jq -e '.solve_p99_ms > 0' "$TMP/load.json" >/dev/null || {
    echo "router-smoke: no solve-latency attribution scraped" >&2
    exit 1
}

echo "router-smoke: OK"
