#!/bin/sh
# bench: run the evaluator and synthesizer benchmarks with -benchmem
# and record the results in BENCH_eval.json under a named run.
#
#   scripts/bench.sh [run-name]
#
# The run name defaults to "post-assess-memo". BENCH_eval.json
# accumulates runs keyed by name (re-running a name replaces it), so a
# before/after pair — e.g. the checked-in "post-tuple-interning"
# baseline plus a fresh run — can be compared directly. Synthesis
# benchmarks also record the engine's assessment-cache counters
# (ruleevals_per_op / memohits_per_op). Requires the Go toolchain and
# jq.
set -eu

RUN=${1:-post-assess-memo}
OUT=${OUT:-BENCH_eval.json}
GO=${GO:-go}

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT INT TERM

echo "bench: BenchmarkRuleOutputs (internal/eval)" >&2
$GO test -run '^$' -bench BenchmarkRuleOutputs -benchmem ./internal/eval/ | tee "$TMP/eval.txt" >&2
echo "bench: BenchmarkSynthesize + BenchmarkExplainCell (internal/egs)" >&2
$GO test -run '^$' -bench 'BenchmarkSynthesize|BenchmarkExplainCell' -benchmem ./internal/egs/ | tee "$TMP/egs.txt" >&2
echo "bench: BenchmarkSessionCold + BenchmarkSessionRevision (internal/session)" >&2
$GO test -run '^$' -bench 'BenchmarkSession' -benchmem ./internal/session/ | tee "$TMP/session.txt" >&2

# Convert `go test -bench` output lines into a JSON benchmark array:
#   BenchmarkX/case-8   1219   1053847 ns/op   232384 B/op   13049 allocs/op
grep -h '^Benchmark' "$TMP/eval.txt" "$TMP/egs.txt" "$TMP/session.txt" | awk -v procs="$($GO env GOMAXPROCS 2>/dev/null || echo "")" '{
    name = $1; sub(/^Benchmark/, "", name)
    # Strip only the GOMAXPROCS suffix go test appends (e.g. "-8"),
    # never a meaningful trailing number in the sub-benchmark name.
    if (procs != "" && procs != "1") sub("-" procs "$", "", name)
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        # Custom b.ReportMetric counters (assessment-cache accounting,
        # batch join strategy accounting).
        if ($(i + 1) == "ruleevals/op") extra = extra sprintf(", \"ruleevals_per_op\": %s", $i)
        if ($(i + 1) == "memohits/op") extra = extra sprintf(", \"memohits_per_op\": %s", $i)
        if ($(i + 1) == "batchjoins/op") extra = extra sprintf(", \"batch_joins_per_op\": %s", $i)
    }
    printf "{\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}\n", name, $2, ns, bytes, allocs, extra
}' | jq -s '.' > "$TMP/benches.json"

jq -n \
    --arg run "$RUN" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg go "$($GO env GOVERSION)" \
    --slurpfile benches "$TMP/benches.json" \
    '{name: $run, date: $date, go: $go, benchmarks: $benches[0]}' > "$TMP/run.json"

if [ -f "$OUT" ]; then
    jq --slurpfile new "$TMP/run.json" \
        '.runs = [.runs[] | select(.name != $new[0].name)] + $new' \
        "$OUT" > "$OUT.tmp"
    mv "$OUT.tmp" "$OUT"
else
    jq -n --slurpfile new "$TMP/run.json" '{runs: $new}' > "$OUT"
fi

echo "bench: wrote run \"$RUN\" to $OUT" >&2
