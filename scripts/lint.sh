#!/usr/bin/env bash
# scripts/lint.sh — the repo's lint entry point (`make lint`).
#
# Always runs egslint, the custom analyzer suite (internal/lint) that
# enforces the determinism, aliasing, pooling, and concurrency
# (ctxflow/lockscope/goroleak) invariants, with stale-suppression
# detection: a //lint:ignore that matches no diagnostic fails the run.
# When staticcheck or govulncheck are installed at the versions pinned
# in tools/tools.go they run too; otherwise they are skipped with a
# notice (the CI container is offline and cannot install them).
#
# Usage:
#   scripts/lint.sh          human-readable; also lists suppressed
#                            findings with their reasons
#   scripts/lint.sh -json    machine-readable egslint report on stdout:
#                            {"findings": […], "stale_ignores": […]}
#
# The egslint run (load + analysis, whole repo) must finish within
# EGSLINT_BUDGET_SECS wall-clock seconds (default 120): the
# flow-sensitive dataflow passes are meant to cost milliseconds, and
# the budget keeps a pathological fixpoint regression from silently
# inflating `make verify`. The analysis phase alone is bounded more
# tightly by TestRepoIsLintClean.
#
# Exit status: non-zero iff any tool reports an unsuppressed finding,
# a stale suppression exists, or the budget is exceeded.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
JSON=0
for arg in "$@"; do
	case "$arg" in
	-json) JSON=1 ;;
	*)
		echo "usage: scripts/lint.sh [-json]" >&2
		exit 2
		;;
	esac
done

"$GO" build -o bin/egslint ./cmd/egslint

BUDGET=${EGSLINT_BUDGET_SECS:-120}
status=0
start=$(date +%s)
if [ "$JSON" = 1 ]; then
	./bin/egslint -json -stale-ignores ./... || status=$?
else
	echo "== egslint =="
	./bin/egslint -show-suppressed -stale-ignores ./... || status=$?
fi
elapsed=$(($(date +%s) - start))
if [ "$elapsed" -gt "$BUDGET" ]; then
	echo "egslint took ${elapsed}s, over the ${BUDGET}s budget (EGSLINT_BUDGET_SECS): a flow-sensitive pass has regressed" >&2
	status=1
fi

# pinned <ConstName> extracts a version pin from tools/tools.go.
pinned() {
	sed -n "s/.*${1} = \"\(.*\)\"/\1/p" tools/tools.go
}

run_pinned() {
	local tool=$1 pin_const=$2 version_cmd=$3
	shift 3
	if ! command -v "$tool" >/dev/null 2>&1; then
		[ "$JSON" = 1 ] || echo "== $tool == skipped (not installed; pin $(pinned "$pin_const"))"
		return 0
	fi
	local pin have
	pin=$(pinned "$pin_const")
	have=$($version_cmd 2>/dev/null | head -n1 || true)
	case "$have" in
	*"$pin"*)
		[ "$JSON" = 1 ] || echo "== $tool $pin =="
		"$tool" "$@" || status=$?
		;;
	*)
		echo "== $tool == skipped (installed version \"$have\" != pinned $pin; see tools/tools.go)" >&2
		;;
	esac
}

run_pinned staticcheck StaticcheckVersion "staticcheck -version" ./...
run_pinned govulncheck GovulncheckVersion "govulncheck -version" ./...

exit "$status"
