#!/bin/sh
# bench-serve: measure the serving tier end to end and record the
# results in BENCH_serve.json under a named run.
#
#   scripts/bench-serve.sh [run-name]
#
# Three scenarios:
#
#   stampede-16    16 simultaneous identical requests against one
#                  fresh replica: the singleflight tier must collapse
#                  them to one synthesis (leaders=1, shared=15).
#   single-miss    closed-loop, cache-miss-heavy mix against one
#                  replica: the single-replica throughput baseline.
#   routed-miss    the same load against an egs-router in front of
#                  two replicas: throughput must scale.
#
# Throughput scenarios inject an artificial per-solve service time
# (-solve-delay, recorded in the run) so the scaling measurement is
# about the serving tier rather than the host's core count: on the
# 1-CPU CI class this repo targets, two CPU-bound replicas cannot
# beat one, but two replicas each serializing SOLVE_DELAY solves
# behind one worker expose exactly the routed-capacity ratio the
# router is supposed to deliver. BENCH_serve.json accumulates runs
# keyed by name (re-running a name replaces it). Requires the Go
# toolchain and jq.
set -eu

RUN=${1:-post-scaleout}
OUT=${OUT:-BENCH_serve.json}
GO=${GO:-go}
SOLVE_DELAY=${SOLVE_DELAY:-20ms}
DURATION=${DURATION:-8s}
CONCURRENCY=${CONCURRENCY:-8}

cd "$(dirname "$0")/.."

TMP=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "bench-serve: building" >&2
$GO build -o "$TMP/egs-serve" ./cmd/egs-serve
$GO build -o "$TMP/egs-router" ./cmd/egs-router
$GO build -o "$TMP/egs-load" ./cmd/egs-load

bound_addr() { # bound_addr <logfile>
    i=0
    while :; do
        addr=$(sed -n 's/.*msg=listening addr=\([0-9.:]*\).*/\1/p' "$1" | head -n1)
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        i=$((i + 1))
        [ "$i" -ge 50 ] && { echo "bench-serve: no listening line in $1" >&2; cat "$1" >&2; return 1; }
        sleep 0.1
    done
}

start_replica() { # start_replica <logfile>
    "$TMP/egs-serve" -addr 127.0.0.1:0 -workers 1 -queue 64 \
        -solve-delay "$SOLVE_DELAY" >"$1" 2>&1 &
    PIDS="$PIDS $!"
    bound_addr "$1"
}

stop_all() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
    PIDS=""
}

# --- scenario 1: stampede-16 ------------------------------------------
echo "bench-serve: stampede-16" >&2
R=$(start_replica "$TMP/s1.log")
"$TMP/egs-load" -target "http://$R" -mode burst -requests 16 -mix stampede \
    -seed 1 -scenario stampede-16 >"$TMP/stampede.json"
stop_all

jq -e '.ok == 16 and .counters.egs_singleflight_leaders_total == 1 and .counters.egs_singleflight_shared_total == 15' \
    "$TMP/stampede.json" >/dev/null || {
    echo "bench-serve: stampede did not collapse to one synthesis:" >&2
    cat "$TMP/stampede.json" >&2
    exit 1
}

# --- scenario 2: single-miss ------------------------------------------
echo "bench-serve: single-miss" >&2
R=$(start_replica "$TMP/s2.log")
"$TMP/egs-load" -target "http://$R" -mode closed -concurrency "$CONCURRENCY" \
    -duration "$DURATION" -mix miss -seed 2 -scenario single-miss >"$TMP/single.json"
stop_all

# --- scenario 3: routed-miss ------------------------------------------
echo "bench-serve: routed-miss" >&2
R1=$(start_replica "$TMP/s3a.log")
R2=$(start_replica "$TMP/s3b.log")
"$TMP/egs-router" -addr 127.0.0.1:0 -replicas "http://$R1,http://$R2" \
    -check-interval 200ms >"$TMP/router.log" 2>&1 &
PIDS="$PIDS $!"
RT=$(bound_addr "$TMP/router.log")
sleep 0.5 # let the first health sweep mark both replicas up
"$TMP/egs-load" -target "http://$RT" -scrape "http://$R1,http://$R2" \
    -mode closed -concurrency "$CONCURRENCY" -duration "$DURATION" \
    -mix miss -seed 3 -scenario routed-miss >"$TMP/routed.json"
stop_all

SINGLE_QPS=$(jq .qps "$TMP/single.json")
ROUTED_QPS=$(jq .qps "$TMP/routed.json")
RATIO=$(jq -n "$ROUTED_QPS / $SINGLE_QPS")
echo "bench-serve: single $SINGLE_QPS qps, routed $ROUTED_QPS qps (x$RATIO)" >&2
jq -n -e "$RATIO >= 1.8" >/dev/null || {
    echo "bench-serve: routed throughput only x$RATIO of single-replica, want >= 1.8" >&2
    exit 1
}
# Equal-or-better tail latency while doubling throughput.
SINGLE_P99=$(jq .client_p99_ms "$TMP/single.json")
ROUTED_P99=$(jq .client_p99_ms "$TMP/routed.json")
jq -n -e "$ROUTED_P99 <= $SINGLE_P99" >/dev/null || {
    echo "bench-serve: routed p99 ${ROUTED_P99}ms worse than single-replica ${SINGLE_P99}ms" >&2
    exit 1
}

# --- merge into $OUT ---------------------------------------------------
jq -s \
    --arg name "$RUN" \
    --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg go "$($GO version | sed 's/^go version //')" \
    --arg delay "$SOLVE_DELAY" \
    '{name: $name, date: $date, go: $go, solve_delay: $delay, scenarios: .}' \
    "$TMP/stampede.json" "$TMP/single.json" "$TMP/routed.json" >"$TMP/run.json"

if [ -f "$OUT" ]; then
    jq --arg name "$RUN" --slurpfile run "$TMP/run.json" \
        '.runs = ([.runs[] | select(.name != $name)] + $run)' "$OUT" >"$TMP/out.json"
else
    jq -n --slurpfile run "$TMP/run.json" '{runs: $run}' >"$TMP/out.json"
fi
mv "$TMP/out.json" "$OUT"
echo "bench-serve: recorded run \"$RUN\" in $OUT" >&2
