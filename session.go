package egs

import (
	"context"

	"github.com/egs-synthesis/egs/internal/session"
)

// Session is an incremental synthesis session: it keeps the task's
// interned fact database, constant co-occurrence structure, and
// candidate-assessment memo warm across revisions, so that after a
// delta — a new fact, a new label, a removed or flipped label — the
// next Solve re-derives only what the delta could have changed.
// Results are always identical to a cold Synthesize on the revised
// task; the warm state only shifts work from rule evaluation to memo
// reuse (visible as CandidatesCached in the stats).
//
// A Session serializes its own methods; concurrent use from multiple
// goroutines is safe but solves do not overlap.
type Session struct {
	s *session.Session
}

// NewSession starts a session from a task. The task becomes
// session-owned: the caller must not mutate or reuse it (pass a
// freshly built or loaded task).
func NewSession(t *Task) (*Session, error) {
	s, err := session.New(t.t)
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// AddFact inserts a new input fact. Existing fact identities are
// unaffected (the fact lands in a fresh database generation), and
// re-adding a present fact is a no-op. Fact deltas are rejected for
// tasks with materialized negation (Negate or AddNeq), whose
// complement relations are fixed at preparation time.
func (s *Session) AddFact(rel string, args ...string) error {
	return s.s.AddFact(rel, args...)
}

// AddExample labels an output tuple. Re-labelling with the same
// polarity is a no-op; flipping an existing label is an error — use
// RelabelTuple for that. Closed-world tasks take no explicit
// negatives.
func (s *Session) AddExample(positive bool, rel string, args ...string) error {
	return s.s.AddExample(positive, rel, args...)
}

// RemoveExample drops an output tuple's label. Under closed-world
// labelling, removing a positive makes the tuple implicitly negative.
func (s *Session) RemoveExample(rel string, args ...string) error {
	return s.s.RemoveExample(rel, args...)
}

// RelabelTuple sets an output tuple's label to the given polarity,
// replacing any existing label; a no-op when the label already
// matches.
func (s *Session) RelabelTuple(positive bool, rel string, args ...string) error {
	return s.s.RelabelTuple(positive, rel, args...)
}

// Solve synthesizes the current revision, reusing the session's warm
// state. Options behave exactly as in Synthesize (including
// Options.Workers for per-tuple parallel explanation).
func (s *Session) Solve(ctx context.Context, opts Options) (Result, error) {
	res, err := s.s.Solve(ctx, opts.coreOptions(), opts.Workers)
	if err != nil {
		return Result{}, err
	}
	return convertResult(s.s.Task(), res), nil
}

// Revision reports how many revisions Solve has built; 0 until the
// first post-delta solve.
func (s *Session) Revision() int { return s.s.Revision() }

// Deltas reports the total number of deltas applied to the session.
func (s *Session) Deltas() int { return s.s.Deltas() }

// Pending reports whether deltas have arrived since the last Solve.
func (s *Session) Pending() bool { return s.s.Pending() }

// NumExamples returns the current labelling sizes (|O+| and the
// explicit |O-|).
func (s *Session) NumExamples() (pos, neg int) { return s.s.Examples() }

// NumFacts returns the current fact count, including any complement
// tuples materialized at preparation.
func (s *Session) NumFacts() int { return s.s.Facts() }
