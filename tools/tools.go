//go:build tools

// Package tools pins the versions of external lint tools without
// importing them (the build environment is offline, so the usual
// blank-import tools.go idiom cannot resolve module dependencies).
// scripts/lint.sh greps these constants and refuses to run a tool
// whose installed version disagrees with its pin, so CI and every
// laptop lint with the same rule set.
//
// The tag keeps this file out of ordinary builds; `go build -tags
// tools ./tools` still type-checks it.
package tools

const (
	// StaticcheckVersion pins honnef.co/go/tools/cmd/staticcheck.
	StaticcheckVersion = "2025.1"
	// GovulncheckVersion pins golang.org/x/vuln/cmd/govulncheck.
	GovulncheckVersion = "v1.1.4"
)
