// Benchmarks regenerating the paper's evaluation, one per table and
// figure (see DESIGN.md's experiment index and EXPERIMENTS.md for
// recorded results). Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration sweeps a suite slice with a bounded
// per-task timeout, so the syntax-guided baselines time out exactly
// where the paper's do; the reported per-op time is the wall-clock
// cost of the sweep. For paper-scale timeouts use cmd/egs-bench,
// which defaults to the paper's 300s budget.
package egs_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/bench"
	coreegs "github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/parser"
	"github.com/egs-synthesis/egs/internal/prosynth"
	"github.com/egs-synthesis/egs/internal/scythe"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// benchTimeout bounds each (tool, task) run inside benchmarks. The
// paper uses 300s; benchmarks use a tighter bound so that a full
// -bench=. sweep stays tractable while preserving who-times-out.
const benchTimeout = 2 * time.Second

func loadBenchSuite(b *testing.B) *bench.Suite {
	b.Helper()
	s, err := bench.LoadSuite("testdata/benchmarks")
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// sweep runs one tool over a task slice once per iteration and
// reports aggregate counters.
func sweep(b *testing.B, tool synth.Synthesizer, tasks []*task.Task) {
	b.Helper()
	b.ReportAllocs()
	var solved, unsat, exhausted, timedOut int
	for i := 0; i < b.N; i++ {
		solved, unsat, exhausted, timedOut = 0, 0, 0, 0
		for _, tk := range tasks {
			rec := bench.Run(context.Background(), tool, tk, benchTimeout)
			switch rec.Outcome {
			case bench.Solved:
				solved++
			case bench.ProvedUnsat:
				unsat++
			case bench.SpaceExhausted:
				exhausted++
			case bench.TimedOut:
				timedOut++
			case bench.Failed:
				b.Fatalf("%s failed on %s: %v", tool.Name(), rec.Task, rec.Err)
			}
		}
	}
	b.ReportMetric(float64(solved), "solved")
	b.ReportMetric(float64(unsat), "unsat")
	b.ReportMetric(float64(exhausted), "exhausted")
	b.ReportMetric(float64(timedOut), "timeouts")
}

// BenchmarkTable1Characteristics regenerates Table 1 (suite loading
// plus characteristics rendering).
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := bench.LoadSuite("testdata/benchmarks")
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.WriteTable1(io.Discard, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Cactus regenerates the Figure 4 sweep: each tool
// configuration over the 79 realizable tasks. EGS must solve all of
// them; the baselines time out where the paper's do.
func BenchmarkFigure4Cactus(b *testing.B) {
	s := loadBenchSuite(b)
	for _, tool := range []synth.Synthesizer{
		&synth.EGS{},
		&scythe.Synthesizer{},
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
	} {
		tool := tool
		b.Run(tool.Name(), func(b *testing.B) { sweep(b, tool, s.Realizable) })
	}
}

// BenchmarkTable2Unrealizable regenerates Table 2: the 7 unsat tasks
// under every tool configuration, including the task-agnostic ones.
func BenchmarkTable2Unrealizable(b *testing.B) {
	s := loadBenchSuite(b)
	for _, tool := range bench.ToolSet() {
		tool := tool
		b.Run(tool.Name(), func(b *testing.B) { sweep(b, tool, s.Unrealizable) })
	}
}

func domainBench(b *testing.B, category string) {
	s := loadBenchSuite(b)
	tasks := s.ByCategory(category)
	for _, tool := range []synth.Synthesizer{
		&synth.EGS{},
		&scythe.Synthesizer{},
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
	} {
		tool := tool
		b.Run(tool.Name(), func(b *testing.B) { sweep(b, tool, tasks) })
	}
}

// BenchmarkTable3KnowledgeDiscovery regenerates the Table 3 runtimes.
func BenchmarkTable3KnowledgeDiscovery(b *testing.B) {
	domainBench(b, "knowledge-discovery")
}

// BenchmarkTable4ProgramAnalysis regenerates the Table 4 runtimes.
func BenchmarkTable4ProgramAnalysis(b *testing.B) {
	domainBench(b, "program-analysis")
}

// BenchmarkTable5DatabaseQueries regenerates the Table 5 runtimes.
func BenchmarkTable5DatabaseQueries(b *testing.B) {
	domainBench(b, "database-queries")
}

// BenchmarkQualityOfPrograms regenerates the Section 6.4 comparison
// of synthesized versus intended programs.
func BenchmarkQualityOfPrograms(b *testing.B) {
	s := loadBenchSuite(b)
	var same, matched int
	for i := 0; i < b.N; i++ {
		rows, err := bench.CompareQuality(context.Background(), s.Realizable)
		if err != nil {
			b.Fatal(err)
		}
		same, matched = 0, 0
		for _, r := range rows {
			if r.SameOutputs {
				same++
			}
			if r.Matched {
				matched++
			}
		}
	}
	b.ReportMetric(float64(same), "same-outputs")
	b.ReportMetric(float64(matched), "syntactic-match")
}

// BenchmarkAblationPriority compares the paper's two priority
// functions (Section 4.3) over the realizable suite.
func BenchmarkAblationPriority(b *testing.B) {
	s := loadBenchSuite(b)
	for _, cfg := range []struct {
		name string
		opts coreegs.Options
	}{
		{"p2-score", coreegs.Options{Priority: coreegs.P2}},
		{"p1-size", coreegs.Options{Priority: coreegs.P1}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			sweep(b, &synth.EGS{Label: "egs-" + cfg.name, Options: cfg.opts}, s.Realizable)
		})
	}
}

// BenchmarkAblationQuickUnsat compares exhaustive unsat proofs (the
// paper's behaviour) with the Lemma 4.2 fast path on the
// unrealizable tasks.
func BenchmarkAblationQuickUnsat(b *testing.B) {
	s := loadBenchSuite(b)
	for _, cfg := range []struct {
		name string
		opts coreegs.Options
	}{
		{"exhaustive", coreegs.Options{}},
		{"lemma4.2", coreegs.Options{QuickUnsat: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			sweep(b, &synth.EGS{Label: "egs-" + cfg.name, Options: cfg.opts}, s.Unrealizable)
		})
	}
}

// BenchmarkAblationIndistinguishability measures the TRANSIT-style
// output-signature pruning in the naive enumerative baseline on the
// traffic running example (Section 2.1's search-space discussion).
func BenchmarkAblationIndistinguishability(b *testing.B) {
	s := loadBenchSuite(b)
	var traffic *task.Task
	for _, tk := range s.All {
		if tk.Name == "traffic" {
			traffic = tk
		}
	}
	for _, tool := range bench.AblationToolSet() {
		name := tool.Name()
		if name != "enumerative" && name != "enumerative+indist" {
			continue
		}
		tool := tool
		b.Run(name, func(b *testing.B) { sweep(b, tool, []*task.Task{traffic}) })
	}
}

// BenchmarkEvaluator measures the indexed join evaluator against the
// naive reference on the paper's Equation 1 query over the traffic
// database (the synthesizer's inner loop).
func BenchmarkEvaluator(b *testing.B) {
	s := loadBenchSuite(b)
	var traffic *task.Task
	for _, tk := range s.All {
		if tk.Name == "traffic" {
			traffic = tk
		}
	}
	rule, err := parser.ParseRule(
		"Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y), GreenSignal(x), GreenSignal(y).",
		traffic.Schema, traffic.Domain)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := len(eval.RuleOutputs(rule, traffic.Input)); got != 2 {
				b.Fatalf("outputs = %d", got)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := len(eval.EvalRuleNaive(rule, traffic.Input)); got != 2 {
				b.Fatalf("outputs = %d", got)
			}
		}
	})
}

// BenchmarkAblationParallel measures the parallel-explanation mode
// (our extension; the paper's tool is single-threaded) against the
// sequential algorithm on the whole realizable suite.
func BenchmarkAblationParallel(b *testing.B) {
	s := loadBenchSuite(b)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, tk := range s.Realizable {
					res, err := coreegs.SynthesizeParallel(context.Background(), tk, coreegs.Options{}, workers)
					if err != nil || res.Unsat {
						b.Fatalf("%s: res=%+v err=%v", tk.Name, res, err)
					}
				}
			}
		})
	}
}

// BenchmarkScalability measures EGS end-to-end on generated
// traffic-family instances of growing size — the "larger input data"
// direction of the paper's Section 8. Instances are realizable by
// construction; the reported per-op time is one full synthesis.
func BenchmarkScalability(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512} {
		n := n
		b.Run(fmt.Sprintf("streets=%d", n), func(b *testing.B) {
			tk, err := bench.ScaledTraffic(n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := coreegs.Synthesize(context.Background(), tk, coreegs.Options{})
				if err != nil || res.Unsat {
					b.Fatalf("res=%+v err=%v", res, err)
				}
			}
			b.ReportMetric(float64(tk.Input.Size()), "tuples")
		})
	}
}

// BenchmarkEvaluatorScale compares the indexed evaluator against the
// naive reference as the database grows; the index wins as soon as
// extents stop fitting in a few cache lines (the crossover the
// DESIGN.md ablation calls out).
func BenchmarkEvaluatorScale(b *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		tk, err := bench.ScaledTraffic(n)
		if err != nil {
			b.Fatal(err)
		}
		rule, err := parser.ParseRule(
			"Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y), GreenSignal(x), GreenSignal(y).",
			tk.Schema, tk.Domain)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("indexed/streets=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.RuleOutputs(rule, tk.Input)
			}
		})
		b.Run(fmt.Sprintf("naive/streets=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eval.EvalRuleNaive(rule, tk.Input)
			}
		})
	}
}

// BenchmarkSynthesizeTraffic measures end-to-end synthesis latency
// on the running example (the paper's Section 2.3 headline: EGS
// returns in well under a second).
func BenchmarkSynthesizeTraffic(b *testing.B) {
	s := loadBenchSuite(b)
	var traffic *task.Task
	for _, tk := range s.All {
		if tk.Name == "traffic" {
			traffic = tk
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := coreegs.Synthesize(context.Background(), traffic, coreegs.Options{})
		if err != nil || res.Unsat {
			b.Fatalf("res=%+v err=%v", res, err)
		}
	}
}
