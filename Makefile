# Build/verify entry points. `make verify` is the tier-1 gate: vet
# plus the full test suite under the race detector (the serving
# layer's worker pool and result cache are exactly the code that
# needs it).

GO ?= go

.PHONY: all build verify test vet lint lint-json race serve-smoke session-smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs egslint (the custom analyzer suite in internal/lint that
# enforces the determinism, aliasing, and pooling invariants), plus
# staticcheck/govulncheck when installed at the versions pinned in
# tools/tools.go. See DESIGN.md §10 for the analyzer catalogue and
# the //lint:ignore suppression convention.
lint:
	./scripts/lint.sh

lint-json:
	./scripts/lint.sh -json

# Tier-1 verification: build, vet, lint, and race-test everything.
verify: build vet lint race

# serve-smoke boots egs-serve, POSTs the kinship benchmark through
# the full HTTP path, checks the Datalog answer and the metrics
# endpoint, and shuts the server down.
serve-smoke:
	$(GO) build -o bin/egs-serve ./cmd/egs-serve
	BIN=bin/egs-serve ./scripts/serve-smoke.sh

# session-smoke drives an incremental session end to end (create ->
# staged delta -> warm re-solve -> delete) and asserts the warm
# revision evaluates fewer candidates than the creation solve.
session-smoke:
	$(GO) build -o bin/egs-serve ./cmd/egs-serve
	BIN=bin/egs-serve ./scripts/session-smoke.sh

clean:
	rm -rf bin
