# Build/verify entry points. `make verify` is the tier-1 gate: vet
# plus the full test suite under the race detector (the serving
# layer's worker pool and result cache are exactly the code that
# needs it).

GO ?= go

.PHONY: all build verify test vet race serve-smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Tier-1 verification: build, vet, and race-test everything.
verify: build vet race

# serve-smoke boots egs-serve, POSTs the kinship benchmark through
# the full HTTP path, checks the Datalog answer and the metrics
# endpoint, and shuts the server down.
serve-smoke:
	$(GO) build -o bin/egs-serve ./cmd/egs-serve
	BIN=bin/egs-serve ./scripts/serve-smoke.sh

clean:
	rm -rf bin
