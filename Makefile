# Build/verify entry points. `make verify` is the tier-1 gate: vet
# plus the full test suite under the race detector (the serving
# layer's worker pool and result cache are exactly the code that
# needs it).

GO ?= go

.PHONY: all build verify test vet lint lint-json race serve-smoke session-smoke router-smoke families-smoke bench-serve clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs egslint (the custom analyzer suite in internal/lint:
# determinism, aliasing, and pooling invariants plus the
# flow-sensitive concurrency analyzers ctxflow/lockscope/goroleak
# over the serving tier), with stale //lint:ignore detection and a
# wall-clock budget (EGSLINT_BUDGET_SECS), plus staticcheck and
# govulncheck when installed at the versions pinned in
# tools/tools.go. See DESIGN.md §10 and §15 for the analyzer
# catalogue and the //lint:ignore suppression convention.
lint:
	./scripts/lint.sh

lint-json:
	./scripts/lint.sh -json

# Tier-1 verification: build, vet, lint, and race-test everything.
verify: build vet lint race

# serve-smoke boots egs-serve, POSTs the kinship benchmark through
# the full HTTP path, checks the Datalog answer and the metrics
# endpoint, and shuts the server down.
serve-smoke:
	$(GO) build -o bin/egs-serve ./cmd/egs-serve
	BIN=bin/egs-serve ./scripts/serve-smoke.sh

# session-smoke drives an incremental session end to end (create ->
# staged delta -> warm re-solve -> delete) and asserts the warm
# revision evaluates fewer candidates than the creation solve.
session-smoke:
	$(GO) build -o bin/egs-serve ./cmd/egs-serve
	BIN=bin/egs-serve ./scripts/session-smoke.sh

# router-smoke boots two replicas plus egs-router, asserts consistent
# routing stickiness, then replays a short low-rate load with egs-load
# and checks p99/429-rate thresholds and the per-replica spread.
router-smoke:
	$(GO) build -o bin/egs-serve ./cmd/egs-serve
	$(GO) build -o bin/egs-router ./cmd/egs-router
	$(GO) build -o bin/egs-load ./cmd/egs-load
	BIN_SERVE=bin/egs-serve BIN_ROUTER=bin/egs-router BIN_LOAD=bin/egs-load \
		./scripts/router-smoke.sh

# families-smoke generates the scenario-factory family grid twice,
# asserts byte-determinism across the runs, and solves the smallest
# instance of every program class with the egs CLI.
families-smoke:
	$(GO) build -o bin/egs-datagen ./cmd/egs-datagen
	$(GO) build -o bin/egs ./cmd/egs
	BIN_DATAGEN=bin/egs-datagen BIN_EGS=bin/egs ./scripts/families-smoke.sh

# bench-serve measures the serving tier (stampede collapse, single vs
# routed throughput) and records BENCH_serve.json.
bench-serve:
	./scripts/bench-serve.sh

clean:
	rm -rf bin
