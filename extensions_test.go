package egs_test

import (
	"context"
	"strings"
	"testing"

	egs "github.com/egs-synthesis/egs"
)

func TestBestEffortPublicAPI(t *testing.T) {
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("likes", 2)
	b.Output("rec", 1)
	b.Fact("likes", "Ann", "Ikiru")
	b.Positive("rec", "Ann")
	b.Positive("rec", "Ghost") // noise: Ghost is not in the input
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("best-effort reported unsat")
	}
	if len(res.Uncovered) != 1 || !strings.Contains(res.Uncovered[0], "Ghost") {
		t.Errorf("Uncovered = %v", res.Uncovered)
	}
}

func TestAlternativesPublicAPI(t *testing.T) {
	task, err := egs.LoadTask("testdata/benchmarks/knowledge-discovery/traffic.task")
	if err != nil {
		t.Fatal(err)
	}
	alts, err := egs.Alternatives(context.Background(), task, "Crashes", []string{"Whitehall"}, 4, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) == 0 {
		t.Fatal("no alternatives")
	}
	seen := map[string]bool{}
	for _, q := range alts {
		if q.NumRules() != 1 {
			t.Errorf("alternative has %d rules", q.NumRules())
		}
		s := q.Datalog()
		if seen[s] {
			t.Errorf("duplicate alternative %s", s)
		}
		seen[s] = true
	}
	// Error cases.
	if _, err := egs.Alternatives(context.Background(), task, "nosuch", nil, 2, egs.Options{}); err == nil {
		t.Error("undeclared relation accepted")
	}
	if _, err := egs.Alternatives(context.Background(), task, "Crashes", []string{"a", "b"}, 2, egs.Options{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	alts, err = egs.Alternatives(context.Background(), task, "Crashes", []string{"Atlantis"}, 2, egs.Options{})
	if err != nil || alts != nil {
		t.Errorf("unknown constant: alts=%v err=%v", alts, err)
	}
}

func TestExplainPublicAPI(t *testing.T) {
	task, err := egs.LoadTask("testdata/benchmarks/knowledge-discovery/headquarters.task")
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil || res.Unsat {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	exp, ok := res.Query.Explain(task, "hqIn", []string{"Acme", "Texas"})
	if !ok {
		t.Fatal("no explanation for a derived tuple")
	}
	if len(exp.Facts) == 0 || exp.Rule == "" {
		t.Errorf("explanation = %+v", exp)
	}
	joined := strings.Join(exp.Facts, ";")
	if !strings.Contains(joined, "Acme") {
		t.Errorf("facts do not mention Acme: %v", exp.Facts)
	}
	// Non-derived tuple: no explanation.
	if _, ok := res.Query.Explain(task, "hqIn", []string{"Acme", "Oregon"}); ok {
		t.Error("explanation produced for underivable tuple")
	}
	// Unknown constant / relation.
	if _, ok := res.Query.Explain(task, "hqIn", []string{"Acme", "Mars"}); ok {
		t.Error("explanation for unknown constant")
	}
	if _, ok := res.Query.Explain(task, "zzz", []string{"Acme"}); ok {
		t.Error("explanation for unknown relation")
	}
}

func TestWorkersPublicAPI(t *testing.T) {
	task, err := egs.LoadTask("testdata/benchmarks/knowledge-discovery/grandparent.task")
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("parallel grandparent reported unsat")
	}
	if ok, why := task.Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
}

func TestInteractPublicAPI(t *testing.T) {
	b := egs.NewBuilder()
	b.Input("Intersects", 2)
	b.Input("GreenSignal", 1)
	b.Input("HasTraffic", 1)
	b.Output("Crashes", 1)
	pairs := [][2]string{
		{"Broadway", "LibertySt"}, {"Broadway", "WallSt"}, {"Broadway", "Whitehall"},
		{"LibertySt", "Broadway"}, {"LibertySt", "WilliamSt"},
		{"WallSt", "Broadway"}, {"WallSt", "WilliamSt"},
		{"Whitehall", "Broadway"},
		{"WilliamSt", "LibertySt"}, {"WilliamSt", "WallSt"},
	}
	for _, p := range pairs {
		b.Fact("Intersects", p[0], p[1])
	}
	for _, s := range []string{"Broadway", "LibertySt", "WilliamSt", "Whitehall"} {
		b.Fact("GreenSignal", s)
	}
	for _, s := range []string{"Broadway", "WallSt", "WilliamSt", "Whitehall"} {
		b.Fact("HasTraffic", s)
	}
	b.Positive("Crashes", "Whitehall")
	b.Negative("Crashes", "WallSt")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	oracle := func(rel string, args []string) bool {
		return len(args) == 1 && (args[0] == "Broadway" || args[0] == "Whitehall")
	}
	res, err := egs.Interact(context.Background(), task, oracle, egs.InteractConfig{MaxQuestions: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat || !res.Converged {
		t.Fatalf("unsat=%v converged=%v after %d questions", res.Unsat, res.Converged, len(res.Questions))
	}
	if len(res.Questions) == 0 {
		t.Error("converged without asking; partial labels should be ambiguous")
	}
	// Final query agrees with the oracle on the training input.
	for _, tu := range res.Query.Eval(task) {
		if !strings.Contains(tu, "Broadway") && !strings.Contains(tu, "Whitehall") {
			t.Errorf("final query derives %s against the oracle", tu)
		}
	}
}

func TestInteractClosedWorldRejected(t *testing.T) {
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("p", 1)
	b.Output("q", 1)
	b.Fact("p", "a")
	b.Positive("q", "a")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := egs.Interact(context.Background(), task, func(string, []string) bool { return false }, egs.InteractConfig{}); err == nil {
		t.Fatal("closed-world task accepted")
	}
}

func TestQuerySQLPublicAPI(t *testing.T) {
	task, err := egs.LoadTask("testdata/benchmarks/database-queries/sql07.task")
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil || res.Unsat {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	sql, err := res.Query.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "SELECT DISTINCT") || !strings.Contains(sql, "FROM") {
		t.Errorf("SQL rendering:\n%s", sql)
	}
}

func TestTypedNegationPublicAPI(t *testing.T) {
	build := func(typed bool) *egs.Task {
		b := egs.NewBuilder().ClosedWorld(true).Negate("subtype")
		if typed {
			b.TypedNegation()
		}
		b.Input("subtype", 2)
		b.Input("cast", 2)
		b.Input("pointsto", 2)
		b.Input("hastype", 2)
		b.Output("unsafe", 1)
		b.Fact("subtype", "TInt", "TNum")
		b.Fact("subtype", "TInt", "TInt")
		b.Fact("subtype", "TNum", "TNum")
		b.Fact("subtype", "TStr", "TStr")
		b.Fact("cast", "v1", "TNum")
		b.Fact("cast", "v2", "TInt")
		b.Fact("pointsto", "v1", "o1")
		b.Fact("pointsto", "v2", "o2")
		b.Fact("hastype", "o1", "TInt")
		b.Fact("hastype", "o2", "TStr")
		b.Positive("unsafe", "v2") // o2 : TStr is not a subtype of TInt
		task, err := b.Task()
		if err != nil {
			t.Fatal(err)
		}
		return task
	}
	for _, typed := range []bool{true, false} {
		task := build(typed)
		res, err := egs.Synthesize(context.Background(), task, egs.Options{})
		if err != nil {
			t.Fatalf("typed=%v: %v", typed, err)
		}
		if res.Unsat {
			t.Fatalf("typed=%v: unsat", typed)
		}
		if ok, why := task.Consistent(res.Query); !ok {
			t.Fatalf("typed=%v: inconsistent: %s", typed, why)
		}
	}
}
