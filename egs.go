// Package egs synthesizes relational queries — unions of conjunctive
// queries with negation — from input-output examples, implementing
// Example-Guided Synthesis (Thakkar, Naik, Sands, Alur, Naik,
// Raghothaman: "Example-Guided Synthesis of Relational Queries",
// PLDI 2021).
//
// Unlike syntax-guided synthesizers, EGS enumerates candidate
// programs by following co-occurrence patterns between constants in
// the examples themselves (the constant co-occurrence graph of the
// paper's Section 4). This makes it fast on realizable tasks and —
// because the context space is finite — *complete*: when no
// consistent query exists, Synthesize proves it and reports Unsat.
//
// # Synthesis tasks
//
// A task consists of input relations with ground facts, output
// relations, and labelled output tuples. Build one programmatically:
//
//	b := egs.NewBuilder()
//	b.Input("parent", 2)
//	b.Output("grandparent", 2)
//	b.Fact("parent", "alice", "bob")
//	b.Fact("parent", "bob", "carol")
//	b.Positive("grandparent", "alice", "carol")
//	b.Negative("grandparent", "alice", "bob")
//	t, err := b.Task()
//
// or parse the declarative task format (see the testdata/benchmarks
// directory and DESIGN.md for the grammar):
//
//	t, err := egs.LoadTask("grandparent.task")
//
// Unlabelled output tuples are unconstrained by default; call
// Builder.ClosedWorld(true) (or the closed-world directive) to treat
// every unlabelled tuple over the data domain as negative.
//
// # Negation
//
// Synthesized queries are unions of conjunctive queries in negation
// normal form (Section 5.3): negated relations appear as ordinary
// complement relations. Builder.Negate("r") materializes not_r, and
// Builder.AddNeq() provides the built-in inequality relation.
//
// # Results
//
//	res, err := egs.Synthesize(ctx, t, egs.Options{})
//	if res.Unsat { ... no consistent query exists ... }
//	fmt.Println(res.Query.Datalog())
//
// The returned program is guaranteed consistent: it derives every
// positive tuple and no negative tuple. Verify independently with
// Task.Consistent.
package egs

import (
	"context"
	"fmt"
	"io"
	"sort"

	"github.com/egs-synthesis/egs/internal/active"
	coreegs "github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/sqlgen"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// Priority selects the worklist ordering of the search (Section 4.3
// of the paper).
type Priority uint8

const (
	// PriorityScore orders enumeration contexts by explanatory power
	// per literal, then size (the paper's p2; the default).
	PriorityScore Priority = iota
	// PrioritySize orders contexts by size only (the paper's p1),
	// guaranteeing a syntactically smallest solution.
	PrioritySize
)

// Options configures Synthesize. The zero value is the paper's
// configuration.
type Options struct {
	// Priority selects the queue ordering.
	Priority Priority
	// QuickUnsat short-circuits unrealizable instances using the
	// paper's Lemma 4.2 instead of exhausting the context space.
	QuickUnsat bool
	// MaxContexts caps the number of enumeration contexts explored
	// per output cell; 0 means unlimited. When the cap is hit,
	// Synthesize returns ErrBudgetExceeded.
	MaxContexts int
	// BestEffort tolerates noise in the examples: positive tuples
	// that admit no consistent explanation are skipped and reported
	// in Result.Uncovered instead of failing the task. The returned
	// program still derives no negative tuple.
	BestEffort bool
	// Workers > 1 explains positive tuples concurrently (the
	// per-tuple searches of Algorithm 3 are independent). The result
	// is consistent exactly as in the sequential algorithm, though
	// its union may decompose differently; 0 or 1 keeps the paper's
	// sequential behaviour.
	Workers int
	// AssessParallelism > 1 evaluates the candidate rules of each
	// worklist expansion on a bounded worker pool. Unlike Workers,
	// this parallelism is invisible in the result: the learned rules
	// and unsat verdicts are bit-identical to the sequential search.
	// It composes with Workers (each tuple-explaining worker gets its
	// own assessment pool).
	AssessParallelism int
	// Trace, when non-nil, collects structured search events (cell
	// spans, context pops, assessment batches, memo hits, worker-pool
	// round-trips, worklist high-water marks) into the given Trace for
	// later export. Tracing never alters the search: results are
	// identical with Trace set or nil. A Trace may be reused across
	// runs; events accumulate until Reset.
	Trace *Trace
}

// Trace accumulates structured events from traced synthesis runs (see
// Options.Trace). Create one with NewTrace, run one or more syntheses
// with it, then export with WriteChrome (about://tracing / Perfetto)
// or WriteNDJSON (one compact JSON object per event). A Trace is safe
// for concurrent use by the searchers of a single traced run; the
// export order is deterministic (by searcher, then record order).
type Trace struct {
	c *trace.Collector
}

// NewTrace returns an empty trace ready to pass in Options.Trace.
func NewTrace() *Trace { return &Trace{c: trace.NewCollector()} }

// WriteChrome renders the collected events in the Chrome trace-event
// JSON format, loadable in about://tracing or https://ui.perfetto.dev.
func (tr *Trace) WriteChrome(w io.Writer) error {
	return trace.WriteChrome(w, tr.c.Events())
}

// WriteNDJSON renders the collected events as newline-delimited JSON,
// one compact object per event.
func (tr *Trace) WriteNDJSON(w io.Writer) error {
	return trace.WriteNDJSON(w, tr.c.Events())
}

// NumEvents returns the number of events collected so far.
func (tr *Trace) NumEvents() int { return tr.c.Len() }

// Reset discards all collected events, keeping the trace reusable.
func (tr *Trace) Reset() { tr.c.Reset() }

// coreOptions lowers Options to the internal representation.
func (o Options) coreOptions() coreegs.Options {
	c := coreegs.Options{
		QuickUnsat:        o.QuickUnsat,
		MaxContexts:       o.MaxContexts,
		BestEffort:        o.BestEffort,
		AssessParallelism: o.AssessParallelism,
	}
	if o.Priority == PrioritySize {
		c.Priority = coreegs.P1
	}
	if o.Trace != nil {
		c.Trace = o.Trace.c
	}
	return c
}

// ErrBudgetExceeded is returned when Options.MaxContexts was
// exhausted before the search completed.
var ErrBudgetExceeded = coreegs.ErrBudgetExceeded

// Stats reports the work performed by one synthesis run.
type Stats struct {
	// ContextsExplored counts enumeration contexts popped from the
	// worklist.
	ContextsExplored int
	// CandidatesEvaluated counts candidate-rule evaluations actually
	// executed.
	CandidatesEvaluated int
	// CandidatesCached counts candidate assessments answered from the
	// canonical-rule memo instead of re-evaluating. The cache-hit
	// rate is CandidatesCached / (CandidatesEvaluated + CandidatesCached).
	CandidatesCached int
	// RulesLearned is the number of rules in the result.
	RulesLearned int
}

// Task is a prepared synthesis task.
type Task struct {
	t *task.Task
}

// Builder constructs a Task programmatically. The zero value is not
// ready; use NewBuilder.
type Builder struct {
	t      *task.Task
	err    error
	closed bool
}

// NewBuilder returns an empty task builder with open-world labelling.
func NewBuilder() *Builder {
	s := relation.NewSchema()
	d := relation.NewDomain()
	return &Builder{t: &task.Task{
		Name:   "task",
		Schema: s,
		Domain: d,
		Input:  relation.NewDatabase(s, d),
	}}
}

// Name sets the task's name (used in diagnostics).
func (b *Builder) Name(name string) *Builder {
	b.t.Name = name
	return b
}

// Input declares an input relation with the given arity.
func (b *Builder) Input(name string, arity int) *Builder {
	if b.err == nil {
		_, b.err = b.t.Schema.Declare(name, arity, relation.Input)
	}
	return b
}

// Output declares an output relation with the given arity.
func (b *Builder) Output(name string, arity int) *Builder {
	if b.err == nil {
		_, b.err = b.t.Schema.Declare(name, arity, relation.Output)
	}
	return b
}

// resolve interns a ground atom over a declared relation.
func (b *Builder) resolve(kind relation.Kind, rel string, args []string) (relation.Tuple, bool) {
	if b.err != nil {
		return relation.Tuple{}, false
	}
	id, ok := b.t.Schema.Lookup(rel)
	if !ok {
		b.err = fmt.Errorf("egs: undeclared relation %q", rel)
		return relation.Tuple{}, false
	}
	info := b.t.Schema.Info(id)
	if info.Kind != kind {
		b.err = fmt.Errorf("egs: relation %q is %v, want %v", rel, info.Kind, kind)
		return relation.Tuple{}, false
	}
	if info.Arity != len(args) {
		b.err = fmt.Errorf("egs: relation %q has arity %d, got %d arguments", rel, info.Arity, len(args))
		return relation.Tuple{}, false
	}
	consts := make([]relation.Const, len(args))
	for i, a := range args {
		consts[i] = b.t.Domain.Intern(a)
	}
	return relation.Tuple{Rel: id, Args: consts}, true
}

// Fact adds an input fact.
func (b *Builder) Fact(rel string, args ...string) *Builder {
	if t, ok := b.resolve(relation.Input, rel, args); ok {
		b.t.Input.Insert(t)
	}
	return b
}

// Positive adds a desirable output tuple (a member of O+).
func (b *Builder) Positive(rel string, args ...string) *Builder {
	if t, ok := b.resolve(relation.Output, rel, args); ok {
		b.t.Pos = append(b.t.Pos, t)
	}
	return b
}

// Negative adds an undesirable output tuple (a member of O-).
// Incompatible with ClosedWorld(true).
func (b *Builder) Negative(rel string, args ...string) *Builder {
	if t, ok := b.resolve(relation.Output, rel, args); ok {
		b.t.Neg = append(b.t.Neg, t)
	}
	return b
}

// ClosedWorld selects complete labelling: every output tuple over
// the data domain that is not positive is negative.
func (b *Builder) ClosedWorld(on bool) *Builder {
	b.t.ClosedWorld = on
	return b
}

// Negate materializes the complement relations not_<name> for the
// given input relations (Section 5.3 of the paper).
func (b *Builder) Negate(rels ...string) *Builder {
	b.t.NegateRels = append(b.t.NegateRels, rels...)
	return b
}

// AddNeq provides the built-in inequality relation neq over the data
// domain (Section 5.3).
func (b *Builder) AddNeq() *Builder {
	b.t.AddNeq = true
	return b
}

// TypedNegation makes Negate and AddNeq range over inferred column
// types instead of the whole data domain: two columns share a type
// when they share a constant. This keeps complements small when the
// domain mixes entities of different kinds (program variables and
// type names, say), and is the typed-domains extension the paper
// sketches in Section 3.1.
func (b *Builder) TypedNegation() *Builder {
	b.t.TypedNegation = true
	return b
}

// Task finalizes the builder. The builder must not be reused after.
func (b *Builder) Task() (*Task, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.closed {
		return nil, fmt.Errorf("egs: builder already finalized")
	}
	b.closed = true
	if err := b.t.Prepare(); err != nil {
		return nil, err
	}
	return &Task{t: b.t}, nil
}

// ParseTask reads a task in the declarative task-file format.
func ParseTask(r io.Reader) (*Task, error) {
	t, err := task.Parse(r)
	if err != nil {
		return nil, err
	}
	return &Task{t: t}, nil
}

// LoadTask reads a task file from disk.
func LoadTask(path string) (*Task, error) {
	t, err := task.Load(path)
	if err != nil {
		return nil, err
	}
	return &Task{t: t}, nil
}

// Name returns the task's name.
func (t *Task) Name() string { return t.t.Name }

// CanonicalHash returns a stable hex-encoded digest of the task's
// example semantics: two tasks hash equal exactly when they describe
// the same synthesis problem, independent of declaration order, fact
// order, or naming metadata. It is the result-cache key used by the
// synthesis server and is cheap enough to compute per request.
func (t *Task) CanonicalHash() string { return task.CanonicalHash(t.t) }

// BaseHash returns a stable hex-encoded digest of the task's
// extensional part: relation declarations, input facts, and the
// labelling/negation directives, excluding the example labels. Two
// tasks share a base hash exactly when they pose (possibly different)
// questions over the same database. It keys the synthesis server's
// copy-on-write snapshot cache (see AdoptExamples).
func (t *Task) BaseHash() string { return task.BaseHash(t.t) }

// AdoptExamples returns a prepared task that carries o's example
// labels over t's interned database, schema, and domain. It is the
// copy-on-write snapshot path of the synthesis server: when two
// requests share a base (equal BaseHash), the second can adopt the
// first's already-interned, already-indexed database instead of
// rebuilding it, at the cost of interning only its example tuples.
//
// The receivers' bases must match (callers gate on BaseHash
// equality). Adoption never inserts facts — example tuples are only
// interned, which the database supports concurrently — so t's
// TupleIDs, column caches, and frozen extents all stay valid, and
// any number of adopted tasks may be synthesized concurrently over
// the shared database.
//
// ok is false when o's examples mention a constant absent from t's
// domain (interning it would race concurrent readers); callers fall
// back to o itself, which is always correct.
func (t *Task) AdoptExamples(o *Task) (*Task, bool, error) {
	translate := func(tuples []relation.Tuple) ([]relation.Tuple, bool) {
		out := make([]relation.Tuple, 0, len(tuples))
		for _, tu := range tuples {
			rel, found := t.t.Schema.Lookup(o.t.Schema.Name(tu.Rel))
			if !found || t.t.Schema.Arity(rel) != len(tu.Args) {
				return nil, false
			}
			args := make([]relation.Const, len(tu.Args))
			for i, c := range tu.Args {
				tc, found := t.t.Domain.Lookup(o.t.Domain.Name(c))
				if !found {
					return nil, false
				}
				args[i] = tc
			}
			out = append(out, relation.Tuple{Rel: rel, Args: args})
		}
		return out, true
	}
	pos, ok := translate(o.t.Pos)
	if !ok {
		return nil, false, nil
	}
	neg, ok := translate(o.t.Neg)
	if !ok {
		return nil, false, nil
	}
	nt, err := t.t.Revise(pos, neg)
	if err != nil {
		return nil, false, err
	}
	nt.Name = o.t.Name
	return &Task{t: nt}, true, nil
}

// NumFacts returns the number of input facts (before negation
// preprocessing).
func (t *Task) NumFacts() int { return t.t.RawInputCount }

// NumExamples returns the number of labelled output tuples: |O+| and
// the explicit |O-| (0 under closed-world labelling, where negatives
// are implicit).
func (t *Task) NumExamples() (pos, neg int) { return len(t.t.Pos), len(t.t.Neg) }

// Consistent checks a query against the task's example: it must
// derive every positive tuple and no negative tuple. On failure the
// second result describes the first violation.
func (t *Task) Consistent(q *Query) (bool, string) {
	return t.t.Example().Consistent(q.ucq)
}

// Query is a synthesized union of conjunctive queries, bound to the
// schema it was synthesized against.
type Query struct {
	ucq    query.UCQ
	schema *relation.Schema
	domain *relation.Domain
}

// Datalog renders the query, one rule per line, e.g.
//
//	grandparent(x, z) :- parent(x, y), parent(y, z).
func (q *Query) Datalog() string { return q.ucq.String(q.schema, q.domain) }

// String implements fmt.Stringer.
func (q *Query) String() string { return q.Datalog() }

// SQL renders the query as a SQL statement: one SELECT DISTINCT per
// rule, joined by UNION. Columns are positional (c0, c1, ...);
// complement relations (not_r, neq) appear as tables and would be
// defined as views in a deployment.
func (q *Query) SQL() (string, error) { return sqlgen.UCQ(q.ucq, q.schema, q.domain) }

// NumRules returns the number of rules (disjuncts).
func (q *Query) NumRules() int { return len(q.ucq.Rules) }

// NumLiterals returns the total number of body literals, the paper's
// measure of program size.
func (q *Query) NumLiterals() int { return q.ucq.Size() }

// Eval runs the query over the task it was synthesized from and
// returns the derived tuples, each rendered as relation(c1, ..., ck).
func (q *Query) Eval(t *Task) []string {
	outs := eval.UCQOutputs(q.ucq, t.t.Input)
	var res []string
	for _, tu := range outs {
		res = append(res, tu.String(t.t.Schema, t.t.Domain))
	}
	sort.Strings(res)
	return res
}

// Result is the outcome of Synthesize.
type Result struct {
	// Query is the synthesized program (nil when Unsat).
	Query *Query
	// Unsat reports that no consistent query exists in the language
	// of unions of conjunctive queries over the task's relations —
	// a proof, by the paper's Theorem 4.3.
	Unsat bool
	// UnsatReason explains an Unsat verdict: which output tuple is
	// unexplainable, at which field, and which completeness argument
	// (Theorem 4.3 exhaustion or the Lemma 4.2 fast path) applies.
	UnsatReason string
	// Uncovered lists positive tuples (rendered as rel(c1, ..., ck))
	// left unexplained in best-effort mode; empty otherwise.
	Uncovered []string
	// Stats describes the search.
	Stats Stats
}

// ExplainTuple synthesizes a single conjunctive query explaining one
// positive output tuple (the paper's Algorithm 2): the returned query
// derives the tuple and no negative tuple. ok is false when no such
// query exists. The tuple need not be one of the task's declared
// positives, but its relation must be a declared output relation.
func ExplainTuple(ctx context.Context, t *Task, rel string, args []string, opts Options) (q *Query, ok bool, err error) {
	id, found := t.t.Schema.Lookup(rel)
	if !found {
		return nil, false, fmt.Errorf("egs: undeclared relation %q", rel)
	}
	if got, want := len(args), t.t.Schema.Arity(id); got != want {
		return nil, false, fmt.Errorf("egs: relation %q has arity %d, got %d arguments", rel, want, got)
	}
	consts := make([]relation.Const, len(args))
	for i, a := range args {
		c, found := t.t.Domain.Lookup(a)
		if !found {
			// A constant absent from the data domain cannot be
			// explained by any context (Section 6.5).
			return nil, false, nil
		}
		consts[i] = c
	}
	coreOpts := coreegs.Options{
		QuickUnsat:        opts.QuickUnsat,
		MaxContexts:       opts.MaxContexts,
		AssessParallelism: opts.AssessParallelism,
	}
	if opts.Priority == PrioritySize {
		coreOpts.Priority = coreegs.P1
	}
	if opts.Trace != nil {
		coreOpts.Trace = opts.Trace.c
	}
	rule, ok, err := coreegs.ExplainOne(ctx, t.t, relation.Tuple{Rel: id, Args: consts}, coreOpts)
	if err != nil || !ok {
		return nil, false, err
	}
	return &Query{
		ucq:    query.UCQ{Rules: []query.Rule{rule}},
		schema: t.t.Schema,
		domain: t.t.Domain,
	}, true, nil
}

// Synthesize runs the EGS algorithm on the task. It returns a
// consistent query, or a proof of unrealizability (Result.Unsat), or
// an error if ctx expires or Options.MaxContexts is exceeded.
func Synthesize(ctx context.Context, t *Task, opts Options) (Result, error) {
	var res coreegs.Result
	var err error
	if opts.Workers > 1 {
		res, err = coreegs.SynthesizeParallel(ctx, t.t, opts.coreOptions(), opts.Workers)
	} else {
		res, err = coreegs.Synthesize(ctx, t.t, opts.coreOptions())
	}
	if err != nil {
		return Result{}, err
	}
	return convertResult(t.t, res), nil
}

// convertResult lowers an internal synthesis result to the public
// form, rendering witnesses and uncovered tuples against the given
// task's schema and domain. Shared by Synthesize and Session.Solve.
func convertResult(tk *task.Task, res coreegs.Result) Result {
	out := Result{
		Unsat: res.Unsat,
		Stats: Stats{
			ContextsExplored:    res.Stats.ContextsPopped,
			CandidatesEvaluated: res.Stats.RuleEvals,
			CandidatesCached:    res.Stats.MemoHits,
			RulesLearned:        res.Stats.RulesLearned,
		},
	}
	for _, u := range res.Uncovered {
		out.Uncovered = append(out.Uncovered, u.String(tk.Schema, tk.Domain))
	}
	if res.Witness != nil {
		out.UnsatReason = res.Witness.String(tk.Schema, tk.Domain)
	}
	if !res.Unsat {
		out.Query = &Query{ucq: res.Query, schema: tk.Schema, domain: tk.Domain}
	}
	return out
}

// Alternatives synthesizes up to k distinct single-rule queries,
// each explaining the given output tuple while deriving no negative
// tuple, in the order the example-guided search discovers them. The
// alternatives support disambiguation workflows: where two
// alternatives disagree on some derived tuple, labelling that tuple
// narrows the user's intent.
func Alternatives(ctx context.Context, t *Task, rel string, args []string, k int, opts Options) ([]*Query, error) {
	id, found := t.t.Schema.Lookup(rel)
	if !found {
		return nil, fmt.Errorf("egs: undeclared relation %q", rel)
	}
	if got, want := len(args), t.t.Schema.Arity(id); got != want {
		return nil, fmt.Errorf("egs: relation %q has arity %d, got %d arguments", rel, want, got)
	}
	consts := make([]relation.Const, len(args))
	for i, a := range args {
		c, found := t.t.Domain.Lookup(a)
		if !found {
			return nil, nil // unexplainable: constant outside the data domain
		}
		consts[i] = c
	}
	rules, err := coreegs.Alternatives(ctx, t.t, relation.Tuple{Rel: id, Args: consts}, k, opts.coreOptions())
	if err != nil {
		return nil, err
	}
	out := make([]*Query, len(rules))
	for i, r := range rules {
		out[i] = &Query{ucq: query.UCQ{Rules: []query.Rule{r}}, schema: t.t.Schema, domain: t.t.Domain}
	}
	return out, nil
}

// Oracle answers interactive membership queries: is the output tuple
// rel(args...) desirable? It stands in for the user in Interact.
type Oracle func(rel string, args []string) bool

// InteractConfig tunes the interactive synthesis loop.
type InteractConfig struct {
	// MaxQuestions caps oracle interactions (default 10).
	MaxQuestions int
	// Options forwards to the synthesizer.
	Options Options
}

// InteractResult is the outcome of an interactive session.
type InteractResult struct {
	// Query is consistent with the original labels plus every answer
	// (nil when Unsat).
	Query *Query
	// Unsat reports that the acquired labels admit no consistent
	// query.
	Unsat bool
	// Converged is true when the concept is pinned down with respect
	// to the training input: alternative explanations agree and every
	// prediction has been confirmed.
	Converged bool
	// Questions lists the tuples the oracle was asked about, rendered
	// as rel(c1, ..., ck), with the given answers.
	Questions []struct {
		Tuple    string
		Positive bool
	}
}

// Interact runs an active-learning loop (the interactive-feedback
// direction of the paper's Section 8): starting from a partially
// labelled task, it repeatedly synthesizes, finds an output tuple
// that would discriminate between alternative explanations (or an
// unconfirmed prediction), and asks the oracle to label it. The task
// must use explicit labelling (not closed-world).
func Interact(ctx context.Context, t *Task, oracle Oracle, cfg InteractConfig) (InteractResult, error) {
	res, err := active.Learn(ctx, t.t, func(tu relation.Tuple) bool {
		args := make([]string, len(tu.Args))
		for i, c := range tu.Args {
			args[i] = t.t.Domain.Name(c)
		}
		return oracle(t.t.Schema.Name(tu.Rel), args)
	}, active.Config{
		MaxRounds: cfg.MaxQuestions,
		Options:   cfg.Options.coreOptions(),
	})
	if err != nil {
		return InteractResult{}, err
	}
	out := InteractResult{Unsat: res.Unsat, Converged: res.Converged}
	for _, l := range res.Labels {
		out.Questions = append(out.Questions, struct {
			Tuple    string
			Positive bool
		}{l.Tuple.String(t.t.Schema, t.t.Domain), l.Positive})
	}
	if !res.Unsat {
		out.Query = &Query{ucq: res.Query, schema: t.t.Schema, domain: t.t.Domain}
	}
	return out, nil
}

// Explanation is a why-provenance witness: the input facts that
// justify one derived tuple under one rule of a query.
type Explanation struct {
	// Rule is the justifying rule, in Datalog syntax.
	Rule string
	// Facts are the matched input facts, one per body literal.
	Facts []string
}

// Explain returns why the query derives the given tuple: the first
// rule that derives it together with the input facts witnessing the
// derivation. ok is false when the query does not derive the tuple.
func (q *Query) Explain(t *Task, rel string, args []string) (Explanation, bool) {
	id, found := t.t.Schema.Lookup(rel)
	if !found || t.t.Schema.Arity(id) != len(args) {
		return Explanation{}, false
	}
	consts := make([]relation.Const, len(args))
	for i, a := range args {
		c, found := t.t.Domain.Lookup(a)
		if !found {
			return Explanation{}, false
		}
		consts[i] = c
	}
	d, ok := eval.WhyUCQ(q.ucq, t.t.Input, relation.Tuple{Rel: id, Args: consts})
	if !ok {
		return Explanation{}, false
	}
	e := Explanation{Rule: d.Rule.String(t.t.Schema, t.t.Domain)}
	for _, w := range d.Witnesses {
		e.Facts = append(e.Facts, w.String(t.t.Schema, t.t.Domain))
	}
	return e, true
}
