package egs_test

import (
	"context"
	"testing"

	egs "github.com/egs-synthesis/egs"
)

// TestSessionIncremental drives the public session API through the
// grandparent example: start with a partial task, add the missing
// fact and labels as deltas, and check the warm result equals the
// cold one-shot on the full task.
func TestSessionIncremental(t *testing.T) {
	ctx := context.Background()

	cold, err := egs.Synthesize(ctx, buildGrandparent(t), egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := cold.Query.Datalog()

	b := egs.NewBuilder().Name("grandparent")
	b.Input("parent", 2)
	b.Output("grandparent", 2)
	b.Fact("parent", "alice", "bob")
	b.Fact("parent", "bob", "carol")
	b.Positive("grandparent", "alice", "carol")
	b.Negative("grandparent", "alice", "bob")
	partial, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := egs.NewSession(partial)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(ctx, egs.Options{}); err != nil {
		t.Fatal(err)
	}
	if sess.Revision() != 0 {
		t.Errorf("Revision = %d before any delta", sess.Revision())
	}

	if err := sess.AddFact("parent", "carol", "dave"); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddExample(true, "grandparent", "bob", "dave"); err != nil {
		t.Fatal(err)
	}
	if err := sess.AddExample(false, "grandparent", "alice", "dave"); err != nil {
		t.Fatal(err)
	}
	if !sess.Pending() {
		t.Error("Pending = false after deltas")
	}
	res, err := sess.Solve(ctx, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("revised task reported unsat")
	}
	if got := res.Query.Datalog(); got != want {
		t.Errorf("warm Datalog() = %q, want %q", got, want)
	}
	if sess.Revision() != 1 || sess.Deltas() != 3 || sess.Pending() {
		t.Errorf("session state: rev=%d deltas=%d pending=%v", sess.Revision(), sess.Deltas(), sess.Pending())
	}
	if pos, neg := sess.NumExamples(); pos != 2 || neg != 2 {
		t.Errorf("NumExamples = %d,%d want 2,2", pos, neg)
	}
	if sess.NumFacts() != 3 {
		t.Errorf("NumFacts = %d, want 3", sess.NumFacts())
	}

	// Flip a label and drop it again: the session must keep tracking.
	if err := sess.RelabelTuple(true, "grandparent", "alice", "dave"); err != nil {
		t.Fatal(err)
	}
	if err := sess.RelabelTuple(false, "grandparent", "alice", "dave"); err != nil {
		t.Fatal(err)
	}
	res2, err := sess.Solve(ctx, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Query.Datalog(); got != want {
		t.Errorf("post-relabel Datalog() = %q, want %q", got, want)
	}
	if res2.Stats.CandidatesCached == 0 {
		t.Error("warm revision reported no cached candidates")
	}
}
