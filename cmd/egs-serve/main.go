// Command egs-serve runs the EGS synthesizer as a long-running HTTP
// service: POST a synthesis task, receive the synthesized query as
// Datalog and SQL. See internal/server for the serving architecture
// (bounded admission queue → worker pool → canonical-hash result
// cache → engine) and README.md for request examples.
//
// Usage:
//
//	egs-serve [flags]
//
// Endpoints:
//
//	POST /synthesize        JSON task (Content-Type: application/json)
//	                        or .task surface syntax (any other content
//	                        type); ?timeout_ms= bounds one request's
//	                        synthesis. The JSON options object accepts
//	                        "trace": "inline" | "store" to record a
//	                        Chrome trace of the search.
//	POST /sessions          create an incremental session from a task
//	                        (same body forms as /synthesize); solves
//	                        revision 0 and returns a session_id
//	POST /sessions/{id}/delta
//	                        apply deltas ({"deltas": [{"op": "add_fact"
//	                        | "add_example" | "remove_example" |
//	                        "relabel", ...}]}) and re-solve warm;
//	                        "solve": false stages without solving
//	GET  /sessions/{id}     session status (never solves)
//	DELETE /sessions/{id}   drop a session
//	GET  /healthz           200 while serving, 503 while draining
//	GET  /metrics           Prometheus text format
//	GET  /debug/traces/{id} fetch a trace stored by "trace": "store"
//	                        (capped FIFO store; fetch promptly)
//	GET  /debug/pprof/...   Go runtime profiling (CPU, heap, goroutine)
//
// Flags:
//
//	-addr :8080        listen address (:0 picks a free port; the bound
//	                   address is logged as addr=...)
//	-workers n         concurrent syntheses (default GOMAXPROCS)
//	-queue n           admission queue depth; overflow answers 429 (default 64)
//	-cache n           result-cache entries; 0 disables (default 256)
//	-timeout d         default per-request synthesis budget (default 30s)
//	-max-timeout d     ceiling on client-requested timeouts (default 5m)
//	-max-contexts n    server-wide enumeration budget per request; 0 = unlimited
//	-max-body bytes    request body limit (default 8 MiB)
//	-session-cap n     concurrently live sessions; overflow answers 429 (default 64)
//	-session-ttl d     idle-session eviction deadline (default 15m)
//	-snapshots n       interned-database snapshot cache entries
//	                   (0 = default 64, negative disables)
//	-solve-delay d     artificial per-solve service time, for capacity
//	                   testing only (0 disables)
//	-log text|json     structured log format (default text)
//	-grace d           shutdown drain budget (default 15s)
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener stops,
// queued and in-flight syntheses drain (up to -grace), then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/egs-synthesis/egs/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent syntheses (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth")
	cache := flag.Int("cache", 256, "result-cache entries (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request synthesis budget")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "ceiling on client-requested timeouts")
	maxContexts := flag.Int("max-contexts", 0, "enumeration budget per request (0 = unlimited)")
	maxBody := flag.Int64("max-body", 8<<20, "request body limit in bytes")
	sessionCap := flag.Int("session-cap", 64, "concurrently live incremental sessions")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle-session eviction deadline")
	snapshots := flag.Int("snapshots", 0, "interned-database snapshot cache entries (0 = default 64, negative disables)")
	solveDelay := flag.Duration("solve-delay", 0, "artificial per-solve service time for capacity testing (0 disables)")
	logFormat := flag.String("log", "text", "log format: text or json")
	grace := flag.Duration("grace", 15*time.Second, "shutdown drain budget")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "egs-serve: unknown log format %q\n", *logFormat)
		return 2
	}
	log := slog.New(handler)

	cacheSize := *cache
	if cacheSize == 0 {
		cacheSize = -1 // Config uses negative to disable, 0 for default
	}
	srv := server.New(server.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheSize:         cacheSize,
		DefaultTimeout:    *timeout,
		MaxTimeout:        *maxTimeout,
		MaxContexts:       *maxContexts,
		MaxBodyBytes:      *maxBody,
		SessionCap:        *sessionCap,
		SessionTTL:        *sessionTTL,
		SnapshotCacheSize: *snapshots,
		SolveDelay:        *solveDelay,
		Logger:            log,
	})

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Bind explicitly so -addr :0 reports the kernel-assigned port in
	// a machine-parseable form (scripts grep for "listening" addr=).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", ln.Addr().String())
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second ^C kills immediately
	log.Info("shutting down", "grace", *grace)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Stop the listener first so no request races the drain, then
	// drain the synthesis pool.
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("listener shutdown", "err", err)
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Warn("pool drain incomplete", "err", err)
		return 1
	}
	log.Info("bye")
	return 0
}
