// Command egs-load replays deterministic synthesis-task mixes against
// an egs-serve replica or an egs-router and prints one scenario
// measurement as JSON (qps, client and server latency quantiles, 429
// rate, cache/singleflight hit counters, per-replica routing skew).
// scripts/bench-serve.sh composes scenarios into BENCH_serve.json.
//
// Every random draw — task selection and open-loop arrival gaps —
// flows from -seed through one linear-congruential PRNG, so a scenario
// replays identically; there is no dependence on math/rand's global
// state.
//
// Usage:
//
//	egs-load -target http://127.0.0.1:8080 -mode burst -requests 16 -mix stampede
//	egs-load -target http://127.0.0.1:8090 -mode closed -concurrency 8 -duration 10s -mix miss
//	egs-load -target http://127.0.0.1:8090 -mode open -rate 25 -duration 10s -mix mixed
//
// Flags:
//
//	-target url        replica or router base URL (required)
//	-scenario name     scenario label in the emitted JSON
//	-mode m            burst | closed | open
//	-requests n        burst size (burst mode)
//	-concurrency n     worker count (closed mode)
//	-rate r            target arrivals/second (open mode)
//	-duration d        run length (closed and open modes)
//	-mix m             stampede | miss | mixed
//	-template t        request-body template: inverse-parent (default)
//	                   or family:<class> for scenario-factory bodies
//	                   (chain, star, union, negation, typed)
//	-seed n            PRNG seed (default 1)
//	-timeout d         per-request budget (default 60s)
//	-scrape a,b,...    extra /metrics bases (replicas behind a router)
//	                   aggregated into the counters
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/egs-synthesis/egs/internal/load"
)

func main() {
	os.Exit(run())
}

func run() int {
	target := flag.String("target", "", "replica or router base URL")
	scenario := flag.String("scenario", "", "scenario label (default: mode-mix)")
	mode := flag.String("mode", "closed", "arrival pattern: burst, closed, or open")
	requests := flag.Int("requests", 16, "burst size (burst mode)")
	concurrency := flag.Int("concurrency", 8, "worker count (closed mode)")
	rate := flag.Float64("rate", 25, "target arrivals per second (open mode)")
	duration := flag.Duration("duration", 10*time.Second, "run length (closed and open modes)")
	mixName := flag.String("mix", "miss", "task mix: stampede, miss, or mixed")
	template := flag.String("template", "", "body template: inverse-parent (default) or family:<class>")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request budget")
	scrape := flag.String("scrape", "", "comma-separated extra /metrics bases to aggregate")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "egs-load: -target is required")
		return 2
	}
	mix, err := load.MixByName(*mixName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "egs-load: %v\n", err)
		return 2
	}
	name := *scenario
	if name == "" {
		name = *mode + "-" + *mixName
	}
	var scrapeURLs []string
	for _, u := range strings.Split(*scrape, ",") {
		if u = strings.TrimSpace(u); u != "" {
			scrapeURLs = append(scrapeURLs, strings.TrimRight(u, "/"))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := load.Run(ctx, load.Config{
		Scenario:    name,
		Target:      strings.TrimRight(*target, "/"),
		Mode:        *mode,
		Requests:    *requests,
		Concurrency: *concurrency,
		Rate:        *rate,
		Duration:    *duration,
		Mix:         mix,
		Template:    *template,
		Seed:        *seed,
		Timeout:     *timeout,
		ScrapeURLs:  scrapeURLs,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "egs-load: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "egs-load: %v\n", err)
		return 1
	}
	return 0
}
