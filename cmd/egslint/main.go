// Command egslint runs the repo's custom analyzer suite
// (internal/lint): ctxflow, detorder, goroleak, lockscope,
// nodetsource, poolrelease, tuplealias.
//
// Standalone:
//
//	egslint [-json] [-show-suppressed] [-stale-ignores] [packages...]
//
// loads the named package patterns (default ./...) from the enclosing
// module, runs every analyzer in its configured scope
// (internal/lint/suite.go), and prints findings. Suppressed findings
// (//lint:ignore egslint/<name> reason) never fail the run but are
// listed with -show-suppressed and always included in -json output.
// -stale-ignores additionally reports //lint:ignore directives that
// matched no diagnostic — dead suppressions that would silently excuse
// a future, different finding — and fails the run on them. With -json,
// -stale-ignores switches the output from a findings array to an
// object {"findings": […], "stale_ignores": […]}.
// Exit status: 0 clean, 1 unsuppressed findings (or stale ignores
// under -stale-ignores), 2 operational error.
//
// As a vet tool:
//
//	go vet -vettool=$(which egslint) ./...
//
// egslint speaks the cmd/vet unitchecker protocol (-V=full, -flags,
// and a single *.cfg argument), so it also covers test files and
// composes with go vet's build cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	lint "github.com/egs-synthesis/egs/internal/lint"
	"github.com/egs-synthesis/egs/internal/lint/checker"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

const version = "0.1.0"

func main() {
	args := os.Args[1:]
	// The cmd/vet unitchecker protocol probes the tool before use.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "-V":
			fmt.Printf("egslint version %s\n", version)
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitCheck(args[0]))
	}
	os.Exit(standalone(args))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("egslint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (suppressed included)")
	showSuppressed := fs.Bool("show-suppressed", false, "also list suppressed findings with their reasons")
	staleIgnores := fs.Bool("stale-ignores", false, "report //lint:ignore directives that matched no diagnostic, and fail on them")
	fs.Parse(args)

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := loader.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "egslint:", err)
		return 2
	}
	pkgs, err := loader.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egslint:", err)
		return 2
	}
	findings, directives, err := checker.RunAll(pkgs, lint.Suite(), lint.Applies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egslint:", err)
		return 2
	}

	unsuppressed := checker.Unsuppressed(findings)
	var stale []checker.Directive
	if *staleIgnores {
		stale = checker.Stale(directives)
	}
	if findings == nil {
		findings = []checker.Finding{}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var payload any = findings
		if *staleIgnores {
			if stale == nil {
				stale = []checker.Directive{}
			}
			payload = map[string]any{"findings": findings, "stale_ignores": stale}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "egslint:", err)
			return 2
		}
	} else {
		for _, f := range unsuppressed {
			fmt.Println(f)
		}
		if *showSuppressed {
			for _, f := range checker.Suppressed(findings) {
				fmt.Printf("%s [suppressed: %s]\n", f, f.Reason)
			}
		}
		for _, d := range stale {
			fmt.Printf("%s:%d: stale //lint:ignore %s (no matching diagnostic): %s\n",
				d.File, d.Line, strings.Join(d.Checks, ","), d.Reason)
		}
	}
	if len(unsuppressed) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}
