// The cmd/vet unitchecker protocol: `go vet -vettool=egslint` invokes
// the tool once per package with a single JSON .cfg argument
// describing the unit — source files, the import map, and the
// compiled export data of every dependency. This file implements that
// half of egslint without golang.org/x/tools (offline build): parse
// the unit's sources, type-check against the supplied export data,
// run the scoped suite, and report in vet's plain diagnostic format.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	lint "github.com/egs-synthesis/egs/internal/lint"
	"github.com/egs-synthesis/egs/internal/lint/checker"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

// vetConfig mirrors the subset of cmd/vet's unitchecker Config that
// egslint consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitCheck analyzes one vet unit and returns the process exit code:
// 0 clean, 2 findings (vet's convention for diagnostics), 1 error.
func unitCheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egslint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "egslint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// go vet requires the .vetx facts file to exist even though
	// egslint's analyzers export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "egslint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}

	// Imports resolve through the unit's own map: source import path →
	// canonical path → export data file.
	lookup := func(path string) (io.ReadCloser, error) {
		canonical, ok := cfg.ImportMap[path]
		if !ok {
			canonical = path
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("egslint: no export data for %q", path)
		}
		return os.Open(file)
	}
	info := loader.NewInfo()
	conf := types.Config{Importer: newLookupImporter(fset, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	pkg := &loader.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	findings, err := checker.Run([]*loader.Package{pkg}, lint.Suite(), func(name, importPath string) bool {
		return lint.Applies(name, vetUnitPath(importPath))
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "egslint:", err)
		return 1
	}
	unsuppressed := checker.Unsuppressed(findings)
	for _, f := range unsuppressed {
		// vet's plain diagnostic format: file:line:col: message.
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s\n", f.File, f.Line, f.Column, f.Message)
	}
	if len(unsuppressed) > 0 {
		return 2
	}
	return 0
}

func typecheckFailed(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "egslint: type-checking %s: %v\n", cfg.ImportPath, err)
	return 1
}

// vetUnitPath strips vet's test-variant suffix so scope matching sees
// the plain import path: "pkg [pkg.test]" → "pkg".
func vetUnitPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// newLookupImporter adapts a lookup function to types.Importer via
// the loader's gc-export-data importer.
func newLookupImporter(fset *token.FileSet, lookup func(string) (io.ReadCloser, error)) types.Importer {
	return loader.ImporterWithLookup(fset, lookup)
}
