// Command egs-bench regenerates the evaluation tables and figures of
// the EGS paper (PLDI 2021) over the 86-task benchmark suite.
//
// Usage:
//
//	egs-bench [flags]
//
// Flags:
//
//	-dir path       benchmark directory (default testdata/benchmarks)
//	-table N        regenerate Table N (1, 2, 3, 4, or 5)
//	-figure N       regenerate Figure N (4)
//	-quality        regenerate the Section 6.4 program-quality report
//	-ablation       run this reproduction's ablation tool set instead
//	-timeout d      per-(tool, task) budget (default 300s, the paper's)
//	-tools csv      restrict to a comma-separated subset of tools
//	-traces dir     run EGS over the suite with the structured trace
//	                recorder attached, writing one Chrome trace-event
//	                file per task into dir (exclusive with tables)
//	-v              stream per-run progress to stderr
//
// Without -table/-figure/-quality/-traces, everything is regenerated
// in paper order. Expect a full run with the paper's 300s timeout to
// take a while: the task-agnostic baselines time out by design on
// most tasks, exactly as in the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/egs-synthesis/egs/internal/bench"
	"github.com/egs-synthesis/egs/internal/synth"
)

func main() {
	dir := flag.String("dir", "testdata/benchmarks", "benchmark directory")
	table := flag.Int("table", 0, "regenerate one table (1-5)")
	figure := flag.Int("figure", 0, "regenerate one figure (4)")
	quality := flag.Bool("quality", false, "regenerate the program-quality report")
	ablation := flag.Bool("ablation", false, "run the ablation tool set")
	timeout := flag.Duration("timeout", 300*time.Second, "per-(tool, task) budget")
	toolsCSV := flag.String("tools", "", "comma-separated tool subset (e.g. egs,scythe)")
	traces := flag.String("traces", "", "capture per-task EGS Chrome traces into this directory")
	verbose := flag.Bool("v", false, "stream per-run progress to stderr")
	flag.Parse()

	suite, err := bench.LoadSuite(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "egs-bench:", err)
		os.Exit(2)
	}
	tools := bench.ToolSet()
	if *ablation {
		tools = bench.AblationToolSet()
	}
	if *toolsCSV != "" {
		tools = filterTools(tools, strings.Split(*toolsCSV, ","))
		if len(tools) == 0 {
			fmt.Fprintln(os.Stderr, "egs-bench: no tools match", *toolsCSV)
			os.Exit(2)
		}
	}
	h := &harness{
		suite:   suite,
		tools:   tools,
		timeout: *timeout,
		verbose: *verbose,
	}

	any := false
	if *traces != "" {
		any = true
		h.runTraces(*traces)
	}
	if *table != 0 {
		any = true
		h.runTable(*table)
	}
	if *figure != 0 {
		any = true
		h.runFigure(*figure)
	}
	if *quality {
		any = true
		h.runQuality()
	}
	if !any {
		for _, n := range []int{1} {
			h.runTable(n)
		}
		h.runFigure(4)
		for _, n := range []int{2, 3, 4, 5} {
			h.runTable(n)
		}
		h.runQuality()
	}
}

type harness struct {
	suite   *bench.Suite
	tools   []synth.Synthesizer
	timeout time.Duration
	verbose bool
}

func (h *harness) progress() func(bench.Record) {
	if !h.verbose {
		return nil
	}
	return func(r bench.Record) {
		fmt.Fprintf(os.Stderr, "  %-24s %-12s %-9s %v\n",
			r.Task, r.Tool, r.Outcome, r.Duration.Round(time.Millisecond))
	}
}

func (h *harness) banner(s string) {
	fmt.Printf("\n=== %s ===\n\n", s)
}

func (h *harness) runTable(n int) {
	ctx := context.Background()
	switch n {
	case 1:
		h.banner("Table 1: benchmark characteristics")
		if err := bench.WriteTable1(os.Stdout, h.suite); err != nil {
			fatal(err)
		}
	case 2:
		h.banner("Table 2: unrealizable benchmarks")
		recs := bench.RunMatrix(ctx, h.tools, h.suite.Unrealizable, h.timeout, h.progress())
		if err := bench.WriteTable2(os.Stdout, recs); err != nil {
			fatal(err)
		}
	case 3, 4, 5:
		cat := map[int]string{3: "knowledge-discovery", 4: "program-analysis", 5: "database-queries"}[n]
		h.banner(fmt.Sprintf("Table %d: runtimes, %s", n, cat))
		tasks := h.suite.ByCategory(cat)
		recs := bench.RunMatrix(ctx, h.tools, tasks, h.timeout, h.progress())
		counts := bench.RuleCounts(ctx, tasks, h.timeout/10+time.Second, 2_000_000)
		if err := bench.WriteRuntimeTable(os.Stdout, recs, counts); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown table %d", n))
	}
}

func (h *harness) runFigure(n int) {
	if n != 4 {
		fatal(fmt.Errorf("unknown figure %d", n))
	}
	h.banner("Figure 4: benchmarks solved within each time budget (cactus plot)")
	recs := bench.RunMatrix(context.Background(), h.tools, h.suite.Realizable, h.timeout, h.progress())
	if err := bench.WriteFigure4(os.Stdout, recs); err != nil {
		fatal(err)
	}
}

func (h *harness) runTraces(dir string) {
	h.banner("EGS per-task traces (Chrome trace-event format)")
	recs, err := bench.CaptureTraces(context.Background(), h.suite.All, h.timeout, dir, h.progress())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d traces to %s\n", len(recs), dir)
}

func (h *harness) runQuality() {
	h.banner("Section 6.4: quality of synthesized programs (EGS)")
	egsOnly := filterTools(h.tools, []string{"egs"})
	if len(egsOnly) == 0 {
		egsOnly = []synth.Synthesizer{&synth.EGS{}}
	}
	recs := bench.RunMatrix(context.Background(), egsOnly, h.suite.Realizable, h.timeout, h.progress())
	if err := bench.WriteQuality(os.Stdout, recs); err != nil {
		fatal(err)
	}
}

func filterTools(tools []synth.Synthesizer, names []string) []synth.Synthesizer {
	want := map[string]bool{}
	for _, n := range names {
		want[strings.TrimSpace(n)] = true
	}
	var out []synth.Synthesizer
	for _, t := range tools {
		if want[t.Name()] {
			out = append(out, t)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "egs-bench:", err)
	os.Exit(2)
}
