// Command egs synthesizes a relational query from an input-output
// example, using the Example-Guided Synthesis algorithm of Thakkar et
// al. (PLDI 2021).
//
// Usage:
//
//	egs [flags] task.task
//
// The task file format is described in DESIGN.md. On success the
// synthesized union of conjunctive queries is printed in Datalog
// syntax; if the task is unrealizable, "unsat" is printed together
// with the completeness argument's witness (the exhausted context
// space).
//
// Exit status distinguishes the possible verdicts:
//
//	0  sat: a consistent query was synthesized
//	1  unsat (or search space exhausted for the bounded baselines)
//	2  usage or internal errors
//	3  budget exceeded: the -timeout deadline or the -max-contexts
//	   enumeration budget ran out before the search completed — unlike
//	   unsat, this is not a proof of unrealizability
//
// Flags:
//
//	-priority p1|p2   queue priority function (default p2, Section 4.3)
//	-timeout d        synthesis budget (default 300s, the paper's limit)
//	-max-contexts n   enumeration-context budget per output cell
//	                  (default 0 = unlimited; exceeded -> exit 3)
//	-quick-unsat      enable the Lemma 4.2 unsat fast path
//	-best-effort      tolerate noise: skip unexplainable positive tuples
//	-parallel n       wave-parallel per-tuple explanation (EGS only)
//	-assess-parallel n  worker pool for candidate-rule assessment (EGS
//	                  only; deterministic — results are bit-identical
//	                  to the sequential search)
//	-explain          print a why-provenance witness per positive tuple
//	-sql              additionally print the synthesized query as SQL
//	-tool name        run a baseline instead of EGS: scythe, ilasp-L,
//	                  ilasp-F, prosynth-L, prosynth-F, enumerative
//	-stats            print search statistics to stderr
//	-graph            print the constant co-occurrence graph and exit
//	-dot              print the graph in Graphviz DOT syntax and exit
//	-trace file       record a structured trace of the search (EGS
//	                  only) and write it to file; written even when the
//	                  search errors or runs out of budget
//	-trace-format f   trace format: chrome (about://tracing, Perfetto)
//	                  or ndjson; default inferred from the file
//	                  extension (.ndjson -> ndjson, otherwise chrome)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/egs-synthesis/egs/internal/cograph"
	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/enumerative"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/prosynth"
	"github.com/egs-synthesis/egs/internal/scythe"
	"github.com/egs-synthesis/egs/internal/sqlgen"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	priority := flag.String("priority", "p2", "queue priority function: p1 or p2")
	timeout := flag.Duration("timeout", 300*time.Second, "synthesis budget")
	maxContexts := flag.Int("max-contexts", 0, "enumeration-context budget per output cell (0 = unlimited)")
	quickUnsat := flag.Bool("quick-unsat", false, "enable the Lemma 4.2 unsat fast path")
	bestEffort := flag.Bool("best-effort", false, "tolerate noise: skip unexplainable positive tuples")
	explain := flag.Bool("explain", false, "print a why-provenance witness for each positive tuple")
	sql := flag.Bool("sql", false, "additionally print the synthesized query as SQL")
	parallel := flag.Int("parallel", 1, "worker goroutines for per-tuple explanation (EGS only)")
	assessParallel := flag.Int("assess-parallel", 1, "worker goroutines for candidate-rule assessment (EGS only; deterministic)")
	tool := flag.String("tool", "egs", "synthesizer: egs, scythe, ilasp-L, ilasp-F, prosynth-L, prosynth-F, enumerative")
	stats := flag.Bool("stats", false, "print search statistics to stderr")
	graph := flag.Bool("graph", false, "print the constant co-occurrence graph and exit")
	dot := flag.Bool("dot", false, "print the co-occurrence graph in Graphviz DOT syntax and exit")
	traceFile := flag.String("trace", "", "record a structured search trace to this file (EGS only)")
	traceFormat := flag.String("trace-format", "", "trace format: chrome or ndjson (default: by file extension)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: egs [flags] task.task")
		flag.Usage()
		return 2
	}
	t, err := task.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "egs:", err)
		return 2
	}

	if *graph {
		fmt.Print(cograph.New(t.Input).String())
		return 0
	}
	if *dot {
		fmt.Print(cograph.New(t.Input).DOT(t.Name))
		return 0
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	opts := egs.Options{
		QuickUnsat:        *quickUnsat,
		BestEffort:        *bestEffort,
		MaxContexts:       *maxContexts,
		AssessParallelism: *assessParallel,
	}
	// Tracing instruments the EGS search only; the baselines have no
	// recorder hooks. The trace is flushed on every outcome — sat,
	// unsat, timeout, budget — because slow or failing searches are
	// exactly the ones worth profiling.
	var collector *trace.Collector
	writeTrace := func() {}
	if *traceFile != "" {
		if *tool != "egs" {
			fmt.Fprintf(os.Stderr, "egs: -trace is only supported with -tool egs (got %q)\n", *tool)
			return 2
		}
		format := *traceFormat
		if format == "" {
			if strings.HasSuffix(*traceFile, ".ndjson") {
				format = "ndjson"
			} else {
				format = "chrome"
			}
		}
		if format != "chrome" && format != "ndjson" {
			fmt.Fprintf(os.Stderr, "egs: unknown trace format %q (want chrome or ndjson)\n", format)
			return 2
		}
		collector = trace.NewCollector()
		opts.Trace = collector
		writeTrace = func() {
			f, err := os.Create(*traceFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "egs: trace:", err)
				return
			}
			defer f.Close()
			if format == "ndjson" {
				err = trace.WriteNDJSON(f, collector.Events())
			} else {
				err = trace.WriteChrome(f, collector.Events())
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "egs: trace:", err)
			}
		}
	}
	switch *priority {
	case "p1":
		opts.Priority = egs.P1
	case "p2":
		opts.Priority = egs.P2
	default:
		fmt.Fprintf(os.Stderr, "egs: unknown priority %q\n", *priority)
		return 2
	}

	var tl synth.Synthesizer
	switch *tool {
	case "egs":
		if *parallel > 1 {
			tl = &parallelEGS{opts: opts, workers: *parallel}
		} else {
			tl = &synth.EGS{Options: opts}
		}
	case "scythe":
		tl = &scythe.Synthesizer{}
	case "ilasp-L":
		tl = &ilasp.Synthesizer{Source: ilasp.TaskSpecific}
	case "ilasp-F":
		tl = &ilasp.Synthesizer{Source: ilasp.TaskAgnostic}
	case "prosynth-L":
		tl = &prosynth.Synthesizer{Source: ilasp.TaskSpecific}
	case "prosynth-F":
		tl = &prosynth.Synthesizer{Source: ilasp.TaskAgnostic}
	case "enumerative":
		tl = &enumerative.Synthesizer{Indistinguishability: true}
	default:
		fmt.Fprintf(os.Stderr, "egs: unknown tool %q\n", *tool)
		return 2
	}

	start := time.Now()
	res, err := tl.Synthesize(ctx, t)
	elapsed := time.Since(start)
	writeTrace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "egs: %v (after %v)\n", err, elapsed.Round(time.Millisecond))
		// Budget exhaustion — the -timeout deadline or the
		// -max-contexts enumeration cap — is a distinct outcome from
		// unsat (exit 1): the search was cut short, nothing was
		// proved. Scripts draw the sat/unsat/budget distinction from
		// the exit status alone.
		if errors.Is(err, egs.ErrBudgetExceeded) || errors.Is(err, context.DeadlineExceeded) {
			return 3
		}
		return 2
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "# task=%s tool=%s time=%v status=%v %s\n",
			t.Name, tl.Name(), elapsed.Round(time.Millisecond), res.Status, res.Detail)
	}
	switch res.Status {
	case synth.Sat:
		if !*bestEffort {
			if ok, why := synth.CheckSat(t, res); !ok {
				fmt.Fprintf(os.Stderr, "egs: internal error: synthesized query is inconsistent: %s\n", why)
				return 2
			}
		}
		fmt.Println(res.Query.String(t.Schema, t.Domain))
		if *sql {
			stmt, err := sqlgen.UCQ(res.Query, t.Schema, t.Domain)
			if err != nil {
				fmt.Fprintln(os.Stderr, "egs: sql rendering:", err)
				return 2
			}
			fmt.Println("-- SQL:")
			fmt.Println(stmt + ";")
		}
		if *explain {
			printExplanations(t, res)
		}
		return 0
	case synth.Unsat:
		fmt.Println("unsat")
		if res.Detail != "" {
			fmt.Println("#", res.Detail)
		}
		return 1
	default:
		fmt.Printf("no solution within the search space (%s)\n", res.Detail)
		return 1
	}
}

// parallelEGS adapts SynthesizeParallel to the Synthesizer interface.
type parallelEGS struct {
	opts    egs.Options
	workers int
}

func (p *parallelEGS) Name() string { return fmt.Sprintf("egs-parallel-%d", p.workers) }

func (p *parallelEGS) Synthesize(ctx context.Context, t *task.Task) (synth.Result, error) {
	res, err := egs.SynthesizeParallel(ctx, t, p.opts, p.workers)
	if err != nil {
		return synth.Result{}, err
	}
	if res.Unsat {
		return synth.Result{Status: synth.Unsat}, nil
	}
	return synth.Result{Status: synth.Sat, Query: res.Query}, nil
}

// printExplanations emits a why-provenance witness for each positive
// tuple the synthesized query derives.
func printExplanations(t *task.Task, res synth.Result) {
	fmt.Println("# explanations:")
	for _, p := range t.Pos {
		d, ok := eval.WhyUCQ(res.Query, t.Input, p)
		if !ok {
			fmt.Printf("#   %s: not derived\n", p.String(t.Schema, t.Domain))
			continue
		}
		fmt.Printf("#   %s because", p.String(t.Schema, t.Domain))
		for i, w := range d.Witnesses {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Printf(" %s", w.String(t.Schema, t.Domain))
		}
		fmt.Println()
	}
}
