// Command egs-datagen deterministically regenerates the large
// benchmark instances of the suite (see internal/datagen), and
// generates scenario-factory task families (internal/datagen/family).
//
// Usage:
//
//	egs-datagen [-out testdata/benchmarks]
//	egs-datagen -family chain [-domain 32] [-density 2] [-noise 0] [-seed 1] [-out DIR]
//	egs-datagen -grid [-seed 1] [-out DIR]
//
// With no family flags it regenerates the six committed legacy
// instances byte for byte; the test suite enforces this. -family
// emits one instance of the named program class (chain, star, union,
// negation, typed) to <out>/<class>/<name>.task, or to stdout when
// -out is empty. -grid emits the full default family grid (every
// class at every default scale). Family output is byte-deterministic
// in (spec, seed).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"github.com/egs-synthesis/egs/internal/datagen"
	"github.com/egs-synthesis/egs/internal/datagen/family"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egs-datagen: ")
	out := flag.String("out", "testdata/benchmarks", "output directory ('' with -family prints to stdout)")
	class := flag.String("family", "", "generate one family instance of this class: "+strings.Join(family.Classes(), ", "))
	domain := flag.Int("domain", 32, "family constant-pool size")
	density := flag.Float64("density", 2, "family fact density (facts per binary relation ~= density*domain)")
	noise := flag.Float64("noise", 0, "family label-noise probability in [0, 1)")
	seed := flag.Uint64("seed", 1, "family stream seed")
	grid := flag.Bool("grid", false, "generate the full default family grid")
	flag.Parse()

	switch {
	case *grid:
		if err := writeGrid(*out, *seed); err != nil {
			log.Fatal(err)
		}
	case *class != "":
		spec := family.Spec{Class: *class, Domain: *domain, Density: *density, Noise: *noise}
		inst, err := family.Generate(spec, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if *out == "" {
			fmt.Print(inst.Content)
			return
		}
		if err := writeInstance(*out, inst); err != nil {
			log.Fatal(err)
		}
	default:
		for _, g := range datagen.Generators {
			dir := filepath.Join(*out, g.Domain)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(dir, g.Name+".task")
			if err := os.WriteFile(path, []byte(g.Gen()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

func writeGrid(out string, seed uint64) error {
	if out == "" {
		return fmt.Errorf("-grid needs -out")
	}
	for _, gp := range family.DefaultGrid() {
		inst, err := family.Generate(gp.Spec, seed)
		if err != nil {
			return err
		}
		if err := writeInstance(out, inst); err != nil {
			return err
		}
	}
	return nil
}

func writeInstance(out string, inst *family.Instance) error {
	dir := filepath.Join(out, inst.Spec.Class)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, inst.Name+".task")
	if err := os.WriteFile(path, []byte(inst.Content), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
