// Command egs-datagen deterministically regenerates the large
// benchmark instances of the suite (see internal/datagen).
//
// Usage:
//
//	egs-datagen [-out testdata/benchmarks]
//
// Re-running reproduces the committed task files byte for byte; the
// test suite enforces this.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/egs-synthesis/egs/internal/datagen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("egs-datagen: ")
	out := flag.String("out", "testdata/benchmarks", "output benchmark directory")
	flag.Parse()

	for _, g := range datagen.Generators {
		dir := filepath.Join(*out, g.Domain)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(dir, g.Name+".task")
		if err := os.WriteFile(path, []byte(g.Gen()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
}
