// Command egs-router scales egs-serve horizontally: a thin reverse
// proxy that rendezvous-hashes each synthesis task's canonical digest
// onto one of N replicas, so identical tasks always land where the
// result cache and singleflight tier already know them. Session
// requests follow the replica that created the session; replica
// health is probed continuously and dead replicas are failed over.
// See internal/router for the routing architecture.
//
// Usage:
//
//	egs-router -replicas http://host:8081,http://host:8082 [flags]
//
// Endpoints mirror egs-serve (requests are forwarded): POST
// /synthesize, POST /sessions, POST /sessions/{id}/delta, GET/DELETE
// /sessions/{id}, GET /debug/traces/{id}. The router answers GET
// /healthz (200 while any replica is healthy) and GET /metrics
// (its own routing metrics) itself.
//
// Flags:
//
//	-addr :8090           listen address (:0 picks a free port; the
//	                      bound address is logged as addr=...)
//	-replicas a,b,...     comma-separated egs-serve base URLs (required)
//	-check-interval 1s    replica health-probe period
//	-check-timeout 2s     one probe's budget
//	-max-body bytes       buffered request body limit (default 8 MiB)
//	-affinity n           session-to-replica map entries (default 4096)
//	-log text|json        structured log format (default text)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/egs-synthesis/egs/internal/router"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8090", "listen address")
	replicas := flag.String("replicas", "", "comma-separated egs-serve base URLs")
	checkInterval := flag.Duration("check-interval", time.Second, "replica health-probe period")
	checkTimeout := flag.Duration("check-timeout", 2*time.Second, "health-probe budget")
	maxBody := flag.Int64("max-body", 8<<20, "request body limit in bytes")
	affinity := flag.Int("affinity", 4096, "session affinity map entries")
	logFormat := flag.String("log", "text", "log format: text or json")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "egs-router: unknown log format %q\n", *logFormat)
		return 2
	}
	log := slog.New(handler)

	var names []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			names = append(names, strings.TrimRight(r, "/"))
		}
	}
	rt, err := router.New(router.Config{
		Replicas:      names,
		CheckInterval: *checkInterval,
		CheckTimeout:  *checkTimeout,
		MaxBodyBytes:  *maxBody,
		AffinityCap:   *affinity,
		Logger:        log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "egs-router: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)

	// Bind explicitly so -addr :0 reports the kernel-assigned port in
	// a machine-parseable form (scripts grep for "listening" addr=).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	hs := &http.Server{Handler: rt.Handler(), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() {
		log.Info("listening", "addr", ln.Addr().String(), "replicas", len(names))
		errc <- hs.Serve(ln)
	}()

	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("shutdown", "err", err)
	}
	log.Info("bye")
	return 0
}
