package egs_test

import (
	"context"
	"strings"
	"testing"

	egs "github.com/egs-synthesis/egs"
)

func buildGrandparent(t *testing.T) *egs.Task {
	t.Helper()
	b := egs.NewBuilder().Name("grandparent")
	b.Input("parent", 2)
	b.Output("grandparent", 2)
	b.Fact("parent", "alice", "bob")
	b.Fact("parent", "bob", "carol")
	b.Fact("parent", "carol", "dave")
	b.Positive("grandparent", "alice", "carol")
	b.Positive("grandparent", "bob", "dave")
	b.Negative("grandparent", "alice", "bob")
	b.Negative("grandparent", "alice", "dave")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestBuilderSynthesize(t *testing.T) {
	task := buildGrandparent(t)
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("grandparent reported unsat")
	}
	if ok, why := task.Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
	want := "grandparent(x, z) :- parent(x, y), parent(y, z)."
	if got := res.Query.Datalog(); got != want {
		t.Errorf("Datalog() = %q, want %q", got, want)
	}
	if res.Query.NumRules() != 1 || res.Query.NumLiterals() != 2 {
		t.Errorf("size: %d rules, %d literals", res.Query.NumRules(), res.Query.NumLiterals())
	}
	if res.Stats.ContextsExplored == 0 || res.Stats.CandidatesEvaluated == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
}

func TestQueryEval(t *testing.T) {
	task := buildGrandparent(t)
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := res.Query.Eval(task)
	if len(outs) != 2 {
		t.Fatalf("Eval = %v", outs)
	}
	if outs[0] != "grandparent(alice, carol)" || outs[1] != "grandparent(bob, dave)" {
		t.Errorf("Eval = %v", outs)
	}
}

func TestBuilderErrors(t *testing.T) {
	// Undeclared relation.
	b := egs.NewBuilder()
	b.Fact("nosuch", "a")
	if _, err := b.Task(); err == nil {
		t.Error("undeclared relation not reported")
	}
	// Arity mismatch.
	b = egs.NewBuilder().Input("p", 2)
	b.Fact("p", "a")
	if _, err := b.Task(); err == nil {
		t.Error("arity mismatch not reported")
	}
	// Output fact via Fact.
	b = egs.NewBuilder().Output("q", 1)
	b.Fact("q", "a")
	if _, err := b.Task(); err == nil {
		t.Error("Fact on output relation not reported")
	}
	// Positive on input relation.
	b = egs.NewBuilder().Input("p", 1)
	b.Positive("p", "a")
	if _, err := b.Task(); err == nil {
		t.Error("Positive on input relation not reported")
	}
	// Double finalize.
	b = egs.NewBuilder().Input("p", 1).Output("q", 1)
	b.Fact("p", "a")
	b.Positive("q", "a")
	if _, err := b.Task(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Task(); err == nil {
		t.Error("double finalize not reported")
	}
}

func TestUnsatProof(t *testing.T) {
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("edge", 2)
	b.Output("target", 1)
	b.Fact("edge", "a", "b")
	b.Fact("edge", "b", "a")
	b.Positive("target", "a")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unsat {
		t.Fatalf("isomorphic vertices distinguished:\n%s", res.Query.Datalog())
	}
	if res.Query != nil {
		t.Error("Unsat result carries a query")
	}
}

func TestNegationHelpers(t *testing.T) {
	b := egs.NewBuilder().AddNeq()
	b.Input("mother", 2)
	b.Output("sibling", 2)
	b.Fact("mother", "nala", "kiara")
	b.Fact("mother", "nala", "kopa")
	b.Positive("sibling", "kopa", "kiara")
	b.Negative("sibling", "kopa", "kopa")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("sibling with neq reported unsat")
	}
	if !strings.Contains(res.Query.Datalog(), "neq(") {
		t.Errorf("solution ignores neq:\n%s", res.Query.Datalog())
	}
}

func TestNegateComplement(t *testing.T) {
	b := egs.NewBuilder().ClosedWorld(true).Negate("booked")
	b.Input("room", 1)
	b.Input("booked", 1)
	b.Output("free", 1)
	b.Fact("room", "r1")
	b.Fact("room", "r2")
	b.Fact("room", "r3")
	b.Fact("booked", "r1")
	b.Positive("free", "r2")
	b.Positive("free", "r3")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("free rooms reported unsat")
	}
	if ok, why := task.Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
}

func TestPrioritySize(t *testing.T) {
	task := buildGrandparent(t)
	res, err := egs.Synthesize(context.Background(), task, egs.Options{Priority: egs.PrioritySize})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat || res.Query.NumLiterals() != 2 {
		t.Errorf("p1 result: unsat=%v size=%d", res.Unsat, res.Query.NumLiterals())
	}
}

func TestMaxContexts(t *testing.T) {
	// The unrealizable isomorphism instance explores several
	// contexts before exhausting the space, so a budget of 1 must
	// trip.
	b := egs.NewBuilder().ClosedWorld(true)
	b.Input("edge", 2)
	b.Output("target", 1)
	b.Fact("edge", "a", "b")
	b.Fact("edge", "b", "a")
	b.Positive("target", "a")
	task, err := b.Task()
	if err != nil {
		t.Fatal(err)
	}
	_, err = egs.Synthesize(context.Background(), task, egs.Options{MaxContexts: 1})
	if err != egs.ErrBudgetExceeded {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestExplainTuple(t *testing.T) {
	task := buildGrandparent(t)
	q, ok, err := egs.ExplainTuple(context.Background(), task, "grandparent", []string{"alice", "carol"}, egs.Options{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if q.NumRules() != 1 {
		t.Errorf("NumRules = %d", q.NumRules())
	}
	// Unknown constant: unexplainable, not an error.
	_, ok, err = egs.ExplainTuple(context.Background(), task, "grandparent", []string{"alice", "zeus"}, egs.Options{})
	if err != nil || ok {
		t.Errorf("unknown constant: ok=%v err=%v", ok, err)
	}
	// Undeclared relation and arity mismatch are errors.
	if _, _, err := egs.ExplainTuple(context.Background(), task, "nosuch", []string{"a"}, egs.Options{}); err == nil {
		t.Error("undeclared relation not reported")
	}
	if _, _, err := egs.ExplainTuple(context.Background(), task, "grandparent", []string{"alice"}, egs.Options{}); err == nil {
		t.Error("arity mismatch not reported")
	}
}

func TestParseTask(t *testing.T) {
	src := `
task t
closed-world true
input edge(2)
output out(2)
edge(a, b).
+out(b, a).
`
	task, err := egs.ParseTask(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if task.Name() != "t" || task.NumFacts() != 1 {
		t.Errorf("Name=%q NumFacts=%d", task.Name(), task.NumFacts())
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil || res.Unsat {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestLoadTask(t *testing.T) {
	task, err := egs.LoadTask("testdata/benchmarks/knowledge-discovery/traffic.task")
	if err != nil {
		t.Fatal(err)
	}
	res, err := egs.Synthesize(context.Background(), task, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("traffic unsat")
	}
	if !strings.Contains(res.Query.Datalog(), "Crashes(") {
		t.Errorf("unexpected query:\n%s", res.Query.Datalog())
	}
}
