package eval_test

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/bench"
	"github.com/egs-synthesis/egs/internal/datagen"
	"github.com/egs-synthesis/egs/internal/datagen/family"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// evalBenchTasks are representative tasks from the testdata suite,
// one per category, each with an intended program to evaluate.
var evalBenchTasks = []struct {
	name, path string
}{
	{"traffic", "../../testdata/benchmarks/knowledge-discovery/traffic.task"},
	{"kinship", "../../testdata/benchmarks/knowledge-discovery/kinship.task"},
	{"sql01", "../../testdata/benchmarks/database-queries/sql01.task"},
	{"reach", "../../testdata/benchmarks/program-analysis/reach.task"},
}

// giantBenchTasks are the datagen giants: generated instances an
// order of magnitude beyond the paper benchmarks (DESIGN.md §5).
var giantBenchTasks = []struct {
	name string
	gen  func() string
}{
	{"agent", datagen.GenAgent},
	{"polysite", datagen.GenPolysite},
	{"rvcheck", datagen.GenRvcheck},
}

func loadGiant(b *testing.B, gen func() string) *task.Task {
	b.Helper()
	t, err := task.Parse(strings.NewReader(gen()))
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// famBenchClasses is the scenario-factory axis: generated instances
// at the large default scale (domain 96, density 2.5), one per
// structurally distinct program class, so the evaluator is measured
// over chains, stars, and negation at sizes the authored suite does
// not reach.
var famBenchClasses = []string{"chain", "star", "negation"}

func loadFamily(b *testing.B, class string) *task.Task {
	b.Helper()
	inst, err := family.Generate(family.Spec{Class: class, Domain: 96, Density: 2.5}, 1)
	if err != nil {
		b.Fatal(err)
	}
	t, err := task.Parse(strings.NewReader(inst.Content))
	if err != nil {
		b.Fatal(err)
	}
	return t
}

// BenchmarkRuleOutputs measures the evaluator's hot path as the
// synthesizers drive it: materializing the output set of a candidate
// rule over a task's input database — a TupleSet of dense ids since
// the interning refactor (the string-map form survives only as the
// RuleOutputs adapter). The scaled-traffic case stresses set sizes
// far beyond the paper benchmarks.
func BenchmarkRuleOutputs(b *testing.B) {
	for _, tc := range evalBenchTasks {
		t, err := task.Load(tc.path)
		if err != nil {
			b.Fatal(err)
		}
		rules := t.Intended().Rules
		if len(rules) == 0 {
			b.Fatalf("%s: no intended program", tc.name)
		}
		db := t.Example().DB
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range rules {
					eval.RuleOutputIDs(r, db)
				}
			}
		})
	}
	for _, tc := range giantBenchTasks {
		t := loadGiant(b, tc.gen)
		rules := t.Intended().Rules
		db := t.Example().DB
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range rules {
					eval.RuleOutputIDs(r, db)
				}
			}
		})
	}
	for _, class := range famBenchClasses {
		t := loadFamily(b, class)
		rules := t.Intended().Rules
		db := t.Example().DB
		b.Run("fam-"+class+"-d96", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range rules {
					eval.RuleOutputIDs(r, db)
				}
			}
		})
	}
	st, err := bench.ScaledTraffic(120)
	if err != nil {
		b.Fatal(err)
	}
	rules := st.Intended().Rules
	db := st.Example().DB
	b.Run("scaled-traffic-120", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rules {
				eval.RuleOutputIDs(r, db)
			}
		}
	})
}

// BenchmarkRuleOutputsBatch is the same workload with the batch join
// strategy forced, so the columnar kernel is measured even on the
// small paper tasks where the cost heuristic would pick backtracking.
// The batchjoins/op metric counts batch evaluation sessions per
// iteration (via the strategy counters, hence pool tracing).
func BenchmarkRuleOutputsBatch(b *testing.B) {
	defer eval.ForceStrategy(eval.StrategyBatch)()
	eval.EnablePoolTracing()
	defer eval.DisablePoolTracing()

	run := func(b *testing.B, rules []query.Rule, db *relation.Database) {
		b.ReportAllocs()
		batch0, _, _ := eval.StrategyCounters()
		for i := 0; i < b.N; i++ {
			for _, r := range rules {
				eval.RuleOutputIDs(r, db)
			}
		}
		batch, _, _ := eval.StrategyCounters()
		b.ReportMetric(float64(batch-batch0)/float64(b.N), "batchjoins/op")
	}
	for _, tc := range evalBenchTasks {
		t, err := task.Load(tc.path)
		if err != nil {
			b.Fatal(err)
		}
		rules := t.Intended().Rules
		db := t.Example().DB
		b.Run(tc.name, func(b *testing.B) { run(b, rules, db) })
	}
	for _, tc := range giantBenchTasks {
		t := loadGiant(b, tc.gen)
		b.Run(tc.name, func(b *testing.B) {
			run(b, t.Intended().Rules, t.Example().DB)
		})
	}
	for _, class := range famBenchClasses {
		t := loadFamily(b, class)
		b.Run("fam-"+class+"-d96", func(b *testing.B) {
			run(b, t.Intended().Rules, t.Example().DB)
		})
	}
	st, err := bench.ScaledTraffic(120)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scaled-traffic-120", func(b *testing.B) {
		run(b, st.Intended().Rules, st.Example().DB)
	})
}
