package eval_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/bench"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/task"
)

// evalBenchTasks are representative tasks from the testdata suite,
// one per category, each with an intended program to evaluate.
var evalBenchTasks = []struct {
	name, path string
}{
	{"traffic", "../../testdata/benchmarks/knowledge-discovery/traffic.task"},
	{"kinship", "../../testdata/benchmarks/knowledge-discovery/kinship.task"},
	{"sql01", "../../testdata/benchmarks/database-queries/sql01.task"},
	{"reach", "../../testdata/benchmarks/program-analysis/reach.task"},
}

// BenchmarkRuleOutputs measures the evaluator's hot path as the
// synthesizers drive it: materializing the output set of a candidate
// rule over a task's input database — a TupleSet of dense ids since
// the interning refactor (the string-map form survives only as the
// RuleOutputs adapter). The scaled-traffic case stresses set sizes
// far beyond the paper benchmarks.
func BenchmarkRuleOutputs(b *testing.B) {
	for _, tc := range evalBenchTasks {
		t, err := task.Load(tc.path)
		if err != nil {
			b.Fatal(err)
		}
		rules := t.Intended().Rules
		if len(rules) == 0 {
			b.Fatalf("%s: no intended program", tc.name)
		}
		db := t.Example().DB
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range rules {
					eval.RuleOutputIDs(r, db)
				}
			}
		})
	}
	st, err := bench.ScaledTraffic(120)
	if err != nil {
		b.Fatal(err)
	}
	rules := st.Intended().Rules
	db := st.Example().DB
	b.Run("scaled-traffic-120", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rules {
				eval.RuleOutputIDs(r, db)
			}
		}
	})
}
