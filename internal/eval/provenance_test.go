package eval

import (
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

func TestWhyTwoHop(t *testing.T) {
	db, edge, _, path, cs := pathFixture(t)
	r := twoHopRule(edge, path)
	d, ok := Why(r, db, relation.NewTuple(path, cs["a"], cs["c"]))
	if !ok {
		t.Fatal("no derivation for path(a,c)")
	}
	if len(d.Witnesses) != 2 {
		t.Fatalf("witnesses = %d, want 2", len(d.Witnesses))
	}
	// The witnesses must be edge(a,b) and edge(b,c) in body order.
	if !d.Witnesses[0].Equal(relation.NewTuple(edge, cs["a"], cs["b"])) {
		t.Errorf("witness 0 = %v", d.Witnesses[0].String(db.Schema, db.Domain))
	}
	if !d.Witnesses[1].Equal(relation.NewTuple(edge, cs["b"], cs["c"])) {
		t.Errorf("witness 1 = %v", d.Witnesses[1].String(db.Schema, db.Domain))
	}
	// The valuation must bind head variables to the target.
	if d.Valuation[0] != cs["a"] || d.Valuation[1] != cs["c"] {
		t.Errorf("valuation = %v", d.Valuation)
	}
}

func TestWhyUnderivable(t *testing.T) {
	db, edge, _, path, cs := pathFixture(t)
	r := twoHopRule(edge, path)
	if _, ok := Why(r, db, relation.NewTuple(path, cs["a"], cs["b"])); ok {
		t.Error("derivation found for non-derivable tuple")
	}
	if _, ok := Why(r, db, relation.NewTuple(edge, cs["a"], cs["b"])); ok {
		t.Error("derivation found for wrong relation")
	}
}

func TestWhyUCQPicksDerivingRule(t *testing.T) {
	db, edge, color, path, cs := pathFixture(t)
	colored := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(0)}},
		Body: []query.Literal{{Rel: color, Args: []query.Term{query.V(0)}}},
	}
	q := query.UCQ{Rules: []query.Rule{twoHopRule(edge, path), colored}}
	d, ok := WhyUCQ(q, db, relation.NewTuple(path, cs["a"], cs["a"]))
	if !ok {
		t.Fatal("no derivation for path(a,a)")
	}
	if len(d.Witnesses) != 1 || d.Witnesses[0].Rel != color {
		t.Errorf("expected color witness, got %v", d.Witnesses)
	}
	if _, ok := WhyUCQ(q, db, relation.NewTuple(path, cs["d"], cs["a"])); ok {
		t.Error("derivation for underivable tuple")
	}
}

// TestWhyAgreesWithDerives cross-checks Why against Derives on
// random instances: Why succeeds exactly when Derives holds, and the
// returned witnesses actually satisfy the body under the valuation.
func TestWhyAgreesWithDerives(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		rule, db := randomInstance(rng)
		outs := RuleOutputs(rule, db)
		probe := make([]relation.Tuple, 0, len(outs)+3)
		for _, tu := range outs {
			probe = append(probe, tu)
		}
		for i := 0; i < 3; i++ {
			args := make([]relation.Const, len(rule.Head.Args))
			for j := range args {
				args[j] = relation.Const(rng.Intn(db.Domain.Size() + 1))
			}
			probe = append(probe, relation.Tuple{Rel: rule.Head.Rel, Args: args})
		}
		for _, tu := range probe {
			d, ok := Why(rule, db, tu)
			if ok != Derives(rule, db, tu) {
				t.Fatalf("trial %d: Why=%v Derives=%v", trial, ok, Derives(rule, db, tu))
			}
			if !ok {
				continue
			}
			// Verify the witness: each body literal instantiated by
			// the valuation must equal the recorded witness and be
			// present in the database.
			for bi, lit := range rule.Body {
				w := d.Witnesses[bi]
				if w.Rel != lit.Rel {
					t.Fatalf("trial %d: witness relation mismatch", trial)
				}
				if !db.Contains(w) {
					t.Fatalf("trial %d: witness not in database", trial)
				}
				for ai, term := range lit.Args {
					want := term.Const
					if !term.IsConst {
						want = d.Valuation[term.Var]
					}
					if w.Args[ai] != want {
						t.Fatalf("trial %d: witness arg %d = %v, want %v", trial, ai, w.Args[ai], want)
					}
				}
			}
		}
	}
}
