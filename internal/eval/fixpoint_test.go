package eval

import (
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// chainDB builds edge facts forming a path a0 -> a1 -> ... -> a(n-1),
// plus the closure relation declaration.
func chainDB(t *testing.T, n int) (*relation.Database, relation.RelID, relation.RelID, []relation.Const) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	closure := s.MustDeclare("closure", 2, relation.Output)
	db := relation.NewDatabase(s, d)
	nodes := make([]relation.Const, n)
	for i := range nodes {
		nodes[i] = d.Intern(string(rune('a' + i)))
	}
	for i := 0; i+1 < n; i++ {
		db.Insert(relation.NewTuple(edge, nodes[i], nodes[i+1]))
	}
	return db, edge, closure, nodes
}

func TestFixpointTransitiveClosureChain(t *testing.T) {
	db, edge, closure, nodes := chainDB(t, 6)
	out, err := FixpointUCQ(TransitiveClosureRules(edge, closure), db)
	if err != nil {
		t.Fatal(err)
	}
	// A path of 6 nodes has 5+4+3+2+1 = 15 closure pairs.
	if len(out) != 15 {
		t.Fatalf("closure size = %d, want 15", len(out))
	}
	if _, ok := out[relation.NewTuple(closure, nodes[0], nodes[5]).Key()]; !ok {
		t.Error("endpoint pair missing from closure")
	}
	if _, ok := out[relation.NewTuple(closure, nodes[5], nodes[0]).Key()]; ok {
		t.Error("reversed pair wrongly derived")
	}
}

func TestFixpointCycle(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	closure := s.MustDeclare("closure", 2, relation.Output)
	db := relation.NewDatabase(s, d)
	a, b, c := d.Intern("a"), d.Intern("b"), d.Intern("c")
	db.Insert(relation.NewTuple(edge, a, b))
	db.Insert(relation.NewTuple(edge, b, c))
	db.Insert(relation.NewTuple(edge, c, a))
	out, err := FixpointUCQ(TransitiveClosureRules(edge, closure), db)
	if err != nil {
		t.Fatal(err)
	}
	// Full 3x3 closure on a cycle; termination despite recursion.
	if len(out) != 9 {
		t.Fatalf("cycle closure size = %d, want 9", len(out))
	}
}

func TestFixpointNonRecursiveAgreesWithUCQOutputs(t *testing.T) {
	// On non-recursive programs the fixpoint must coincide with
	// plain UCQ evaluation.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		rule, db := randomInstance(rng)
		q := query.UCQ{Rules: []query.Rule{rule}}
		want := UCQOutputs(q, db)
		got, err := FixpointUCQ(q, db)
		if err != nil {
			// randomInstance can produce rules whose head is unsafe
			// for Fixpoint validation only if unsafe; skip those.
			if rule.Safe() != nil {
				continue
			}
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: fixpoint=%d plain=%d", trial, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: fixpoint missing tuple", trial)
			}
		}
	}
}

func TestFixpointMutualRecursion(t *testing.T) {
	// even(x) :- zero(x).
	// even(y) :- odd(x), succ(x, y).
	// odd(y)  :- even(x), succ(x, y).
	s := relation.NewSchema()
	d := relation.NewDomain()
	zero := s.MustDeclare("zero", 1, relation.Input)
	succ := s.MustDeclare("succ", 2, relation.Input)
	even := s.MustDeclare("even", 1, relation.Output)
	odd := s.MustDeclare("odd", 1, relation.Output)
	db := relation.NewDatabase(s, d)
	const n = 8
	nums := make([]relation.Const, n)
	for i := range nums {
		nums[i] = d.Intern(string(rune('0' + i)))
	}
	db.Insert(relation.NewTuple(zero, nums[0]))
	for i := 0; i+1 < n; i++ {
		db.Insert(relation.NewTuple(succ, nums[i], nums[i+1]))
	}
	x, y := query.V(0), query.V(1)
	q := query.UCQ{Rules: []query.Rule{
		{Head: query.Literal{Rel: even, Args: []query.Term{x}},
			Body: []query.Literal{{Rel: zero, Args: []query.Term{x}}}},
		{Head: query.Literal{Rel: even, Args: []query.Term{y}},
			Body: []query.Literal{
				{Rel: odd, Args: []query.Term{x}},
				{Rel: succ, Args: []query.Term{x, y}}}},
		{Head: query.Literal{Rel: odd, Args: []query.Term{y}},
			Body: []query.Literal{
				{Rel: even, Args: []query.Term{x}},
				{Rel: succ, Args: []query.Term{x, y}}}},
	}}
	out, err := FixpointUCQ(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rel := even
		if i%2 == 1 {
			rel = odd
		}
		if _, ok := out[relation.NewTuple(rel, nums[i]).Key()]; !ok {
			t.Errorf("number %d not classified", i)
		}
		wrong := odd
		if i%2 == 1 {
			wrong = even
		}
		if _, ok := out[relation.NewTuple(wrong, nums[i]).Key()]; ok {
			t.Errorf("number %d classified both ways", i)
		}
	}
}

func TestFixpointRejectsInputHead(t *testing.T) {
	db, edge, _, _ := chainDB(t, 3)
	bad := query.UCQ{Rules: []query.Rule{{
		Head: query.Literal{Rel: edge, Args: []query.Term{query.V(0), query.V(1)}},
		Body: []query.Literal{{Rel: edge, Args: []query.Term{query.V(1), query.V(0)}}},
	}}}
	if _, err := FixpointUCQ(bad, db); err == nil {
		t.Error("rule deriving into an input relation accepted")
	}
}

func TestFixpointDoesNotMutateInput(t *testing.T) {
	db, edge, closure, _ := chainDB(t, 5)
	before := db.Size()
	if _, err := FixpointUCQ(TransitiveClosureRules(edge, closure), db); err != nil {
		t.Fatal(err)
	}
	if db.Size() != before {
		t.Errorf("input database grew from %d to %d", before, db.Size())
	}
}

// TestFixpointAgreesWithNaiveIteration cross-checks semi-naive
// against a brute-force naive fixpoint on random recursive programs.
func TestFixpointAgreesWithNaiveIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		s := relation.NewSchema()
		d := relation.NewDomain()
		base := s.MustDeclare("base", 2, relation.Input)
		derivedRel := s.MustDeclare("derived", 2, relation.Output)
		db := relation.NewDatabase(s, d)
		nConst := 3 + rng.Intn(3)
		consts := make([]relation.Const, nConst)
		for i := range consts {
			consts[i] = d.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 3+rng.Intn(6); i++ {
			db.Insert(relation.NewTuple(base, consts[rng.Intn(nConst)], consts[rng.Intn(nConst)]))
		}
		// Random recursive program: base rule + one recursive rule
		// with random variable wiring.
		x, y, z := query.V(0), query.V(1), query.V(2)
		heads := [][]query.Term{{x, y}, {y, x}, {x, z}}
		q := query.UCQ{Rules: []query.Rule{
			{Head: query.Literal{Rel: derivedRel, Args: []query.Term{x, y}},
				Body: []query.Literal{{Rel: base, Args: []query.Term{x, y}}}},
			{Head: query.Literal{Rel: derivedRel, Args: heads[rng.Intn(len(heads))]},
				Body: []query.Literal{
					{Rel: derivedRel, Args: []query.Term{x, z}},
					{Rel: base, Args: []query.Term{z, y}}}},
		}}
		if q.Rules[1].Safe() != nil {
			continue
		}
		got, err := FixpointUCQ(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveFixpoint(q, db)
		if len(got) != len(want) {
			t.Fatalf("trial %d: semi-naive=%d naive=%d", trial, len(got), len(want))
		}
		for k := range want {
			if _, ok := got[k]; !ok {
				t.Fatalf("trial %d: semi-naive missing tuple", trial)
			}
		}
	}
}

// naiveFixpoint recomputes every rule against the whole database
// until nothing changes — the reference implementation.
func naiveFixpoint(q query.UCQ, db *relation.Database) map[string]relation.Tuple {
	work := relation.NewDatabase(db.Schema, db.Domain)
	for _, t := range db.All() {
		work.Insert(t)
	}
	derived := map[string]relation.Tuple{}
	for {
		changed := false
		for _, r := range q.Rules {
			// EvalRule, not RuleOutputs: the interning entry points
			// freeze the id space, and this loop keeps inserting.
			outs := map[string]relation.Tuple{}
			EvalRule(r, work, func(t relation.Tuple) bool {
				outs[t.Key()] = t
				return true
			})
			for k, t := range outs {
				if _, ok := derived[k]; !ok && !db.Contains(t) {
					derived[k] = t
					work.Insert(t)
					changed = true
				}
			}
		}
		if !changed {
			return derived
		}
	}
}
