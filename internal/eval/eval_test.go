package eval

import (
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// pathFixture builds the classic two-hop reachability fixture:
// edge(a,b), edge(b,c), edge(c,d), edge(b,d), color(a).
func pathFixture(t *testing.T) (*relation.Database, relation.RelID, relation.RelID, relation.RelID, map[string]relation.Const) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	color := s.MustDeclare("color", 1, relation.Input)
	path := s.MustDeclare("path", 2, relation.Output)
	db := relation.NewDatabase(s, d)
	cs := map[string]relation.Const{}
	for _, n := range []string{"a", "b", "c", "d"} {
		cs[n] = d.Intern(n)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"b", "d"}} {
		db.Insert(relation.NewTuple(edge, cs[e[0]], cs[e[1]]))
	}
	db.Insert(relation.NewTuple(color, cs["a"]))
	return db, edge, color, path, cs
}

func twoHopRule(edge, path relation.RelID) query.Rule {
	return query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(1)}},
		Body: []query.Literal{
			{Rel: edge, Args: []query.Term{query.V(0), query.V(2)}},
			{Rel: edge, Args: []query.Term{query.V(2), query.V(1)}},
		},
	}
}

func TestEvalTwoHop(t *testing.T) {
	db, edge, _, path, cs := pathFixture(t)
	got := RuleOutputs(twoHopRule(edge, path), db)
	want := []relation.Tuple{
		relation.NewTuple(path, cs["a"], cs["c"]),
		relation.NewTuple(path, cs["a"], cs["d"]),
		relation.NewTuple(path, cs["b"], cs["d"]),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for _, w := range want {
		if _, ok := got[w.Key()]; !ok {
			t.Errorf("missing %v", w.String(db.Schema, db.Domain))
		}
	}
}

func TestEvalConstantInBody(t *testing.T) {
	db, edge, _, path, cs := pathFixture(t)
	// path(x, y) :- edge(x, y), edge(b, y): pairs whose target b points to.
	r := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(1)}},
		Body: []query.Literal{
			{Rel: edge, Args: []query.Term{query.V(0), query.V(1)}},
			{Rel: edge, Args: []query.Term{query.C(cs["b"]), query.V(1)}},
		},
	}
	got := RuleOutputs(r, db)
	// edge targets of b are c and d; edges into c: (b,c); into d: (c,d),(b,d).
	if len(got) != 3 {
		t.Fatalf("got %d outputs, want 3: %v", len(got), got)
	}
}

func TestEvalRepeatedVariableInLiteral(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	out := s.MustDeclare("self", 1, relation.Output)
	db := relation.NewDatabase(s, d)
	a, b := d.Intern("a"), d.Intern("b")
	db.Insert(relation.NewTuple(edge, a, a))
	db.Insert(relation.NewTuple(edge, a, b))
	r := query.Rule{
		Head: query.Literal{Rel: out, Args: []query.Term{query.V(0)}},
		Body: []query.Literal{{Rel: edge, Args: []query.Term{query.V(0), query.V(0)}}},
	}
	got := RuleOutputs(r, db)
	if len(got) != 1 {
		t.Fatalf("got %d outputs, want 1", len(got))
	}
	if _, ok := got[relation.NewTuple(out, a).Key()]; !ok {
		t.Error("missing self(a)")
	}
}

func TestEvalEmptyBodyGroundHead(t *testing.T) {
	db, _, _, path, cs := pathFixture(t)
	r := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.C(cs["a"]), query.C(cs["b"])}},
	}
	got := RuleOutputs(r, db)
	if len(got) != 1 {
		t.Fatalf("ground fact rule: got %d outputs, want 1", len(got))
	}
}

func TestEvalUnsafeRuleDerivesNothing(t *testing.T) {
	db, edge, _, path, _ := pathFixture(t)
	r := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(9)}},
		Body: []query.Literal{{Rel: edge, Args: []query.Term{query.V(0), query.V(1)}}},
	}
	if got := RuleOutputs(r, db); len(got) != 0 {
		t.Errorf("unsafe rule derived %d tuples", len(got))
	}
}

func TestEvalEarlyStop(t *testing.T) {
	db, edge, _, path, _ := pathFixture(t)
	count := 0
	EvalRule(twoHopRule(edge, path), db, func(relation.Tuple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop yielded %d tuples, want 1", count)
	}
}

func TestDerives(t *testing.T) {
	db, edge, _, path, cs := pathFixture(t)
	r := twoHopRule(edge, path)
	if !Derives(r, db, relation.NewTuple(path, cs["a"], cs["c"])) {
		t.Error("Derives(a,c) = false, want true")
	}
	if Derives(r, db, relation.NewTuple(path, cs["a"], cs["b"])) {
		t.Error("Derives(a,b) = true, want false")
	}
	// Wrong relation / arity.
	if Derives(r, db, relation.NewTuple(edge, cs["a"], cs["b"])) {
		t.Error("Derives on wrong relation = true")
	}
}

func TestDerivesRepeatedHeadVar(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	out := s.MustDeclare("pair", 2, relation.Output)
	db := relation.NewDatabase(s, d)
	a, b := d.Intern("a"), d.Intern("b")
	db.Insert(relation.NewTuple(edge, a, b))
	// pair(x, x) :- edge(x, y).
	r := query.Rule{
		Head: query.Literal{Rel: out, Args: []query.Term{query.V(0), query.V(0)}},
		Body: []query.Literal{{Rel: edge, Args: []query.Term{query.V(0), query.V(1)}}},
	}
	if !Derives(r, db, relation.NewTuple(out, a, a)) {
		t.Error("Derives(pair(a,a)) = false")
	}
	if Derives(r, db, relation.NewTuple(out, a, b)) {
		t.Error("Derives(pair(a,b)) = true, want false (repeated head var)")
	}
}

func TestUCQOutputsUnion(t *testing.T) {
	db, edge, color, path, cs := pathFixture(t)
	oneHop := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(1)}},
		Body: []query.Literal{{Rel: edge, Args: []query.Term{query.V(0), query.V(1)}}},
	}
	colored := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(0)}},
		Body: []query.Literal{{Rel: color, Args: []query.Term{query.V(0)}}},
	}
	got := UCQOutputs(query.UCQ{Rules: []query.Rule{oneHop, colored}}, db)
	// 4 edges + path(a,a).
	if len(got) != 5 {
		t.Fatalf("union size = %d, want 5", len(got))
	}
	if _, ok := got[relation.NewTuple(path, cs["a"], cs["a"]).Key()]; !ok {
		t.Error("missing path(a,a) from second disjunct")
	}
}

// randomInstance builds a random database and a random safe rule over
// it for differential testing.
func randomInstance(rng *rand.Rand) (query.Rule, *relation.Database) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	nRel := 1 + rng.Intn(3)
	rels := make([]relation.RelID, nRel)
	for i := range rels {
		rels[i] = s.MustDeclare(string(rune('p'+i)), 1+rng.Intn(3), relation.Input)
	}
	out := s.MustDeclare("out", 1+rng.Intn(2), relation.Output)
	nConst := 2 + rng.Intn(4)
	consts := make([]relation.Const, nConst)
	for i := range consts {
		consts[i] = d.Intern(string(rune('a' + i)))
	}
	db := relation.NewDatabase(s, d)
	nTuples := rng.Intn(12)
	for i := 0; i < nTuples; i++ {
		r := rels[rng.Intn(nRel)]
		args := make([]relation.Const, s.Arity(r))
		for j := range args {
			args[j] = consts[rng.Intn(nConst)]
		}
		db.Insert(relation.Tuple{Rel: r, Args: args})
	}
	nVars := 1 + rng.Intn(4)
	nBody := 1 + rng.Intn(3)
	body := make([]query.Literal, nBody)
	for i := range body {
		r := rels[rng.Intn(nRel)]
		args := make([]query.Term, s.Arity(r))
		for j := range args {
			if rng.Intn(5) == 0 {
				args[j] = query.C(consts[rng.Intn(nConst)])
			} else {
				args[j] = query.V(query.Var(rng.Intn(nVars)))
			}
		}
		body[i] = query.Literal{Rel: r, Args: args}
	}
	// Build a safe head from variables that occur in the body.
	var bodyVars []query.Var
	seen := map[query.Var]bool{}
	for _, l := range body {
		for _, t := range l.Args {
			if !t.IsConst && !seen[t.Var] {
				seen[t.Var] = true
				bodyVars = append(bodyVars, t.Var)
			}
		}
	}
	headArgs := make([]query.Term, s.Arity(out))
	for j := range headArgs {
		if len(bodyVars) == 0 || rng.Intn(6) == 0 {
			headArgs[j] = query.C(consts[rng.Intn(nConst)])
		} else {
			headArgs[j] = query.V(bodyVars[rng.Intn(len(bodyVars))])
		}
	}
	rule := query.Rule{
		Head: query.Literal{Rel: out, Args: headArgs},
		Body: body,
	}
	return rule, db
}

// TestEvalMatchesNaive differentially tests the indexed evaluator
// against the reference nested-loop evaluator on random instances.
func TestEvalMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		rule, db := randomInstance(rng)
		fast := RuleOutputs(rule, db)
		slow := EvalRuleNaive(rule, db)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: fast=%d slow=%d for rule %s",
				trial, len(fast), len(slow), rule.String(db.Schema, db.Domain))
		}
		for k := range slow {
			if _, ok := fast[k]; !ok {
				t.Fatalf("trial %d: fast missing tuple present in naive", trial)
			}
		}
	}
}

// TestDerivesMatchesOutputs checks Derives against full evaluation on
// random instances: Derives(r, db, t) iff t in RuleOutputs(r, db),
// for tuples both in and out of the output set.
func TestDerivesMatchesOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		rule, db := randomInstance(rng)
		outs := RuleOutputs(rule, db)
		for _, tu := range outs {
			if !Derives(rule, db, tu) {
				t.Fatalf("trial %d: output tuple not Derive-able", trial)
			}
		}
		// Probe some random tuples of the head relation.
		arity := len(rule.Head.Args)
		for probe := 0; probe < 5; probe++ {
			args := make([]relation.Const, arity)
			for j := range args {
				args[j] = relation.Const(rng.Intn(db.Domain.Size() + 1))
			}
			tu := relation.Tuple{Rel: rule.Head.Rel, Args: args}
			_, inSet := outs[tu.Key()]
			if Derives(rule, db, tu) != inSet {
				t.Fatalf("trial %d: Derives disagrees with output set on %v", trial, tu)
			}
		}
	}
}

func TestPlanOrderCoversAllLiterals(t *testing.T) {
	db, edge, color, path, _ := pathFixture(t)
	r := query.Rule{
		Head: query.Literal{Rel: path, Args: []query.Term{query.V(0), query.V(1)}},
		Body: []query.Literal{
			{Rel: edge, Args: []query.Term{query.V(0), query.V(2)}},
			{Rel: color, Args: []query.Term{query.V(0)}},
			{Rel: edge, Args: []query.Term{query.V(2), query.V(1)}},
		},
	}
	order := planLiteralOrder(r, db)
	if len(order) != 3 {
		t.Fatalf("plan covers %d literals, want 3", len(order))
	}
	seen := map[int]bool{}
	for _, i := range order {
		if seen[i] {
			t.Fatalf("plan repeats literal %d", i)
		}
		seen[i] = true
	}
	// The first planned literal should be the smallest extent (color)
	// since nothing is bound yet.
	if r.Body[order[0]].Rel != color {
		t.Errorf("plan starts with %v, want the color literal", r.Body[order[0]])
	}
}
