package eval

import (
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// The planner: greedy literal ordering plus the per-position stats
// both join strategies consume. Planning used to live on the pooled
// evaluator only; it is a standalone value now so that non-pooled
// callers (provenance replay, tests) can plan without borrowing an
// evaluator from the pool.

// litStep holds the stats of one planned order position, computed
// under the variable bindings established by earlier positions.
type litStep struct {
	// boundMask marks argument columns holding a constant or a
	// variable bound at an earlier position (columns >= 64 are not
	// representable; plan.wideLit flags that case).
	boundMask uint64
	// hasFree reports whether some column binds a new variable here.
	hasFree bool
	// probeCol is the bound column with the most distinct values — the
	// statically most selective index probe — or -1 when no column is
	// bound.
	probeCol int
	// extent is the literal's relation extent size at plan time.
	extent int
}

// plan is the evaluation plan of one rule over one database: the
// greedy literal order, per-position stats, and the binding sites of
// each variable. The zero value is ready for use; buffers are reused
// across compute calls, so a pooled evaluator replans without
// allocating.
type plan struct {
	order []int     // body literal evaluation order
	steps []litStep // steps[i] describes the literal at order[i]
	// binderPos/binderCol record, per variable, the order position and
	// argument column that first bind it (-1 when the body never binds
	// it — an unsafe rule).
	binderPos []int32
	binderCol []int32
	// used/bound are planning scratch (slices, not maps, so planning
	// does not allocate on the assess hot path).
	used  []bool
	bound []bool
	// totalExtent sums the body literals' extent sizes — the cost
	// heuristic's input (strategy.go).
	totalExtent int
	// wideLit reports a body literal with more than 64 columns, which
	// boundMask cannot represent; such rules stay on backtracking.
	wideLit bool
}

// compute plans rule r over db: at each step pick the unused literal
// with the most already-bound argument positions, breaking ties by
// smaller relation extent. This keeps index lookups selective without
// a full cost model. Head constants do not bind variables; head
// variables are bound only in Derives, which reuses the same order
// (the order is computed without that knowledge, which is acceptable:
// selectivity still comes from the index lookups).
func (p *plan) compute(r query.Rule, db *relation.Database) {
	n := len(r.Body)
	if cap(p.order) < n {
		p.order = make([]int, 0, n)
	}
	p.order = p.order[:0]
	if cap(p.steps) < n {
		p.steps = make([]litStep, 0, n)
	}
	p.steps = p.steps[:0]
	nv := r.NumVars()
	p.used = resetBools(p.used, n)
	p.bound = resetBools(p.bound, nv)
	p.binderPos = resetInt32(p.binderPos, nv)
	p.binderCol = resetInt32(p.binderCol, nv)
	p.totalExtent = 0
	p.wideLit = false
	for len(p.order) < n {
		best, bestBound, bestExtent := -1, -1, 0
		for i, lit := range r.Body {
			if p.used[i] {
				continue
			}
			b := 0
			for _, t := range lit.Args {
				if t.IsConst || p.bound[t.Var] {
					b++
				}
			}
			ext := db.ExtentSize(lit.Rel)
			if best == -1 || b > bestBound || (b == bestBound && ext < bestExtent) {
				best, bestBound, bestExtent = i, b, ext
			}
		}
		p.used[best] = true
		lit := r.Body[best]
		st := litStep{probeCol: -1, extent: db.ExtentSize(lit.Rel)}
		bestDistinct := -1
		for col, t := range lit.Args {
			if t.IsConst || p.bound[t.Var] {
				if col < 64 {
					st.boundMask |= 1 << uint(col)
				} else {
					p.wideLit = true
				}
				if d := db.ColumnDistinct(lit.Rel, col); d > bestDistinct {
					bestDistinct, st.probeCol = d, col
				}
				continue
			}
			st.hasFree = true
		}
		p.totalExtent += st.extent
		pos := len(p.order)
		p.order = append(p.order, best)
		p.steps = append(p.steps, st)
		for col, t := range lit.Args {
			if !t.IsConst && !p.bound[t.Var] {
				p.bound[t.Var] = true
				p.binderPos[t.Var] = int32(pos)
				p.binderCol[t.Var] = int32(col)
			}
		}
	}
}

// resetInt32 returns an all -1 buffer of length n, reusing capacity.
func resetInt32(b []int32, n int) []int32 {
	if cap(b) < n {
		b = make([]int32, n)
	} else {
		b = b[:n]
	}
	for i := range b {
		b[i] = -1
	}
	return b
}
