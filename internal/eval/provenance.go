package eval

import (
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// Derivation is a why-provenance witness: one rule instantiation
// deriving a tuple (Section 3.1 of the paper). Valuation maps the
// rule's variables to constants; Witnesses lists the input tuples
// matched by each body literal, in body order.
type Derivation struct {
	Rule      query.Rule
	Valuation map[query.Var]relation.Const
	Witnesses []relation.Tuple
}

// Why returns a why-provenance witness for rule r deriving tuple t,
// or ok=false when r does not derive t. When several derivations
// exist, one is returned deterministically (the first in the
// evaluator's search order).
//
// This is the provenance primitive underlying the ProSynth-style
// baseline, exposed for explanation UIs: given a synthesized program
// and a derived tuple, Why reports the facts that justify it.
func Why(r query.Rule, db *relation.Database, t relation.Tuple) (Derivation, bool) {
	if r.Head.Rel != t.Rel || len(r.Head.Args) != len(t.Args) {
		return Derivation{}, false
	}
	w := &whySearch{
		rule:  r,
		db:    db,
		val:   make([]relation.Const, r.NumVars()),
		bound: make([]bool, r.NumVars()),
		chose: make([]relation.Tuple, len(r.Body)),
		order: planLiteralOrder(r, db),
	}
	// Pre-bind the head to the target tuple.
	for i, arg := range r.Head.Args {
		if arg.IsConst {
			if arg.Const != t.Args[i] {
				return Derivation{}, false
			}
			continue
		}
		v := int(arg.Var)
		if w.bound[v] && w.val[v] != t.Args[i] {
			return Derivation{}, false
		}
		w.bound[v] = true
		w.val[v] = t.Args[i]
	}
	if !w.solve(0) {
		return Derivation{}, false
	}
	d := Derivation{
		Rule:      r.Clone(),
		Valuation: make(map[query.Var]relation.Const),
		Witnesses: append([]relation.Tuple(nil), w.chose...),
	}
	for v := 0; v < len(w.val); v++ {
		if w.bound[v] {
			d.Valuation[query.Var(v)] = w.val[v]
		}
	}
	return d, true
}

// WhyUCQ returns a witness from the first rule of q that derives t.
func WhyUCQ(q query.UCQ, db *relation.Database, t relation.Tuple) (Derivation, bool) {
	for _, r := range q.Rules {
		if d, ok := Why(r, db, t); ok {
			return d, true
		}
	}
	return Derivation{}, false
}

// whySearch is a backtracking join that records, per body literal,
// the witness tuple chosen on the satisfying path.
type whySearch struct {
	rule  query.Rule
	db    *relation.Database
	order []int
	val   []relation.Const
	bound []bool
	chose []relation.Tuple
}

func (w *whySearch) solve(i int) bool {
	if i == len(w.order) {
		return true
	}
	litIdx := w.order[i]
	lit := w.rule.Body[litIdx]
	for _, id := range w.candidates(lit) {
		tup := w.db.Tuple(id)
		newly, ok := w.match(lit, tup)
		if !ok {
			continue
		}
		w.chose[litIdx] = tup
		if w.solve(i + 1) {
			return true
		}
		for _, v := range newly {
			w.bound[v] = false
		}
	}
	return false
}

func (w *whySearch) candidates(lit query.Literal) []relation.TupleID {
	bestCol, bestConst := -1, relation.Const(0)
	bestLen := -1
	for col, t := range lit.Args {
		var c relation.Const
		switch {
		case t.IsConst:
			c = t.Const
		case w.bound[t.Var]:
			c = w.val[t.Var]
		default:
			continue
		}
		l := len(w.db.AtColumn(lit.Rel, col, c))
		if bestLen == -1 || l < bestLen {
			bestCol, bestConst, bestLen = col, c, l
		}
	}
	if bestCol == -1 {
		return w.db.Extent(lit.Rel)
	}
	return w.db.AtColumn(lit.Rel, bestCol, bestConst)
}

func (w *whySearch) match(lit query.Literal, tup relation.Tuple) ([]query.Var, bool) {
	if len(lit.Args) != len(tup.Args) {
		return nil, false
	}
	var newly []query.Var
	for i, t := range lit.Args {
		c := tup.Args[i]
		if t.IsConst {
			if t.Const != c {
				for _, v := range newly {
					w.bound[v] = false
				}
				return nil, false
			}
			continue
		}
		v := int(t.Var)
		if w.bound[v] {
			if w.val[v] != c {
				for _, u := range newly {
					w.bound[u] = false
				}
				return nil, false
			}
			continue
		}
		w.bound[v] = true
		w.val[v] = c
		newly = append(newly, t.Var)
	}
	return newly, true
}
