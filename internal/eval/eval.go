// Package eval implements evaluation of conjunctive queries and
// unions of conjunctive queries over an indexed database.
//
// It is the workhorse substrate of the reproduction: the EGS
// synthesizer evaluates one candidate rule per enumeration context
// (Section 4.3 of the paper), the baselines evaluate thousands of
// candidate rules, and every synthesizer's output is re-checked for
// consistency with the evaluator before being reported.
//
// Two join strategies share one planner (see strategy.go): a
// tuple-at-a-time backtracking join — literals greedily ordered so
// that bound variables come first, candidates drawn from per-column
// indexes — and a set-at-a-time batch join (batch.go) that prunes
// whole candidate sets per literal before any tuple-level unification
// runs. A per-rule cost heuristic picks between them. A deliberately
// simple reference evaluator (EvalRuleNaive) is provided for
// differential testing.
package eval

import (
	"sync"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// Yield receives one derived head tuple. Returning false stops
// evaluation early; derived tuples are deduplicated before being
// yielded, so each distinct head tuple is reported exactly once.
type Yield func(relation.Tuple) bool

// YieldID receives one derived head tuple as a dense id from the
// database's interning table. Returning false stops evaluation early;
// each distinct head tuple is reported exactly once.
type YieldID func(relation.TupleID) bool

// EvalRule enumerates the distinct head tuples derivable from db by
// rule r, invoking yield on each. Evaluation stops early if yield
// returns false.
//
// This entry point does not touch the database's interning table, so
// it remains usable on databases that are still being inserted into
// (the fixpoint evaluator's working set).
//
// The set of yielded tuples is strategy-independent; the order in
// which they are yielded is not specified.
func EvalRule(r query.Rule, db *relation.Database, yield Yield) {
	e := newEvaluator(r, db)
	e.run(yield)
	e.release()
}

// EvalRuleIDs is EvalRule on the dense-id plane: derived head tuples
// are interned into db and yielded as TupleIDs. Deduplication is a
// bitset test and the head-projection buffer is reused across
// emissions, so the per-output allocation of the string-keyed path
// disappears for already-interned tuples. This is the synthesizers'
// hot path: one candidate rule is evaluated per enumeration context.
func EvalRuleIDs(r query.Rule, db *relation.Database, yield YieldID) {
	e := newEvaluator(r, db)
	e.yieldID = yield
	e.run(nil)
	e.release()
}

// EvalRuleDelta is EvalRuleIDs restricted for semi-naive fixpoint
// iteration: body literal li (an index into r.Body) matches only
// tuples in delta. The fixpoint evaluator calls it once per body
// position with the previous round's newly derived tuples, so each
// round re-derives only instantiations that use at least one frontier
// tuple. Restricted evaluations always run the backtracking strategy:
// the delta restriction already makes the literal maximally selective,
// which is precisely the regime where tuple-at-a-time wins.
func EvalRuleDelta(r query.Rule, db *relation.Database, li int, delta *relation.TupleSet, yield YieldID) {
	e := newEvaluator(r, db)
	e.yieldID = yield
	e.restrict, e.restrictLit = delta, li
	e.search(0, nil)
	e.release()
}

// RuleOutputIDs returns the set of head tuples derivable by r as a
// bitset over db's tuple ids.
func RuleOutputIDs(r query.Rule, db *relation.Database) *relation.TupleSet {
	out := &relation.TupleSet{}
	EvalRuleIDs(r, db, func(id relation.TupleID) bool {
		out.Add(id)
		return true
	})
	return out
}

// UCQOutputIDs returns the set of head tuples derivable by any rule
// of q as a bitset over db's tuple ids.
func UCQOutputIDs(q query.UCQ, db *relation.Database) *relation.TupleSet {
	out := &relation.TupleSet{}
	for _, r := range q.Rules {
		EvalRuleIDs(r, db, func(id relation.TupleID) bool {
			out.Add(id)
			return true
		})
	}
	return out
}

// RuleOutputs returns the set of head tuples derivable by r, keyed by
// Tuple.Key.
//
// It is a thin adapter over RuleOutputIDs kept for differential tests
// and external callers during the TupleID migration; new code should
// use RuleOutputIDs.
func RuleOutputs(r query.Rule, db *relation.Database) map[string]relation.Tuple {
	return idsToMap(db, RuleOutputIDs(r, db))
}

// UCQOutputs returns the set of head tuples derivable by any rule of
// q, keyed by Tuple.Key. Like RuleOutputs, it is a migration adapter
// over UCQOutputIDs.
func UCQOutputs(q query.UCQ, db *relation.Database) map[string]relation.Tuple {
	return idsToMap(db, UCQOutputIDs(q, db))
}

func idsToMap(db *relation.Database, ids *relation.TupleSet) map[string]relation.Tuple {
	out := make(map[string]relation.Tuple, ids.Len())
	ids.Iterate(func(id relation.TupleID) bool {
		t := db.TupleByID(id)
		out[t.Key()] = t
		return true
	})
	return out
}

// Derives reports whether rule r derives exactly the tuple t. The
// head variables are pre-bound to t's constants, so this is usually
// much cheaper than a full evaluation. Pre-binding invalidates the
// plan-time bound/free split the batch strategy relies on, so Derives
// always runs the backtracking search.
func Derives(r query.Rule, db *relation.Database, t relation.Tuple) bool {
	if r.Head.Rel != t.Rel || len(r.Head.Args) != len(t.Args) {
		return false
	}
	e := newEvaluator(r, db)
	// Pre-bind head arguments; fail fast on clashes with head
	// constants or repeated head variables.
	for i, arg := range r.Head.Args {
		if arg.IsConst {
			if arg.Const != t.Args[i] {
				e.release()
				return false
			}
			continue
		}
		v := int(arg.Var)
		if e.bound[v] && e.val[v] != t.Args[i] {
			e.release()
			return false
		}
		e.bound[v] = true
		e.val[v] = t.Args[i]
	}
	found := false
	e.search(0, func(relation.Tuple) bool {
		found = true
		return false
	})
	e.release()
	return found
}

// evaluator holds the mutable state of one rule evaluation session,
// shared by both join strategies. Evaluators are pooled: the
// synthesizers run one evaluation per candidate rule in their inner
// loops, and recycling the valuation, plan, and dedup buffers keeps
// those evaluations allocation-free (see evaluatorPool).
type evaluator struct {
	rule  query.Rule
	db    *relation.Database
	plan  plan     // literal order + per-position stats (plan.go)
	strat strategy // join strategy picked for this session (strategy.go)
	val   []relation.Const
	bound []bool
	seen  map[string]bool // dedup of emitted head tuples (string path)

	// newlyAt[d] is the scratch list of variables bound while matching
	// the literal at search depth d; only one match per depth is live
	// at a time, so one buffer per depth makes match allocation-free.
	newlyAt [][]query.Var

	// Semi-naive restriction (EvalRuleDelta): when restrict is non-nil
	// the body literal at index restrictLit matches only ids in it.
	restrict    *relation.TupleSet
	restrictLit int

	// Id path: yieldID non-nil selects it. Dedup is a bitset over the
	// interning table and the head-projection buffer is reused, since
	// InternTuple copies when a tuple is new.
	yieldID YieldID
	seenIDs relation.TupleSet
	scratch []relation.Const

	// Batch-strategy state (batch.go): per order position, the pruned
	// candidate id lists (cand, possibly aliasing db postings; candBuf
	// holds the evaluator-owned backing), their lazily built bitset
	// forms, and per-variable value supports for semijoin filtering.
	cand       [][]relation.TupleID
	candBuf    [][]relation.TupleID
	candIsExt  []bool
	candSet    []*relation.TupleSet
	candSetOK  []bool
	unaryCS    []*relation.ConstSet // per-position ColumnConstSet, fetched once per session
	unaryCSOK  []bool
	varSup     []relation.ConstSet
	varSupOK   []bool
	frontierHW int // largest candidate-set size seen this session

	// fresh marks an evaluator straight from the pool's New (a pool
	// miss); pooltrace.go counts those. Cleared on first use.
	fresh bool
}

// evaluatorPool recycles evaluators across evaluations. The literal
// order is (re)planned per evaluation session — it depends on the rule
// and on extent sizes — but its backing array, the valuation, and the
// dedup structures are reused, so one assess costs zero steady-state
// heap allocations beyond tuples it interns.
var evaluatorPool = sync.Pool{New: func() any { return &evaluator{fresh: true} }}

func newEvaluator(r query.Rule, db *relation.Database) *evaluator {
	e := evaluatorPool.Get().(*evaluator)
	notePoolGet(e.fresh)
	e.fresh = false
	e.rule, e.db = r, db
	n := r.NumVars()
	e.val = growConsts(e.val, n)
	e.bound = resetBools(e.bound, n)
	if cap(e.newlyAt) < len(r.Body) {
		e.newlyAt = make([][]query.Var, len(r.Body))
	}
	e.newlyAt = e.newlyAt[:len(r.Body)]
	e.plan.compute(r, db)
	e.strat = pickStrategy(&e.plan)
	return e
}

// release returns the evaluator to the pool. Callers must not touch
// the evaluator afterwards; reference-typed fields that could pin
// caller memory are cleared here.
func (e *evaluator) release() {
	e.rule = query.Rule{}
	e.db = nil
	e.yieldID = nil
	e.restrict = nil
	e.strat = nil
	for i := range e.cand {
		e.cand[i] = nil // may alias db posting lists
	}
	for i := range e.unaryCS {
		e.unaryCS[i] = nil // aliases db column const-set views
	}
	if e.seen != nil {
		clear(e.seen)
	}
	e.seenIDs.Reset()
	notePoolRelease()
	evaluatorPool.Put(e)
}

// planLiteralOrder returns the greedy join order for r's body as a
// fresh slice, for callers (provenance search) outside the pooled
// evaluator hot path. It plans on a throwaway plan value rather than
// borrowing a pooled evaluator, so provenance replay does not churn
// the pool that the assess loop is warming.
func planLiteralOrder(r query.Rule, db *relation.Database) []int {
	var p plan
	p.compute(r, db)
	return p.order
}

// growConsts returns a buffer of length n, reusing capacity.
func growConsts(b []relation.Const, n int) []relation.Const {
	if cap(b) < n {
		return make([]relation.Const, n)
	}
	return b[:n]
}

// resetBools returns an all-false buffer of length n, reusing capacity.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

func (e *evaluator) run(yield Yield) {
	e.strat.run(e, yield)
}

// search extends the current partial valuation over body literals
// order[i:]. It returns false when the caller asked to stop.
func (e *evaluator) search(i int, yield Yield) bool {
	if i == len(e.plan.order) {
		return e.emit(yield)
	}
	li := e.plan.order[i]
	lit := e.rule.Body[li]
	restricted := e.restrict != nil && li == e.restrictLit
	for _, id := range e.candidates(lit) {
		if restricted && !e.restrict.Has(id) {
			continue
		}
		tup := e.db.Tuple(id)
		newly, ok := e.match(lit, tup, i)
		if !ok {
			continue
		}
		cont := e.search(i+1, yield)
		for _, v := range newly {
			e.bound[v] = false
		}
		if !cont {
			return false
		}
	}
	return true
}

// candidates returns the tuple ids to try for the literal under the
// current partial valuation, using the most selective single-column
// index available, or the full extent when nothing is bound.
func (e *evaluator) candidates(lit query.Literal) []relation.TupleID {
	bestCol, bestConst := -1, relation.Const(0)
	bestLen := -1
	for col, t := range lit.Args {
		var c relation.Const
		switch {
		case t.IsConst:
			c = t.Const
		case e.bound[t.Var]:
			c = e.val[t.Var]
		default:
			continue
		}
		l := len(e.db.AtColumn(lit.Rel, col, c))
		if bestLen == -1 || l < bestLen {
			bestCol, bestConst, bestLen = col, c, l
		}
	}
	if bestCol == -1 {
		return e.db.Extent(lit.Rel)
	}
	return e.db.AtColumn(lit.Rel, bestCol, bestConst)
}

// match unifies the literal's arguments with the tuple under the
// current valuation. On success it returns the variables newly bound
// (so the caller can undo them) and true; on failure it undoes its own
// bindings and returns false. depth selects the per-depth scratch
// buffer for the newly-bound list, so matching never allocates.
func (e *evaluator) match(lit query.Literal, tup relation.Tuple, depth int) ([]query.Var, bool) {
	if len(lit.Args) != len(tup.Args) {
		return nil, false
	}
	newly := e.newlyAt[depth][:0]
	defer func() { e.newlyAt[depth] = newly[:0] }()
	for i, t := range lit.Args {
		c := tup.Args[i]
		if t.IsConst {
			if t.Const != c {
				e.undo(newly)
				return nil, false
			}
			continue
		}
		v := int(t.Var)
		if e.bound[v] {
			if e.val[v] != c {
				e.undo(newly)
				return nil, false
			}
			continue
		}
		e.bound[v] = true
		e.val[v] = c
		newly = append(newly, t.Var)
	}
	return newly, true
}

func (e *evaluator) undo(vars []query.Var) {
	for _, v := range vars {
		e.bound[v] = false
	}
}

// emit projects the current valuation onto the head and yields the
// resulting tuple (or its id) if it has not been produced before.
func (e *evaluator) emit(yield Yield) bool {
	if e.yieldID != nil {
		return e.emitID()
	}
	args := make([]relation.Const, len(e.rule.Head.Args))
	for i, t := range e.rule.Head.Args {
		if t.IsConst {
			args[i] = t.Const
			continue
		}
		if !e.bound[t.Var] {
			// Unsafe rule: a head variable is not bound by the body.
			// Such rules derive nothing (they are rejected earlier by
			// Rule.Safe; this is a defensive guard).
			return true
		}
		args[i] = e.val[t.Var]
	}
	t := relation.Tuple{Rel: e.rule.Head.Rel, Args: args}
	k := t.Key()
	if e.seen == nil {
		e.seen = make(map[string]bool)
	}
	if e.seen[k] {
		return true
	}
	e.seen[k] = true
	return yield(t)
}

// emitID is the id-path emit: intern the projected head tuple and
// yield its dense id, deduplicating via bitset.
func (e *evaluator) emitID() bool {
	e.scratch = growConsts(e.scratch, len(e.rule.Head.Args))
	args := e.scratch
	for i, t := range e.rule.Head.Args {
		if t.IsConst {
			args[i] = t.Const
			continue
		}
		if !e.bound[t.Var] {
			return true // defensive guard, as in emit
		}
		args[i] = e.val[t.Var]
	}
	id := e.db.InternTuple(relation.Tuple{Rel: e.rule.Head.Rel, Args: args})
	if !e.seenIDs.Add(id) {
		return true
	}
	return e.yieldID(id)
}
