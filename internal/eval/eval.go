// Package eval implements evaluation of conjunctive queries and
// unions of conjunctive queries over an indexed database.
//
// It is the workhorse substrate of the reproduction: the EGS
// synthesizer evaluates one candidate rule per enumeration context
// (Section 4.3 of the paper), the baselines evaluate thousands of
// candidate rules, and every synthesizer's output is re-checked for
// consistency with the evaluator before being reported.
//
// The main evaluator performs a backtracking join: body literals are
// greedily ordered so that literals with already-bound variables come
// first, and candidate tuples for each literal are drawn from the
// database's per-column indexes rather than by scanning extents. A
// deliberately simple reference evaluator (EvalRuleNaive) is provided
// for differential testing.
package eval

import (
	"sync"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// Yield receives one derived head tuple. Returning false stops
// evaluation early; derived tuples are deduplicated before being
// yielded, so each distinct head tuple is reported exactly once.
type Yield func(relation.Tuple) bool

// YieldID receives one derived head tuple as a dense id from the
// database's interning table. Returning false stops evaluation early;
// each distinct head tuple is reported exactly once.
type YieldID func(relation.TupleID) bool

// EvalRule enumerates the distinct head tuples derivable from db by
// rule r, invoking yield on each. Evaluation stops early if yield
// returns false.
//
// This entry point does not touch the database's interning table, so
// it remains usable on databases that are still being inserted into
// (the fixpoint evaluator's working set).
func EvalRule(r query.Rule, db *relation.Database, yield Yield) {
	e := newEvaluator(r, db)
	e.run(yield)
	e.release()
}

// EvalRuleIDs is EvalRule on the dense-id plane: derived head tuples
// are interned into db and yielded as TupleIDs. Deduplication is a
// bitset test and the head-projection buffer is reused across
// emissions, so the per-output allocation of the string-keyed path
// disappears for already-interned tuples. This is the synthesizers'
// hot path: one candidate rule is evaluated per enumeration context.
func EvalRuleIDs(r query.Rule, db *relation.Database, yield YieldID) {
	e := newEvaluator(r, db)
	e.yieldID = yield
	e.search(0, nil)
	e.release()
}

// RuleOutputIDs returns the set of head tuples derivable by r as a
// bitset over db's tuple ids.
func RuleOutputIDs(r query.Rule, db *relation.Database) *relation.TupleSet {
	out := &relation.TupleSet{}
	EvalRuleIDs(r, db, func(id relation.TupleID) bool {
		out.Add(id)
		return true
	})
	return out
}

// UCQOutputIDs returns the set of head tuples derivable by any rule
// of q as a bitset over db's tuple ids.
func UCQOutputIDs(q query.UCQ, db *relation.Database) *relation.TupleSet {
	out := &relation.TupleSet{}
	for _, r := range q.Rules {
		EvalRuleIDs(r, db, func(id relation.TupleID) bool {
			out.Add(id)
			return true
		})
	}
	return out
}

// RuleOutputs returns the set of head tuples derivable by r, keyed by
// Tuple.Key.
//
// It is a thin adapter over RuleOutputIDs kept for differential tests
// and external callers during the TupleID migration; new code should
// use RuleOutputIDs.
func RuleOutputs(r query.Rule, db *relation.Database) map[string]relation.Tuple {
	return idsToMap(db, RuleOutputIDs(r, db))
}

// UCQOutputs returns the set of head tuples derivable by any rule of
// q, keyed by Tuple.Key. Like RuleOutputs, it is a migration adapter
// over UCQOutputIDs.
func UCQOutputs(q query.UCQ, db *relation.Database) map[string]relation.Tuple {
	return idsToMap(db, UCQOutputIDs(q, db))
}

func idsToMap(db *relation.Database, ids *relation.TupleSet) map[string]relation.Tuple {
	out := make(map[string]relation.Tuple, ids.Len())
	ids.Iterate(func(id relation.TupleID) bool {
		t := db.TupleByID(id)
		out[t.Key()] = t
		return true
	})
	return out
}

// Derives reports whether rule r derives exactly the tuple t. The
// head variables are pre-bound to t's constants, so this is usually
// much cheaper than a full evaluation.
func Derives(r query.Rule, db *relation.Database, t relation.Tuple) bool {
	if r.Head.Rel != t.Rel || len(r.Head.Args) != len(t.Args) {
		return false
	}
	e := newEvaluator(r, db)
	// Pre-bind head arguments; fail fast on clashes with head
	// constants or repeated head variables.
	for i, arg := range r.Head.Args {
		if arg.IsConst {
			if arg.Const != t.Args[i] {
				e.release()
				return false
			}
			continue
		}
		v := int(arg.Var)
		if e.bound[v] && e.val[v] != t.Args[i] {
			e.release()
			return false
		}
		e.bound[v] = true
		e.val[v] = t.Args[i]
	}
	found := false
	e.search(0, func(relation.Tuple) bool {
		found = true
		return false
	})
	e.release()
	return found
}

// evaluator holds the mutable state of one backtracking join.
// Evaluators are pooled: the synthesizers run one evaluation per
// candidate rule in their inner loops, and recycling the valuation,
// plan, and dedup buffers keeps those evaluations allocation-free
// (see evaluatorPool).
type evaluator struct {
	rule  query.Rule
	db    *relation.Database
	order []int // body literal evaluation order
	val   []relation.Const
	bound []bool
	seen  map[string]bool // dedup of emitted head tuples (string path)

	// newlyAt[d] is the scratch list of variables bound while matching
	// the literal at search depth d; only one match per depth is live
	// at a time, so one buffer per depth makes match allocation-free.
	newlyAt [][]query.Var

	// planUsed/planBound are planOrder scratch (slices, not maps, so
	// planning does not allocate on the assess hot path).
	planUsed  []bool
	planBound []bool

	// Id path: yieldID non-nil selects it. Dedup is a bitset over the
	// interning table and the head-projection buffer is reused, since
	// InternTuple copies when a tuple is new.
	yieldID YieldID
	seenIDs relation.TupleSet
	scratch []relation.Const

	// fresh marks an evaluator straight from the pool's New (a pool
	// miss); pooltrace.go counts those. Cleared on first use.
	fresh bool
}

// evaluatorPool recycles evaluators across evaluations. The literal
// order is (re)planned per evaluation session — it depends on the rule
// and on extent sizes — but its backing array, the valuation, and the
// dedup structures are reused, so one assess costs zero steady-state
// heap allocations beyond tuples it interns.
var evaluatorPool = sync.Pool{New: func() any { return &evaluator{fresh: true} }}

func newEvaluator(r query.Rule, db *relation.Database) *evaluator {
	e := evaluatorPool.Get().(*evaluator)
	notePoolGet(e.fresh)
	e.fresh = false
	e.rule, e.db = r, db
	n := r.NumVars()
	e.val = growConsts(e.val, n)
	e.bound = resetBools(e.bound, n)
	if cap(e.newlyAt) < len(r.Body) {
		e.newlyAt = make([][]query.Var, len(r.Body))
	}
	e.newlyAt = e.newlyAt[:len(r.Body)]
	e.planOrder()
	return e
}

// release returns the evaluator to the pool. Callers must not touch
// the evaluator afterwards; reference-typed fields that could pin
// caller memory are cleared here.
func (e *evaluator) release() {
	e.rule = query.Rule{}
	e.db = nil
	e.yieldID = nil
	if e.seen != nil {
		clear(e.seen)
	}
	e.seenIDs.Reset()
	notePoolRelease()
	evaluatorPool.Put(e)
}

// planLiteralOrder returns the greedy join order for r's body as a
// fresh slice, for callers (provenance search) outside the pooled
// evaluator hot path.
func planLiteralOrder(r query.Rule, db *relation.Database) []int {
	e := newEvaluator(r, db)
	order := append([]int(nil), e.order...)
	e.release()
	return order
}

// growConsts returns a buffer of length n, reusing capacity.
func growConsts(b []relation.Const, n int) []relation.Const {
	if cap(b) < n {
		return make([]relation.Const, n)
	}
	return b[:n]
}

// resetBools returns an all-false buffer of length n, reusing capacity.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// planOrder greedily orders body literals: at each step pick the
// literal with the most already-bound argument positions, breaking
// ties by smaller relation extent. This keeps index lookups selective
// without a full cost model. The order is written into e.order.
func (e *evaluator) planOrder() {
	r, db := e.rule, e.db
	n := len(r.Body)
	e.order = e.order[:0]
	used := resetBools(e.planUsed, n)
	boundVars := resetBools(e.planBound, r.NumVars())
	e.planUsed, e.planBound = used, boundVars
	// Head constants do not bind variables; head variables are bound
	// only in Derives, which re-plans implicitly via the same greedy
	// rule (the order is computed without that knowledge, which is
	// acceptable: selectivity still comes from the index lookups).
	for len(e.order) < n {
		best, bestBound, bestExtent := -1, -1, 0
		for i, lit := range r.Body {
			if used[i] {
				continue
			}
			b := 0
			for _, t := range lit.Args {
				if t.IsConst || boundVars[t.Var] {
					b++
				}
			}
			ext := db.ExtentSize(lit.Rel)
			if best == -1 || b > bestBound || (b == bestBound && ext < bestExtent) {
				best, bestBound, bestExtent = i, b, ext
			}
		}
		used[best] = true
		e.order = append(e.order, best)
		for _, t := range r.Body[best].Args {
			if !t.IsConst {
				boundVars[t.Var] = true
			}
		}
	}
}

func (e *evaluator) run(yield Yield) {
	e.search(0, yield)
}

// search extends the current partial valuation over body literals
// order[i:]. It returns false when the caller asked to stop.
func (e *evaluator) search(i int, yield Yield) bool {
	if i == len(e.order) {
		return e.emit(yield)
	}
	lit := e.rule.Body[e.order[i]]
	for _, id := range e.candidates(lit) {
		tup := e.db.Tuple(id)
		newly, ok := e.match(lit, tup, i)
		if !ok {
			continue
		}
		cont := e.search(i+1, yield)
		for _, v := range newly {
			e.bound[v] = false
		}
		if !cont {
			return false
		}
	}
	return true
}

// candidates returns the tuple ids to try for the literal under the
// current partial valuation, using the most selective single-column
// index available, or the full extent when nothing is bound.
func (e *evaluator) candidates(lit query.Literal) []relation.TupleID {
	bestCol, bestConst := -1, relation.Const(0)
	bestLen := -1
	for col, t := range lit.Args {
		var c relation.Const
		switch {
		case t.IsConst:
			c = t.Const
		case e.bound[t.Var]:
			c = e.val[t.Var]
		default:
			continue
		}
		l := len(e.db.AtColumn(lit.Rel, col, c))
		if bestLen == -1 || l < bestLen {
			bestCol, bestConst, bestLen = col, c, l
		}
	}
	if bestCol == -1 {
		return e.db.Extent(lit.Rel)
	}
	return e.db.AtColumn(lit.Rel, bestCol, bestConst)
}

// match unifies the literal's arguments with the tuple under the
// current valuation. On success it returns the variables newly bound
// (so the caller can undo them) and true; on failure it undoes its own
// bindings and returns false. depth selects the per-depth scratch
// buffer for the newly-bound list, so matching never allocates.
func (e *evaluator) match(lit query.Literal, tup relation.Tuple, depth int) ([]query.Var, bool) {
	if len(lit.Args) != len(tup.Args) {
		return nil, false
	}
	newly := e.newlyAt[depth][:0]
	defer func() { e.newlyAt[depth] = newly[:0] }()
	for i, t := range lit.Args {
		c := tup.Args[i]
		if t.IsConst {
			if t.Const != c {
				e.undo(newly)
				return nil, false
			}
			continue
		}
		v := int(t.Var)
		if e.bound[v] {
			if e.val[v] != c {
				e.undo(newly)
				return nil, false
			}
			continue
		}
		e.bound[v] = true
		e.val[v] = c
		newly = append(newly, t.Var)
	}
	return newly, true
}

func (e *evaluator) undo(vars []query.Var) {
	for _, v := range vars {
		e.bound[v] = false
	}
}

// emit projects the current valuation onto the head and yields the
// resulting tuple (or its id) if it has not been produced before.
func (e *evaluator) emit(yield Yield) bool {
	if e.yieldID != nil {
		return e.emitID()
	}
	args := make([]relation.Const, len(e.rule.Head.Args))
	for i, t := range e.rule.Head.Args {
		if t.IsConst {
			args[i] = t.Const
			continue
		}
		if !e.bound[t.Var] {
			// Unsafe rule: a head variable is not bound by the body.
			// Such rules derive nothing (they are rejected earlier by
			// Rule.Safe; this is a defensive guard).
			return true
		}
		args[i] = e.val[t.Var]
	}
	t := relation.Tuple{Rel: e.rule.Head.Rel, Args: args}
	k := t.Key()
	if e.seen == nil {
		e.seen = make(map[string]bool)
	}
	if e.seen[k] {
		return true
	}
	e.seen[k] = true
	return yield(t)
}

// emitID is the id-path emit: intern the projected head tuple and
// yield its dense id, deduplicating via bitset.
func (e *evaluator) emitID() bool {
	e.scratch = growConsts(e.scratch, len(e.rule.Head.Args))
	args := e.scratch
	for i, t := range e.rule.Head.Args {
		if t.IsConst {
			args[i] = t.Const
			continue
		}
		if !e.bound[t.Var] {
			return true // defensive guard, as in emit
		}
		args[i] = e.val[t.Var]
	}
	id := e.db.InternTuple(relation.Tuple{Rel: e.rule.Head.Rel, Args: args})
	if !e.seenIDs.Add(id) {
		return true
	}
	return e.yieldID(id)
}
