// Pooled-evaluator round-trip accounting for the trace layer.
//
// The evaluator pool (evaluatorPool in eval.go) is package-global, so
// per-call hooks would have to synchronize on the assess hot path.
// Instead, tracing consumers enable two process-wide atomic counters
// — round-trips (newEvaluator → release sessions) and fresh
// allocations (pool misses) — and read deltas at span boundaries. The
// counters live behind an enablement count: with tracing off the hot
// path pays one atomic load per evaluation session (not per tuple),
// which is noise against the join it brackets.
//
// Deltas are process-wide: when several searchers run concurrently
// (egs.SynthesizeParallel), a cell's delta includes its siblings'
// evaluations. Single-searcher runs — the common tracing setup —
// attribute exactly.

package eval

import "sync/atomic"

var (
	// poolTraceOn counts active enablers; counters tick while > 0.
	poolTraceOn atomic.Int64
	// poolRoundTrips counts evaluator sessions (get → release).
	poolRoundTrips atomic.Uint64
	// poolFresh counts evaluators allocated because the pool was empty.
	poolFresh atomic.Uint64
)

// EnablePoolTracing starts counting pooled-evaluator round-trips.
// Each call must be paired with DisablePoolTracing; enablement nests.
func EnablePoolTracing() { poolTraceOn.Add(1) }

// DisablePoolTracing undoes one EnablePoolTracing.
func DisablePoolTracing() { poolTraceOn.Add(-1) }

// PoolCounters returns the cumulative pooled-evaluator round-trips
// and fresh allocations counted while tracing was enabled. Callers
// take deltas; absolute values are meaningless across enablement
// windows.
func PoolCounters() (roundTrips, fresh uint64) {
	return poolRoundTrips.Load(), poolFresh.Load()
}

// notePoolGet is called from newEvaluator with whether the pool
// missed (a fresh evaluator was allocated).
func notePoolGet(freshAlloc bool) {
	if poolTraceOn.Load() <= 0 {
		return
	}
	if freshAlloc {
		poolFresh.Add(1)
	}
}

// notePoolRelease is called from release.
func notePoolRelease() {
	if poolTraceOn.Load() <= 0 {
		return
	}
	poolRoundTrips.Add(1)
}
