package eval

import (
	"fmt"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// FixpointUCQ evaluates a possibly-recursive Datalog program: rules
// whose bodies may mention output (intensional) relations, including
// the rule's own head relation. It computes the least fixpoint by
// semi-naive iteration on the id plane: after a naive first round,
// each subsequent round evaluates every rule once per body position
// with that position restricted to the previous round's delta
// (EvalRuleDelta), so only instantiations that use at least one
// newly derived tuple are re-joined. Tuples derived in a round are
// promoted to overlay facts of the working database between rounds —
// a between-runs mutation, per the Database contract — keeping their
// interned ids, so the delta is a bitset and the frontier a plain
// slice in first-derivation order (no map iteration anywhere near
// the control flow).
//
// The EGS synthesizer itself targets the non-recursive UCQ fragment
// (the paper lists recursion as future work), but the evaluator
// substrate supports recursion so that synthesized programs can be
// composed with hand-written recursive rules — e.g. closing a learned
// edge relation transitively — and as groundwork for a recursive
// synthesizer.
//
// The input database is not modified; the result contains the
// derived intensional tuples only, keyed by Tuple.Key.
func FixpointUCQ(q query.UCQ, db *relation.Database) (map[string]relation.Tuple, error) {
	// Validate: body literals must be declared; heads must not be
	// input relations (that would amount to mutating the EDB).
	for i, r := range q.Rules {
		if db.Schema.Info(r.Head.Rel).Kind == relation.Input {
			return nil, fmt.Errorf("eval: rule %d derives into input relation %s",
				i, db.Schema.Name(r.Head.Rel))
		}
		if err := r.Safe(); err != nil {
			return nil, fmt.Errorf("eval: rule %d: %w", i, err)
		}
	}
	// Working database: a copy of db extended with derived tuples.
	// Copying keeps FixpointUCQ free of side effects on the input.
	work := relation.NewDatabase(db.Schema, db.Domain)
	for _, t := range db.All() {
		work.Insert(t)
	}
	derived := make(map[string]relation.Tuple)
	derivedIDs := &relation.TupleSet{}

	// collect records a derived head id the first time it is seen,
	// appending it to the current frontier. Ids that are already facts
	// of work — base facts, or tuples promoted in earlier rounds — are
	// not new derivations.
	var frontier []relation.TupleID
	collect := func(id relation.TupleID) bool {
		if _, isFact := work.GenerationOf(id); isFact {
			return true
		}
		if derivedIDs.Add(id) {
			t := work.TupleByID(id)
			t = relation.Tuple{Rel: t.Rel, Args: append([]relation.Const(nil), t.Args...)}
			derived[t.Key()] = t
			frontier = append(frontier, id)
		}
		return true
	}

	// Naive first round: evaluate every rule against the base facts.
	for _, r := range q.Rules {
		EvalRuleIDs(r, work, collect)
	}

	// Semi-naive rounds: re-derive only instantiations using at least
	// one previous-round tuple, by running each rule once per body
	// position with that position pinned to the delta. The union over
	// positions covers every instantiation touching the delta;
	// overlaps deduplicate through derivedIDs.
	for len(frontier) > 0 {
		delta := &relation.TupleSet{}
		grew := make(map[relation.RelID]bool)
		for _, id := range frontier {
			delta.Add(id)
			grew[work.TupleByID(id).Rel] = true
		}
		// Promote the frontier to facts so this round's joins see it.
		for _, id := range frontier {
			work.Insert(work.TupleByID(id))
		}
		frontier = frontier[:0]
		for _, r := range q.Rules {
			for li, lit := range r.Body {
				if !grew[lit.Rel] {
					continue
				}
				EvalRuleDelta(r, work, li, delta, collect)
			}
		}
	}
	return derived, nil
}

// TransitiveClosureRules builds the textbook recursive program
//
//	closure(x, y) :- base(x, y).
//	closure(x, y) :- closure(x, z), base(z, y).
//
// over the given relations, as a convenience for composing a
// synthesized edge relation with its transitive closure.
func TransitiveClosureRules(base, closure relation.RelID) query.UCQ {
	x, y, z := query.V(0), query.V(1), query.V(2)
	return query.UCQ{Rules: []query.Rule{
		{
			Head: query.Literal{Rel: closure, Args: []query.Term{x, y}},
			Body: []query.Literal{{Rel: base, Args: []query.Term{x, y}}},
		},
		{
			Head: query.Literal{Rel: closure, Args: []query.Term{x, y}},
			Body: []query.Literal{
				{Rel: closure, Args: []query.Term{x, z}},
				{Rel: base, Args: []query.Term{z, y}},
			},
		},
	}}
}
