package eval

import (
	"fmt"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// FixpointUCQ evaluates a possibly-recursive Datalog program: rules
// whose bodies may mention output (intensional) relations, including
// the rule's own head relation. It computes the least fixpoint by
// semi-naive iteration: each round re-derives only instantiations
// that use at least one tuple discovered in the previous round.
//
// The EGS synthesizer itself targets the non-recursive UCQ fragment
// (the paper lists recursion as future work), but the evaluator
// substrate supports recursion so that synthesized programs can be
// composed with hand-written recursive rules — e.g. closing a learned
// edge relation transitively — and as groundwork for a recursive
// synthesizer.
//
// The input database is not modified; the result contains the
// derived intensional tuples only, keyed by Tuple.Key.
func FixpointUCQ(q query.UCQ, db *relation.Database) (map[string]relation.Tuple, error) {
	// Validate: body literals must be declared; heads must not be
	// input relations (that would amount to mutating the EDB).
	for i, r := range q.Rules {
		if db.Schema.Info(r.Head.Rel).Kind == relation.Input {
			return nil, fmt.Errorf("eval: rule %d derives into input relation %s",
				i, db.Schema.Name(r.Head.Rel))
		}
		if err := r.Safe(); err != nil {
			return nil, fmt.Errorf("eval: rule %d: %w", i, err)
		}
	}
	// Working database: a copy of db extended with derived tuples.
	// Copying keeps FixpointUCQ free of side effects on the input.
	work := relation.NewDatabase(db.Schema, db.Domain)
	for _, t := range db.All() {
		work.Insert(t)
	}
	derived := make(map[string]relation.Tuple)

	// Naive first round: evaluate every rule against the base facts.
	frontier := make(map[string]relation.Tuple)
	for _, r := range q.Rules {
		EvalRule(r, work, func(t relation.Tuple) bool {
			k := t.Key()
			if _, ok := derived[k]; !ok && !containsTuple(db, t) {
				derived[k] = t
				frontier[k] = t
			}
			return true
		})
	}
	for _, t := range frontier {
		work.Insert(t)
	}

	// Semi-naive rounds: a rule can produce a new tuple only if some
	// body literal matches a frontier tuple. We approximate the
	// delta-rule optimization at the relation level: re-evaluate a
	// rule only if its body mentions a relation that gained tuples
	// in the previous round.
	for len(frontier) > 0 {
		grew := map[relation.RelID]bool{}
		for _, t := range frontier {
			grew[t.Rel] = true
		}
		next := make(map[string]relation.Tuple)
		for _, r := range q.Rules {
			relevant := false
			for _, lit := range r.Body {
				if grew[lit.Rel] {
					relevant = true
					break
				}
			}
			if !relevant {
				continue
			}
			EvalRule(r, work, func(t relation.Tuple) bool {
				k := t.Key()
				if _, ok := derived[k]; !ok && !containsTuple(db, t) {
					derived[k] = t
					next[k] = t
				}
				return true
			})
		}
		for _, t := range next {
			work.Insert(t)
		}
		frontier = next
	}
	return derived, nil
}

func containsTuple(db *relation.Database, t relation.Tuple) bool {
	return db.Contains(t)
}

// TransitiveClosureRules builds the textbook recursive program
//
//	closure(x, y) :- base(x, y).
//	closure(x, y) :- closure(x, z), base(z, y).
//
// over the given relations, as a convenience for composing a
// synthesized edge relation with its transitive closure.
func TransitiveClosureRules(base, closure relation.RelID) query.UCQ {
	x, y, z := query.V(0), query.V(1), query.V(2)
	return query.UCQ{Rules: []query.Rule{
		{
			Head: query.Literal{Rel: closure, Args: []query.Term{x, y}},
			Body: []query.Literal{{Rel: base, Args: []query.Term{x, y}}},
		},
		{
			Head: query.Literal{Rel: closure, Args: []query.Term{x, y}},
			Body: []query.Literal{
				{Rel: closure, Args: []query.Term{x, z}},
				{Rel: base, Args: []query.Term{z, y}},
			},
		},
	}}
}
