package eval_test

import (
	"sort"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/datagen/family"
	"github.com/egs-synthesis/egs/internal/eval"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// fuzzDecoder turns an arbitrary byte string into a bounded stream of
// small integers, defaulting to zero once exhausted.
type fuzzDecoder struct {
	data []byte
	pos  int
}

func (d *fuzzDecoder) next(bound int) int {
	if bound <= 0 {
		return 0
	}
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return int(b) % bound
}

// fuzzCase decodes a database, a safe rule, and a batch of overlay
// tuples (facts to land in a post-freeze generation) from fuzz input.
func fuzzCase(data []byte) (*relation.Database, query.Rule, []relation.Tuple, bool) {
	d := &fuzzDecoder{data: data}
	s := relation.NewSchema()
	dom := relation.NewDomain()
	inputs := []relation.RelID{
		s.MustDeclare("attr", 1, relation.Input),
		s.MustDeclare("edge", 2, relation.Input),
		s.MustDeclare("tri", 3, relation.Input),
	}
	headArity := 1 + d.next(3)
	out := s.MustDeclare("out", headArity, relation.Output)

	nConst := 2 + d.next(5)
	consts := make([]relation.Const, nConst)
	for i := range consts {
		consts[i] = dom.Intern(string(rune('a' + i)))
	}
	randTuple := func() relation.Tuple {
		rel := inputs[d.next(len(inputs))]
		args := make([]relation.Const, s.Arity(rel))
		for j := range args {
			args[j] = consts[d.next(nConst)]
		}
		return relation.Tuple{Rel: rel, Args: args}
	}
	db := relation.NewDatabase(s, dom)
	nTuples := d.next(13)
	for i := 0; i < nTuples; i++ {
		db.Insert(randTuple())
	}

	nBody := 1 + d.next(3)
	maxVars := 1 + d.next(5)
	r := query.Rule{Head: query.Literal{Rel: out}}
	var bodyVars []query.Var
	seenVar := make(map[query.Var]bool)
	for i := 0; i < nBody; i++ {
		rel := inputs[d.next(len(inputs))]
		lit := query.Literal{Rel: rel, Args: make([]query.Term, s.Arity(rel))}
		for j := range lit.Args {
			if d.next(5) == 0 {
				lit.Args[j] = query.C(consts[d.next(nConst)])
				continue
			}
			v := query.Var(d.next(maxVars))
			lit.Args[j] = query.V(v)
			if !seenVar[v] {
				seenVar[v] = true
				bodyVars = append(bodyVars, v)
			}
		}
		r.Body = append(r.Body, lit)
	}
	if len(bodyVars) == 0 {
		return nil, query.Rule{}, nil, false // all-constant body cannot build a safe head
	}
	r.Head.Args = make([]query.Term, headArity)
	for j := range r.Head.Args {
		r.Head.Args[j] = query.V(bodyVars[d.next(len(bodyVars))])
	}
	overlay := make([]relation.Tuple, d.next(5))
	for i := range overlay {
		overlay[i] = randTuple()
	}
	return db, r, overlay, true
}

func sortedKeys(m map[string]relation.Tuple) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// checkEquivalence compares the naive oracle against the indexed
// string-keyed path and the dense-id path, with the join strategy
// pinned to backtracking and then to batch.
func checkEquivalence(t *testing.T, db *relation.Database, r query.Rule, stage string) {
	t.Helper()
	naive := eval.EvalRuleNaive(r, db)
	nk := sortedKeys(naive)
	for _, strat := range []eval.Strategy{eval.StrategyBacktrack, eval.StrategyBatch} {
		restore := eval.ForceStrategy(strat)
		indexed := eval.RuleOutputs(r, db)
		ids := eval.RuleOutputIDs(r, db)
		restore()

		ik := sortedKeys(indexed)
		if len(nk) != len(ik) {
			t.Fatalf("[%s/%s] naive derives %d tuples, indexed derives %d\nrule: %s",
				stage, strat, len(nk), len(ik), r.String(db.Schema, db.Domain))
		}
		for i := range nk {
			if nk[i] != ik[i] {
				t.Fatalf("[%s/%s] naive and indexed outputs diverge\nrule: %s",
					stage, strat, r.String(db.Schema, db.Domain))
			}
		}
		if ids.Len() != len(naive) {
			t.Fatalf("[%s/%s] id path derives %d tuples, naive derives %d\nrule: %s",
				stage, strat, ids.Len(), len(naive), r.String(db.Schema, db.Domain))
		}
		ids.Iterate(func(id relation.TupleID) bool {
			if _, present := naive[db.TupleByID(id).Key()]; !present {
				t.Fatalf("[%s/%s] id path derived tuple missing from naive output\nrule: %s",
					stage, strat, r.String(db.Schema, db.Domain))
			}
			return true
		})
	}
}

// FuzzEvalEquivalence differentially tests the evaluation paths: the
// indexed string-keyed evaluator (EvalRule via RuleOutputs), the
// dense-id path (RuleOutputIDs), and the unoptimized nested-loop
// oracle (EvalRuleNaive) — each indexed path forced through both the
// backtracking and the batch join strategy. All must derive exactly
// the same set of output tuples on every input, both on the base
// database and again after a post-freeze generation overlay lands
// more facts (exercising the columnar caches' stamp invalidation).
func FuzzEvalEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{2, 4, 9, 1, 0, 1, 2, 0, 1, 1, 2, 2, 0, 3, 1, 2, 0, 2, 1, 1, 0, 2})
	f.Add([]byte{0, 3, 12, 2, 1, 0, 2, 1, 1, 2, 2, 1, 0, 0, 1, 2, 3, 4, 2, 2, 1, 1, 0, 0, 3})
	f.Add([]byte{1, 3, 11, 2, 1, 0, 2, 1, 1, 2, 2, 1, 0, 0, 1, 2, 3, 4, 2, 2, 1, 1, 0, 0, 3,
		4, 1, 0, 1, 2, 2, 1, 0, 3, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		db, r, overlay, ok := fuzzCase(data)
		if !ok {
			return
		}
		checkEquivalence(t, db, r, "base")
		if len(overlay) == 0 {
			return
		}
		// The id-path evaluations above froze the interning table, so
		// these inserts land in an overlay generation; every cached
		// columnar view they touch must self-invalidate.
		db.BeginGeneration()
		for _, tup := range overlay {
			db.Insert(tup)
		}
		checkEquivalence(t, db, r, "overlay")
	})
}

// TestFamilyGridEvalEquivalence drives the same differential harness
// with realistic inputs: every scenario-factory grid instance's
// intended rules over its parsed database (complements and typed
// negation included), checked on the base generation and again after
// an overlay generation lands argument-reversed copies of existing
// facts.
func TestFamilyGridEvalEquivalence(t *testing.T) {
	for _, gp := range family.DefaultGrid() {
		inst, err := family.Generate(gp.Spec, gp.Seed)
		if err != nil {
			t.Fatalf("Generate(%+v, %d): %v", gp.Spec, gp.Seed, err)
		}
		tk, err := task.Parse(strings.NewReader(inst.Content))
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		db := tk.Input
		for _, r := range tk.Intended().Rules {
			checkEquivalence(t, db, r, inst.Name+"/base")
		}

		// Overlay: reverse the argument order of a handful of binary
		// facts and re-insert them in a fresh generation, then
		// re-check every path agrees on the grown database.
		ids := db.AllIDs()
		db.BeginGeneration()
		inserted := 0
		for _, id := range ids {
			tup := db.TupleByID(id)
			if len(tup.Args) != 2 {
				continue
			}
			db.Insert(relation.Tuple{Rel: tup.Rel, Args: []relation.Const{tup.Args[1], tup.Args[0]}})
			if inserted++; inserted >= 8 {
				break
			}
		}
		if inserted == 0 {
			t.Fatalf("%s: no binary facts to overlay", inst.Name)
		}
		for _, r := range tk.Intended().Rules {
			checkEquivalence(t, db, r, inst.Name+"/overlay")
		}
	}
}
