package eval

import (
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// The set-at-a-time batch join. Evaluation runs in two phases over
// the planned literal order:
//
// Phase 1 (pruneBatch) computes, per order position, a candidate set
// S_i ⊆ extent — the tuple ids that could possibly participate in a
// satisfying instantiation given per-column constraints alone:
//
//   - constant columns restrict S_i to the column's posting list;
//     with two or more constant columns the two shortest postings are
//     intersected by galloping merge (relation.IntersectSortedIDs)
//     before anything tuple-level runs;
//   - columns holding a variable bound at an earlier position are
//     semijoin-filtered against that variable's value support — the
//     set of constants the binder literal's own candidate set can
//     supply (a ConstSet bit test per candidate).
//
// Pruning is sound, not complete: it never removes a tuple that could
// match under some surviving valuation, so an empty S_i proves the
// rule derives nothing and phase 2 can skip membership checks for
// unpruned positions. Candidate lists stay in ascending id order.
//
// Phase 2 (searchBatch) unifies residual variables tuple-at-a-time,
// but only over the surviving frontier: each position draws from its
// statically chosen probe column's posting filtered by a bitset of
// S_i — or directly from S_i when that is smaller — and fully-bound
// literals degrade to existence tests (a ConstSet bit probe for unary
// literals) instead of enumerating witnesses.

// pruneBatch runs phase 1, filling e.cand for every order position.
// It reports false when some candidate set is empty, which proves the
// rule derives nothing.
func (e *evaluator) pruneBatch() bool {
	n := len(e.plan.order)
	e.cand = growIDLists(e.cand, n)
	e.candBuf = growIDLists(e.candBuf, n)
	e.candIsExt = resetBools(e.candIsExt, n)
	e.candSetOK = resetBools(e.candSetOK, n)
	e.unaryCSOK = resetBools(e.unaryCSOK, n)
	if cap(e.unaryCS) < n {
		e.unaryCS = make([]*relation.ConstSet, n)
	}
	e.unaryCS = e.unaryCS[:n]
	if cap(e.candSet) < n {
		grown := make([]*relation.TupleSet, n)
		copy(grown, e.candSet)
		e.candSet = grown
	}
	e.candSet = e.candSet[:n]
	e.varSupOK = resetBools(e.varSupOK, e.rule.NumVars())
	if cap(e.varSup) < e.rule.NumVars() {
		grown := make([]relation.ConstSet, e.rule.NumVars())
		copy(grown, e.varSup)
		e.varSup = grown
	}
	e.varSup = e.varSup[:e.rule.NumVars()]
	e.frontierHW = 0

	for pos := 0; pos < n; pos++ {
		if !e.pruneLiteral(pos) {
			return false
		}
		if l := len(e.cand[pos]); l > e.frontierHW {
			e.frontierHW = l
		}
	}
	return true
}

// pruneLiteral computes the candidate set for one order position; it
// reports false when the set is empty.
func (e *evaluator) pruneLiteral(pos int) bool {
	lit := e.rule.Body[e.plan.order[pos]]

	// Seed with the two shortest constant-column postings (galloping
	// intersection), or the extent when the literal has no constants.
	var shortest, second []relation.TupleID
	shortCol, secondCol := -1, -1
	for col, t := range lit.Args {
		if !t.IsConst {
			continue
		}
		ids := e.db.AtColumn(lit.Rel, col, t.Const)
		if len(ids) == 0 {
			e.cand[pos] = nil
			return false
		}
		switch {
		case shortest == nil || len(ids) < len(shortest):
			shortest, second = ids, shortest
			shortCol, secondCol = col, shortCol
		case second == nil || len(ids) < len(second):
			second, secondCol = ids, col
		}
	}
	cur, owned := e.db.Extent(lit.Rel), false
	if shortest != nil {
		cur = shortest
	}
	if second != nil {
		cur = relation.IntersectSortedIDs(e.candBuf[pos][:0], shortest, second)
		e.candBuf[pos], owned = cur, true
		if len(cur) == 0 {
			e.cand[pos] = nil
			return false
		}
	}

	// Remaining per-column filters: constant columns beyond the two
	// intersected ones, and semijoins for columns whose variable was
	// bound at an earlier position.
	filters := false
	for col, t := range lit.Args {
		if t.IsConst {
			filters = filters || (col != shortCol && col != secondCol)
			continue
		}
		bp := e.plan.binderPos[t.Var]
		filters = filters || (bp >= 0 && int(bp) < pos)
	}
	if !filters {
		e.cand[pos] = cur
		e.candIsExt[pos] = shortest == nil
		return len(cur) > 0
	}
	dst := e.candBuf[pos][:0]
	if owned {
		dst = cur[:0] // in-place filter over the owned buffer
	}
	for _, id := range cur {
		args := e.db.Tuple(id).Args
		keep := true
		for col, t := range lit.Args {
			if t.IsConst {
				if col != shortCol && col != secondCol && args[col] != t.Const {
					keep = false
					break
				}
				continue
			}
			if bp := e.plan.binderPos[t.Var]; bp >= 0 && int(bp) < pos {
				if !e.varSupport(t.Var).Has(args[col]) {
					keep = false
					break
				}
			}
		}
		if keep {
			dst = append(dst, id)
		}
	}
	e.candBuf[pos] = dst[:len(dst)]
	e.cand[pos] = e.candBuf[pos]
	e.candIsExt[pos] = false
	return len(dst) > 0
}

// varSupport returns the set of constants variable v can take: the
// distinct values of the binder literal's binding column over its
// candidate set. Computed lazily once per session per variable;
// candidate sets at earlier positions are final by the time a later
// literal consults them.
func (e *evaluator) varSupport(v query.Var) *relation.ConstSet {
	s := &e.varSup[v]
	if !e.varSupOK[v] {
		s.Reset()
		bp, bc := e.plan.binderPos[v], e.plan.binderCol[v]
		for _, id := range e.cand[bp] {
			s.Add(e.db.Tuple(id).Args[bc])
		}
		e.varSupOK[v] = true
	}
	return s
}

// candSetFor returns e.cand[pos] as a bitset for membership tests, or
// nil when the candidate set is the full extent (no test needed).
// Built lazily: positions whose posting probes never fire pay nothing.
func (e *evaluator) candSetFor(pos int) *relation.TupleSet {
	if e.candIsExt[pos] || len(e.cand[pos]) == e.plan.steps[pos].extent {
		return nil
	}
	if e.candSet[pos] == nil {
		e.candSet[pos] = &relation.TupleSet{}
	}
	s := e.candSet[pos]
	if !e.candSetOK[pos] {
		s.Reset()
		for _, id := range e.cand[pos] {
			s.Add(id)
		}
		e.candSetOK[pos] = true
	}
	return s
}

// searchBatch runs phase 2: residual unification over the pruned
// frontier, extending the current valuation across order[i:]. It
// returns false when the caller asked to stop.
func (e *evaluator) searchBatch(i int, yield Yield) bool {
	if i == len(e.plan.order) {
		return e.emit(yield)
	}
	lit := e.rule.Body[e.plan.order[i]]
	st := &e.plan.steps[i]

	if !st.hasFree {
		// Every column is bound: one witness suffices, and pruning
		// never removes a tuple matching the current valuation (its
		// column values all sit in the supports that did the
		// filtering), so the full-relation indexes answer exactly.
		if len(lit.Args) == 1 {
			// The column const-set is fetched once per session: the
			// database cannot grow mid-evaluation, and ColumnConstSet
			// takes a read lock per call — far too hot for this probe,
			// which runs once per surviving valuation.
			if !e.unaryCSOK[i] {
				e.unaryCS[i] = e.db.ColumnConstSet(lit.Rel, 0)
				e.unaryCSOK[i] = true
			}
			if cs := e.unaryCS[i]; cs != nil && cs.Has(e.valueAt(lit.Args[0])) {
				return e.searchBatch(i+1, yield)
			}
			return true
		}
		if st.probeCol >= 0 {
			c := e.valueAt(lit.Args[st.probeCol])
			for _, id := range e.db.AtColumn(lit.Rel, st.probeCol, c) {
				if _, ok := e.match(lit, e.db.Tuple(id), i); ok {
					return e.searchBatch(i+1, yield)
				}
			}
			return true
		}
		// Zero-arity literal: satisfied iff the extent is non-empty,
		// which phase 1 already established.
		return e.searchBatch(i+1, yield)
	}

	ids := e.cand[i]
	var filter *relation.TupleSet
	if st.probeCol >= 0 {
		c := e.valueAt(lit.Args[st.probeCol])
		if posting := e.db.AtColumn(lit.Rel, st.probeCol, c); len(posting) < len(ids) {
			ids, filter = posting, e.candSetFor(i)
		}
	}
	for _, id := range ids {
		if filter != nil && !filter.Has(id) {
			continue
		}
		newly, ok := e.match(lit, e.db.Tuple(id), i)
		if !ok {
			continue
		}
		cont := e.searchBatch(i+1, yield)
		for _, v := range newly {
			e.bound[v] = false
		}
		if !cont {
			return false
		}
	}
	return true
}

// valueAt resolves a bound term under the current valuation.
func (e *evaluator) valueAt(t query.Term) relation.Const {
	if t.IsConst {
		return t.Const
	}
	return e.val[t.Var]
}

// growIDLists returns a list-of-lists of length n, reusing both the
// outer array and the inner buffers' capacity.
func growIDLists(b [][]relation.TupleID, n int) [][]relation.TupleID {
	if cap(b) < n {
		grown := make([][]relation.TupleID, n)
		copy(grown, b)
		return grown
	}
	return b[:n]
}
