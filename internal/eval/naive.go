package eval

import (
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// EvalRuleNaive is a reference evaluator used for differential
// testing of EvalRule. It performs an unoptimized nested-loop join in
// the body's given literal order, scanning full relation extents with
// no indexes and no planning. Its outputs must coincide with
// EvalRule's on every input.
func EvalRuleNaive(r query.Rule, db *relation.Database) map[string]relation.Tuple {
	out := make(map[string]relation.Tuple)
	n := r.NumVars()
	val := make([]relation.Const, n)
	bound := make([]bool, n)

	var rec func(i int)
	rec = func(i int) {
		if i == len(r.Body) {
			args := make([]relation.Const, len(r.Head.Args))
			for j, t := range r.Head.Args {
				if t.IsConst {
					args[j] = t.Const
					continue
				}
				if !bound[t.Var] {
					return // unsafe rule derives nothing
				}
				args[j] = val[t.Var]
			}
			tup := relation.Tuple{Rel: r.Head.Rel, Args: args}
			out[tup.Key()] = tup
			return
		}
		lit := r.Body[i]
		for _, id := range db.Extent(lit.Rel) {
			tup := db.Tuple(id)
			if len(tup.Args) != len(lit.Args) {
				continue
			}
			var newly []query.Var
			ok := true
			for j, t := range lit.Args {
				c := tup.Args[j]
				if t.IsConst {
					if t.Const != c {
						ok = false
						break
					}
					continue
				}
				v := int(t.Var)
				if bound[v] {
					if val[v] != c {
						ok = false
						break
					}
					continue
				}
				bound[v] = true
				val[v] = c
				newly = append(newly, t.Var)
			}
			if ok {
				rec(i + 1)
			}
			for _, v := range newly {
				bound[v] = false
			}
		}
	}
	rec(0)
	return out
}

// UCQOutputsNaive is the reference UCQ evaluator.
func UCQOutputsNaive(q query.UCQ, db *relation.Database) map[string]relation.Tuple {
	out := make(map[string]relation.Tuple)
	for _, r := range q.Rules {
		for k, t := range EvalRuleNaive(r, db) {
			out[k] = t
		}
	}
	return out
}
