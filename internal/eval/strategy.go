package eval

import (
	"os"
	"sync/atomic"
)

// The strategy layer: EvalRule / EvalRuleIDs sessions run one of two
// join strategies over the same plan.
//
//   - backtracking (eval.go): tuple-at-a-time depth-first search,
//     dynamically picking the shortest posting list per branch. Wins
//     when the search space is small or the first literals are highly
//     selective — the common case for paper-scale tasks, where one
//     candidate rule meets a database of tens of tuples.
//
//   - batch (batch.go): set-at-a-time. Per-literal candidate sets are
//     pruned wholesale (constant columns by posting-list intersection,
//     already-bound columns by semijoin against the binder literal's
//     value support) before any tuple-level unification runs, and the
//     residual search walks only the surviving frontier. Wins on large
//     extents, where backtracking revisits the same dead subtrees once
//     per outer binding.
//
// Both strategies produce the same SET of head tuples; emission order
// is unspecified (every caller is order-insensitive: outputs land in
// TupleSets or are counted). A per-rule cost heuristic picks the
// strategy; EGS_EVAL_STRATEGY / ForceStrategy override it for
// differential testing and benchmarks.

// Strategy names a join strategy choice.
type Strategy uint8

const (
	// StrategyAuto lets the per-rule cost heuristic decide.
	StrategyAuto Strategy = iota
	// StrategyBacktrack forces the tuple-at-a-time backtracking join.
	StrategyBacktrack
	// StrategyBatch forces the set-at-a-time batch join.
	StrategyBatch
)

// String returns the spelling accepted by EGS_EVAL_STRATEGY.
func (s Strategy) String() string {
	switch s {
	case StrategyBacktrack:
		return "backtrack"
	case StrategyBatch:
		return "batch"
	default:
		return "auto"
	}
}

// forcedStrategy holds the process-wide override, seeded from the
// EGS_EVAL_STRATEGY environment variable ("auto", "backtrack",
// "batch"); StrategyAuto means "no override". Atomic because
// evaluations run concurrently under SynthesizeParallel.
var forcedStrategy = func() *atomic.Int32 {
	v := new(atomic.Int32)
	switch os.Getenv("EGS_EVAL_STRATEGY") {
	case "backtrack":
		v.Store(int32(StrategyBacktrack))
	case "batch":
		v.Store(int32(StrategyBatch))
	}
	return v
}()

// ForceStrategy overrides the per-rule strategy heuristic process-wide
// and returns a function restoring the previous override. Intended for
// tests and benchmarks that need to pin one code path:
//
//	defer eval.ForceStrategy(eval.StrategyBatch)()
func ForceStrategy(s Strategy) (restore func()) {
	prev := forcedStrategy.Swap(int32(s))
	return func() { forcedStrategy.Store(prev) }
}

// strategy is one way of running a planned evaluation session to
// completion. Implementations are stateless singletons; all session
// state lives on the evaluator.
type strategy interface {
	name() string
	// run evaluates to completion, honoring the evaluator's yield
	// configuration; it returns false when the caller stopped early.
	run(e *evaluator, yield Yield) bool
}

var (
	backtrack strategy = backtrackStrategy{}
	batch     strategy = batchStrategy{}
)

type backtrackStrategy struct{}

func (backtrackStrategy) name() string { return "backtrack" }

func (backtrackStrategy) run(e *evaluator, yield Yield) bool {
	noteStrategyRun(false, 0)
	return e.search(0, yield)
}

type batchStrategy struct{}

func (batchStrategy) name() string { return "batch" }

func (batchStrategy) run(e *evaluator, yield Yield) bool {
	nonEmpty := e.pruneBatch()
	noteStrategyRun(true, e.frontierHW)
	if !nonEmpty {
		return true // some literal has no candidates: r derives nothing
	}
	return e.searchBatch(0, yield)
}

// batchExtentThreshold is the cost heuristic's cut-over: the summed
// body extent size below which set-at-a-time bookkeeping cannot pay
// for itself. Paper-scale example databases (tens of tuples) stay on
// backtracking; the scaled and datagen instances cross it.
const batchExtentThreshold = 256

// pickStrategy chooses the join strategy for one session from the
// plan's static stats. Deterministic: it depends only on the rule and
// the database's extent sizes.
func pickStrategy(p *plan) strategy {
	switch Strategy(forcedStrategy.Load()) {
	case StrategyBacktrack:
		return backtrack
	case StrategyBatch:
		if p.wideLit {
			return backtrack // boundMask cannot describe the literal
		}
		return batch
	}
	if p.wideLit || len(p.order) < 2 || p.totalExtent < batchExtentThreshold {
		return backtrack
	}
	return batch
}
