// Strategy-dispatch accounting for the trace layer, following the
// pooled-evaluator counters in pooltrace.go: process-wide atomics
// behind the same enablement count, read as deltas at span
// boundaries. With tracing off each evaluation session pays one
// atomic load; the frontier high-water is tracked only for batch
// sessions while tracing is on.

package eval

import "sync/atomic"

var (
	// stratBatch / stratBacktrack count evaluation sessions dispatched
	// to each strategy.
	stratBatch     atomic.Uint64
	stratBacktrack atomic.Uint64
	// stratFrontier is the high-water mark of batch candidate-set
	// sizes (the largest per-literal frontier any batch session built).
	stratFrontier atomic.Uint64
)

// noteStrategyRun is called once per evaluation session from the
// strategy implementations; frontier is the session's largest
// candidate-set size (batch only).
func noteStrategyRun(isBatch bool, frontier int) {
	if poolTraceOn.Load() <= 0 {
		return
	}
	if !isBatch {
		stratBacktrack.Add(1)
		return
	}
	stratBatch.Add(1)
	hw := uint64(frontier)
	for {
		cur := stratFrontier.Load()
		if hw <= cur || stratFrontier.CompareAndSwap(cur, hw) {
			return
		}
	}
}

// StrategyCounters returns the cumulative per-strategy session counts
// and the batch frontier high-water mark counted while pool tracing
// was enabled (EnablePoolTracing gates both counter families).
// Callers take deltas of the counts; the high-water mark is monotone
// and read as an absolute.
func StrategyCounters() (batch, backtrack, frontierHighWater uint64) {
	return stratBatch.Load(), stratBacktrack.Load(), stratFrontier.Load()
}
