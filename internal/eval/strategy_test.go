package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// ringDB builds a database large enough to cross the batch cost
// threshold: a ring of n nodes with edge(i, i+1), plus chord edges,
// and a unary mark relation over a third of the nodes.
func ringDB(t testing.TB, n int) (*relation.Database, relation.RelID, relation.RelID, relation.RelID) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	mark := s.MustDeclare("mark", 1, relation.Input)
	out := s.MustDeclare("out", 2, relation.Output)
	db := relation.NewDatabase(s, d)
	nodes := make([]relation.Const, n)
	for i := range nodes {
		nodes[i] = d.Intern(fmt.Sprintf("n%03d", i))
	}
	for i := 0; i < n; i++ {
		db.Insert(relation.NewTuple(edge, nodes[i], nodes[(i+1)%n]))
		db.Insert(relation.NewTuple(edge, nodes[i], nodes[(i+7)%n]))
		if i%3 == 0 {
			db.Insert(relation.NewTuple(mark, nodes[i]))
		}
	}
	return db, edge, mark, out
}

func twoHop(edge, out relation.RelID) query.Rule {
	x, y, z := query.V(0), query.V(1), query.V(2)
	return query.Rule{
		Head: query.Literal{Rel: out, Args: []query.Term{x, y}},
		Body: []query.Literal{
			{Rel: edge, Args: []query.Term{x, z}},
			{Rel: edge, Args: []query.Term{z, y}},
		},
	}
}

func TestPickStrategyHeuristic(t *testing.T) {
	big, edge, mark, out := ringDB(t, 200) // 400 edges + 67 marks
	x := query.V(0)
	cases := []struct {
		name string
		db   *relation.Database
		rule query.Rule
		want string
	}{
		{"large-join", big, twoHop(edge, out), "batch"},
		{"single-literal", big, query.Rule{
			Head: query.Literal{Rel: out, Args: []query.Term{x, x}},
			Body: []query.Literal{{Rel: mark, Args: []query.Term{x}}},
		}, "backtrack"},
	}
	// A paper-scale database stays under the threshold.
	small, sedge, _, sout := ringDB(t, 20)
	cases = append(cases, struct {
		name string
		db   *relation.Database
		rule query.Rule
		want string
	}{"small-join", small, twoHop(sedge, sout), "backtrack"})

	for _, c := range cases {
		var p plan
		p.compute(c.rule, c.db)
		if got := pickStrategy(&p).name(); got != c.want {
			t.Errorf("%s: strategy %s, want %s (totalExtent=%d)", c.name, got, c.want, p.totalExtent)
		}
	}
}

func TestForceStrategyOverridesAndRestores(t *testing.T) {
	db, edge, _, out := ringDB(t, 20) // small: heuristic says backtrack
	var p plan
	p.compute(twoHop(edge, out), db)
	restore := ForceStrategy(StrategyBatch)
	if got := pickStrategy(&p).name(); got != "batch" {
		t.Errorf("forced batch but picked %s", got)
	}
	restore()
	if got := pickStrategy(&p).name(); got != "backtrack" {
		t.Errorf("restore did not undo the override: picked %s", got)
	}
}

// TestBatchMatchesNaiveDense runs the three-way differential on
// databases dense enough that the batch path is the one the heuristic
// would pick anyway, with richer rule shapes than the fuzz harness
// (semijoin chains, constants, repeated variables).
func TestBatchMatchesNaiveDense(t *testing.T) {
	db, edge, mark, out := ringDB(t, 150)
	x, y, z := query.V(0), query.V(1), query.V(2)
	c0, _ := db.Domain.Lookup("n010")
	rules := []query.Rule{
		twoHop(edge, out),
		{ // marked two-hop: semijoin filtering on both join columns
			Head: query.Literal{Rel: out, Args: []query.Term{x, y}},
			Body: []query.Literal{
				{Rel: mark, Args: []query.Term{x}},
				{Rel: edge, Args: []query.Term{x, z}},
				{Rel: edge, Args: []query.Term{z, y}},
				{Rel: mark, Args: []query.Term{y}},
			},
		},
		{ // constant anchor
			Head: query.Literal{Rel: out, Args: []query.Term{x, y}},
			Body: []query.Literal{
				{Rel: edge, Args: []query.Term{query.C(c0), x}},
				{Rel: edge, Args: []query.Term{x, y}},
			},
		},
		{ // repeated variable within a literal
			Head: query.Literal{Rel: out, Args: []query.Term{x, x}},
			Body: []query.Literal{
				{Rel: edge, Args: []query.Term{x, x}},
				{Rel: mark, Args: []query.Term{x}},
			},
		},
	}
	for ri, r := range rules {
		naive := EvalRuleNaive(r, db)
		for _, strat := range []Strategy{StrategyBacktrack, StrategyBatch} {
			restore := ForceStrategy(strat)
			got := RuleOutputs(r, db)
			restore()
			if len(got) != len(naive) {
				t.Fatalf("rule %d strategy %v: %d tuples, naive %d", ri, strat, len(got), len(naive))
			}
			for k := range naive {
				if _, ok := got[k]; !ok {
					t.Fatalf("rule %d strategy %v: missing %q", ri, strat, k)
				}
			}
		}
	}
}

// TestBatchMatchesNaiveRandom is TestEvalMatchesNaive with the batch
// strategy forced, so the kernel is exercised on the same shapes even
// though the instances sit far below the cost threshold.
func TestBatchMatchesNaiveRandom(t *testing.T) {
	defer ForceStrategy(StrategyBatch)()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		rule, db := randomInstance(rng)
		fast := RuleOutputs(rule, db)
		slow := EvalRuleNaive(rule, db)
		if len(fast) != len(slow) {
			t.Fatalf("trial %d: batch=%d naive=%d for rule %s",
				trial, len(fast), len(slow), rule.String(db.Schema, db.Domain))
		}
		for k := range slow {
			if _, ok := fast[k]; !ok {
				t.Fatalf("trial %d: batch missing tuple present in naive", trial)
			}
		}
	}
}

// TestEvalRuleDeltaRestricts pins the semi-naive primitive: with one
// body literal pinned to a delta set, only instantiations using a
// delta tuple at that position may be derived, and the union over
// positions recovers the unrestricted output.
func TestEvalRuleDeltaRestricts(t *testing.T) {
	db, edge, _, out := ringDB(t, 30)
	r := twoHop(edge, out)
	full := RuleOutputIDs(r, db)

	// Delta = a single edge tuple; position 0 (edge(x,z)) restricted.
	extent := db.Extent(edge)
	delta := &relation.TupleSet{}
	delta.Add(extent[0])
	firstHop := db.TupleByID(extent[0])

	got := &relation.TupleSet{}
	EvalRuleDelta(r, db, 0, delta, func(id relation.TupleID) bool {
		got.Add(id)
		return true
	})
	if got.Empty() {
		t.Fatal("restricted evaluation derived nothing")
	}
	if !got.SubsetOf(full) {
		t.Fatal("restricted evaluation derived tuples outside the full output")
	}
	got.Iterate(func(id relation.TupleID) bool {
		if db.TupleByID(id).Args[0] != firstHop.Args[0] {
			t.Errorf("derived %v does not use the delta tuple at literal 0", db.TupleByID(id))
			return false
		}
		return true
	})

	// Union over both positions with delta = whole extent must equal
	// the unrestricted output.
	all := &relation.TupleSet{}
	for _, id := range extent {
		all.Add(id)
	}
	union := &relation.TupleSet{}
	for li := range r.Body {
		EvalRuleDelta(r, db, li, all, func(id relation.TupleID) bool {
			union.Add(id)
			return true
		})
	}
	if !union.Equal(full) {
		t.Fatalf("union over delta positions has %d tuples, full output %d", union.Len(), full.Len())
	}
}

// TestStrategyCountersTick checks the trace counters: batch and
// backtracking sessions tick their respective counters (only while
// pool tracing is enabled), and batch sessions advance the frontier
// high-water mark.
func TestStrategyCountersTick(t *testing.T) {
	db, edge, _, out := ringDB(t, 100)
	r := twoHop(edge, out)

	b0, k0, _ := StrategyCounters()
	RuleOutputIDs(r, db) // tracing off: nothing may tick
	if b1, k1, _ := StrategyCounters(); b1 != b0 || k1 != k0 {
		t.Fatal("strategy counters ticked while tracing was disabled")
	}

	EnablePoolTracing()
	defer DisablePoolTracing()

	restore := ForceStrategy(StrategyBatch)
	RuleOutputIDs(r, db)
	restore()
	b1, _, hw := StrategyCounters()
	if b1 != b0+1 {
		t.Fatalf("batch counter %d, want %d", b1, b0+1)
	}
	if hw == 0 {
		t.Fatal("batch session left frontier high-water at zero")
	}

	restore = ForceStrategy(StrategyBacktrack)
	RuleOutputIDs(r, db)
	restore()
	if _, k1, _ := StrategyCounters(); k1 != k0+1 {
		t.Fatalf("backtrack counter %d, want %d", k1, k0+1)
	}
}
