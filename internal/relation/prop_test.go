package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// setModel is the reference implementation a TupleSet must agree
// with: a plain map from id to presence.
type setModel map[TupleID]bool

func (m setModel) ids() []TupleID {
	out := make([]TupleID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAgainstModel verifies every observation of s against m.
func checkAgainstModel(t *testing.T, trial int, s *TupleSet, m setModel) {
	t.Helper()
	if s.Len() != len(m) {
		t.Fatalf("trial %d: Len = %d, model has %d", trial, s.Len(), len(m))
	}
	if s.Empty() != (len(m) == 0) {
		t.Fatalf("trial %d: Empty = %v with %d model elements", trial, s.Empty(), len(m))
	}
	want := m.ids()
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("trial %d: IDs returned %d ids, want %d", trial, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trial %d: IDs[%d] = %d, want %d (iteration must be ascending)", trial, i, got[i], want[i])
		}
	}
	// Membership probes, including ids beyond the allocated words.
	for probe := TupleID(0); probe < 200; probe += 7 {
		if s.Has(probe) != m[probe] {
			t.Fatalf("trial %d: Has(%d) = %v, model says %v", trial, probe, s.Has(probe), m[probe])
		}
	}
}

// TestTupleSetMatchesMapModel drives a TupleSet and a map model with
// the same random operation sequence and checks they never disagree,
// mirroring the cross-check style of internal/cograph/prop_test.go.
func TestTupleSetMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		s := &TupleSet{}
		m := setModel{}
		ops := rng.Intn(120)
		for op := 0; op < ops; op++ {
			id := TupleID(rng.Intn(150)) // spans multiple 64-bit words
			switch rng.Intn(3) {
			case 0, 1: // Add, biased so sets are nonempty
				added := s.Add(id)
				if added == m[id] {
					t.Fatalf("trial %d: Add(%d) = %v, model already had it: %v", trial, id, added, m[id])
				}
				m[id] = true
			case 2: // pure probe
				if s.Has(id) != m[id] {
					t.Fatalf("trial %d: Has(%d) = %v, model says %v", trial, id, s.Has(id), m[id])
				}
			}
		}
		checkAgainstModel(t, trial, s, m)

		clone := s.Clone()
		checkAgainstModel(t, trial, clone, m)
	}
}

// binaryOp pairs a TupleSet mutation with its model counterpart.
type binaryOp struct {
	name  string
	apply func(a, b *TupleSet)
	model func(ma, mb setModel) setModel
}

// TestTupleSetBinaryOpsMatchMapModel checks Union / Intersect /
// Subtract and the pure predicates against set algebra on the model.
func TestTupleSetBinaryOpsMatchMapModel(t *testing.T) {
	ops := []binaryOp{
		{"Union", func(a, b *TupleSet) { a.Union(b) }, func(ma, mb setModel) setModel {
			out := setModel{}
			for id := range ma {
				out[id] = true
			}
			for id := range mb {
				out[id] = true
			}
			return out
		}},
		{"Intersect", func(a, b *TupleSet) { a.Intersect(b) }, func(ma, mb setModel) setModel {
			out := setModel{}
			for id := range ma {
				if mb[id] {
					out[id] = true
				}
			}
			return out
		}},
		{"Subtract", func(a, b *TupleSet) { a.Subtract(b) }, func(ma, mb setModel) setModel {
			out := setModel{}
			for id := range ma {
				if !mb[id] {
					out[id] = true
				}
			}
			return out
		}},
	}
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 300; trial++ {
		// Two random sets with deliberately different word counts so
		// length-mismatch paths are exercised.
		buildOne := func(max int) (*TupleSet, setModel) {
			s, m := &TupleSet{}, setModel{}
			for i := 0; i < rng.Intn(40); i++ {
				id := TupleID(rng.Intn(max))
				s.Add(id)
				m[id] = true
			}
			return s, m
		}
		a, ma := buildOne(1 + rng.Intn(190))
		b, mb := buildOne(1 + rng.Intn(190))

		// Pure predicates first, before a is mutated.
		wantSubset := true
		for id := range ma {
			if !mb[id] {
				wantSubset = false
				break
			}
		}
		if a.SubsetOf(b) != wantSubset {
			t.Fatalf("trial %d: SubsetOf = %v, model says %v", trial, a.SubsetOf(b), wantSubset)
		}
		wantIntersects := false
		for id := range ma {
			if mb[id] {
				wantIntersects = true
				break
			}
		}
		if a.Intersects(b) != wantIntersects {
			t.Fatalf("trial %d: Intersects = %v, model says %v", trial, a.Intersects(b), wantIntersects)
		}
		sameModel := len(ma) == len(mb) && wantSubset
		if a.Equal(b) != sameModel {
			t.Fatalf("trial %d: Equal = %v, model says %v", trial, a.Equal(b), sameModel)
		}
		if (a.Key() == b.Key()) != sameModel {
			t.Fatalf("trial %d: Key collision disagreement: equal=%v keys equal=%v",
				trial, sameModel, a.Key() == b.Key())
		}

		op := ops[trial%len(ops)]
		t.Run(fmt.Sprintf("%s/%d", op.name, trial), func(t *testing.T) {
			ac := a.Clone()
			op.apply(ac, b)
			checkAgainstModel(t, trial, ac, op.model(ma, mb))
		})
	}
}
