package relation

import (
	"math/rand"
	"sort"
	"testing"
)

func colTestDB(t *testing.T) (*Database, RelID, []Const) {
	t.Helper()
	s := NewSchema()
	d := NewDomain()
	edge := s.MustDeclare("edge", 2, Input)
	db := NewDatabase(s, d)
	consts := make([]Const, 6)
	for i := range consts {
		consts[i] = d.Intern(string(rune('a' + i)))
	}
	for i := 0; i < 5; i++ {
		db.Insert(NewTuple(edge, consts[i], consts[(i+1)%5]))
	}
	return db, edge, consts
}

func TestAtColumnSetMatchesPosting(t *testing.T) {
	db, edge, consts := colTestDB(t)
	for col := 0; col < 2; col++ {
		for _, c := range consts {
			ids := db.AtColumn(edge, col, c)
			set := db.AtColumnSet(edge, col, c)
			if len(ids) == 0 {
				if set != nil {
					t.Fatalf("col %d const %d: empty posting but non-nil set", col, c)
				}
				continue
			}
			if set.Len() != len(ids) {
				t.Fatalf("col %d const %d: set len %d, posting len %d", col, c, set.Len(), len(ids))
			}
			for _, id := range ids {
				if !set.Has(id) {
					t.Fatalf("col %d const %d: posting id %d missing from set", col, c, id)
				}
			}
			// Cached: same pointer on re-request while unchanged.
			if again := db.AtColumnSet(edge, col, c); again != set {
				t.Fatalf("col %d const %d: cache miss on unchanged posting", col, c)
			}
		}
	}
}

func TestAtColumnSetInvalidatesAcrossGenerations(t *testing.T) {
	db, edge, consts := colTestDB(t)
	before := db.AtColumnSet(edge, 0, consts[0])
	n0 := before.Len()
	cs0 := db.ColumnConstSet(edge, 1)
	if cs0.Has(consts[5]) {
		t.Fatal("constant f present before overlay insert")
	}

	// Freeze (interning) then land an overlay fact reusing column-0
	// constant a and introducing f in column 1.
	db.InternTuple(NewTuple(edge, consts[0], consts[0]))
	db.BeginGeneration()
	id := db.Insert(NewTuple(edge, consts[0], consts[5]))

	after := db.AtColumnSet(edge, 0, consts[0])
	if after.Len() != n0+1 || !after.Has(id) {
		t.Fatalf("overlay fact not visible: len %d want %d, has=%v", after.Len(), n0+1, after.Has(id))
	}
	if !db.ColumnConstSet(edge, 1).Has(consts[5]) {
		t.Fatal("new constant not visible in column const set after overlay insert")
	}
	// The pre-overlay view object must have been rebuilt, not mutated.
	if before.Has(id) {
		t.Fatal("stale cached view mutated in place")
	}
}

func TestColumnDistinct(t *testing.T) {
	db, edge, _ := colTestDB(t)
	for col := 0; col < 2; col++ {
		want := make(map[Const]bool)
		for _, id := range db.Extent(edge) {
			want[db.Tuple(id).Args[col]] = true
		}
		if got := db.ColumnDistinct(edge, col); got != len(want) {
			t.Fatalf("col %d: distinct %d, want %d", col, got, len(want))
		}
	}
	if db.ColumnDistinct(edge, 7) != 0 {
		t.Fatal("out-of-range column should report 0")
	}
}

func TestIntersectSortedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		// Skewed sizes to exercise both the merge and gallop paths.
		na, nb := rng.Intn(40), rng.Intn(40)*rng.Intn(20)
		a, b := randomSortedIDs(rng, na, 300), randomSortedIDs(rng, nb, 300)
		got := IntersectSortedIDs(nil, a, b)
		inB := make(map[TupleID]bool, len(b))
		for _, id := range b {
			inB[id] = true
		}
		var want []TupleID
		for _, id := range a {
			if inB[id] {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestFilterSortedBySet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSortedIDs(rng, 50, 200)
	s := &TupleSet{}
	for _, id := range a {
		if rng.Intn(2) == 0 {
			s.Add(id)
		}
	}
	got := FilterSortedBySet(nil, a, s)
	for _, id := range got {
		if !s.Has(id) {
			t.Fatalf("id %d not in filter set", id)
		}
	}
	n := 0
	for _, id := range a {
		if s.Has(id) {
			n++
		}
	}
	if len(got) != n {
		t.Fatalf("kept %d ids, want %d", len(got), n)
	}
	if FilterSortedBySet(nil, a, nil) != nil {
		t.Fatal("nil set should filter everything")
	}
}

func TestConstSetBasics(t *testing.T) {
	var s ConstSet
	if s.Has(3) || s.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add newness misreported")
	}
	s.Add(200)
	if !s.Has(3) || !s.Has(200) || s.Has(4) || s.Len() != 2 {
		t.Fatal("membership wrong")
	}
	var got []Const
	s.Iterate(func(c Const) bool { got = append(got, c); return true })
	if len(got) != 2 || got[0] != 3 || got[1] != 200 {
		t.Fatalf("iterate order %v", got)
	}
	s.Reset()
	if s.Len() != 0 || s.Has(3) {
		t.Fatal("reset did not empty")
	}
}

func randomSortedIDs(rng *rand.Rand, n, max int) []TupleID {
	if n > max {
		n = max
	}
	seen := make(map[TupleID]bool)
	for len(seen) < n {
		seen[TupleID(rng.Intn(max))] = true
	}
	out := make([]TupleID, 0, n)
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
