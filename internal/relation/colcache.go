package relation

import "sync"

// Columnar views over the Database's posting lists, for the batch
// (set-at-a-time) evaluator: bitset forms of per-column indexes that
// make repeated membership probes word-cheap. Views are cached — the
// synthesizers evaluate thousands of candidate rules against one
// database, and the same (relation, column, constant) keys recur
// constantly (anchor constants of the target tuple) — and each entry
// is stamped with the size of the index it was built from. Extents,
// posting lists, and column maps are append-only (base inserts during
// the load phase, sortedInsert during overlay generations), so "the
// stamp still matches" is exactly "the view is still current": any
// BeginGeneration overlay insert that touches an indexed list grows
// it and invalidates the affected entries, and no other mutation
// exists. Untouched entries survive generation changes, which is what
// keeps incremental sessions warm.
//
// The cache is filled lazily under a lock; hits take a read lock.
// That is safe against the Database's concurrency contract: reads
// (including cache fills) may run concurrently, overlay mutation is a
// between-runs operation and never races a reader.

// colCache holds the lazily built columnar views.
type colCache struct {
	mu sync.RWMutex
	// sets caches AtColumnSet: (rel, col, const) -> bitset of the
	// posting list, stamped with the posting length at build time.
	sets map[colSetKey]*colSetEntry
	// consts caches ColumnConstSet: (rel, col) -> bitset of the
	// constants present, stamped with the column map's size (the map
	// gains a key exactly when a never-seen constant arrives).
	consts map[colConstKey]*colConstEntry
}

type colSetKey struct {
	rel RelID
	col int32
	c   Const
}

type colSetEntry struct {
	set   *TupleSet
	stamp int // len of the posting list when built
}

type colConstKey struct {
	rel RelID
	col int32
}

type colConstEntry struct {
	set   *ConstSet
	stamp int // len of byCol[rel][col] when built
}

// AtColumnSet returns the tuples of relation r holding constant c in
// column col, as a bitset over the database's tuple ids. The view is
// cached and revalidated against the posting list's current length,
// so it stays correct across overlay generations. The returned set is
// shared; callers must not mutate it. Returns nil when no such tuple
// exists.
func (db *Database) AtColumnSet(r RelID, col int, c Const) *TupleSet {
	ids := db.AtColumn(r, col, c)
	if len(ids) == 0 {
		return nil
	}
	key := colSetKey{rel: r, col: int32(col), c: c}
	cc := &db.cols
	cc.mu.RLock()
	e := cc.sets[key]
	cc.mu.RUnlock()
	if e != nil && e.stamp == len(ids) {
		return e.set
	}
	set := NewTupleSet(int(ids[len(ids)-1]) + 1)
	for _, id := range ids {
		set.Add(id)
	}
	cc.mu.Lock()
	if cc.sets == nil {
		cc.sets = make(map[colSetKey]*colSetEntry)
	}
	cc.sets[key] = &colSetEntry{set: set, stamp: len(ids)}
	cc.mu.Unlock()
	return set
}

// ColumnConstSet returns the set of constants appearing in column col
// of relation r, as a bitset over the domain. The view is cached and
// revalidated against the column index's current size. The returned
// set is shared; callers must not mutate it. Returns nil when the
// column is empty.
func (db *Database) ColumnConstSet(r RelID, col int) *ConstSet {
	if int(r) >= len(db.byCol) || col >= len(db.byCol[r]) {
		return nil
	}
	m := db.byCol[r][col]
	if len(m) == 0 {
		return nil
	}
	key := colConstKey{rel: r, col: int32(col)}
	cc := &db.cols
	cc.mu.RLock()
	e := cc.consts[key]
	cc.mu.RUnlock()
	if e != nil && e.stamp == len(m) {
		return e.set
	}
	set := &ConstSet{}
	for c := range m {
		set.Add(c)
	}
	cc.mu.Lock()
	if cc.consts == nil {
		cc.consts = make(map[colConstKey]*colConstEntry)
	}
	cc.consts[key] = &colConstEntry{set: set, stamp: len(m)}
	cc.mu.Unlock()
	return set
}

// ColumnDistinct reports the number of distinct constants appearing
// in column col of relation r — the planner's static selectivity
// stat: a column with many distinct values splits its extent into
// short posting lists, so probing it first keeps index joins cheap.
func (db *Database) ColumnDistinct(r RelID, col int) int {
	if int(r) >= len(db.byCol) || col >= len(db.byCol[r]) {
		return 0
	}
	return len(db.byCol[r][col])
}
