package relation

import "testing"

func aliasTestDB(t *testing.T) (*Database, RelID, []Const) {
	t.Helper()
	s := NewSchema()
	d := NewDomain()
	edge := s.MustDeclare("edge", 2, Input)
	a, b := d.Intern("a"), d.Intern("b")
	return NewDatabase(s, d), edge, []Const{a, b}
}

// TestInsertCopiesArgs is the regression test for the NewTuple
// aliasing footgun: Insert must copy the argument slice at the
// boundary, so callers mutating their slice afterwards (e.g. a reused
// scratch buffer) cannot corrupt stored tuples or the index.
func TestInsertCopiesArgs(t *testing.T) {
	db, edge, args := aliasTestDB(t)
	c := db.Domain.Intern("c")

	db.Insert(NewTuple(edge, args...))
	want := append([]Const(nil), args...)

	// Mutate the source slice after construction + insertion.
	args[0] = c
	args[1] = c

	got := db.Tuple(0)
	if len(got.Args) != 2 || got.Args[0] != want[0] || got.Args[1] != want[1] {
		t.Fatalf("stored tuple corrupted by caller mutation: got %v, want %v", got.Args, want)
	}
	// The index must still find the tuple under its original key.
	if ids := db.AtColumn(edge, 0, want[0]); len(ids) != 1 {
		t.Fatalf("index lost the tuple after caller mutation: AtColumn = %v", ids)
	}
}

// TestInternTupleCopiesArgs: the intern table must be equally immune
// to callers reusing their argument buffers.
func TestInternTupleCopiesArgs(t *testing.T) {
	db, edge, args := aliasTestDB(t)
	c := db.Domain.Intern("c")

	id := db.InternTuple(NewTuple(edge, args...))
	want := append([]Const(nil), args...)

	args[0] = c
	args[1] = c

	got := db.TupleByID(id)
	if got.Args[0] != want[0] || got.Args[1] != want[1] {
		t.Fatalf("interned tuple corrupted by caller mutation: got %v, want %v", got.Args, want)
	}
	// Re-interning the original value must hit the same id, and the
	// mutated value must get a fresh one.
	if again := db.InternTuple(Tuple{Rel: edge, Args: want}); again != id {
		t.Fatalf("re-intern of original tuple = id %d, want %d", again, id)
	}
	if other := db.InternTuple(Tuple{Rel: edge, Args: []Const{c, c}}); other == id {
		t.Fatalf("distinct tuple interned to same id %d", id)
	}
}

// TestNewTupleCopy: the defensive constructor must detach from the
// caller's slice even before any Database boundary is crossed.
func TestNewTupleCopy(t *testing.T) {
	_, edge, args := aliasTestDB(t)
	tu := NewTupleCopy(edge, args)
	orig := args[0]
	args[0] = args[1]
	if tu.Args[0] != orig {
		t.Fatalf("NewTupleCopy aliased the caller's slice: got %v", tu.Args)
	}
}
