package relation

import "math/bits"

// ConstSet is a set of interned constants, represented as a bitset.
// Constants are dense (a Domain with n constants uses ids 0..n-1), so
// membership is one shift-and-mask — the batch evaluator uses ConstSet
// views of index columns to turn per-candidate "does rel hold this
// value?" probes from map lookups into bit tests.
//
// The zero value is an empty set ready for use. A ConstSet is not safe
// for concurrent mutation; concurrent reads are fine.
type ConstSet struct {
	words []uint64
	count int
}

// Add inserts c, growing the bitset as needed. It reports whether the
// constant was newly added.
func (s *ConstSet) Add(c Const) bool {
	w, b := int(c)>>6, uint(c)&63
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.count++
	return true
}

// Has reports whether c is in the set.
func (s *ConstSet) Has(c Const) bool {
	w := int(c) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(c)&63)) != 0
}

// Len reports the cardinality of the set.
func (s *ConstSet) Len() int { return s.count }

// Reset empties the set, retaining capacity.
func (s *ConstSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// Iterate calls f on each constant in ascending order; returning
// false stops the iteration early.
func (s *ConstSet) Iterate(f func(Const) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(Const(i<<6 + b)) {
				return
			}
			w &= w - 1
		}
	}
}
