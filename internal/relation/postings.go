package relation

import "sort"

// Sorted-slice set algebra over posting lists. Database index lists
// (extents, per-column postings) hold ascending TupleIDs, so the batch
// evaluator can intersect them directly — no bitset materialization —
// with the classic galloping (exponential-probe) scheme: linear when
// the lists are similar in size, logarithmic per element when one list
// is much shorter than the other.

// IntersectSortedIDs appends to dst the ids present in both a and b
// (each ascending, duplicate-free) and returns the extended slice.
// Pass dst = buf[:0] to reuse a scratch buffer; dst must not alias a
// or b.
func IntersectSortedIDs(dst, a, b []TupleID) []TupleID {
	// Gallop from the shorter list into the longer one.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	// When the lists are close in size, a linear merge beats repeated
	// binary probes; 16× is the conventional crossover.
	if len(b) <= 16*len(a) {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				dst = append(dst, a[i])
				i++
				j++
			}
		}
		return dst
	}
	lo := 0
	for _, id := range a {
		lo += gallop(b[lo:], id)
		if lo < len(b) && b[lo] == id {
			dst = append(dst, id)
			lo++
		}
	}
	return dst
}

// gallop returns the index of the first element of s that is >= id,
// probing exponentially from the front before binary-searching the
// bracketed run. s is ascending.
func gallop(s []TupleID, id TupleID) int {
	bound := 1
	for bound < len(s) && s[bound] < id {
		bound <<= 1
	}
	lo := bound >> 1
	hi := bound
	if hi > len(s) {
		hi = len(s)
	}
	return lo + sort.Search(hi-lo, func(k int) bool { return s[lo+k] >= id })
}

// FilterSortedBySet appends to dst the ids of a that are members of s
// and returns the extended slice. a is ascending; the output stays
// ascending. Pass dst = buf[:0] to reuse a scratch buffer; dst must
// not alias a.
func FilterSortedBySet(dst, a []TupleID, s *TupleSet) []TupleID {
	if s == nil {
		return dst
	}
	for _, id := range a {
		if s.Has(id) {
			dst = append(dst, id)
		}
	}
	return dst
}
