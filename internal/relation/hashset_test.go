package relation

import (
	"math/rand"
	"testing"
)

func TestIDSetHashExtendMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(12)
		seen := map[TupleID]bool{}
		ids := make([]TupleID, 0, n)
		for len(ids) < n {
			id := TupleID(rng.Intn(1 << 20))
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sortIDs(ids)
		var extra TupleID
		for {
			extra = TupleID(rng.Intn(1 << 20))
			if !seen[extra] {
				break
			}
		}
		got := IDSetHashExtend(ids, extra)
		merged := make([]TupleID, 0, len(ids)+1)
		merged = append(merged, ids...)
		merged = append(merged, extra)
		sortIDs(merged)
		if want := IDSetHash(merged); got != want {
			t.Fatalf("incremental hash %x != materialized %x for %v + %d", got, want, ids, extra)
		}
	}
}

func sortIDs(ids []TupleID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func TestIDSetHashDistinguishes(t *testing.T) {
	// Pairwise-distinct small sets must not collide (a collision here
	// would be a catastrophic hash bug, not bad luck: 2^-64 per pair).
	sets := [][]TupleID{
		nil,
		{0},
		{1},
		{258},
		{1, 2},
		{1, 3},
		{2, 1<<20 - 1},
		{1, 2, 3},
	}
	hashes := map[uint64][]TupleID{}
	for _, s := range sets {
		h := IDSetHash(s)
		if prev, dup := hashes[h]; dup {
			t.Fatalf("collision: %v and %v both hash to %x", prev, s, h)
		}
		hashes[h] = s
	}
}

func TestHashSet64(t *testing.T) {
	var s HashSet64
	if s.Has(42) {
		t.Error("empty set reports membership")
	}
	if !s.Add(42) {
		t.Error("first Add reported duplicate")
	}
	if s.Add(42) {
		t.Error("second Add reported fresh")
	}
	if !s.Has(42) || s.Len() != 1 {
		t.Errorf("membership/len wrong after insert: len=%d", s.Len())
	}
	// The zero fingerprint is remapped, not lost.
	if !s.Add(0) || s.Add(0) || !s.Has(0) {
		t.Error("zero fingerprint mishandled")
	}
}

func TestHashSet64GrowAndReset(t *testing.T) {
	var s HashSet64
	const n = 10_000
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if !s.Add(keys[i]) {
			t.Fatalf("Add(%x) reported duplicate on first insert", keys[i])
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for _, k := range keys {
		if !s.Has(k) {
			t.Fatalf("lost key %x after growth", k)
		}
		if s.Add(k) {
			t.Fatalf("re-Add(%x) reported fresh", k)
		}
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	for _, k := range keys[:100] {
		if s.Has(k) {
			t.Fatalf("key %x survived Reset", k)
		}
	}
	if !s.Add(keys[0]) {
		t.Error("Add after Reset reported duplicate")
	}
}
