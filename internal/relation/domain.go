// Package relation provides the relational data model that the EGS
// synthesizer and its baselines operate over: interned constants
// (Domain), relation schemas (Schema), ground tuples (Tuple), and
// indexed extensional databases (Database).
//
// The model corresponds to Section 3 of "Example-Guided Synthesis of
// Relational Queries" (PLDI 2021): a data domain D of constants, a set
// of named relations each with a fixed arity, and databases as finite
// sets of tuples. Constants and relation names are interned to small
// integer identifiers so that the synthesizer's inner loops (query
// evaluation, co-occurrence graph traversal) never compare strings.
package relation

import (
	"fmt"
	"sort"
)

// Const identifies an interned constant of the data domain D.
// Constants are dense: a Domain with n constants uses ids 0..n-1.
type Const int32

// Domain is the data domain D: an interning table for constants.
// The zero value is not ready for use; call NewDomain.
type Domain struct {
	byName map[string]Const
	names  []string
}

// NewDomain returns an empty data domain.
func NewDomain() *Domain {
	return &Domain{byName: make(map[string]Const)}
}

// Intern returns the id for the constant with the given spelling,
// creating it if necessary.
func (d *Domain) Intern(name string) Const {
	if c, ok := d.byName[name]; ok {
		return c
	}
	c := Const(len(d.names))
	d.byName[name] = c
	d.names = append(d.names, name)
	return c
}

// Lookup returns the id of an already-interned constant.
func (d *Domain) Lookup(name string) (Const, bool) {
	c, ok := d.byName[name]
	return c, ok
}

// Name returns the spelling of constant c.
func (d *Domain) Name(c Const) string {
	if int(c) < 0 || int(c) >= len(d.names) {
		return fmt.Sprintf("<const:%d>", int32(c))
	}
	return d.names[c]
}

// Size reports the number of interned constants, |D|.
func (d *Domain) Size() int { return len(d.names) }

// Constants returns all constants in id order. The returned slice is
// freshly allocated and safe for the caller to mutate.
func (d *Domain) Constants() []Const {
	cs := make([]Const, len(d.names))
	for i := range cs {
		cs[i] = Const(i)
	}
	return cs
}

// Names returns the spellings of all constants, sorted
// lexicographically. Useful for deterministic output.
func (d *Domain) Names() []string {
	ns := append([]string(nil), d.names...)
	sort.Strings(ns)
	return ns
}
