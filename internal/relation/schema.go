package relation

import (
	"fmt"
	"sort"
)

// RelID identifies an interned relation name. Relation ids are dense:
// a Schema with n relations uses ids 0..n-1.
type RelID int32

// Kind classifies a relation as input (extensional, drawn from I) or
// output (intensional, the head relations O of synthesized queries).
type Kind uint8

const (
	// Input marks an extensional relation: its tuples are given.
	Input Kind = iota
	// Output marks an intensional relation: its tuples are derived.
	Output
)

func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// RelInfo describes one declared relation.
type RelInfo struct {
	Name  string
	Arity int
	Kind  Kind
}

// Schema is the interning table for relation names, recording the
// arity and kind of each. The zero value is not ready for use; call
// NewSchema.
type Schema struct {
	byName map[string]RelID
	rels   []RelInfo
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{byName: make(map[string]RelID)}
}

// Declare interns a relation with the given name, arity, and kind. It
// returns an error if the relation was already declared with a
// different arity or kind. Re-declaring identically is a no-op.
func (s *Schema) Declare(name string, arity int, kind Kind) (RelID, error) {
	if arity < 1 {
		return 0, fmt.Errorf("relation %s: arity must be at least 1, got %d", name, arity)
	}
	if id, ok := s.byName[name]; ok {
		ri := s.rels[id]
		if ri.Arity != arity {
			return 0, fmt.Errorf("relation %s redeclared with arity %d (was %d)", name, arity, ri.Arity)
		}
		if ri.Kind != kind {
			return 0, fmt.Errorf("relation %s redeclared as %v (was %v)", name, kind, ri.Kind)
		}
		return id, nil
	}
	id := RelID(len(s.rels))
	s.byName[name] = id
	s.rels = append(s.rels, RelInfo{Name: name, Arity: arity, Kind: kind})
	return id, nil
}

// MustDeclare is Declare for static schemas known to be consistent;
// it panics on error.
func (s *Schema) MustDeclare(name string, arity int, kind Kind) RelID {
	id, err := s.Declare(name, arity, kind)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the id of an already-declared relation.
func (s *Schema) Lookup(name string) (RelID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Info returns the descriptor of relation r.
func (s *Schema) Info(r RelID) RelInfo {
	if int(r) < 0 || int(r) >= len(s.rels) {
		return RelInfo{Name: fmt.Sprintf("<rel:%d>", int32(r)), Arity: 0}
	}
	return s.rels[r]
}

// Name returns the name of relation r.
func (s *Schema) Name(r RelID) string { return s.Info(r).Name }

// Arity returns the arity of relation r.
func (s *Schema) Arity(r RelID) int { return s.Info(r).Arity }

// Size reports the number of declared relations.
func (s *Schema) Size() int { return len(s.rels) }

// Relations returns the ids of all relations of the given kind, in a
// deterministic (name-sorted) order.
func (s *Schema) Relations(kind Kind) []RelID {
	var ids []RelID
	for id, ri := range s.rels {
		if ri.Kind == kind {
			ids = append(ids, RelID(id))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return s.Name(ids[i]) < s.Name(ids[j]) })
	return ids
}

// All returns the ids of every declared relation in id order.
func (s *Schema) All() []RelID {
	ids := make([]RelID, len(s.rels))
	for i := range ids {
		ids[i] = RelID(i)
	}
	return ids
}
