package relation

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestDomainIntern(t *testing.T) {
	d := NewDomain()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatalf("distinct names interned to same id %d", a)
	}
	if got := d.Intern("alpha"); got != a {
		t.Errorf("re-intern alpha = %d, want %d", got, a)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2", d.Size())
	}
	if d.Name(a) != "alpha" || d.Name(b) != "beta" {
		t.Errorf("Name round-trip failed: %q %q", d.Name(a), d.Name(b))
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) = ok, want missing")
	}
	if c, ok := d.Lookup("beta"); !ok || c != b {
		t.Errorf("Lookup(beta) = %d,%v want %d,true", c, ok, b)
	}
}

func TestDomainNameOutOfRange(t *testing.T) {
	d := NewDomain()
	if got := d.Name(Const(42)); got != "<const:42>" {
		t.Errorf("Name(42) = %q", got)
	}
}

func TestDomainEnumerations(t *testing.T) {
	d := NewDomain()
	d.Intern("zeta")
	d.Intern("alpha")
	cs := d.Constants()
	if len(cs) != 2 || cs[0] != 0 || cs[1] != 1 {
		t.Errorf("Constants = %v", cs)
	}
	ns := d.Names()
	if len(ns) != 2 || ns[0] != "alpha" || ns[1] != "zeta" {
		t.Errorf("Names = %v (want lexicographic)", ns)
	}
}

func TestKindString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Error("Kind strings wrong")
	}
	if Kind(7).String() != "Kind(7)" {
		t.Errorf("unknown Kind = %q", Kind(7).String())
	}
}

func TestSchemaInfoOutOfRange(t *testing.T) {
	s := NewSchema()
	if got := s.Info(RelID(9)).Name; got != "<rel:9>" {
		t.Errorf("Info(9).Name = %q", got)
	}
	if s.Arity(RelID(9)) != 0 {
		t.Error("out-of-range arity nonzero")
	}
}

func TestMustDeclarePanics(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("p", 1, Input)
	defer func() {
		if recover() == nil {
			t.Error("conflicting MustDeclare did not panic")
		}
	}()
	s.MustDeclare("p", 2, Input)
}

func TestDatabaseAllIDsAndAll(t *testing.T) {
	db, _, _, _ := buildTestDB(t)
	ids := db.AllIDs()
	all := db.All()
	if len(ids) != db.Size() || len(all) != db.Size() {
		t.Fatalf("AllIDs=%d All=%d Size=%d", len(ids), len(all), db.Size())
	}
	for i, id := range ids {
		if !db.Tuple(id).Equal(all[i]) {
			t.Fatal("AllIDs order disagrees with All")
		}
	}
	// All returns a copy.
	all[0].Args[0] = Const(99)
	if db.Tuple(0).Args[0] == Const(99) {
		t.Error("All shares argument storage with the database")
	}
}

func TestSchemaDeclare(t *testing.T) {
	s := NewSchema()
	edge, err := s.Declare("edge", 2, Input)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Declare("edge", 2, Input); err != nil {
		t.Errorf("identical redeclare errored: %v", err)
	}
	if _, err := s.Declare("edge", 3, Input); err == nil {
		t.Error("arity-conflicting redeclare did not error")
	}
	if _, err := s.Declare("edge", 2, Output); err == nil {
		t.Error("kind-conflicting redeclare did not error")
	}
	if _, err := s.Declare("zero", 0, Input); err == nil {
		t.Error("zero arity did not error")
	}
	if s.Arity(edge) != 2 || s.Name(edge) != "edge" {
		t.Errorf("Info mismatch: %+v", s.Info(edge))
	}
}

func TestSchemaRelationsByKind(t *testing.T) {
	s := NewSchema()
	s.MustDeclare("b", 1, Input)
	s.MustDeclare("a", 1, Input)
	s.MustDeclare("out", 1, Output)
	in := s.Relations(Input)
	if len(in) != 2 || s.Name(in[0]) != "a" || s.Name(in[1]) != "b" {
		t.Errorf("Relations(Input) = %v", in)
	}
	out := s.Relations(Output)
	if len(out) != 1 || s.Name(out[0]) != "out" {
		t.Errorf("Relations(Output) = %v", out)
	}
	if got := len(s.All()); got != 3 {
		t.Errorf("All() size = %d, want 3", got)
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Key must distinguish relation ids from argument values and
	// different arities with coinciding prefixes.
	cases := []Tuple{
		NewTuple(0, 1, 2),
		NewTuple(0, 2, 1),
		NewTuple(1, 1, 2),
		NewTuple(0, 1),
		NewTuple(0, 1, 2, 3),
		NewTuple(0),
	}
	seen := map[string]Tuple{}
	for _, tu := range cases {
		k := tu.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("Key collision between %v and %v", prev, tu)
		}
		seen[k] = tu
	}
}

func TestTupleKeyQuick(t *testing.T) {
	f := func(r1, r2 uint8, a1, a2 []uint8) bool {
		t1 := Tuple{Rel: RelID(r1), Args: make([]Const, len(a1))}
		for i, v := range a1 {
			t1.Args[i] = Const(v)
		}
		t2 := Tuple{Rel: RelID(r2), Args: make([]Const, len(a2))}
		for i, v := range a2 {
			t2.Args[i] = Const(v)
		}
		return (t1.Key() == t2.Key()) == t1.Equal(t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleSliceKey(t *testing.T) {
	tu := NewTuple(3, 7, 8, 9)
	if tu.SliceKey(3) != tu.Key() {
		t.Error("SliceKey(arity) != Key()")
	}
	if tu.SliceKey(1) == tu.SliceKey(2) {
		t.Error("distinct slices share a key")
	}
	other := NewTuple(3, 7, 9, 8)
	if tu.SliceKey(1) != other.SliceKey(1) {
		t.Error("equal 1-slices have different keys")
	}
}

func TestTupleCompareTotalOrder(t *testing.T) {
	ts := []Tuple{
		NewTuple(1, 0),
		NewTuple(0, 5),
		NewTuple(0, 1, 2),
		NewTuple(0, 1),
		NewTuple(0, 1, 1),
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	for i := 0; i+1 < len(ts); i++ {
		if ts[i].Compare(ts[i+1]) >= 0 {
			t.Fatalf("not sorted at %d: %v vs %v", i, ts[i], ts[i+1])
		}
	}
	if ts[0].Compare(ts[0]) != 0 {
		t.Error("Compare(self) != 0")
	}
}

func TestTupleString(t *testing.T) {
	s := NewSchema()
	d := NewDomain()
	edge := s.MustDeclare("edge", 2, Input)
	a, b := d.Intern("a"), d.Intern("b")
	tu := NewTuple(edge, a, b)
	if got := tu.String(s, d); got != "edge(a, b)" {
		t.Errorf("String = %q", got)
	}
	if !tu.Contains(a) || tu.Contains(d.Intern("c")) {
		t.Error("Contains misbehaves")
	}
}

func buildTestDB(t *testing.T) (*Database, RelID, RelID, []Const) {
	t.Helper()
	s := NewSchema()
	d := NewDomain()
	edge := s.MustDeclare("edge", 2, Input)
	color := s.MustDeclare("color", 1, Input)
	db := NewDatabase(s, d)
	a, b, c := d.Intern("a"), d.Intern("b"), d.Intern("c")
	db.Insert(NewTuple(edge, a, b))
	db.Insert(NewTuple(edge, b, c))
	db.Insert(NewTuple(edge, a, c))
	db.Insert(NewTuple(color, a))
	return db, edge, color, []Const{a, b, c}
}

func TestDatabaseInsertDedup(t *testing.T) {
	db, edge, _, cs := buildTestDB(t)
	n := db.Size()
	id1 := db.Insert(NewTuple(edge, cs[0], cs[1]))
	if db.Size() != n {
		t.Errorf("duplicate insert grew database to %d", db.Size())
	}
	id2, ok := db.ID(NewTuple(edge, cs[0], cs[1]))
	if !ok || id1 != id2 {
		t.Errorf("ID lookup = %d,%v want %d,true", id2, ok, id1)
	}
}

func TestDatabaseExtentAndIndex(t *testing.T) {
	db, edge, color, cs := buildTestDB(t)
	if got := db.ExtentSize(edge); got != 3 {
		t.Errorf("edge extent = %d, want 3", got)
	}
	if got := db.ExtentSize(color); got != 1 {
		t.Errorf("color extent = %d, want 1", got)
	}
	// a appears in column 0 of edge twice.
	if got := len(db.AtColumn(edge, 0, cs[0])); got != 2 {
		t.Errorf("AtColumn(edge,0,a) = %d, want 2", got)
	}
	if got := len(db.AtColumn(edge, 1, cs[2])); got != 2 {
		t.Errorf("AtColumn(edge,1,c) = %d, want 2", got)
	}
	if got := db.AtColumn(edge, 0, Const(99)); got != nil {
		t.Errorf("AtColumn unknown const = %v, want nil", got)
	}
	if got := db.AtColumn(RelID(9), 0, cs[0]); got != nil {
		t.Errorf("AtColumn unknown rel = %v, want nil", got)
	}
}

func TestDatabaseMentioning(t *testing.T) {
	db, _, _, cs := buildTestDB(t)
	// a is mentioned by edge(a,b), edge(a,c), color(a).
	if got := len(db.Mentioning(cs[0])); got != 3 {
		t.Errorf("Mentioning(a) = %d, want 3", got)
	}
	// b is mentioned by edge(a,b), edge(b,c).
	if got := len(db.Mentioning(cs[1])); got != 2 {
		t.Errorf("Mentioning(b) = %d, want 2", got)
	}
}

func TestDatabaseMentioningDedupSelfPair(t *testing.T) {
	s := NewSchema()
	d := NewDomain()
	edge := s.MustDeclare("edge", 2, Input)
	db := NewDatabase(s, d)
	a := d.Intern("a")
	db.Insert(NewTuple(edge, a, a))
	if got := len(db.Mentioning(a)); got != 1 {
		t.Errorf("Mentioning(a) with edge(a,a) = %d, want 1 (dedup)", got)
	}
}

func TestDatabaseConstantsOf(t *testing.T) {
	db, _, _, cs := buildTestDB(t)
	got := db.ConstantsOf([]TupleID{0, 3}) // edge(a,b), color(a)
	want := []Const{cs[0], cs[1]}
	if len(got) != len(want) {
		t.Fatalf("ConstantsOf = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ConstantsOf = %v, want %v", got, want)
		}
	}
}

func TestDatabaseSortedDeterministic(t *testing.T) {
	db, _, _, _ := buildTestDB(t)
	a := db.Sorted()
	b := db.Sorted()
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("Sorted not deterministic")
		}
	}
	for i := 0; i+1 < len(a); i++ {
		if a[i].Compare(a[i+1]) > 0 {
			t.Fatal("Sorted not sorted")
		}
	}
}
