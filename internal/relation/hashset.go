package relation

// This file provides the fingerprint machinery the synthesizers use to
// deduplicate enumeration contexts (sorted TupleID sets) without
// materializing a string key per candidate: a 64-bit set hash that can
// be computed incrementally for C ∪ {id} before the extended slice is
// ever allocated, and an open-addressed set of such fingerprints.

// hashSeed is the initial state of an id-set fingerprint (an arbitrary
// odd constant, the golden-ratio multiplier of Fibonacci hashing).
const hashSeed uint64 = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: a cheap invertible permutation of
// uint64 with full avalanche, so sequential tuple ids spread over the
// whole output range.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// IDSetHash fingerprints a sorted id set. Equal sets always collide;
// distinct sets collide with probability ~2^-64, which the worklist
// search accepts (a false collision drops one candidate context from a
// search that explores the same region through many overlapping
// contexts).
func IDSetHash(ids []TupleID) uint64 {
	h := hashSeed
	for _, id := range ids {
		h = mix64(h ^ uint64(uint32(id)))
	}
	return h
}

// IDSetHashExtend fingerprints ids ∪ {id} without materializing the
// extended slice, by folding the elements in sorted order. ids must be
// sorted ascending and must not already contain id; the result equals
// IDSetHash of the extended sorted set.
func IDSetHashExtend(ids []TupleID, id TupleID) uint64 {
	h := hashSeed
	inserted := false
	for _, x := range ids {
		if !inserted && id < x {
			h = mix64(h ^ uint64(uint32(id)))
			inserted = true
		}
		h = mix64(h ^ uint64(uint32(x)))
	}
	if !inserted {
		h = mix64(h ^ uint64(uint32(id)))
	}
	return h
}

// HashSet64 is an open-addressed, linear-probed set of uint64
// fingerprints. It replaces map[string]bool in the ExplainCell visited
// set: no per-key string allocation, one cache line per probe. The
// zero value is an empty set ready for use.
type HashSet64 struct {
	table []uint64 // 0 marks an empty slot
	n     int
}

// emptySlot is the table's vacancy marker; a genuine zero fingerprint
// is remapped to hashSeed so it remains storable.
const emptySlot uint64 = 0

// Add inserts h and reports whether it was newly added.
func (s *HashSet64) Add(h uint64) bool {
	if h == emptySlot {
		h = hashSeed
	}
	if 4*(s.n+1) > 3*len(s.table) {
		s.grow()
	}
	mask := uint64(len(s.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch s.table[i] {
		case emptySlot:
			s.table[i] = h
			s.n++
			return true
		case h:
			return false
		}
	}
}

// Has reports whether h is in the set.
func (s *HashSet64) Has(h uint64) bool {
	if len(s.table) == 0 {
		return false
	}
	if h == emptySlot {
		h = hashSeed
	}
	mask := uint64(len(s.table) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch s.table[i] {
		case emptySlot:
			return false
		case h:
			return true
		}
	}
}

// Len reports the number of fingerprints in the set.
func (s *HashSet64) Len() int { return s.n }

// Reset empties the set, retaining capacity.
func (s *HashSet64) Reset() {
	for i := range s.table {
		s.table[i] = emptySlot
	}
	s.n = 0
}

// grow doubles the table (min 64 slots) and rehashes.
func (s *HashSet64) grow() {
	size := 64
	if len(s.table) > 0 {
		size = 2 * len(s.table)
	}
	old := s.table
	s.table = make([]uint64, size)
	mask := uint64(size - 1)
	for _, h := range old {
		if h == emptySlot {
			continue
		}
		for i := h & mask; ; i = (i + 1) & mask {
			if s.table[i] == emptySlot {
				s.table[i] = h
				break
			}
		}
	}
}
