package relation

import (
	"sort"
	"testing"
)

// freezeDB builds the shared test database and closes its load phase
// by interning a non-fact tuple, the way a synthesis run's first
// derived tuple would.
func freezeDB(t *testing.T) (*Database, RelID, RelID, []Const, TupleID) {
	t.Helper()
	db, edge, color, cs := buildTestDB(t)
	derived := db.InternTuple(NewTuple(color, cs[2])) // color(c): interned, not a fact
	return db, edge, color, cs, derived
}

func TestOverlayInsertAfterFreeze(t *testing.T) {
	db, edge, _, cs, derived := freezeDB(t)
	base := db.Size()
	baseIDs := db.AllIDs()

	if db.Generation() != 0 {
		t.Fatalf("fresh database generation = %d, want 0", db.Generation())
	}
	id := db.Insert(NewTuple(edge, cs[2], cs[0])) // edge(c,a)
	if int(id) < base {
		t.Fatalf("overlay insert got base-region id %d", id)
	}
	if db.Generation() != 1 {
		t.Errorf("generation after first overlay insert = %d, want 1", db.Generation())
	}
	if g, ok := db.GenerationOf(id); !ok || g != 1 {
		t.Errorf("GenerationOf(%d) = %d,%v want 1,true", id, g, ok)
	}
	if db.Size() != base+1 {
		t.Errorf("Size = %d, want %d", db.Size(), base+1)
	}

	// Pre-existing ids are untouched.
	for _, old := range baseIDs {
		if g, ok := db.GenerationOf(old); !ok || g != 0 {
			t.Fatalf("base id %d generation = %d,%v", old, g, ok)
		}
	}
	if got := db.TupleByID(derived); !got.Equal(db.Tuple(derived)) {
		t.Error("interned tuple no longer resolvable")
	}

	// Duplicate overlay insert returns the same id.
	if again := db.Insert(NewTuple(edge, cs[2], cs[0])); again != id {
		t.Errorf("duplicate overlay insert = %d, want %d", again, id)
	}
	if db.Size() != base+1 {
		t.Errorf("duplicate overlay insert grew Size to %d", db.Size())
	}

	// The fact is visible on every read path.
	if !db.Contains(NewTuple(edge, cs[2], cs[0])) {
		t.Error("Contains misses the overlay fact")
	}
	if got, ok := db.ID(NewTuple(edge, cs[2], cs[0])); !ok || got != id {
		t.Errorf("ID = %d,%v want %d,true", got, ok, id)
	}
	if ext := db.Extent(edge); ext[len(ext)-1] != id {
		t.Errorf("Extent(edge) = %v, missing overlay id %d", ext, id)
	}
	if at := db.AtColumn(edge, 0, cs[2]); len(at) != 1 || at[0] != id {
		t.Errorf("AtColumn(edge,0,c) = %v, want [%d]", at, id)
	}
	found := false
	for _, m := range db.Mentioning(cs[2]) {
		if m == id {
			found = true
		}
	}
	if !found {
		t.Errorf("Mentioning(c) = %v, missing %d", db.Mentioning(cs[2]), id)
	}
	ids := db.AllIDs()
	if len(ids) != base+1 || ids[len(ids)-1] != id {
		t.Errorf("AllIDs = %v", ids)
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Error("AllIDs not ascending")
	}
}

// TestOverlayPromotesInternedTuple: a tuple first seen as an interned
// example/derived tuple keeps its id when it later becomes a fact,
// and index lists stay sorted even though that id is older than other
// overlay facts.
func TestOverlayPromotesInternedTuple(t *testing.T) {
	db, edge, color, cs, derived := freezeDB(t)

	// A newer overlay fact first, so the promotion below lands an id
	// *smaller* than an id already in the color extent.
	later := db.Insert(NewTuple(color, cs[1])) // color(b)
	if later <= derived {
		t.Fatalf("expected later id: later=%d derived=%d", later, derived)
	}
	promoted := db.Insert(NewTuple(color, cs[2])) // the interned color(c)
	if promoted != derived {
		t.Fatalf("promotion changed id: %d -> %d", derived, promoted)
	}
	if g, ok := db.GenerationOf(promoted); !ok || g != 1 {
		t.Errorf("GenerationOf(promoted) = %d,%v want 1,true", g, ok)
	}
	ext := db.Extent(color)
	if !sort.SliceIsSorted(ext, func(i, j int) bool { return ext[i] < ext[j] }) {
		t.Errorf("Extent(color) = %v, not ascending after promotion", ext)
	}
	has := func(ids []TupleID, want TupleID) bool {
		for _, id := range ids {
			if id == want {
				return true
			}
		}
		return false
	}
	if !has(ext, promoted) || !has(ext, later) {
		t.Errorf("Extent(color) = %v, want both %d and %d", ext, promoted, later)
	}
	if !has(db.Mentioning(cs[2]), promoted) {
		t.Error("Mentioning misses promoted fact")
	}
	_ = edge
}

func TestOverlayGenerationsAndSnapshot(t *testing.T) {
	db, edge, _, cs, _ := freezeDB(t)

	snap0 := db.Snapshot()
	id1 := db.Insert(NewTuple(edge, cs[2], cs[0])) // generation 1
	snap1 := db.Snapshot()
	if g := db.BeginGeneration(); g != 2 {
		t.Fatalf("BeginGeneration = %d, want 2", g)
	}
	id2 := db.Insert(NewTuple(edge, cs[2], cs[1])) // generation 2
	snap2 := db.Snapshot()

	if g, _ := db.GenerationOf(id1); g != 1 {
		t.Errorf("id1 generation = %d, want 1", g)
	}
	if g, _ := db.GenerationOf(id2); g != 2 {
		t.Errorf("id2 generation = %d, want 2", g)
	}

	// snap0 sees neither overlay fact; snap1 sees only id1; snap2 both.
	if snap0.Has(id1) || snap0.Has(id2) {
		t.Error("generation-0 snapshot sees overlay facts")
	}
	if !snap1.Has(id1) || snap1.Has(id2) {
		t.Error("generation-1 snapshot visibility wrong")
	}
	if !snap2.Has(id1) || !snap2.Has(id2) {
		t.Error("generation-2 snapshot visibility wrong")
	}
	if !snap0.Has(0) {
		t.Error("snapshot hides base facts")
	}

	base := len(db.tuples)
	if snap0.Size() != base || snap1.Size() != base+1 || snap2.Size() != base+2 {
		t.Errorf("snapshot sizes = %d,%d,%d want %d,%d,%d",
			snap0.Size(), snap1.Size(), snap2.Size(), base, base+1, base+2)
	}

	ext0 := snap0.Extent(edge)
	for _, id := range ext0 {
		if int(id) >= base {
			t.Errorf("snap0.Extent leaked overlay id %d", id)
		}
	}
	ext1 := snap1.Extent(edge)
	if ext1[len(ext1)-1] != id1 {
		t.Errorf("snap1.Extent = %v, want final id %d", ext1, id1)
	}
	ext2 := snap2.Extent(edge)
	if len(ext2) != len(db.Extent(edge)) {
		t.Errorf("current-generation snapshot filtered Extent: %v", ext2)
	}

	// Old snapshots remain consistent as the database keeps growing.
	db.BeginGeneration()
	id3 := db.Insert(NewTuple(edge, cs[1], cs[0]))
	if snap1.Has(id3) || snap2.Has(id3) {
		t.Error("old snapshot sees a generation-3 fact")
	}
	if m := snap0.Mentioning(cs[2]); has(m, id1) || has(m, id2) {
		t.Errorf("snap0.Mentioning = %v leaks overlay facts", m)
	}
	if at := snap1.AtColumn(edge, 0, cs[2]); len(at) != 1 || at[0] != id1 {
		t.Errorf("snap1.AtColumn = %v, want [%d]", at, id1)
	}
}

func has(ids []TupleID, want TupleID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}
