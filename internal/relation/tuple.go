package relation

import (
	"strings"
)

// Tuple is a ground fact R(c1, ..., ck): an interned relation id
// together with k interned constants.
type Tuple struct {
	Rel  RelID
	Args []Const
}

// NewTuple builds a tuple. The args slice is used directly (not
// copied); callers that reuse buffers must copy first or use
// NewTupleCopy. Database.Insert and Database.InternTuple copy at
// their boundary, so tuples handed to a Database are safe either way.
func NewTuple(rel RelID, args ...Const) Tuple {
	return Tuple{Rel: rel, Args: args}
}

// NewTupleCopy builds a tuple over a private copy of args. Use it
// when the argument slice is a reused buffer (parser scratch space,
// enumeration cursors) that may be overwritten after construction.
func NewTupleCopy(rel RelID, args []Const) Tuple {
	return Tuple{Rel: rel, Args: append([]Const(nil), args...)}
}

// Equal reports whether two tuples are identical.
func (t Tuple) Equal(u Tuple) bool {
	if t.Rel != u.Rel || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if t.Args[i] != u.Args[i] {
			return false
		}
	}
	return true
}

// Key encodes the tuple into a compact string usable as a map key.
// The encoding is injective across tuples of any relation and arity.
func (t Tuple) Key() string {
	var b strings.Builder
	b.Grow(4 + 4*len(t.Args))
	putInt32(&b, int32(t.Rel))
	for _, a := range t.Args {
		putInt32(&b, int32(a))
	}
	return b.String()
}

// SliceKey encodes the i-slice of the tuple — its relation id and
// first i arguments — into a map key. SliceKey(len(Args)) == Key().
func (t Tuple) SliceKey(i int) string {
	var b strings.Builder
	b.Grow(4 + 4*i)
	putInt32(&b, int32(t.Rel))
	for _, a := range t.Args[:i] {
		putInt32(&b, int32(a))
	}
	return b.String()
}

// ArgsKey encodes only the argument vector (not the relation). Useful
// for keys over D^k such as closed-world negative-example sets.
func ArgsKey(args []Const) string {
	var b strings.Builder
	b.Grow(4 * len(args))
	for _, a := range args {
		putInt32(&b, int32(a))
	}
	return b.String()
}

func putInt32(b *strings.Builder, v int32) {
	b.WriteByte(byte(v))
	b.WriteByte(byte(v >> 8))
	b.WriteByte(byte(v >> 16))
	b.WriteByte(byte(v >> 24))
}

// Compare orders tuples by relation id, then arity, then
// argument-wise. It returns -1, 0, or +1.
func (t Tuple) Compare(u Tuple) int {
	switch {
	case t.Rel < u.Rel:
		return -1
	case t.Rel > u.Rel:
		return 1
	}
	switch {
	case len(t.Args) < len(u.Args):
		return -1
	case len(t.Args) > len(u.Args):
		return 1
	}
	for i := range t.Args {
		switch {
		case t.Args[i] < u.Args[i]:
			return -1
		case t.Args[i] > u.Args[i]:
			return 1
		}
	}
	return 0
}

// String renders the tuple using the given schema and domain, e.g.
// "Intersects(Broadway, Whitehall)".
func (t Tuple) String(s *Schema, d *Domain) string {
	var b strings.Builder
	b.WriteString(s.Name(t.Rel))
	b.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Name(a))
	}
	b.WriteByte(')')
	return b.String()
}

// Contains reports whether the tuple mentions constant c.
func (t Tuple) Contains(c Const) bool {
	for _, a := range t.Args {
		if a == c {
			return true
		}
	}
	return false
}
