package relation

import (
	"math/bits"
)

// TupleSet is a set of TupleIDs, represented as a bitset. Because a
// Database assigns dense ids, a TupleSet over a synthesis run's
// ground facts costs one bit per known tuple, and the set algebra the
// synthesizers run in their inner loops — coverage bookkeeping,
// consistency checks, output signatures — becomes word-parallel
// bit operations instead of string-keyed map traffic.
//
// The zero value is an empty set ready for use. A TupleSet is not
// safe for concurrent mutation; concurrent reads are fine.
type TupleSet struct {
	words []uint64
	count int
}

// NewTupleSet returns an empty set with capacity hint n (ids 0..n-1
// will not trigger regrowth).
func NewTupleSet(n int) *TupleSet {
	if n <= 0 {
		return &TupleSet{}
	}
	return &TupleSet{words: make([]uint64, (n+63)/64)}
}

// Add inserts id, growing the bitset as needed. It reports whether
// the id was newly added.
func (s *TupleSet) Add(id TupleID) bool {
	w, b := int(id)>>6, uint(id)&63
	if w >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	if s.words[w]&(1<<b) != 0 {
		return false
	}
	s.words[w] |= 1 << b
	s.count++
	return true
}

// Has reports whether id is in the set.
func (s *TupleSet) Has(id TupleID) bool {
	w := int(id) >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(id)&63)) != 0
}

// Len reports the cardinality of the set.
func (s *TupleSet) Len() int { return s.count }

// Empty reports whether the set has no members.
func (s *TupleSet) Empty() bool { return s.count == 0 }

// Union adds every member of o to s.
func (s *TupleSet) Union(o *TupleSet) {
	if o == nil {
		return
	}
	if len(o.words) > len(s.words) {
		grown := make([]uint64, len(o.words))
		copy(grown, s.words)
		s.words = grown
	}
	n := 0
	for i, w := range s.words {
		if i < len(o.words) {
			w |= o.words[i]
			s.words[i] = w
		}
		n += bits.OnesCount64(w)
	}
	s.count = n
}

// Intersect removes every member of s not in o.
func (s *TupleSet) Intersect(o *TupleSet) {
	n := 0
	for i := range s.words {
		if o == nil || i >= len(o.words) {
			s.words[i] = 0
			continue
		}
		s.words[i] &= o.words[i]
		n += bits.OnesCount64(s.words[i])
	}
	s.count = n
}

// Subtract removes every member of o from s.
func (s *TupleSet) Subtract(o *TupleSet) {
	if o == nil {
		return
	}
	n := 0
	for i, w := range s.words {
		if i < len(o.words) {
			w &^= o.words[i]
			s.words[i] = w
		}
		n += bits.OnesCount64(w)
	}
	s.count = n
}

// SubsetOf reports whether every member of s is in o.
func (s *TupleSet) SubsetOf(o *TupleSet) bool {
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		if o == nil || i >= len(o.words) || w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share a member.
func (s *TupleSet) Intersects(o *TupleSet) bool {
	if o == nil {
		return false
	}
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o hold exactly the same ids.
func (s *TupleSet) Equal(o *TupleSet) bool {
	if o == nil {
		return s.count == 0
	}
	if s.count != o.count {
		return false
	}
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Reset empties the set, retaining capacity so a reused set does not
// reallocate its word array.
func (s *TupleSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.count = 0
}

// Clone returns an independent copy of the set.
func (s *TupleSet) Clone() *TupleSet {
	return &TupleSet{words: append([]uint64(nil), s.words...), count: s.count}
}

// Iterate calls f on each id in ascending order; returning false
// stops the iteration early.
func (s *TupleSet) Iterate(f func(TupleID) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(TupleID(i<<6 + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// IDs returns the members in ascending order.
func (s *TupleSet) IDs() []TupleID {
	out := make([]TupleID, 0, s.count)
	s.Iterate(func(id TupleID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// Key returns a canonical encoding of the set, usable as a map key:
// equal sets yield equal keys regardless of insertion history or
// bitset capacity. It replaces sorted per-tuple string joins as the
// output-signature representation.
func (s *TupleSet) Key() string {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	buf := make([]byte, 0, n*8)
	for _, w := range s.words[:n] {
		buf = append(buf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(buf)
}
