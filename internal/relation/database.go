package relation

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TupleID identifies a tuple within a Database. Ids are dense and
// assigned in insertion order; the EGS algorithm uses them to build
// canonical keys for enumeration contexts, and TupleSet represents
// sets of them as bitsets. The id space covers both inserted
// (extensional) tuples and tuples interned via InternTuple (derived
// output tuples, example tuples): inserted tuples occupy the low ids,
// interned-only tuples the ids from the freeze point upward.
type TupleID int32

// Database is an indexed set of ground tuples over a Schema and a
// Domain. It supports the access paths the synthesizer needs:
//
//   - extent of a relation (for join enumeration),
//   - tuples with a given constant at a given column (for index joins),
//   - tuples mentioning a given constant anywhere (the co-occurrence
//     graph's neighbourhood function),
//   - membership tests.
//
// A Database is append-only; it is safe for concurrent reads after all
// Insert calls have completed. The interning table (InternTuple) is
// additionally safe for concurrent use once inserts are done, so
// parallel synthesis workers can intern derived tuples while others
// read.
type Database struct {
	Schema *Schema
	Domain *Domain

	tuples []Tuple
	keys   map[string]TupleID

	byRel [][]TupleID // relation id -> extent
	// byCol[rel][col] maps a constant to the tuples of rel having
	// that constant in column col.
	byCol [][]map[Const][]TupleID
	// byConst maps a constant to every tuple mentioning it (dedup'd).
	byConst map[Const][]TupleID

	intern internTable
}

// internChunkBits sizes the interning overlay's chunks; chunks are
// fixed-size arrays so interned tuples are never moved once published
// and readers need no lock to dereference an id they hold.
const (
	internChunkBits = 10
	internChunkSize = 1 << internChunkBits
)

// internTable assigns dense ids, continuing the Database's id space,
// to tuples that are not inserted facts: derived output tuples and
// example tuples. The first InternTuple call freezes the insert
// region (ids [0, base)); interned tuples take ids base, base+1, ...
//
// Lookups and appends are guarded by mu. Resolving an id a goroutine
// already holds is lock-free: the chunk spine is published via an
// atomic pointer and chunks are never reallocated.
type internTable struct {
	mu    sync.RWMutex
	byKey map[string]TupleID
	spine atomic.Pointer[[]*[internChunkSize]Tuple]
	count int
	base  int // len(db.tuples) at freeze time
}

// NewDatabase returns an empty database over the given schema and
// domain.
func NewDatabase(s *Schema, d *Domain) *Database {
	return &Database{
		Schema:  s,
		Domain:  d,
		keys:    make(map[string]TupleID),
		byConst: make(map[Const][]TupleID),
	}
}

// Insert adds a tuple and returns its id. Inserting a duplicate tuple
// returns the existing id without modifying the database. The args
// slice is copied, so callers may reuse their buffers.
//
// Insert is a load-phase operation: it must not be called after the
// first InternTuple call, which freezes the inserted-id region so
// interned ids cannot collide with future inserts.
func (db *Database) Insert(t Tuple) TupleID {
	k := t.Key()
	if id, ok := db.keys[k]; ok {
		return id
	}
	db.intern.mu.RLock()
	frozen := db.intern.byKey != nil
	db.intern.mu.RUnlock()
	if frozen {
		panic("relation: Insert of a new tuple after InternTuple froze the id space")
	}
	t = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	id := TupleID(len(db.tuples))
	db.tuples = append(db.tuples, t)
	db.keys[k] = id

	for int(t.Rel) >= len(db.byRel) {
		db.byRel = append(db.byRel, nil)
		db.byCol = append(db.byCol, nil)
	}
	db.byRel[t.Rel] = append(db.byRel[t.Rel], id)

	cols := db.byCol[t.Rel]
	for len(cols) < len(t.Args) {
		cols = append(cols, make(map[Const][]TupleID))
	}
	db.byCol[t.Rel] = cols
	seen := make(map[Const]bool, len(t.Args))
	for col, c := range t.Args {
		cols[col][c] = append(cols[col][c], id)
		if !seen[c] {
			seen[c] = true
			db.byConst[c] = append(db.byConst[c], id)
		}
	}
	return id
}

// Size reports the number of inserted tuples (interned-only tuples
// are not counted; they are not facts of the database).
func (db *Database) Size() int { return len(db.tuples) }

// Tuple returns the inserted tuple with the given id. It is the
// evaluator's hot path and never takes a lock; for ids that may come
// from the interning table, use TupleByID.
func (db *Database) Tuple(id TupleID) Tuple { return db.tuples[id] }

// InternTuple returns the dense id of t, assigning a fresh one on
// first sight. Tuples already inserted keep their insert-time id;
// other tuples (derived output tuples, example tuples) are added to
// the interning overlay, which does not affect extents, indexes,
// Contains, or Size. The args slice is copied when the tuple is new.
//
// The first call freezes the insert region; InternTuple is safe for
// concurrent use from then on.
func (db *Database) InternTuple(t Tuple) TupleID {
	k := t.Key()
	if id, ok := db.keys[k]; ok {
		return id
	}
	it := &db.intern
	it.mu.RLock()
	id, ok := it.byKey[k]
	it.mu.RUnlock()
	if ok {
		return id
	}
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.byKey[k]; ok {
		return id
	}
	if it.byKey == nil {
		it.byKey = make(map[string]TupleID)
		it.base = len(db.tuples)
	}
	ci, off := it.count>>internChunkBits, it.count&(internChunkSize-1)
	spine := it.spine.Load()
	if off == 0 {
		var old []*[internChunkSize]Tuple
		if spine != nil {
			old = *spine
		}
		grown := make([]*[internChunkSize]Tuple, len(old)+1)
		copy(grown, old)
		grown[len(old)] = new([internChunkSize]Tuple)
		it.spine.Store(&grown)
		spine = &grown
	}
	(*spine)[ci][off] = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	id = TupleID(it.base + it.count)
	it.count++
	it.byKey[k] = id
	return id
}

// TupleByID resolves any id in the database's id space — inserted or
// interned. Resolving an id the caller legitimately holds is
// lock-free.
func (db *Database) TupleByID(id TupleID) Tuple {
	i := int(id)
	if i < len(db.tuples) {
		return db.tuples[i]
	}
	off := i - db.intern.base
	spine := db.intern.spine.Load()
	return (*spine)[off>>internChunkBits][off&(internChunkSize-1)]
}

// NumIDs reports the total number of assigned ids (inserted plus
// interned); TupleID values are always in [0, NumIDs).
func (db *Database) NumIDs() int {
	db.intern.mu.RLock()
	defer db.intern.mu.RUnlock()
	return len(db.tuples) + db.intern.count
}

// Contains reports whether the database holds the given tuple.
func (db *Database) Contains(t Tuple) bool {
	_, ok := db.keys[t.Key()]
	return ok
}

// ID returns the id of the given tuple, if present.
func (db *Database) ID(t Tuple) (TupleID, bool) {
	id, ok := db.keys[t.Key()]
	return id, ok
}

// Extent returns the ids of all tuples of relation r. The returned
// slice is shared; callers must not mutate it.
func (db *Database) Extent(r RelID) []TupleID {
	if int(r) >= len(db.byRel) {
		return nil
	}
	return db.byRel[r]
}

// ExtentSize reports the number of tuples of relation r.
func (db *Database) ExtentSize(r RelID) int { return len(db.Extent(r)) }

// AtColumn returns the ids of tuples of relation r whose column col
// holds constant c. The returned slice is shared; do not mutate.
func (db *Database) AtColumn(r RelID, col int, c Const) []TupleID {
	if int(r) >= len(db.byCol) || col >= len(db.byCol[r]) {
		return nil
	}
	return db.byCol[r][col][c]
}

// Mentioning returns the ids of all tuples that mention constant c in
// any position. The returned slice is shared; do not mutate.
func (db *Database) Mentioning(c Const) []TupleID {
	return db.byConst[c]
}

// All returns all tuples in insertion order. The result is a deep
// copy: mutating the returned tuples cannot corrupt the database or
// its indexes.
func (db *Database) All() []Tuple {
	out := make([]Tuple, len(db.tuples))
	for i, t := range db.tuples {
		out[i] = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	}
	return out
}

// AllIDs returns all tuple ids in insertion order.
func (db *Database) AllIDs() []TupleID {
	ids := make([]TupleID, len(db.tuples))
	for i := range ids {
		ids[i] = TupleID(i)
	}
	return ids
}

// Sorted returns all tuples in canonical (Compare) order; useful for
// deterministic printing.
func (db *Database) Sorted() []Tuple {
	ts := db.All()
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return ts
}

// ConstantsOf returns the distinct constants mentioned by the tuple
// set, in ascending id order.
func (db *Database) ConstantsOf(ids []TupleID) []Const {
	seen := make(map[Const]bool)
	var out []Const
	for _, id := range ids {
		for _, c := range db.tuples[id].Args {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
