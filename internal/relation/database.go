package relation

import (
	"sort"
)

// TupleID identifies a tuple within a Database. Ids are dense and
// assigned in insertion order; the EGS algorithm uses them to build
// canonical keys for enumeration contexts.
type TupleID int32

// Database is an indexed set of ground tuples over a Schema and a
// Domain. It supports the access paths the synthesizer needs:
//
//   - extent of a relation (for join enumeration),
//   - tuples with a given constant at a given column (for index joins),
//   - tuples mentioning a given constant anywhere (the co-occurrence
//     graph's neighbourhood function),
//   - membership tests.
//
// A Database is append-only; it is safe for concurrent reads after all
// Insert calls have completed.
type Database struct {
	Schema *Schema
	Domain *Domain

	tuples []Tuple
	keys   map[string]TupleID

	byRel [][]TupleID // relation id -> extent
	// byCol[rel][col] maps a constant to the tuples of rel having
	// that constant in column col.
	byCol [][]map[Const][]TupleID
	// byConst maps a constant to every tuple mentioning it (dedup'd).
	byConst map[Const][]TupleID
}

// NewDatabase returns an empty database over the given schema and
// domain.
func NewDatabase(s *Schema, d *Domain) *Database {
	return &Database{
		Schema:  s,
		Domain:  d,
		keys:    make(map[string]TupleID),
		byConst: make(map[Const][]TupleID),
	}
}

// Insert adds a tuple and returns its id. Inserting a duplicate tuple
// returns the existing id without modifying the database.
func (db *Database) Insert(t Tuple) TupleID {
	k := t.Key()
	if id, ok := db.keys[k]; ok {
		return id
	}
	id := TupleID(len(db.tuples))
	db.tuples = append(db.tuples, t)
	db.keys[k] = id

	for int(t.Rel) >= len(db.byRel) {
		db.byRel = append(db.byRel, nil)
		db.byCol = append(db.byCol, nil)
	}
	db.byRel[t.Rel] = append(db.byRel[t.Rel], id)

	cols := db.byCol[t.Rel]
	for len(cols) < len(t.Args) {
		cols = append(cols, make(map[Const][]TupleID))
	}
	db.byCol[t.Rel] = cols
	seen := make(map[Const]bool, len(t.Args))
	for col, c := range t.Args {
		cols[col][c] = append(cols[col][c], id)
		if !seen[c] {
			seen[c] = true
			db.byConst[c] = append(db.byConst[c], id)
		}
	}
	return id
}

// Size reports the number of tuples.
func (db *Database) Size() int { return len(db.tuples) }

// Tuple returns the tuple with the given id.
func (db *Database) Tuple(id TupleID) Tuple { return db.tuples[id] }

// Contains reports whether the database holds the given tuple.
func (db *Database) Contains(t Tuple) bool {
	_, ok := db.keys[t.Key()]
	return ok
}

// ID returns the id of the given tuple, if present.
func (db *Database) ID(t Tuple) (TupleID, bool) {
	id, ok := db.keys[t.Key()]
	return id, ok
}

// Extent returns the ids of all tuples of relation r. The returned
// slice is shared; callers must not mutate it.
func (db *Database) Extent(r RelID) []TupleID {
	if int(r) >= len(db.byRel) {
		return nil
	}
	return db.byRel[r]
}

// ExtentSize reports the number of tuples of relation r.
func (db *Database) ExtentSize(r RelID) int { return len(db.Extent(r)) }

// AtColumn returns the ids of tuples of relation r whose column col
// holds constant c. The returned slice is shared; do not mutate.
func (db *Database) AtColumn(r RelID, col int, c Const) []TupleID {
	if int(r) >= len(db.byCol) || col >= len(db.byCol[r]) {
		return nil
	}
	return db.byCol[r][col][c]
}

// Mentioning returns the ids of all tuples that mention constant c in
// any position. The returned slice is shared; do not mutate.
func (db *Database) Mentioning(c Const) []TupleID {
	return db.byConst[c]
}

// All returns all tuples in insertion order. The result is a deep
// copy: mutating the returned tuples cannot corrupt the database or
// its indexes.
func (db *Database) All() []Tuple {
	out := make([]Tuple, len(db.tuples))
	for i, t := range db.tuples {
		out[i] = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	}
	return out
}

// AllIDs returns all tuple ids in insertion order.
func (db *Database) AllIDs() []TupleID {
	ids := make([]TupleID, len(db.tuples))
	for i := range ids {
		ids[i] = TupleID(i)
	}
	return ids
}

// Sorted returns all tuples in canonical (Compare) order; useful for
// deterministic printing.
func (db *Database) Sorted() []Tuple {
	ts := db.All()
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return ts
}

// ConstantsOf returns the distinct constants mentioned by the tuple
// set, in ascending id order.
func (db *Database) ConstantsOf(ids []TupleID) []Const {
	seen := make(map[Const]bool)
	var out []Const
	for _, id := range ids {
		for _, c := range db.tuples[id].Args {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
