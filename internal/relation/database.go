package relation

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TupleID identifies a tuple within a Database. Ids are dense and
// assigned in insertion order; the EGS algorithm uses them to build
// canonical keys for enumeration contexts, and TupleSet represents
// sets of them as bitsets. The id space covers both inserted
// (extensional) tuples and tuples interned via InternTuple (derived
// output tuples, example tuples): inserted tuples occupy the low ids,
// interned-only tuples the ids from the freeze point upward.
type TupleID int32

// Database is an indexed set of ground tuples over a Schema and a
// Domain. It supports the access paths the synthesizer needs:
//
//   - extent of a relation (for join enumeration),
//   - tuples with a given constant at a given column (for index joins),
//   - tuples mentioning a given constant anywhere (the co-occurrence
//     graph's neighbourhood function),
//   - membership tests.
//
// A Database is append-only; it is safe for concurrent reads after all
// Insert calls have completed. The interning table (InternTuple) is
// additionally safe for concurrent use once inserts are done, so
// parallel synthesis workers can intern derived tuples while others
// read.
//
// # Generations
//
// The first InternTuple call closes the load phase: base facts keep
// the dense low ids and interned tuples take ids from the overlay
// spine. Facts inserted after that point land in an overlay
// *generation* (see Insert and BeginGeneration): they draw their ids
// from the same spine — so every previously issued TupleID stays
// stable forever — and are additionally indexed as facts. Extents and
// indexes are append-only in ascending id order, which makes a
// Snapshot (an id watermark) a consistent view of any past
// generation. Overlay mutation is a between-runs operation: Insert
// and BeginGeneration must not race with readers; incremental
// sessions serialize deltas against synthesis runs.
type Database struct {
	Schema *Schema
	Domain *Domain

	tuples []Tuple
	keys   map[string]TupleID
	// packed mirrors keys for tuples of arity ≤ packedArity under a
	// fixed-size comparable key, so the interning hot path (emitting a
	// derived tuple already seen) hashes a struct instead of building
	// a string. keys remains the source of truth; packed is a pure
	// accelerator and always updated alongside it.
	packed map[packedKey]TupleID

	byRel [][]TupleID // relation id -> extent
	// byCol[rel][col] maps a constant to the tuples of rel having
	// that constant in column col.
	byCol [][]map[Const][]TupleID
	// byConst maps a constant to every tuple mentioning it (dedup'd).
	byConst map[Const][]TupleID

	intern internTable

	// gen is the current overlay generation; 0 is the base (load
	// phase) generation. overlay maps each post-freeze fact id to the
	// generation it landed in, and overlayIDs lists those ids in
	// insertion order (ascending, since the spine allocates ids
	// monotonically).
	gen        Gen
	overlay    map[TupleID]Gen
	overlayIDs []TupleID

	// cols caches columnar (bitset) views of the indexes for the
	// batch evaluator; entries self-invalidate via size stamps (see
	// colcache.go).
	cols colCache
}

// Gen numbers overlay generations of a Database. Generation 0 is the
// base extensional database; each BeginGeneration (or the first
// post-freeze Insert) opens the next one.
type Gen int32

// internChunkBits sizes the interning overlay's chunks; chunks are
// fixed-size arrays so interned tuples are never moved once published
// and readers need no lock to dereference an id they hold.
const (
	internChunkBits = 10
	internChunkSize = 1 << internChunkBits
)

// internTable assigns dense ids, continuing the Database's id space,
// to tuples that are not inserted facts: derived output tuples and
// example tuples. The first InternTuple call freezes the insert
// region (ids [0, base)); interned tuples take ids base, base+1, ...
//
// Lookups and appends are guarded by mu. Resolving an id a goroutine
// already holds is lock-free: the chunk spine is published via an
// atomic pointer and chunks are never reallocated.
type internTable struct {
	mu    sync.RWMutex
	byKey map[string]TupleID
	// byPacked mirrors byKey for packable tuples (see Database.packed).
	byPacked map[packedKey]TupleID
	spine    atomic.Pointer[[]*[internChunkSize]Tuple]
	count    int
	base     int // len(db.tuples) at freeze time
}

// packedArity bounds the tuple arity the packed identity key covers;
// wider tuples fall back to the string key. Four columns cover every
// relation in the benchmark suite.
const packedArity = 4

// packedKey is a fixed-size comparable identity for a tuple: relation,
// arity, and up to packedArity argument constants. Hashing it is a
// few words of memhash — no serialization, no allocation.
type packedKey struct {
	rel  RelID
	n    int8
	args [packedArity]Const
}

// packTuple returns the packed identity of t, or ok=false when the
// tuple is too wide to pack.
func packTuple(t Tuple) (packedKey, bool) {
	if len(t.Args) > packedArity {
		return packedKey{}, false
	}
	k := packedKey{rel: t.Rel, n: int8(len(t.Args))}
	copy(k.args[:], t.Args)
	return k, true
}

// NewDatabase returns an empty database over the given schema and
// domain.
func NewDatabase(s *Schema, d *Domain) *Database {
	return &Database{
		Schema:  s,
		Domain:  d,
		keys:    make(map[string]TupleID),
		packed:  make(map[packedKey]TupleID),
		byConst: make(map[Const][]TupleID),
	}
}

// Insert adds a fact tuple and returns its id. Inserting a duplicate
// fact returns the existing id without modifying the database. The
// args slice is copied, so callers may reuse their buffers.
//
// During the load phase (before the first InternTuple call) facts
// take the dense low ids. After the first intern, Insert routes
// through the overlay: the fact draws its id from the interning spine
// — so it can never collide with an id already issued — and is
// stamped with the current overlay generation (opening generation 1
// implicitly if none has been opened yet). Overlay inserts must not
// race with concurrent readers or interns; they are a between-runs
// operation.
func (db *Database) Insert(t Tuple) TupleID {
	k := t.Key()
	if id, ok := db.keys[k]; ok {
		return id
	}
	db.intern.mu.RLock()
	frozen := db.intern.byKey != nil
	db.intern.mu.RUnlock()
	if frozen {
		return db.insertOverlay(t)
	}
	t = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	id := TupleID(len(db.tuples))
	db.tuples = append(db.tuples, t)
	db.keys[k] = id
	if pk, ok := packTuple(t); ok {
		db.packed[pk] = id
	}
	db.index(t, id)
	return id
}

// index registers a fact tuple in the extent, column, and constant
// indexes. Ids arrive in ascending order (base inserts count up from
// 0; overlay inserts draw monotonically from the spine), so every
// index list stays sorted — the invariant Snapshot relies on.
func (db *Database) index(t Tuple, id TupleID) {
	for int(t.Rel) >= len(db.byRel) {
		db.byRel = append(db.byRel, nil)
		db.byCol = append(db.byCol, nil)
	}
	db.byRel[t.Rel] = append(db.byRel[t.Rel], id)

	cols := db.byCol[t.Rel]
	for len(cols) < len(t.Args) {
		cols = append(cols, make(map[Const][]TupleID))
	}
	db.byCol[t.Rel] = cols
	seen := make(map[Const]bool, len(t.Args))
	for col, c := range t.Args {
		cols[col][c] = append(cols[col][c], id)
		if !seen[c] {
			seen[c] = true
			db.byConst[c] = append(db.byConst[c], id)
		}
	}
}

// insertOverlay adds a post-freeze fact: the tuple is interned (a
// no-op if some earlier intern already named it) and then indexed as
// a fact of the current generation. Interned ids are monotone, but a
// tuple interned earlier (as a derived or example tuple) and only now
// promoted to a fact may carry an id smaller than facts already
// indexed — sortedInsert keeps the index lists ordered in that case.
func (db *Database) insertOverlay(t Tuple) TupleID {
	id := db.InternTuple(t)
	if _, dup := db.overlay[id]; dup {
		return id
	}
	if db.gen == 0 {
		db.gen = 1
	}
	if db.overlay == nil {
		db.overlay = make(map[TupleID]Gen)
	}
	db.overlay[id] = db.gen
	db.overlayIDs = sortedInsert(db.overlayIDs, id)
	t = db.TupleByID(id) // the interned copy owns its args
	db.indexSorted(t, id)
	return id
}

// indexSorted is index for ids that may be out of order (promoted
// interned tuples); it preserves the ascending-id invariant of every
// index list.
func (db *Database) indexSorted(t Tuple, id TupleID) {
	for int(t.Rel) >= len(db.byRel) {
		db.byRel = append(db.byRel, nil)
		db.byCol = append(db.byCol, nil)
	}
	db.byRel[t.Rel] = sortedInsert(db.byRel[t.Rel], id)

	cols := db.byCol[t.Rel]
	for len(cols) < len(t.Args) {
		cols = append(cols, make(map[Const][]TupleID))
	}
	db.byCol[t.Rel] = cols
	seen := make(map[Const]bool, len(t.Args))
	for col, c := range t.Args {
		cols[col][c] = sortedInsert(cols[col][c], id)
		if !seen[c] {
			seen[c] = true
			db.byConst[c] = sortedInsert(db.byConst[c], id)
		}
	}
}

// sortedInsert inserts id into the ascending list ids. The common
// case — id larger than everything present — is a plain append.
func sortedInsert(ids []TupleID, id TupleID) []TupleID {
	n := len(ids)
	if n == 0 || ids[n-1] < id {
		return append(ids, id)
	}
	i := sort.Search(n, func(k int) bool { return ids[k] >= id })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

// BeginGeneration opens a new overlay generation and returns its
// number. Facts inserted from now on are stamped with it; ids issued
// earlier are unaffected. Like overlay Insert, it must not race with
// readers.
func (db *Database) BeginGeneration() Gen {
	db.gen++
	return db.gen
}

// Generation returns the current overlay generation (0 until a
// post-freeze insert or BeginGeneration opens one).
func (db *Database) Generation() Gen { return db.gen }

// GenerationOf reports which generation the fact with the given id
// belongs to: 0 for base facts, the stamped generation for overlay
// facts. ok is false when id does not name a fact (interned-only
// tuples have no generation).
func (db *Database) GenerationOf(id TupleID) (Gen, bool) {
	if int(id) < len(db.tuples) {
		return 0, true
	}
	g, ok := db.overlay[id]
	return g, ok
}

// Size reports the number of fact tuples (base plus overlay;
// interned-only tuples are not counted — they are not facts of the
// database).
func (db *Database) Size() int { return len(db.tuples) + len(db.overlayIDs) }

// Tuple returns the tuple with the given id. It is the evaluator's
// hot path: base-fact ids resolve with one bounds comparison and no
// lock; overlay and interned ids go through the lock-free spine.
func (db *Database) Tuple(id TupleID) Tuple { return db.TupleByID(id) }

// InternTuple returns the dense id of t, assigning a fresh one on
// first sight. Tuples already inserted keep their insert-time id;
// other tuples (derived output tuples, example tuples) are added to
// the interning overlay, which does not affect extents, indexes,
// Contains, or Size. The args slice is copied when the tuple is new.
//
// The first call freezes the insert region; InternTuple is safe for
// concurrent use from then on.
//
// The hit path for packable tuples (arity ≤ packedArity — every
// relation in the benchmark suite) never serializes the tuple: it
// hashes a fixed-size struct against the packed mirrors of the two
// key maps. This is the single hottest operation in synthesis — the
// evaluator interns one head tuple per satisfying valuation.
func (db *Database) InternTuple(t Tuple) TupleID {
	pk, packable := packTuple(t)
	it := &db.intern
	if packable {
		if id, ok := db.packed[pk]; ok {
			return id
		}
		it.mu.RLock()
		id, ok := it.byPacked[pk]
		it.mu.RUnlock()
		if ok {
			return id
		}
		return db.internSlow(t, pk, packable)
	}
	k := t.Key()
	if id, ok := db.keys[k]; ok {
		return id
	}
	it.mu.RLock()
	id, ok := it.byKey[k]
	it.mu.RUnlock()
	if ok {
		return id
	}
	return db.internSlow(t, pk, packable)
}

// internSlow assigns an id to a tuple both fast paths missed,
// re-checking under the write lock against racing interns.
func (db *Database) internSlow(t Tuple, pk packedKey, packable bool) TupleID {
	k := t.Key()
	it := &db.intern
	it.mu.Lock()
	defer it.mu.Unlock()
	if id, ok := it.byKey[k]; ok {
		return id
	}
	if it.byKey == nil {
		it.byKey = make(map[string]TupleID)
		it.byPacked = make(map[packedKey]TupleID)
		it.base = len(db.tuples)
	}
	ci, off := it.count>>internChunkBits, it.count&(internChunkSize-1)
	spine := it.spine.Load()
	if off == 0 {
		var old []*[internChunkSize]Tuple
		if spine != nil {
			old = *spine
		}
		grown := make([]*[internChunkSize]Tuple, len(old)+1)
		copy(grown, old)
		grown[len(old)] = new([internChunkSize]Tuple)
		it.spine.Store(&grown)
		spine = &grown
	}
	(*spine)[ci][off] = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	id := TupleID(it.base + it.count)
	it.count++
	it.byKey[k] = id
	if packable {
		it.byPacked[pk] = id
	}
	return id
}

// TupleByID resolves any id in the database's id space — inserted or
// interned. Resolving an id the caller legitimately holds is
// lock-free.
func (db *Database) TupleByID(id TupleID) Tuple {
	i := int(id)
	if i < len(db.tuples) {
		return db.tuples[i]
	}
	off := i - db.intern.base
	spine := db.intern.spine.Load()
	return (*spine)[off>>internChunkBits][off&(internChunkSize-1)]
}

// NumIDs reports the total number of assigned ids (inserted plus
// interned); TupleID values are always in [0, NumIDs).
func (db *Database) NumIDs() int {
	db.intern.mu.RLock()
	defer db.intern.mu.RUnlock()
	return len(db.tuples) + db.intern.count
}

// Contains reports whether the database holds the given tuple as a
// fact (base or overlay; interned-only tuples are not facts).
func (db *Database) Contains(t Tuple) bool {
	_, ok := db.ID(t)
	return ok
}

// ID returns the id of the given fact tuple, if present.
func (db *Database) ID(t Tuple) (TupleID, bool) {
	if id, ok := db.keys[t.Key()]; ok {
		return id, true
	}
	if len(db.overlay) == 0 {
		return 0, false
	}
	db.intern.mu.RLock()
	id, ok := db.intern.byKey[t.Key()]
	db.intern.mu.RUnlock()
	if !ok {
		return 0, false
	}
	_, isFact := db.overlay[id]
	return id, isFact
}

// Extent returns the ids of all tuples of relation r. The returned
// slice is shared; callers must not mutate it.
func (db *Database) Extent(r RelID) []TupleID {
	if int(r) >= len(db.byRel) {
		return nil
	}
	return db.byRel[r]
}

// ExtentSize reports the number of tuples of relation r.
func (db *Database) ExtentSize(r RelID) int { return len(db.Extent(r)) }

// AtColumn returns the ids of tuples of relation r whose column col
// holds constant c. The returned slice is shared; do not mutate.
func (db *Database) AtColumn(r RelID, col int, c Const) []TupleID {
	if int(r) >= len(db.byCol) || col >= len(db.byCol[r]) {
		return nil
	}
	return db.byCol[r][col][c]
}

// Mentioning returns the ids of all tuples that mention constant c in
// any position. The returned slice is shared; do not mutate.
func (db *Database) Mentioning(c Const) []TupleID {
	return db.byConst[c]
}

// All returns all fact tuples in ascending id order (base facts keep
// insertion order; overlay facts follow). The result is a deep copy:
// mutating the returned tuples cannot corrupt the database or its
// indexes.
func (db *Database) All() []Tuple {
	ids := db.AllIDs()
	out := make([]Tuple, len(ids))
	for i, id := range ids {
		t := db.TupleByID(id)
		out[i] = Tuple{Rel: t.Rel, Args: append([]Const(nil), t.Args...)}
	}
	return out
}

// AllIDs returns all fact tuple ids in ascending order.
func (db *Database) AllIDs() []TupleID {
	ids := make([]TupleID, 0, len(db.tuples)+len(db.overlayIDs))
	for i := range db.tuples {
		ids = append(ids, TupleID(i))
	}
	return append(ids, db.overlayIDs...)
}

// Sorted returns all tuples in canonical (Compare) order; useful for
// deterministic printing.
func (db *Database) Sorted() []Tuple {
	ts := db.All()
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	return ts
}

// ConstantsOf returns the distinct constants mentioned by the tuple
// set, in ascending id order.
func (db *Database) ConstantsOf(ids []TupleID) []Const {
	seen := make(map[Const]bool)
	var out []Const
	for _, id := range ids {
		for _, c := range db.TupleByID(id).Args {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot is a consistent view of the database at a generation
// boundary: it sees every base fact plus the overlay facts of
// generations up to and including its own, and none of any later
// generation. Snapshots are cheap (a generation number, no copying)
// and stay valid as the database grows, provided the contract of
// BeginGeneration is respected: take the snapshot before inserting
// into a newer generation, so the snapshot's own generation is
// complete.
type Snapshot struct {
	db  *Database
	gen Gen
}

// Snapshot returns a view pinned to the current generation.
func (db *Database) Snapshot() Snapshot { return Snapshot{db: db, gen: db.gen} }

// Generation returns the generation this snapshot is pinned to.
func (s Snapshot) Generation() Gen { return s.gen }

// Has reports whether the fact with the given id is visible: base
// facts always are, overlay facts iff their generation is not newer
// than the snapshot's.
func (s Snapshot) Has(id TupleID) bool {
	if int(id) < len(s.db.tuples) {
		return true
	}
	g, ok := s.db.overlay[id]
	return ok && g <= s.gen
}

// Size reports the number of facts visible in this snapshot.
func (s Snapshot) Size() int {
	n := len(s.db.tuples)
	for _, g := range s.db.overlay {
		if g <= s.gen {
			n++
		}
	}
	return n
}

// Extent returns the ids of visible tuples of relation r, ascending.
// When nothing newer than the snapshot exists the live index slice is
// returned as-is (shared; do not mutate); otherwise a filtered copy.
func (s Snapshot) Extent(r RelID) []TupleID {
	return s.filter(s.db.Extent(r))
}

// AtColumn returns the ids of visible tuples of relation r whose
// column col holds constant c. Shared or copied as for Extent.
func (s Snapshot) AtColumn(r RelID, col int, c Const) []TupleID {
	return s.filter(s.db.AtColumn(r, col, c))
}

// Mentioning returns the ids of visible tuples mentioning constant c.
// Shared or copied as for Extent.
func (s Snapshot) Mentioning(c Const) []TupleID {
	return s.filter(s.db.Mentioning(c))
}

// filter drops ids from later generations. The common case — every id
// visible — returns the input slice unchanged, so pinned-to-current
// snapshots add no per-read allocation.
func (s Snapshot) filter(ids []TupleID) []TupleID {
	for i, id := range ids {
		if !s.Has(id) {
			out := append([]TupleID(nil), ids[:i]...)
			for _, id := range ids[i+1:] {
				if s.Has(id) {
					out = append(out, id)
				}
			}
			return out
		}
	}
	return ids
}
