package parser

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize(`path(x, y) :- edge(x, "Wall St"), color(3).`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{
		TokIdent, TokLParen, TokIdent, TokComma, TokIdent, TokRParen,
		TokTurnstile,
		TokIdent, TokLParen, TokIdent, TokComma, TokString, TokRParen,
		TokComma,
		TokIdent, TokLParen, TokNumber, TokRParen, TokPeriod, TokEOF,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: kind %v, want %v (%q)", i, toks[i].Kind, k, toks[i].Text)
		}
	}
	if toks[11].Text != "Wall St" {
		t.Errorf("string token = %q, want %q", toks[11].Text, "Wall St")
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("# a comment\nedge(a, b). // trailing\n# done")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "edge" || toks[0].Pos.Line != 2 {
		t.Errorf("first token %+v", toks[0])
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks, err := Tokenize("p(12, -5, 3.5).")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tok := range toks {
		if tok.Kind == TokNumber {
			nums = append(nums, tok.Text)
		}
	}
	want := []string{"12", "-5", "3.5"}
	if strings.Join(nums, " ") != strings.Join(want, " ") {
		t.Errorf("numbers = %v, want %v", nums, want)
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{`p(x) :` + "\n", `"unterminated`, `p(x) @`, `"bad \q escape"`} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize(`p("a\"b\\c\nd").`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Text != "a\"b\\c\nd" {
		t.Errorf("escaped string = %q", toks[2].Text)
	}
}

func TestParseGroundAtom(t *testing.T) {
	rel, args, err := ParseGroundAtom(`Intersects(Broadway, "Wall St").`)
	if err != nil {
		t.Fatal(err)
	}
	if rel != "Intersects" || len(args) != 2 || args[0] != "Broadway" || args[1] != "Wall St" {
		t.Errorf("got %s %v", rel, args)
	}
	// Lowercase identifiers are constants in ground atoms.
	rel, args, err = ParseGroundAtom("edge(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if rel != "edge" || args[0] != "a" || args[1] != "b" {
		t.Errorf("got %s %v", rel, args)
	}
	if _, _, err := ParseGroundAtom("edge(a, b) extra"); err == nil {
		t.Error("trailing input not rejected")
	}
	if _, _, err := ParseGroundAtom("edge(,)"); err == nil {
		t.Error("empty arg not rejected")
	}
}

func freshSchema(t *testing.T) (*relation.Schema, *relation.Domain) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	s.MustDeclare("edge", 2, relation.Input)
	s.MustDeclare("color", 1, relation.Input)
	s.MustDeclare("path", 2, relation.Output)
	return s, d
}

func TestParseRule(t *testing.T) {
	s, d := freshSchema(t)
	r, err := ParseRule("path(x, y) :- edge(x, z), edge(z, y).", s, d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 || r.NumVars() != 3 {
		t.Errorf("Size=%d NumVars=%d", r.Size(), r.NumVars())
	}
	// Round trip through the printer.
	if got := r.String(s, d); got != "path(x, y) :- edge(x, z), edge(z, y)." {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseRuleWithConstants(t *testing.T) {
	s, d := freshSchema(t)
	r, err := ParseRule(`path(x, x) :- edge(x, Broadway), color(x).`, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Body[0].Args[1].IsConst {
		t.Error("uppercase identifier not treated as constant")
	}
	c, ok := d.Lookup("Broadway")
	if !ok || r.Body[0].Args[1].Const != c {
		t.Error("constant not interned correctly")
	}
}

func TestParseRuleErrors(t *testing.T) {
	s, d := freshSchema(t)
	cases := []string{
		"nosuch(x) :- edge(x, y).",      // undeclared head
		"path(x, y) :- nosuch(x, y).",   // undeclared body
		"path(x) :- edge(x, y).",        // head arity
		"path(x, y) :- edge(x).",        // body arity
		"path(x, y) :- edge(x, x).",     // unsafe: y not in body
		"path(x, y) : edge(x, y).",      // bad turnstile
		"path(x, y) :- edge(x, y)",      // missing period
		"path(x, y) :- edge(x, y). zzz", // trailing garbage
	}
	for _, src := range cases {
		if _, err := ParseRule(src, s, d); err == nil {
			t.Errorf("ParseRule(%q) succeeded, want error", src)
		}
	}
}

func TestParseGroundFactAsRule(t *testing.T) {
	s, d := freshSchema(t)
	// A ground head with no body parses as a fact; Safe holds trivially.
	r, err := ParseRule("path(Broadway, Whitehall).", s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 0 || !r.Head.Args[0].IsConst {
		t.Errorf("fact parse = %+v", r)
	}
}

func TestParseProgram(t *testing.T) {
	s, d := freshSchema(t)
	q, err := ParseProgram(`
		# two-hop and one-hop
		path(x, y) :- edge(x, y).
		path(x, y) :- edge(x, z), edge(z, y).
	`, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(q.Rules))
	}
	if err := q.Validate(s); err != nil {
		t.Errorf("parsed program invalid: %v", err)
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	s, d := freshSchema(t)
	srcs := []string{
		"path(x, y) :- edge(x, y).",
		"path(x, y) :- edge(x, z), edge(z, y), color(x).",
		"path(x, x) :- color(x).",
	}
	for _, src := range srcs {
		r1, err := ParseRule(src, s, d)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		printed := r1.String(s, d)
		r2, err := ParseRule(printed, s, d)
		if err != nil {
			t.Fatalf("re-parse %q: %v", printed, err)
		}
		if r1.CanonicalKey() != r2.CanonicalKey() {
			t.Errorf("round trip changed rule: %q -> %q", src, printed)
		}
	}
}

func TestVariableNaming(t *testing.T) {
	if !IsVariableName("x") || !IsVariableName("foo") {
		t.Error("lowercase should be variables")
	}
	if IsVariableName("X") || IsVariableName("Broadway") || IsVariableName("_x") {
		t.Error("uppercase/underscore should not be variables")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	s, d := freshSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustParseRule did not panic on bad input")
		}
	}()
	_ = MustParseRule("bogus((", s, d)
}
