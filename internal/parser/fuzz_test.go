package parser

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

// FuzzTokenize checks the lexer never panics and always terminates,
// returning either tokens ending in EOF or an error.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"path(x, y) :- edge(x, z), edge(z, y).",
		`p("Wall St", 3.5).`,
		"# comment\nq(a).",
		`broken(":-"`,
		"p(x) :",
		`s("\n\t\"")`,
		"¬odd(x).",
		"p(-5).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream does not end in EOF: %v", toks)
		}
	})
}

// FuzzParseRule checks that any rule the parser accepts survives a
// print/re-parse round trip with its structure intact.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"path(x, y) :- edge(x, z), edge(z, y).",
		"path(x, x) :- color(x).",
		"path(x, y) :- edge(x, y), color(x), color(y).",
		"path(Broadway, x) :- edge(Broadway, x).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s := relation.NewSchema()
		d := relation.NewDomain()
		s.MustDeclare("edge", 2, relation.Input)
		s.MustDeclare("color", 1, relation.Input)
		s.MustDeclare("path", 2, relation.Output)
		r1, err := ParseRule(src, s, d)
		if err != nil {
			return
		}
		printed := r1.String(s, d)
		r2, err := ParseRule(printed, s, d)
		if err != nil {
			t.Fatalf("printed form does not re-parse: %q: %v", printed, err)
		}
		if !r1.EquivalentTo(r2) {
			t.Fatalf("round trip changed the rule: %q -> %q", src, printed)
		}
	})
}

// FuzzParseGroundAtom checks atom parsing never panics and accepted
// atoms have nonempty relation names and arguments.
func FuzzParseGroundAtom(f *testing.F) {
	for _, seed := range []string{
		"edge(a, b).",
		`Intersects(Broadway, "Wall St")`,
		"p(1, 2, 3).",
		"p()",
		"p(,)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rel, args, err := ParseGroundAtom(src)
		if err != nil {
			return
		}
		if rel == "" || len(args) == 0 {
			t.Fatalf("accepted malformed atom: rel=%q args=%v from %q", rel, args, src)
		}
	})
}
