// Package parser implements the surface syntax of the reproduction:
// a Datalog-style notation for facts and rules, plus helpers used by
// the line-oriented task-file loader (package task).
//
// Conventions, following the paper's notation:
//
//   - relation names and constants are identifiers, numbers, or
//     quoted strings ("Liberty St");
//   - within rule bodies and heads, lowercase identifiers are
//     variables (x, y, z, v4, ...), while uppercase identifiers,
//     numbers, and quoted strings are constants;
//   - facts are ground: every argument is a constant regardless of
//     capitalization;
//   - ":-" separates a head from its body; "," separates literals and
//     arguments; "." terminates a clause; "#" and "//" start comments.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokLParen
	TokRParen
	TokComma
	TokPeriod
	TokTurnstile // :-
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokPeriod:
		return "'.'"
	case TokTurnstile:
		return "':-'"
	default:
		return fmt.Sprintf("TokKind(%d)", uint8(k))
	}
}

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// SyntaxError describes a lexing or parsing failure with its position.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at %s: %s", e.Pos, e.Msg)
}

func errAt(p Pos, format string, args ...any) error {
	return &SyntaxError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// Lexer tokenizes an input string.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return NewLexerAt(src, Pos{Line: 1, Col: 1})
}

// NewLexerAt returns a lexer over src whose reported positions start
// at `at`, for callers that embed src at a known position of a larger
// document — e.g. the line-oriented task loader, which hands each fact
// sub-line to the parser but wants errors in whole-file coordinates.
// After the first newline in src, columns restart at 1 as usual.
func NewLexerAt(src string, at Pos) *Lexer {
	if at.Line < 1 {
		at.Line = 1
	}
	if at.Col < 1 {
		at.Col = 1
	}
	return &Lexer{src: src, line: at.Line, col: at.Col}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == -1:
			return
		case unicode.IsSpace(r):
			l.advance()
		case r == '#':
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.off:], "//"):
			for l.peek() != '\n' && l.peek() != -1 {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '¬'
}

func isIdentCont(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '\''
}

// Next returns the next token. After EOF it keeps returning EOF.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos()
	r := l.peek()
	switch {
	case r == -1:
		return Token{Kind: TokEOF, Pos: start}, nil
	case r == '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: start}, nil
	case r == ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: start}, nil
	case r == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: start}, nil
	case r == '.':
		l.advance()
		return Token{Kind: TokPeriod, Text: ".", Pos: start}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return Token{}, errAt(start, "expected ':-' but found ':%c'", l.peek())
		}
		l.advance()
		return Token{Kind: TokTurnstile, Text: ":-", Pos: start}, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for {
			c := l.advance()
			switch c {
			case -1, '\n':
				return Token{}, errAt(start, "unterminated string literal")
			case '"':
				return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
			case '\\':
				esc := l.advance()
				switch esc {
				case '"', '\\':
					b.WriteRune(esc)
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					return Token{}, errAt(start, "unknown escape '\\%c' in string", esc)
				}
			default:
				b.WriteRune(c)
			}
		}
	case unicode.IsDigit(r) || (r == '-' && l.off+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.off+1]))):
		var b strings.Builder
		b.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) || l.peek() == '.' && l.numberDotAhead() {
			b.WriteRune(l.advance())
		}
		return Token{Kind: TokNumber, Text: b.String(), Pos: start}, nil
	case isIdentStart(r):
		var b strings.Builder
		b.WriteRune(l.advance())
		for isIdentCont(l.peek()) {
			b.WriteRune(l.advance())
		}
		return Token{Kind: TokIdent, Text: b.String(), Pos: start}, nil
	default:
		return Token{}, errAt(start, "unexpected character %q", r)
	}
}

// numberDotAhead reports whether the '.' at the current offset is a
// decimal point (followed by a digit) rather than a clause terminator.
func (l *Lexer) numberDotAhead() bool {
	if l.off+1 >= len(l.src) {
		return false
	}
	return unicode.IsDigit(rune(l.src[l.off+1]))
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
