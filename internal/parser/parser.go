package parser

import (
	"fmt"
	"unicode"
	"unicode/utf8"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// Atom is a parsed, unresolved atom: a relation name applied to a
// list of arguments, each classified as variable or constant.
type Atom struct {
	Rel  string
	Args []Arg
	Pos  Pos
}

// Arg is one unresolved atom argument.
type Arg struct {
	IsVar bool
	Name  string
}

// IsVariableName reports whether an identifier denotes a variable
// under the surface-syntax convention: it starts with a lowercase
// letter. Quoted strings and numbers are always constants.
func IsVariableName(ident string) bool {
	r, _ := utf8.DecodeRuneInString(ident)
	return unicode.IsLower(r)
}

type parser struct {
	lex *Lexer
	tok Token
}

func newParser(src string) (*parser, error) {
	return newParserAt(src, Pos{Line: 1, Col: 1})
}

func newParserAt(src string, at Pos) (*parser, error) {
	p := &parser{lex: NewLexerAt(src, at)}
	return p, p.next()
}

func (p *parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errAt(p.tok.Pos, "expected %v, found %v %q", k, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	return t, p.next()
}

// atom parses rel(arg, ..., arg). When ground is true, every argument
// is treated as a constant regardless of capitalization (facts are
// ground by definition).
func (p *parser) atom(ground bool) (Atom, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Rel: name.Text, Pos: name.Pos}
	if _, err := p.expect(TokLParen); err != nil {
		return Atom{}, err
	}
	for {
		switch p.tok.Kind {
		case TokIdent:
			isVar := !ground && IsVariableName(p.tok.Text)
			a.Args = append(a.Args, Arg{IsVar: isVar, Name: p.tok.Text})
		case TokNumber, TokString:
			a.Args = append(a.Args, Arg{Name: p.tok.Text})
		default:
			return Atom{}, errAt(p.tok.Pos, "expected an argument, found %v %q", p.tok.Kind, p.tok.Text)
		}
		if err := p.next(); err != nil {
			return Atom{}, err
		}
		if p.tok.Kind == TokComma {
			if err := p.next(); err != nil {
				return Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return Atom{}, err
	}
	return a, nil
}

// clause parses one "head [:- body]." clause into unresolved atoms.
func (p *parser) clause() (head Atom, body []Atom, err error) {
	head, err = p.atom(false)
	if err != nil {
		return Atom{}, nil, err
	}
	if p.tok.Kind == TokTurnstile {
		if err := p.next(); err != nil {
			return Atom{}, nil, err
		}
		for {
			a, err := p.atom(false)
			if err != nil {
				return Atom{}, nil, err
			}
			body = append(body, a)
			if p.tok.Kind == TokComma {
				if err := p.next(); err != nil {
					return Atom{}, nil, err
				}
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokPeriod); err != nil {
		return Atom{}, nil, err
	}
	return head, body, nil
}

// ParseGroundAtom parses a single ground atom "rel(c1, ..., ck)" with
// an optional trailing period, returning the relation name and
// constant spellings.
func ParseGroundAtom(src string) (string, []string, error) {
	return ParseGroundAtomAt(src, Pos{Line: 1, Col: 1})
}

// ParseGroundAtomAt is ParseGroundAtom for src embedded at a known
// position of a larger document: every position in a returned
// *SyntaxError is reported in the enclosing document's coordinates.
func ParseGroundAtomAt(src string, at Pos) (string, []string, error) {
	p, err := newParserAt(src, at)
	if err != nil {
		return "", nil, err
	}
	a, err := p.atom(true)
	if err != nil {
		return "", nil, err
	}
	if p.tok.Kind == TokPeriod {
		if err := p.next(); err != nil {
			return "", nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return "", nil, errAt(p.tok.Pos, "unexpected trailing input %q", p.tok.Text)
	}
	args := make([]string, len(a.Args))
	for i, arg := range a.Args {
		args[i] = arg.Name
	}
	return a.Rel, args, nil
}

// resolveAtom turns an unresolved atom into a query.Literal against
// the given schema and domain, interning constants and assigning
// variable ids via vars (shared across one rule).
func resolveAtom(a Atom, s *relation.Schema, d *relation.Domain, vars map[string]query.Var, next *query.Var) (query.Literal, error) {
	rel, ok := s.Lookup(a.Rel)
	if !ok {
		return query.Literal{}, errAt(a.Pos, "undeclared relation %q", a.Rel)
	}
	if got, want := len(a.Args), s.Arity(rel); got != want {
		return query.Literal{}, errAt(a.Pos, "relation %q has arity %d, literal has %d arguments", a.Rel, want, got)
	}
	lit := query.Literal{Rel: rel, Args: make([]query.Term, len(a.Args))}
	for i, arg := range a.Args {
		if arg.IsVar {
			v, ok := vars[arg.Name]
			if !ok {
				v = *next
				*next++
				vars[arg.Name] = v
			}
			lit.Args[i] = query.V(v)
		} else {
			lit.Args[i] = query.C(d.Intern(arg.Name))
		}
	}
	return lit, nil
}

// ParseRule parses one rule (or ground fact) against the schema and
// domain. Every relation mentioned must already be declared. The rule
// is checked for safety.
func ParseRule(src string, s *relation.Schema, d *relation.Domain) (query.Rule, error) {
	return ParseRuleAt(src, Pos{Line: 1, Col: 1}, s, d)
}

// ParseRuleAt is ParseRule for src embedded at a known position of a
// larger document; error positions are in the document's coordinates.
func ParseRuleAt(src string, at Pos, s *relation.Schema, d *relation.Domain) (query.Rule, error) {
	p, err := newParserAt(src, at)
	if err != nil {
		return query.Rule{}, err
	}
	r, err := p.rule(s, d)
	if err != nil {
		return query.Rule{}, err
	}
	if p.tok.Kind != TokEOF {
		return query.Rule{}, errAt(p.tok.Pos, "unexpected trailing input %q", p.tok.Text)
	}
	return r, nil
}

func (p *parser) rule(s *relation.Schema, d *relation.Domain) (query.Rule, error) {
	head, body, err := p.clause()
	if err != nil {
		return query.Rule{}, err
	}
	vars := make(map[string]query.Var)
	next := query.Var(0)
	h, err := resolveAtom(head, s, d, vars, &next)
	if err != nil {
		return query.Rule{}, err
	}
	r := query.Rule{Head: h}
	for _, a := range body {
		l, err := resolveAtom(a, s, d, vars, &next)
		if err != nil {
			return query.Rule{}, err
		}
		r.Body = append(r.Body, l)
	}
	if err := r.Safe(); err != nil {
		return query.Rule{}, errAt(head.Pos, "%v", err)
	}
	return r, nil
}

// ParseProgram parses a sequence of rules into a UCQ.
func ParseProgram(src string, s *relation.Schema, d *relation.Domain) (query.UCQ, error) {
	return ParseProgramAt(src, Pos{Line: 1, Col: 1}, s, d)
}

// ParseProgramAt is ParseProgram for src embedded at a known position
// of a larger document; error positions are in the document's
// coordinates.
func ParseProgramAt(src string, at Pos, s *relation.Schema, d *relation.Domain) (query.UCQ, error) {
	p, err := newParserAt(src, at)
	if err != nil {
		return query.UCQ{}, err
	}
	var q query.UCQ
	for p.tok.Kind != TokEOF {
		r, err := p.rule(s, d)
		if err != nil {
			return query.UCQ{}, err
		}
		q.Rules = append(q.Rules, r)
	}
	return q, nil
}

// MustParseRule is ParseRule for statically known-good inputs; it
// panics on error. Intended for tests and examples.
func MustParseRule(src string, s *relation.Schema, d *relation.Domain) query.Rule {
	r, err := ParseRule(src, s, d)
	if err != nil {
		panic(fmt.Sprintf("MustParseRule(%q): %v", src, err))
	}
	return r
}

// MustParseProgram is ParseProgram for statically known-good inputs;
// it panics on error. Intended for tests and examples.
func MustParseProgram(src string, s *relation.Schema, d *relation.Domain) query.UCQ {
	q, err := ParseProgram(src, s, d)
	if err != nil {
		panic(fmt.Sprintf("MustParseProgram: %v", err))
	}
	return q
}
