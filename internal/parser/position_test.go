package parser

import (
	"errors"
	"testing"
)

// wantSyntaxErrorAt asserts err is a *SyntaxError positioned exactly
// at (line, col).
func wantSyntaxErrorAt(t *testing.T, err error, line, col int) {
	t.Helper()
	if err == nil {
		t.Fatal("got nil error, want *SyntaxError")
	}
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("error %v (%T) is not a *SyntaxError", err, err)
	}
	if serr.Pos.Line != line || serr.Pos.Col != col {
		t.Errorf("error position = %v, want %d:%d (%v)", serr.Pos, line, col, err)
	}
}

func TestParseRuleErrorPositions(t *testing.T) {
	s, d := freshSchema(t)
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{"bad turnstile", "path(x, y) : edge(x, y).", 1, 12},
		{"missing comma between args", "path(x y) :- edge(x, y).", 1, 8},
		{"missing argument", "path(x, y) :- edge(x, ).", 1, 23},
		{"undeclared body relation", "path(x, y) :- nosuch(x, y).", 1, 15},
		{"undeclared head relation", "nosuch(x) :- edge(x, y).", 1, 1},
		{"head arity mismatch", "path(x) :- edge(x, y).", 1, 1},
		{"body arity mismatch", "path(x, y) :- edge(x).", 1, 15},
		{"unsafe rule", "path(x, y) :- edge(x, x).", 1, 1},
		{"missing period", "path(x, y) :- edge(x, y)", 1, 25},
		{"trailing garbage", "path(x, y) :- edge(x, y). zzz", 1, 27},
		{"unexpected character", "path(x, y) :- edge(x, @).", 1, 23},
		{"unterminated string", `path(x, y) :- edge(x, "Wall`, 1, 23},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseRule(tc.src, s, d)
			wantSyntaxErrorAt(t, err, tc.line, tc.col)
		})
	}
}

func TestParseProgramErrorPositions(t *testing.T) {
	s, d := freshSchema(t)
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{
			"error on second rule",
			"path(x, y) :- edge(x, y).\npath(x y) :- edge(x, y).",
			2, 8,
		},
		{
			"error after comment lines",
			"# summary\n// more\npath(x, y) :- nosuch(x, y).",
			3, 15,
		},
		{
			"error under indentation",
			"path(x, y) :- edge(x, y).\n\t\tpath(x, ) :- edge(x, y).",
			2, 11,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseProgram(tc.src, s, d)
			wantSyntaxErrorAt(t, err, tc.line, tc.col)
		})
	}
}

func TestParseGroundAtomErrorPositions(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		line, col int
	}{
		{"missing comma", "edge(a b)", 1, 8},
		{"empty argument", "edge(,)", 1, 6},
		{"trailing input", "edge(a, b) extra", 1, 12},
		{"not an atom", "(a, b)", 1, 1},
		{"empty input", "", 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseGroundAtom(tc.src)
			wantSyntaxErrorAt(t, err, tc.line, tc.col)
		})
	}
}

// TestParseAtErrorPositions pins the document-coordinate translation
// of the At variants: a sub-line handed to the parser with an anchor
// position reports errors in the enclosing document's coordinates.
func TestParseAtErrorPositions(t *testing.T) {
	s, d := freshSchema(t)

	_, _, err := ParseGroundAtomAt("edge(a b)", Pos{Line: 7, Col: 5})
	wantSyntaxErrorAt(t, err, 7, 12)

	_, err = ParseRuleAt("path(x y) :- edge(x, y).", Pos{Line: 3, Col: 9}, s, d)
	wantSyntaxErrorAt(t, err, 3, 16)

	_, err = ParseProgramAt("path(x, y) :- edge(x, y).\npath(x y) :- edge(x, y).", Pos{Line: 40, Col: 1}, s, d)
	// Columns after the first newline of the source are src-relative.
	wantSyntaxErrorAt(t, err, 41, 8)

	// A zero anchor normalizes to 1:1 rather than producing 0-based
	// positions.
	_, _, err = ParseGroundAtomAt("edge(a b)", Pos{})
	wantSyntaxErrorAt(t, err, 1, 8)
}

// TestLexerAtTokenPositions checks NewLexerAt offsets token positions,
// not just error positions.
func TestLexerAtTokenPositions(t *testing.T) {
	l := NewLexerAt("edge(a, b).", Pos{Line: 9, Col: 3})
	tok, err := l.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Kind != TokIdent || tok.Pos != (Pos{Line: 9, Col: 3}) {
		t.Errorf("first token %+v, want identifier at 9:3", tok)
	}
	tok, err = l.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Kind != TokLParen || tok.Pos != (Pos{Line: 9, Col: 7}) {
		t.Errorf("second token %+v, want '(' at 9:7", tok)
	}
}
