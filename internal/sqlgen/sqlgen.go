// Package sqlgen renders unions of conjunctive queries as SQL, the
// concrete syntax of the paper's database-queries domain (Section 3.1
// notes that conjunctive queries are exactly the select-from-where
// idiom; unions of them are UNION queries).
//
// Since the relational schema is positional, columns are rendered as
// c0, c1, ... and each body literal becomes one aliased table in the
// FROM clause. Join conditions arise from repeated variables,
// selections from constants. Complement relations (not_r, neq) are
// rendered like ordinary tables; a deployment would define them as
// views over the base tables.
package sqlgen

import (
	"fmt"
	"strings"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// Rule renders one conjunctive query as a SELECT statement.
func Rule(r query.Rule, s *relation.Schema, d *relation.Domain) (string, error) {
	if len(r.Body) == 0 {
		return "", fmt.Errorf("sqlgen: cannot render a bodiless rule")
	}
	// first occurrence of each variable: (literal index, column).
	type site struct{ lit, col int }
	first := map[query.Var]site{}
	var conds []string
	for li, lit := range r.Body {
		for ci, t := range lit.Args {
			switch {
			case t.IsConst:
				conds = append(conds, fmt.Sprintf("t%d.c%d = %s", li, ci, sqlConst(d.Name(t.Const))))
			default:
				if prev, ok := first[t.Var]; ok {
					conds = append(conds, fmt.Sprintf("t%d.c%d = t%d.c%d", prev.lit, prev.col, li, ci))
				} else {
					first[t.Var] = site{li, ci}
				}
			}
		}
	}
	var sel []string
	for hi, t := range r.Head.Args {
		if t.IsConst {
			sel = append(sel, fmt.Sprintf("%s AS c%d", sqlConst(d.Name(t.Const)), hi))
			continue
		}
		site, ok := first[t.Var]
		if !ok {
			return "", fmt.Errorf("sqlgen: head variable v%d not bound by the body", t.Var)
		}
		sel = append(sel, fmt.Sprintf("t%d.c%d AS c%d", site.lit, site.col, hi))
	}
	var from []string
	for li, lit := range r.Body {
		from = append(from, fmt.Sprintf("%s AS t%d", sqlIdent(s.Name(lit.Rel)), li))
	}
	var b strings.Builder
	b.WriteString("SELECT DISTINCT ")
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString("\nFROM ")
	b.WriteString(strings.Join(from, ", "))
	if len(conds) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(conds, "\n  AND "))
	}
	return b.String(), nil
}

// UCQ renders a union of conjunctive queries as a UNION of SELECT
// statements.
func UCQ(q query.UCQ, s *relation.Schema, d *relation.Domain) (string, error) {
	if len(q.Rules) == 0 {
		return "", fmt.Errorf("sqlgen: empty query")
	}
	parts := make([]string, len(q.Rules))
	for i, r := range q.Rules {
		sql, err := Rule(r, s, d)
		if err != nil {
			return "", err
		}
		parts[i] = sql
	}
	return strings.Join(parts, "\nUNION\n"), nil
}

// sqlIdent quotes a relation name when it is not a plain identifier.
func sqlIdent(name string) string {
	plain := true
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' && i > 0:
		default:
			plain = false
		}
	}
	if plain && name != "" {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// sqlConst renders a constant as a SQL string literal.
func sqlConst(v string) string {
	return "'" + strings.ReplaceAll(v, "'", "''") + "'"
}
