package sqlgen

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/parser"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

func fixture(t *testing.T) (*relation.Schema, *relation.Domain) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	s.MustDeclare("edge", 2, relation.Input)
	s.MustDeclare("color", 2, relation.Input)
	s.MustDeclare("isRed", 1, relation.Input)
	s.MustDeclare("out", 2, relation.Output)
	s.MustDeclare("target", 1, relation.Output)
	return s, d
}

func TestRuleSimpleJoin(t *testing.T) {
	s, d := fixture(t)
	r := parser.MustParseRule("out(x, z) :- edge(x, y), edge(y, z).", s, d)
	sql, err := Rule(r, s, d)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT DISTINCT t0.c0 AS c0, t1.c1 AS c1\n" +
		"FROM edge AS t0, edge AS t1\n" +
		"WHERE t0.c1 = t1.c0"
	if sql != want {
		t.Errorf("got:\n%s\nwant:\n%s", sql, want)
	}
}

func TestRuleConstantsBecomeSelections(t *testing.T) {
	s, d := fixture(t)
	r := parser.MustParseRule("target(x) :- edge(x, y), color(y, Red).", s, d)
	sql, err := Rule(r, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "t1.c1 = 'Red'") {
		t.Errorf("selection missing:\n%s", sql)
	}
	if !strings.Contains(sql, "t0.c1 = t1.c0") {
		t.Errorf("join condition missing:\n%s", sql)
	}
}

func TestRuleRepeatedVariableInOneLiteral(t *testing.T) {
	s, d := fixture(t)
	r := parser.MustParseRule("target(x) :- edge(x, x).", s, d)
	sql, err := Rule(r, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "t0.c0 = t0.c1") {
		t.Errorf("self-join condition missing:\n%s", sql)
	}
}

func TestRuleNoConditions(t *testing.T) {
	s, d := fixture(t)
	r := parser.MustParseRule("out(x, y) :- edge(x, y).", s, d)
	sql, err := Rule(r, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "WHERE") {
		t.Errorf("unexpected WHERE clause:\n%s", sql)
	}
}

func TestRuleConstHead(t *testing.T) {
	s, d := fixture(t)
	r := parser.MustParseRule("out(x, Red) :- edge(x, y).", s, d)
	sql, err := Rule(r, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "'Red' AS c1") {
		t.Errorf("constant head column missing:\n%s", sql)
	}
}

func TestRuleErrors(t *testing.T) {
	s, d := fixture(t)
	// Bodiless.
	fact := parser.MustParseRule("out(Red, Red).", s, d)
	if _, err := Rule(fact, s, d); err == nil {
		t.Error("bodiless rule rendered")
	}
	// Unsafe head (constructed directly; the parser rejects it).
	edge, _ := s.Lookup("edge")
	out, _ := s.Lookup("out")
	unsafe := query.Rule{
		Head: query.Literal{Rel: out, Args: []query.Term{query.V(0), query.V(9)}},
		Body: []query.Literal{{Rel: edge, Args: []query.Term{query.V(0), query.V(1)}}},
	}
	if _, err := Rule(unsafe, s, d); err == nil {
		t.Error("unsafe rule rendered")
	}
}

func TestUCQUnion(t *testing.T) {
	s, d := fixture(t)
	q := parser.MustParseProgram(`
		out(x, y) :- edge(x, y).
		out(x, y) :- edge(y, x).
	`, s, d)
	sql, err := UCQ(q, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(sql, "SELECT DISTINCT") != 2 || strings.Count(sql, "\nUNION\n") != 1 {
		t.Errorf("union structure wrong:\n%s", sql)
	}
	if _, err := UCQ(query.UCQ{}, s, d); err == nil {
		t.Error("empty UCQ rendered")
	}
}

func TestIdentQuoting(t *testing.T) {
	if sqlIdent("edge") != "edge" || sqlIdent("not_edge") != "not_edge" {
		t.Error("plain identifiers quoted")
	}
	if sqlIdent("weird name") != `"weird name"` {
		t.Errorf("quoting = %q", sqlIdent("weird name"))
	}
	if sqlIdent(`has"quote`) != `"has""quote"` {
		t.Errorf("escaping = %q", sqlIdent(`has"quote`))
	}
	if sqlIdent("9lives") != `"9lives"` {
		t.Errorf("leading digit = %q", sqlIdent("9lives"))
	}
}

func TestConstEscaping(t *testing.T) {
	if sqlConst("Wall St") != "'Wall St'" {
		t.Error("plain constant wrong")
	}
	if sqlConst("O'Hare") != "'O''Hare'" {
		t.Errorf("escaping = %q", sqlConst("O'Hare"))
	}
}
