// Package trace records structured traces of the EGS search: spans
// and events for cell searches, context pops, candidate-assessment
// batches, memo hits, assessment-pool round-trips, pooled-evaluator
// round-trips, and worklist high-water marks.
//
// The synthesis core (internal/egs, internal/eval) must stay a pure
// function of the task — wall-clock reads are banned there by the
// egslint nodetsource analyzer — so every timestamp is taken here,
// behind the Recorder interface: the engine asks the recorder for
// "now" and hands the value back with the event. A nil Recorder means
// tracing is off; the engine checks that once per cell and the hot
// path pays a single pointer comparison per event site, no interface
// calls and no clock reads.
//
// Events are buffered per searcher (one shard per searcher id; the
// engine guarantees each searcher records from a single goroutine at
// a time) and merged deterministically: shards in ascending searcher
// id, append order within a shard. Under Options.AssessParallelism
// the engine records assessment results after its flush barrier, on
// the searcher's own goroutine, so the event sequence — everything
// except the timestamps — is identical run to run and identical to a
// sequential search.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Kind enumerates trace event kinds.
type Kind uint8

const (
	// KindCellStart marks the beginning of one ExplainCell search
	// (Algorithm 1): Target and Slice identify the cell.
	KindCellStart Kind = iota
	// KindCellEnd closes a cell as a span: TS is the cell's start,
	// Dur its wall time, N the contexts popped, M the contexts pushed
	// while the cell ran.
	KindCellEnd
	// KindPop records one worklist pop: N is the popped context's
	// size |C|, M the queue length after the pop.
	KindPop
	// KindAssessBatch is the span of one staged-batch assessment
	// (flush): N counts rule evaluations actually executed, M the
	// batch size.
	KindAssessBatch
	// KindMemoHit reports assessments answered from the canonical-rule
	// memo in one batch: N is the hit count.
	KindMemoHit
	// KindPoolRoundTrip is the span of one assessment-pool fan-out
	// (submit → barrier): N is the number of jobs. Emitted only when
	// the batch actually went to the pool.
	KindPoolRoundTrip
	// KindEvalPool reports pooled-evaluator traffic for one cell: N is
	// the evaluator round-trips (get → release), M the evaluators
	// freshly allocated because the pool was empty.
	KindEvalPool
	// KindQueueHighWater records a new worklist length maximum: N is
	// the new high-water mark.
	KindQueueHighWater
	// KindSessionRevision summarizes one incremental-session solve:
	// Searcher is -1 (session-scoped, not tied to one searcher), N is
	// the revision's rule evaluations actually executed, M its memo
	// hits, and Target the session revision number in decimal. The
	// warm-path evidence — a revision whose N is near zero while M
	// carries the load — is read directly off these events.
	KindSessionRevision
	// KindEvalStrategy reports join-strategy dispatch for one cell: N
	// is the evaluation sessions run set-at-a-time (batch), M the
	// sessions run by backtracking, and Target the batch frontier
	// high-water mark — the largest per-literal candidate set any
	// batch session built — in decimal.
	KindEvalStrategy
)

// String returns the stable wire name of the kind. These names are
// part of the exported trace schema (DESIGN.md §11); renaming one is
// a breaking change for trace consumers.
func (k Kind) String() string {
	switch k {
	case KindCellStart:
		return "cell-start"
	case KindCellEnd:
		return "cell"
	case KindPop:
		return "pop"
	case KindAssessBatch:
		return "assess"
	case KindMemoHit:
		return "memo-hit"
	case KindPoolRoundTrip:
		return "pool-round-trip"
	case KindEvalPool:
		return "eval-pool"
	case KindQueueHighWater:
		return "queue-high-water"
	case KindSessionRevision:
		return "session-revision"
	case KindEvalStrategy:
		return "eval-strategy"
	default:
		return "unknown"
	}
}

// Event is one trace record. TS and Dur are nanoseconds relative to
// the recorder's epoch; N and M carry kind-specific counters (see the
// Kind constants).
type Event struct {
	Kind     Kind
	Searcher int32 // searcher id; the trace's "thread"
	Slice    int32 // 1-based cell slice index; 0 when not cell-scoped
	TS       int64 // ns since the recorder epoch
	Dur      int64 // ns; 0 for instantaneous events
	N        int64
	M        int64
	Target   string // rendered cell target tuple; cell events only
}

// Recorder receives engine events. A nil Recorder disables tracing.
// Record must be safe for concurrent use by multiple searchers; the
// engine guarantees that all events of one searcher id arrive from
// one goroutine at a time. Now returns nanoseconds since the
// recorder's epoch, so the deterministic engine never reads a clock
// itself.
type Recorder interface {
	Now() int64
	Record(Event)
}

// Collector is the standard Recorder: it buffers events per searcher
// and merges them deterministically on demand.
type Collector struct {
	epoch time.Time

	mu     sync.Mutex
	shards map[int32][]Event
}

// NewCollector returns an empty collector whose epoch is "now".
func NewCollector() *Collector {
	return &Collector{epoch: time.Now(), shards: make(map[int32][]Event)}
}

// Now implements Recorder.
func (c *Collector) Now() int64 { return time.Since(c.epoch).Nanoseconds() }

// Record implements Recorder.
func (c *Collector) Record(e Event) {
	c.mu.Lock()
	c.shards[e.Searcher] = append(c.shards[e.Searcher], e)
	c.mu.Unlock()
}

// Len returns the number of buffered events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.shards {
		n += len(s)
	}
	return n
}

// Events returns the merged trace: shards in ascending searcher id,
// events in append order within each shard. The order is a pure
// function of the search (timestamps aside), so two runs of the same
// task produce the same event sequence. The returned slice is a copy.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int32, 0, len(c.shards))
	n := 0
	for id, s := range c.shards {
		ids = append(ids, id)
		n += len(s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Event, 0, n)
	for _, id := range ids {
		out = append(out, c.shards[id]...)
	}
	return out
}

// Reset drops all buffered events, keeping the epoch.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.shards = make(map[int32][]Event)
	c.mu.Unlock()
}
