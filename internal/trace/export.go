// Exporters for recorded traces: the Chrome trace-event format
// (loadable in about://tracing and Perfetto) and a compact NDJSON
// stream for programmatic consumers. Both render events in the
// collector's deterministic merge order and never format a map, so
// output bytes are stable modulo timestamps.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one record of the Chrome trace-event format. Only
// the fields the format defines are emitted; Args carries the
// kind-specific counters.
type chromeEvent struct {
	Name  string      `json:"name"`
	Phase string      `json:"ph"`
	TS    float64     `json:"ts"` // microseconds
	Dur   float64     `json:"dur,omitempty"`
	PID   int         `json:"pid"`
	TID   int         `json:"tid"`
	Scope string      `json:"s,omitempty"` // instant-event scope
	Args  *chromeArgs `json:"args,omitempty"`
}

type chromeArgs struct {
	Slice  int32  `json:"slice,omitempty"`
	N      int64  `json:"n,omitempty"`
	M      int64  `json:"m,omitempty"`
	Target string `json:"target,omitempty"`
}

// chromeMeta is a metadata record (process/thread naming).
type chromeMeta struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args"`
}

// chromeFile is the object form of the trace-event format.
type chromeFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

const chromePID = 1

// WriteChrome renders events as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), loadable in about://tracing or Perfetto.
// Spans (Dur > 0 or span-shaped kinds) become complete ("X") events;
// everything else becomes a thread-scoped instant ("i") event.
func WriteChrome(w io.Writer, events []Event) error {
	records := make([]json.RawMessage, 0, len(events)+2)
	appendRec := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		records = append(records, b)
		return nil
	}
	if err := appendRec(chromeMeta{
		Name: "process_name", Phase: "M", PID: chromePID, TID: 0,
		Args: map[string]string{"name": "egs"},
	}); err != nil {
		return err
	}
	named := make(map[int32]bool)
	for _, e := range events {
		if !named[e.Searcher] {
			named[e.Searcher] = true
			if err := appendRec(chromeMeta{
				Name: "thread_name", Phase: "M", PID: chromePID, TID: int(e.Searcher) + 1,
				Args: map[string]string{"name": fmt.Sprintf("searcher-%d", e.Searcher)},
			}); err != nil {
				return err
			}
		}
		ce := chromeEvent{
			Name: e.Kind.String(),
			TS:   float64(e.TS) / 1e3,
			PID:  chromePID,
			TID:  int(e.Searcher) + 1,
		}
		if e.Dur > 0 || spanKind(e.Kind) {
			ce.Phase = "X"
			ce.Dur = float64(e.Dur) / 1e3
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		if e.Slice != 0 || e.N != 0 || e.M != 0 || e.Target != "" {
			ce.Args = &chromeArgs{Slice: e.Slice, N: e.N, M: e.M, Target: e.Target}
		}
		if err := appendRec(ce); err != nil {
			return err
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: records, DisplayTimeUnit: "ms"})
}

// spanKind reports whether the kind renders as a complete span even
// when its measured duration rounds to zero.
func spanKind(k Kind) bool {
	switch k {
	case KindCellEnd, KindAssessBatch, KindPoolRoundTrip:
		return true
	}
	return false
}

// ndjsonEvent is the compact NDJSON wire form of one event.
type ndjsonEvent struct {
	Kind     string `json:"kind"`
	Searcher int32  `json:"searcher"`
	Slice    int32  `json:"slice,omitempty"`
	TS       int64  `json:"ts_ns"`
	Dur      int64  `json:"dur_ns,omitempty"`
	N        int64  `json:"n,omitempty"`
	M        int64  `json:"m,omitempty"`
	Target   string `json:"target,omitempty"`
}

// WriteNDJSON renders events as newline-delimited JSON, one compact
// object per event, in the deterministic merge order.
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(ndjsonEvent{
			Kind:     e.Kind.String(),
			Searcher: e.Searcher,
			Slice:    e.Slice,
			TS:       e.TS,
			Dur:      e.Dur,
			N:        e.N,
			M:        e.M,
			Target:   e.Target,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
