package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: KindCellStart, Searcher: 0, Slice: 1, TS: 1000, Target: "path(a, b)"},
		{Kind: KindPop, Searcher: 0, Slice: 1, TS: 2000, N: 2, M: 7},
		{Kind: KindAssessBatch, Searcher: 0, Slice: 1, TS: 2500, Dur: 1500, N: 3, M: 4},
		{Kind: KindMemoHit, Searcher: 0, Slice: 1, TS: 4000, N: 1},
		{Kind: KindQueueHighWater, Searcher: 0, TS: 4100, N: 9},
		{Kind: KindEvalPool, Searcher: 0, Slice: 1, TS: 4500, N: 3, M: 1},
		{Kind: KindCellEnd, Searcher: 0, Slice: 1, TS: 1000, Dur: 4000, N: 5, M: 11, Target: "path(a, b)"},
		{Kind: KindPoolRoundTrip, Searcher: 1, TS: 3000, Dur: 700, N: 4},
	}
}

// TestCollectorDeterministicMerge checks the merge contract: shards
// in ascending searcher id, append order within a shard — regardless
// of the interleaving Record saw.
func TestCollectorDeterministicMerge(t *testing.T) {
	c := NewCollector()
	c.Record(Event{Kind: KindPop, Searcher: 2, N: 1})
	c.Record(Event{Kind: KindPop, Searcher: 0, N: 2})
	c.Record(Event{Kind: KindPop, Searcher: 2, N: 3})
	c.Record(Event{Kind: KindPop, Searcher: 1, N: 4})
	c.Record(Event{Kind: KindPop, Searcher: 0, N: 5})
	got := c.Events()
	want := []struct {
		searcher int32
		n        int64
	}{{0, 2}, {0, 5}, {1, 4}, {2, 1}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].Searcher != w.searcher || got[i].N != w.n {
			t.Errorf("event %d: searcher=%d n=%d, want searcher=%d n=%d",
				i, got[i].Searcher, got[i].N, w.searcher, w.n)
		}
	}
	if c.Len() != 5 {
		t.Errorf("Len() = %d, want 5", c.Len())
	}
	c.Reset()
	if c.Len() != 0 || len(c.Events()) != 0 {
		t.Error("Reset left events behind")
	}
}

// TestCollectorConcurrentRecord drives Record from many goroutines so
// `go test -race` exercises the shard lock.
func TestCollectorConcurrentRecord(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for s := int32(0); s < 8; s++ {
		wg.Add(1)
		go func(s int32) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Record(Event{Kind: KindPop, Searcher: s, TS: c.Now(), N: int64(i)})
			}
		}(s)
	}
	wg.Wait()
	events := c.Events()
	if len(events) != 800 {
		t.Fatalf("got %d events, want 800", len(events))
	}
	// Within each shard, append order must be preserved.
	next := make(map[int32]int64)
	for _, e := range events {
		if e.N != next[e.Searcher] {
			t.Fatalf("searcher %d: event out of order: n=%d, want %d", e.Searcher, e.N, next[e.Searcher])
		}
		next[e.Searcher]++
	}
}

// TestWriteChromeShape validates the exported Chrome trace against
// the schema contract (DESIGN.md §11): an object with a traceEvents
// array whose records carry name/ph/ts/pid/tid, spans carry dur, and
// instants carry a scope.
func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exported chrome trace is not valid JSON: %v", err)
	}
	if file.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", file.Unit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	kinds := make(map[string]int)
	for _, ev := range file.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event missing name/ph: %v", ev)
		}
		if ph == "M" {
			continue // metadata record
		}
		kinds[name]++
		if _, ok := ev["ts"].(float64); !ok {
			t.Errorf("event %q: ts missing or not a number", name)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event %q: pid missing", name)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Errorf("event %q: tid missing", name)
		}
		switch ph {
		case "X":
			if _, ok := ev["dur"]; !ok && name != "pool-round-trip" && name != "assess" && name != "cell" {
				t.Errorf("span %q: dur missing", name)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("instant %q: scope = %q, want t", name, s)
			}
		default:
			t.Errorf("event %q: unexpected phase %q", name, ph)
		}
	}
	for _, want := range []string{"cell", "cell-start", "pop", "assess", "memo-hit"} {
		if kinds[want] == 0 {
			t.Errorf("exported trace contains no %q events", want)
		}
	}
	// Spans must render as complete events.
	for _, ev := range file.TraceEvents {
		if name, _ := ev["name"].(string); name == "cell" || name == "assess" || name == "pool-round-trip" {
			if ph, _ := ev["ph"].(string); ph != "X" {
				t.Errorf("%q rendered with phase %q, want X", name, ph)
			}
		}
	}
}

// TestWriteNDJSON validates the NDJSON stream: one valid JSON object
// per line, kinds spelled with their wire names, zero fields elided.
func TestWriteNDJSON(t *testing.T) {
	var buf bytes.Buffer
	events := sampleEvents()
	if err := WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		line := sc.Text()
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines+1, err, line)
		}
		if _, ok := obj["kind"].(string); !ok {
			t.Fatalf("line %d: kind missing", lines+1)
		}
		if _, ok := obj["ts_ns"].(float64); !ok {
			t.Fatalf("line %d: ts_ns missing", lines+1)
		}
		lines++
	}
	if lines != len(events) {
		t.Fatalf("got %d lines, want %d", lines, len(events))
	}
	// Re-render and check the wire spelling of a representative line.
	var again bytes.Buffer
	if err := WriteNDJSON(&again, events[:1]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(again.String(), `"kind":"cell-start"`) {
		t.Errorf("NDJSON line does not carry the wire kind name: %s", again.String())
	}
}

// TestKindNamesStable pins the wire names of every kind: they are the
// exported schema and must not drift.
func TestKindNamesStable(t *testing.T) {
	want := map[Kind]string{
		KindCellStart:      "cell-start",
		KindCellEnd:        "cell",
		KindPop:            "pop",
		KindAssessBatch:    "assess",
		KindMemoHit:        "memo-hit",
		KindPoolRoundTrip:  "pool-round-trip",
		KindEvalPool:       "eval-pool",
		KindQueueHighWater: "queue-high-water",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), name)
		}
	}
	if Kind(250).String() != "unknown" {
		t.Errorf("unknown kind should render as unknown")
	}
}
