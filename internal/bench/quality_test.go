package bench

import (
	"context"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/task"
)

// TestIntendedProgramsConsistent is the suite's data-sanity check:
// every realizable task's intended program must itself be consistent
// with the task's example. A failure here means the benchmark data is
// wrong, not the synthesizer.
func TestIntendedProgramsConsistent(t *testing.T) {
	s := loadSuite(t)
	for _, tk := range s.Realizable {
		tk := tk
		t.Run(tk.Name, func(t *testing.T) {
			if !tk.HasIntended() {
				t.Fatalf("task %s declares no intended program", tk.Name)
			}
			if ok, why := tk.Example().Consistent(tk.Intended()); !ok {
				t.Fatalf("intended program inconsistent: %s", why)
			}
		})
	}
}

// TestUnrealizableTasksHaveNoIntended keeps unsat tasks honest.
func TestUnrealizableTasksHaveNoIntended(t *testing.T) {
	s := loadSuite(t)
	for _, tk := range s.Unrealizable {
		if tk.HasIntended() {
			t.Errorf("unrealizable task %s declares an intended program", tk.Name)
		}
	}
}

func TestCompareQuality(t *testing.T) {
	s := loadSuite(t)
	rows, err := CompareQuality(context.Background(), s.Realizable)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Realizable) {
		t.Fatalf("quality rows = %d, want %d", len(rows), len(s.Realizable))
	}
	same, matched := 0, 0
	for _, r := range rows {
		if r.GotRules == 0 || r.WantRules == 0 {
			t.Errorf("%s: empty counts: %+v", r.Task, r)
		}
		if r.SameOutputs {
			same++
		}
		if r.Matched {
			matched++
		}
	}
	// The paper reports that EGS captures the target concept
	// throughout (Section 6.4) and syntactically matches the
	// human-written program on all but two benchmarks. Our suite
	// reproduces both: every task derives the intended outputs, and
	// at most a handful (sequential — the paper's own overfitting
	// example — plus rare attribute coincidences) differ
	// syntactically.
	if same != len(rows) {
		t.Errorf("only %d/%d tasks derive the intended outputs", same, len(rows))
	}
	if matched < len(rows)-5 {
		t.Errorf("only %d/%d tasks syntactically match the intended program (paper: 77/79)", matched, len(rows))
	}

	var sb strings.Builder
	if err := WriteQualityComparison(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TOTAL") {
		t.Error("quality comparison missing summary row")
	}
}

func TestIntendedParsing(t *testing.T) {
	src := `
task it
closed-world true
input edge(2)
output out(2)
intended out(x, y) :- edge(y, x).
edge(a, b).
+out(b, a).
`
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !tk.HasIntended() || len(tk.Intended().Rules) != 1 {
		t.Fatalf("intended = %+v", tk.IntendedSrc)
	}
	if ok, why := tk.Example().Consistent(tk.Intended()); !ok {
		t.Fatalf("intended inconsistent: %s", why)
	}
	// Bad intended rule must fail at load time.
	bad := strings.Replace(src, "edge(y, x)", "nosuch(y, x)", 1)
	if _, err := task.Parse(strings.NewReader(bad)); err == nil {
		t.Error("undeclared relation in intended rule not rejected")
	}
}
