package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/modes"
	"github.com/egs-synthesis/egs/internal/task"
)

// WriteTable1 renders the benchmark-characteristics table (Table 1
// of the paper): per task, the number of input/output relations and
// tuples and the disjunction/negation features.
func WriteTable1(w io.Writer, s *Suite) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Category\tName\t#In.Rels\t#In.Tuples\t#Out.Rels\t#Out.Tuples\tFeatures")
	for _, cat := range s.Categories() {
		for _, t := range s.ByCategory(cat) {
			var feats []string
			if t.FeatureDisj {
				feats = append(feats, "∨")
			}
			if t.FeatureNeg {
				feats = append(feats, "¬")
			}
			if t.Expect == task.ExpectUnsat {
				feats = append(feats, "unsat")
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
				cat, t.Name, t.RawInputRels, t.RawInputCount,
				len(t.OutputRelations()), len(t.Pos), strings.Join(feats, ","))
		}
	}
	return tw.Flush()
}

// figure4Buckets are the cumulative time thresholds of the cactus
// plot rendering.
var figure4Buckets = []time.Duration{
	100 * time.Millisecond,
	300 * time.Millisecond,
	time.Second,
	3 * time.Second,
	10 * time.Second,
	30 * time.Second,
	100 * time.Second,
	300 * time.Second,
}

// WriteFigure4 renders the cactus plot of Figure 4 as a table: for
// each tool, how many of the realizable benchmarks were solved within
// each time budget. A datapoint (n, t) means the tool solved n
// benchmarks in at most t each (the paper plots the same cumulative
// series).
func WriteFigure4(w io.Writer, recs []Record) error {
	byTool := map[string][]time.Duration{}
	total := map[string]int{}
	var tools []string
	seen := map[string]bool{}
	for _, r := range recs {
		if !seen[r.Tool] {
			seen[r.Tool] = true
			tools = append(tools, r.Tool)
		}
		total[r.Tool]++
		if r.Outcome == Solved {
			byTool[r.Tool] = append(byTool[r.Tool], r.Duration)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Tool")
	for _, b := range figure4Buckets {
		fmt.Fprintf(tw, "\t≤%v", b)
	}
	fmt.Fprintln(tw, "\tsolved\ttasks")
	for _, tool := range tools {
		ds := byTool[tool]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Fprint(tw, tool)
		for _, b := range figure4Buckets {
			n := sort.Search(len(ds), func(i int) bool { return ds[i] > b })
			fmt.Fprintf(tw, "\t%d", n)
		}
		fmt.Fprintf(tw, "\t%d\t%d\n", len(ds), total[tool])
	}
	return tw.Flush()
}

// WriteTable2 renders the unrealizable-benchmark table (Table 2):
// per task and tool, the runtime, or the failure mode. Verdicts are
// annotated: EGS's "unsat" is a proof; "exhausted" only rules out the
// searched space (the Section 6.5 distinction).
func WriteTable2(w io.Writer, recs []Record) error {
	tools, byKey := pivot(recs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Benchmark\t%s\n", strings.Join(tools, "\t"))
	for _, name := range taskOrder(recs) {
		fmt.Fprint(tw, name)
		for _, tool := range tools {
			fmt.Fprintf(tw, "\t%s", cell(byKey[name+"\x00"+tool]))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteRuntimeTable renders the per-task runtime tables (Tables 3-5)
// for one category, including the candidate-rule counts of the
// task-specific and task-agnostic rule sets when requested.
func WriteRuntimeTable(w io.Writer, recs []Record, ruleCounts map[string][2]string) error {
	tools, byKey := pivot(recs)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Benchmark\t%s", strings.Join(tools, "\t"))
	if ruleCounts != nil {
		fmt.Fprint(tw, "\t#Rules(L)\t#Rules(F)")
	}
	fmt.Fprintln(tw)
	for _, name := range taskOrder(recs) {
		fmt.Fprint(tw, name)
		for _, tool := range tools {
			fmt.Fprintf(tw, "\t%s", cell(byKey[name+"\x00"+tool]))
		}
		if ruleCounts != nil {
			rc := ruleCounts[name]
			fmt.Fprintf(tw, "\t%s\t%s", rc[0], rc[1])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteQuality renders the Section 6.4 program-quality report: the
// size of each synthesized program (rules and body literals).
func WriteQuality(w io.Writer, recs []Record) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tTool\tRules\tLiterals\tTime")
	for _, r := range recs {
		if r.Outcome != Solved {
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\n",
			r.Task, r.Tool, r.Rules, r.Literals, r.Duration.Round(time.Millisecond))
	}
	return tw.Flush()
}

// RuleCounts computes, for each task, the candidate-rule counts of
// the task-specific and task-agnostic mode declarations (the
// "#Rules" columns of Tables 3-5). Counting is bounded by the
// timeout and by cap; a dash marks spaces whose enumeration did not
// finish, mirroring the enumeration timeouts the paper reports.
func RuleCounts(ctx context.Context, tasks []*task.Task, timeout time.Duration, cap int) map[string][2]string {
	out := make(map[string][2]string)
	for _, t := range tasks {
		var cells [2]string
		for i, src := range []ilasp.ModeSource{ilasp.TaskSpecific, ilasp.TaskAgnostic} {
			cctx, cancel := context.WithTimeout(ctx, timeout)
			res := modes.Generate(cctx, t, ilasp.ModesFor(t, src), cap)
			cancel()
			if res.Truncated {
				cells[i] = fmt.Sprintf(">%d", len(res.Rules))
			} else {
				cells[i] = fmt.Sprintf("%d", len(res.Rules))
			}
		}
		out[t.Name] = [2]string{cells[0], cells[1]}
	}
	return out
}

// pivot indexes records by task and tool, preserving tool order.
func pivot(recs []Record) (tools []string, byKey map[string]Record) {
	byKey = make(map[string]Record)
	seen := map[string]bool{}
	for _, r := range recs {
		if !seen[r.Tool] {
			seen[r.Tool] = true
			tools = append(tools, r.Tool)
		}
		byKey[r.Task+"\x00"+r.Tool] = r
	}
	return tools, byKey
}

// taskOrder lists the distinct task names in first-seen order.
func taskOrder(recs []Record) []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range recs {
		if !seen[r.Task] {
			seen[r.Task] = true
			names = append(names, r.Task)
		}
	}
	return names
}

// cell renders one table cell for a record.
func cell(r Record) string {
	switch r.Outcome {
	case Solved:
		return fmtDuration(r.Duration)
	case ProvedUnsat:
		return fmtDuration(r.Duration) + " (unsat)"
	case SpaceExhausted:
		return fmtDuration(r.Duration) + " (exh)"
	case TimedOut:
		return "-"
	default:
		return "fail"
	}
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.2fs", d.Seconds())
}
