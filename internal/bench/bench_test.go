package bench

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

const suiteDir = "../../testdata/benchmarks"

func loadSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := LoadSuite(suiteDir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteShape(t *testing.T) {
	s := loadSuite(t)
	if got := len(s.All); got != 86 {
		t.Errorf("suite has %d tasks, want 86", got)
	}
	if got := len(s.Realizable); got != 79 {
		t.Errorf("suite has %d realizable tasks, want 79", got)
	}
	if got := len(s.Unrealizable); got != 7 {
		t.Errorf("suite has %d unrealizable tasks, want 7", got)
	}
	counts := map[string]int{}
	for _, tk := range s.All {
		counts[tk.Category]++
	}
	want := map[string]int{
		"knowledge-discovery": 20,
		"program-analysis":    18,
		"database-queries":    41,
		"unrealizable":        7,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %s has %d tasks, want %d", cat, counts[cat], n)
		}
	}
	// Every task declares its expected outcome.
	for _, tk := range s.All {
		if tk.Expect == task.ExpectUnknown {
			t.Errorf("task %s has no expect directive", tk.Name)
		}
	}
}

// TestEGSSolvesEntireSuite is the headline integration test: EGS must
// decide all 86 benchmarks correctly — synthesizing a consistent
// query for each of the 79 realizable tasks and proving the 7
// unrealizable ones unsat — mirroring the paper's central result
// that EGS handles the full suite with no timeouts.
func TestEGSSolvesEntireSuite(t *testing.T) {
	s := loadSuite(t)
	tool := &synth.EGS{}
	for _, tk := range s.All {
		tk := tk
		t.Run(tk.Name, func(t *testing.T) {
			rec := Run(context.Background(), tool, tk, 120*time.Second)
			switch tk.Expect {
			case task.ExpectSat:
				if rec.Outcome != Solved {
					t.Fatalf("outcome = %v (%v), want solved", rec.Outcome, rec.Err)
				}
				if rec.Rules == 0 || rec.Literals == 0 {
					t.Errorf("solved with empty program? rules=%d lits=%d", rec.Rules, rec.Literals)
				}
			case task.ExpectUnsat:
				if rec.Outcome != ProvedUnsat {
					t.Fatalf("outcome = %v (%v), want unsat", rec.Outcome, rec.Err)
				}
			}
		})
	}
}

// slowTool blocks until its context is cancelled.
type slowTool struct{}

func (slowTool) Name() string { return "slow" }
func (slowTool) Synthesize(ctx context.Context, _ *task.Task) (synth.Result, error) {
	<-ctx.Done()
	return synth.Result{}, ctx.Err()
}

// badTool returns an inconsistent query.
type badTool struct{}

func (badTool) Name() string { return "bad" }
func (badTool) Synthesize(_ context.Context, _ *task.Task) (synth.Result, error) {
	return synth.Result{Status: synth.Sat}, nil
}

// errTool fails outright.
type errTool struct{}

func (errTool) Name() string { return "err" }
func (errTool) Synthesize(_ context.Context, _ *task.Task) (synth.Result, error) {
	return synth.Result{}, errors.New("boom")
}

func anyTask(t *testing.T) *task.Task {
	t.Helper()
	s := loadSuite(t)
	return s.Realizable[0]
}

func TestRunTimeout(t *testing.T) {
	rec := Run(context.Background(), slowTool{}, anyTask(t), 50*time.Millisecond)
	if rec.Outcome != TimedOut {
		t.Errorf("outcome = %v, want timeout", rec.Outcome)
	}
}

func TestRunRejectsInconsistentResult(t *testing.T) {
	rec := Run(context.Background(), badTool{}, anyTask(t), time.Second)
	if rec.Outcome != Failed {
		t.Errorf("outcome = %v, want failed", rec.Outcome)
	}
}

func TestRunPropagatesError(t *testing.T) {
	rec := Run(context.Background(), errTool{}, anyTask(t), time.Second)
	if rec.Outcome != Failed || rec.Err == nil {
		t.Errorf("outcome = %v err = %v, want failed with error", rec.Outcome, rec.Err)
	}
}

func TestWriteTable1(t *testing.T) {
	s := loadSuite(t)
	var sb strings.Builder
	if err := WriteTable1(&sb, s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"traffic", "downcast", "sql41", "isomorphism", "#In.Tuples"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	// 86 task rows + header.
	if got := strings.Count(out, "\n"); got != 87 {
		t.Errorf("Table 1 has %d lines, want 87", got)
	}
}

func TestWriteFigure4(t *testing.T) {
	recs := []Record{
		{Task: "a", Tool: "egs", Outcome: Solved, Duration: 50 * time.Millisecond},
		{Task: "b", Tool: "egs", Outcome: Solved, Duration: 2 * time.Second},
		{Task: "a", Tool: "scythe", Outcome: TimedOut, Duration: 300 * time.Second},
		{Task: "b", Tool: "scythe", Outcome: Solved, Duration: 20 * time.Second},
	}
	var sb strings.Builder
	if err := WriteFigure4(&sb, recs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "egs") || !strings.Contains(out, "scythe") {
		t.Fatalf("Figure 4 output missing tools:\n%s", out)
	}
	// egs: 1 solved <=100ms, 2 solved <=3s; scythe: 1 solved total.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("Figure 4 has %d lines, want 3:\n%s", len(lines), out)
	}
	egsLine := strings.Fields(lines[1])
	if egsLine[1] != "1" || egsLine[4] != "2" {
		t.Errorf("egs cumulative counts wrong: %v", egsLine)
	}
}

func TestWriteTable2AndRuntime(t *testing.T) {
	recs := []Record{
		{Task: "isomorphism", Tool: "egs", Outcome: ProvedUnsat, Duration: 10 * time.Millisecond},
		{Task: "isomorphism", Tool: "ilasp-L", Outcome: SpaceExhausted, Duration: 30 * time.Millisecond},
		{Task: "isomorphism", Tool: "scythe", Outcome: TimedOut},
	}
	var sb strings.Builder
	if err := WriteTable2(&sb, recs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(unsat)") || !strings.Contains(out, "(exh)") || !strings.Contains(out, "-") {
		t.Errorf("Table 2 cells wrong:\n%s", out)
	}
	sb.Reset()
	counts := map[string][2]string{"isomorphism": {"12", ">500"}}
	if err := WriteRuntimeTable(&sb, recs, counts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ">500") {
		t.Errorf("runtime table missing rule counts:\n%s", sb.String())
	}
}

func TestWriteQuality(t *testing.T) {
	recs := []Record{
		{Task: "traffic", Tool: "egs", Outcome: Solved, Rules: 1, Literals: 5, Duration: time.Millisecond},
		{Task: "iso", Tool: "egs", Outcome: ProvedUnsat},
	}
	var sb strings.Builder
	if err := WriteQuality(&sb, recs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "traffic") || strings.Contains(out, "iso\t") {
		t.Errorf("quality table wrong:\n%s", out)
	}
}

func TestRuleCountsTruncation(t *testing.T) {
	s := loadSuite(t)
	var traffic *task.Task
	for _, tk := range s.All {
		if tk.Name == "traffic" {
			traffic = tk
		}
	}
	if traffic == nil {
		t.Fatal("traffic task missing")
	}
	counts := RuleCounts(context.Background(), []*task.Task{traffic}, 200*time.Millisecond, 100000)
	rc := counts["traffic"]
	if rc[0] == "" || rc[1] == "" {
		t.Fatalf("missing counts: %v", rc)
	}
	// The task-specific space is small and must enumerate fully.
	if strings.HasPrefix(rc[0], ">") {
		t.Errorf("task-specific count truncated: %v", rc)
	}
}

func TestCategoriesOrdered(t *testing.T) {
	s := loadSuite(t)
	cats := s.Categories()
	want := []string{"knowledge-discovery", "program-analysis", "database-queries", "unrealizable"}
	if len(cats) != len(want) {
		t.Fatalf("categories = %v", cats)
	}
	for i := range want {
		if cats[i] != want[i] {
			t.Fatalf("categories = %v, want %v", cats, want)
		}
	}
}

func TestToolSets(t *testing.T) {
	if got := len(ToolSet()); got != 6 {
		t.Errorf("ToolSet has %d tools, want 6 (the Figure 4 configurations)", got)
	}
	if got := len(AblationToolSet()); got < 4 {
		t.Errorf("AblationToolSet has %d tools", got)
	}
}
