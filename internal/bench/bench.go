// Package bench is the benchmark harness of the reproduction: it
// runs the synthesizers over the 86-task suite under a timeout and
// renders the paper's tables and figures (Table 1, Figure 4, Table 2,
// and the appendix Tables 3-5), plus the Section 6.4 program-quality
// report.
package bench

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/enumerative"
	"github.com/egs-synthesis/egs/internal/ilasp"
	"github.com/egs-synthesis/egs/internal/prosynth"
	"github.com/egs-synthesis/egs/internal/scythe"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// Outcome classifies one (tool, task) run.
type Outcome uint8

const (
	// Solved: the tool returned a consistent query.
	Solved Outcome = iota
	// ProvedUnsat: the tool proved unrealizability.
	ProvedUnsat
	// SpaceExhausted: the tool's bounded space contained no solution.
	SpaceExhausted
	// TimedOut: the timeout expired.
	TimedOut
	// Failed: the tool returned an error or an inconsistent query.
	Failed
)

func (o Outcome) String() string {
	switch o {
	case Solved:
		return "solved"
	case ProvedUnsat:
		return "unsat"
	case SpaceExhausted:
		return "exhausted"
	case TimedOut:
		return "timeout"
	default:
		return "failed"
	}
}

// Record is the result of one (tool, task) run.
type Record struct {
	Task     string
	Category string
	Tool     string
	Outcome  Outcome
	Duration time.Duration
	// Rules and Literals describe the synthesized program when
	// Outcome is Solved.
	Rules, Literals int
	Detail          string
	Err             error
}

// Run executes one tool on one task under the given timeout,
// re-checking any Sat result with the reference evaluator.
func Run(parent context.Context, tool synth.Synthesizer, t *task.Task, timeout time.Duration) Record {
	rec := Record{Task: t.Name, Category: t.Category, Tool: tool.Name()}
	ctx, cancel := context.WithTimeout(parent, timeout)
	defer cancel()

	type reply struct {
		res synth.Result
		err error
	}
	ch := make(chan reply, 1)
	start := time.Now()
	go func() {
		res, err := tool.Synthesize(ctx, t)
		ch <- reply{res, err}
	}()
	// Grace period beyond the context deadline so tools that poll the
	// context between expensive steps can notice cancellation.
	grace := timeout + timeout/2 + time.Second
	var r reply
	select {
	case r = <-ch:
	case <-time.After(grace):
		rec.Outcome = TimedOut
		rec.Duration = time.Since(start)
		rec.Detail = "no response within grace period"
		return rec
	}
	rec.Duration = time.Since(start)
	if r.err != nil {
		if ctx.Err() != nil {
			rec.Outcome = TimedOut
			return rec
		}
		rec.Outcome = Failed
		rec.Err = r.err
		return rec
	}
	rec.Detail = r.res.Detail
	switch r.res.Status {
	case synth.Sat:
		if ok, why := synth.CheckSat(t, r.res); !ok {
			rec.Outcome = Failed
			rec.Err = fmt.Errorf("inconsistent result: %s", why)
			return rec
		}
		rec.Outcome = Solved
		rec.Rules = len(r.res.Query.Rules)
		rec.Literals = r.res.Query.Size()
	case synth.Unsat:
		rec.Outcome = ProvedUnsat
	case synth.Exhausted:
		rec.Outcome = SpaceExhausted
	}
	return rec
}

// ToolSet returns the paper's six tool configurations (Figure 4):
// EGS, Scythe, and ILASP / ProSynth each with task-specific (L) and
// task-agnostic (F) rule sets.
func ToolSet() []synth.Synthesizer {
	return []synth.Synthesizer{
		&synth.EGS{},
		&scythe.Synthesizer{},
		&ilasp.Synthesizer{Source: ilasp.TaskSpecific},
		&ilasp.Synthesizer{Source: ilasp.TaskAgnostic},
		&prosynth.Synthesizer{Source: ilasp.TaskSpecific},
		&prosynth.Synthesizer{Source: ilasp.TaskAgnostic},
	}
}

// AblationToolSet returns the configurations exercised by this
// reproduction's additional ablations: the p1 priority, the
// Lemma 4.2 unsat fast path, and the naive enumerator with and
// without the indistinguishability optimization.
func AblationToolSet() []synth.Synthesizer {
	return []synth.Synthesizer{
		&synth.EGS{},
		&synth.EGS{Label: "egs-p1", Options: egs.Options{Priority: egs.P1}},
		&synth.EGS{Label: "egs-quickunsat", Options: egs.Options{QuickUnsat: true}},
		&enumerative.Synthesizer{},
		&enumerative.Synthesizer{Indistinguishability: true},
	}
}

// Suite is a loaded benchmark suite split by realizability.
type Suite struct {
	All          []*task.Task
	Realizable   []*task.Task
	Unrealizable []*task.Task
}

// LoadSuite loads every task under dir.
func LoadSuite(dir string) (*Suite, error) {
	tasks, err := task.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	s := &Suite{All: tasks}
	for _, t := range tasks {
		if t.Expect == task.ExpectUnsat {
			s.Unrealizable = append(s.Unrealizable, t)
		} else {
			s.Realizable = append(s.Realizable, t)
		}
	}
	return s, nil
}

// Categories returns the category names present in the suite, in
// presentation order.
func (s *Suite) Categories() []string {
	order := map[string]int{
		"knowledge-discovery": 0,
		"program-analysis":    1,
		"database-queries":    2,
		"unrealizable":        3,
	}
	seen := map[string]bool{}
	var cats []string
	for _, t := range s.All {
		if !seen[t.Category] {
			seen[t.Category] = true
			cats = append(cats, t.Category)
		}
	}
	sort.Slice(cats, func(i, j int) bool {
		oi, oki := order[cats[i]]
		oj, okj := order[cats[j]]
		switch {
		case oki && okj:
			return oi < oj
		case oki:
			return true
		case okj:
			return false
		default:
			return cats[i] < cats[j]
		}
	})
	return cats
}

// ByCategory returns the suite's tasks in the given category.
func (s *Suite) ByCategory(cat string) []*task.Task {
	var out []*task.Task
	for _, t := range s.All {
		if t.Category == cat {
			out = append(out, t)
		}
	}
	return out
}

// RunMatrix runs every tool on every given task.
func RunMatrix(ctx context.Context, tools []synth.Synthesizer, tasks []*task.Task, timeout time.Duration, progress func(Record)) []Record {
	var recs []Record
	for _, t := range tasks {
		for _, tool := range tools {
			rec := Run(ctx, tool, t, timeout)
			recs = append(recs, rec)
			if progress != nil {
				progress(rec)
			}
		}
	}
	return recs
}
