package bench

import (
	"fmt"

	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// ScaledTraffic generates an n-street instance of the paper's
// running example for scalability experiments (the "larger input
// data" direction of Section 8). Streets form a ring with chords;
// signal and traffic attributes are assigned deterministically so
// that exactly the pairs matching Equation 1 crash:
//
//	Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y),
//	              GreenSignal(x), GreenSignal(y).
//
// The instance is closed-world labelled with that rule's exact
// output, so it is realizable by construction at every size.
func ScaledTraffic(n int) (*task.Task, error) {
	if n < 4 {
		return nil, fmt.Errorf("bench: scaled traffic needs at least 4 streets, got %d", n)
	}
	s := relation.NewSchema()
	d := relation.NewDomain()
	intersects := s.MustDeclare("Intersects", 2, relation.Input)
	green := s.MustDeclare("GreenSignal", 1, relation.Input)
	traffic := s.MustDeclare("HasTraffic", 1, relation.Input)
	crashes := s.MustDeclare("Crashes", 1, relation.Output)

	t := &task.Task{
		Name:        fmt.Sprintf("traffic-%d", n),
		Category:    "scalability",
		ClosedWorld: true,
		Expect:      task.ExpectSat,
		Schema:      s,
		Domain:      d,
	}
	t.Input = relation.NewDatabase(s, d)

	streets := make([]relation.Const, n)
	for i := range streets {
		streets[i] = d.Intern(fmt.Sprintf("St%04d", i))
	}
	// Ring edges plus a chord per third street: bidirectional.
	addEdge := func(a, b relation.Const) {
		t.Input.Insert(relation.NewTuple(intersects, a, b))
		t.Input.Insert(relation.NewTuple(intersects, b, a))
	}
	hasGreen := make([]bool, n)
	hasTraffic := make([]bool, n)
	for i := 0; i < n; i++ {
		addEdge(streets[i], streets[(i+1)%n])
		if i%3 == 0 {
			// Long chord for graph diameter, short chord connecting
			// the next fully-equipped street so crash pairs exist at
			// every size.
			addEdge(streets[i], streets[(i+n/2)%n])
			addEdge(streets[i], streets[(i+3)%n])
		}
		// Deterministic attribute pattern: greens on ~2/3, traffic
		// on ~2/3, overlapping on ~1/3 of streets.
		if i%3 != 1 {
			hasGreen[i] = true
			t.Input.Insert(relation.NewTuple(green, streets[i]))
		}
		if i%3 != 2 {
			hasTraffic[i] = true
			t.Input.Insert(relation.NewTuple(traffic, streets[i]))
		}
	}
	// Label with the intended rule's exact output.
	index := make(map[relation.Const]int, n)
	for i, st := range streets {
		index[st] = i
	}
	crash := map[relation.Const]bool{}
	for _, id := range t.Input.Extent(intersects) {
		tu := t.Input.Tuple(id)
		x, y := tu.Args[0], tu.Args[1]
		if hasGreen[index[x]] && hasGreen[index[y]] &&
			hasTraffic[index[x]] && hasTraffic[index[y]] {
			crash[x] = true
		}
	}
	for _, st := range streets {
		if crash[st] {
			t.Pos = append(t.Pos, relation.NewTuple(crashes, st))
		}
	}
	if len(t.Pos) == 0 {
		return nil, fmt.Errorf("bench: scaled traffic %d generated no crashes", n)
	}
	t.IntendedSrc = []string{
		"Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y), GreenSignal(x), GreenSignal(y).",
	}
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	return t, nil
}
