package bench

import (
	"context"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/egs"
)

func TestScaledTrafficRealizable(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		tk, err := ScaledTraffic(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(tk.Pos) == 0 {
			t.Fatalf("n=%d: no crashes labelled", n)
		}
		// The intended program must be consistent by construction.
		if ok, why := tk.Example().Consistent(tk.Intended()); !ok {
			t.Fatalf("n=%d: intended inconsistent: %s", n, why)
		}
		res, err := egs.Synthesize(context.Background(), tk, egs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Unsat {
			t.Fatalf("n=%d: unsat", n)
		}
		if ok, why := tk.Example().Consistent(res.Query); !ok {
			t.Fatalf("n=%d: inconsistent: %s", n, why)
		}
	}
}

func TestScaledTrafficDeterministic(t *testing.T) {
	a, err := ScaledTraffic(32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaledTraffic(32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Input.Size() != b.Input.Size() || len(a.Pos) != len(b.Pos) {
		t.Error("generator nondeterministic")
	}
}

func TestScaledTrafficRejectsTiny(t *testing.T) {
	if _, err := ScaledTraffic(3); err == nil {
		t.Error("n=3 accepted")
	}
}

// TestScaledTrafficGrowth sanity-checks that the synthesis cost
// grows sub-quadratically in practice on this family: EGS at n=128
// must stay well under a second, which is the property that makes
// the paper's "larger input data" direction plausible.
func TestScaledTrafficGrowth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tk, err := ScaledTraffic(128)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := egs.Synthesize(context.Background(), tk, egs.Options{})
	if err != nil || res.Unsat {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("n=128 took %v", elapsed)
	}
}
