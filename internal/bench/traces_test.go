package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// TestScaledTrafficChromeTrace pins the acceptance shape of a traced
// synthesis: on scaled-traffic-60 the Chrome export must parse, carry
// cell, assess, and memo-hit events, and stamp every event with the
// fields the chrome://tracing loader requires.
func TestScaledTrafficChromeTrace(t *testing.T) {
	tk, err := ScaledTraffic(60)
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	res, err := egs.Synthesize(context.Background(), tk, egs.Options{Trace: col})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("scaled-traffic-60 unexpectedly unsat")
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, col.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Ts   *float64        `json:"ts"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	kinds := map[string]int{}
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing a required field: %+v", i, e)
		}
		// Metadata records ("M") name processes/threads and carry no
		// timestamp; every span and instant must have one.
		if e.Ph != "M" && e.Ts == nil {
			t.Fatalf("event %d (%s %q) has no timestamp", i, e.Ph, e.Name)
		}
		kinds[e.Name]++
	}
	for _, want := range []string{"cell", "assess", "memo-hit"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
}

// TestCaptureTracesWritesFiles runs the capture harness over one small
// generated task and checks a loadable trace file lands on disk.
func TestCaptureTracesWritesFiles(t *testing.T) {
	tk, err := ScaledTraffic(12)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	recs, err := CaptureTraces(context.Background(), []*task.Task{tk}, 30*time.Second, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	raw, err := os.ReadFile(filepath.Join(dir, tk.Name+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}
