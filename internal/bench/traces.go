// Per-task trace capture: runs the EGS engine with a structured trace
// recorder attached and writes one Chrome trace-event file per task.
// EXPERIMENTS.md uses these traces to break a task's wall-clock time
// into cell search, candidate assessment, and memo traffic, which the
// aggregate Records cannot show.

package bench

import (
	"context"
	"os"
	"path/filepath"
	"time"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// CaptureTraces runs the EGS engine over the given tasks, recording a
// structured trace per task, and writes <dir>/<task>.trace.json in the
// Chrome trace-event format (loadable in about://tracing or Perfetto).
// The returned Records are the same as Run's; traces are written even
// for timed-out or failed runs, since slow searches are the ones worth
// profiling. Tracing does not alter results (the recorder is outside
// the search's decision path), but it does add measurement overhead,
// so captured durations are not comparable with untraced Records.
func CaptureTraces(ctx context.Context, tasks []*task.Task, timeout time.Duration, dir string, progress func(Record)) ([]Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var recs []Record
	for _, t := range tasks {
		col := trace.NewCollector()
		tool := &synth.EGS{Label: "egs-traced", Options: egs.Options{Trace: col}}
		rec := Run(ctx, tool, t, timeout)
		recs = append(recs, rec)
		if progress != nil {
			progress(rec)
		}
		if err := writeChromeFile(filepath.Join(dir, t.Name+".trace.json"), col.Events()); err != nil {
			return recs, err
		}
	}
	return recs, nil
}

func writeChromeFile(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
