package router

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/egs-synthesis/egs/internal/server"
	"github.com/egs-synthesis/egs/internal/server/metrics"
)

// Config parameterizes a Router.
type Config struct {
	// Replicas are the egs-serve base URLs (e.g. http://127.0.0.1:8081).
	Replicas []string
	// CheckInterval is the health-probe period (default 1s).
	CheckInterval time.Duration
	// CheckTimeout bounds one health probe (default 2s).
	CheckTimeout time.Duration
	// MaxBodyBytes limits buffered request bodies (default 8 MiB, the
	// egs-serve default). Forwarding buffers the whole body so a
	// request can be replayed on the next replica after a transport
	// failure.
	MaxBodyBytes int64
	// AffinityCap bounds the session-to-replica map (default 4096).
	AffinityCap int
	// Client performs the forwarding; nil selects a transport with
	// sane connection pooling.
	Client *http.Client
	// Logger receives request and health logs; nil discards.
	Logger *slog.Logger
}

// replica is one backend and its probed health.
type replica struct {
	name    string
	healthy atomic.Bool
}

// Router routes requests across egs-serve replicas: /synthesize by
// rendezvous hash of the task's canonical digest, /sessions/{id} by
// the replica that created the session, everything stateless to the
// ring owner of its path. See the package comment for rationale.
type Router struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	client   *http.Client
	log      *slog.Logger
	mux      *http.ServeMux

	affinity *affinityMap

	reg         *metrics.Registry
	mRequests   *metrics.CounterVec
	mRetries    *metrics.Counter
	mUnroutable *metrics.Counter
	mHealthy    *metrics.GaugeVec
	mLatency    *metrics.Histogram
}

// New builds a Router. Call Start to begin health probing.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = time.Second
	}
	if cfg.CheckTimeout <= 0 {
		cfg.CheckTimeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.AffinityCap <= 0 {
		cfg.AffinityCap = 4096
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}

	reg := metrics.New()
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.Replicas),
		replicas: make(map[string]*replica),
		client:   client,
		log:      cfg.Logger,
		affinity: newAffinityMap(cfg.AffinityCap),
		reg:      reg,
		mRequests: reg.CounterVec("egs_router_requests_total",
			"Requests forwarded, by destination replica.", "replica"),
		mRetries: reg.Counter("egs_router_retries_total",
			"Forwards retried on the next ranked replica after a transport failure."),
		mUnroutable: reg.Counter("egs_router_unroutable_total",
			"Requests that exhausted every candidate replica."),
		mHealthy: reg.GaugeVec("egs_router_replica_healthy",
			"Replica health as probed at /healthz (1 healthy, 0 not).", "replica"),
		mLatency: reg.Histogram("egs_router_request_seconds",
			"End-to-end routed request latency.", nil),
	}
	for _, name := range rt.ring.Replicas() {
		rt.replicas[name] = &replica{name: name}
		rt.mHealthy.With(name).Set(0)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /synthesize", rt.handleSynthesize)
	mux.HandleFunc("POST /sessions", rt.handleSessionCreate)
	mux.HandleFunc("POST /sessions/{id}/delta", rt.handleSessionScoped)
	mux.HandleFunc("GET /sessions/{id}", rt.handleSessionScoped)
	mux.HandleFunc("DELETE /sessions/{id}", rt.handleSessionScoped)
	mux.HandleFunc("GET /debug/traces/{id}", rt.handleTrace)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.Handle("GET /metrics", reg.Handler())
	rt.mux = mux
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start probes every replica once synchronously (so the first request
// sees real health) and then keeps probing on the configured interval
// until ctx is cancelled.
func (rt *Router) Start(ctx context.Context) {
	rt.ProbeAll(ctx)
	for _, rep := range rt.replicas {
		go func(rep *replica) {
			t := time.NewTicker(rt.cfg.CheckInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rt.probe(ctx, rep)
				}
			}
		}(rep)
	}
}

// ProbeAll probes every replica once, concurrently, and returns when
// all probes finish. Exported for tests and for Start's initial sweep.
func (rt *Router) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

func (rt *Router) probe(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.CheckTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.name+"/healthz", nil)
	if err != nil {
		rt.setHealth(rep, false)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.setHealth(rep, false)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rt.setHealth(rep, resp.StatusCode == http.StatusOK)
}

func (rt *Router) setHealth(rep *replica, ok bool) {
	was := rep.healthy.Swap(ok)
	if was != ok {
		rt.log.Info("replica health changed", "replica", rep.name, "healthy", ok)
	}
	v := int64(0)
	if ok {
		v = 1
	}
	rt.mHealthy.With(rep.name).Set(v)
}

// candidates filters ranked to healthy replicas; when nothing is
// healthy it returns ranked unchanged, so an outage degrades to
// best-effort forwarding instead of instant 502s.
func (rt *Router) candidates(ranked []string) []string {
	healthy := ranked[:0:0]
	for _, name := range ranked {
		if rt.replicas[name].healthy.Load() {
			healthy = append(healthy, name)
		}
	}
	if len(healthy) == 0 {
		return ranked
	}
	return healthy
}

func (rt *Router) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	key := server.RoutingHash(r.Header.Get("Content-Type"), body)
	rt.forward(w, r, body, rt.candidates(rt.ring.Ranked(key)), true)
}

func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	// Placement by task digest keeps re-creations of the same session
	// base on one replica; the learned affinity below, not the ring, is
	// authoritative afterwards (the replica names the session).
	key := server.RoutingHash(r.Header.Get("Content-Type"), body)
	rt.forwardSessionCreate(w, r, body, rt.candidates(rt.ring.Ranked(key)))
}

func (rt *Router) handleSessionScoped(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	sid := r.PathValue("id")
	// Sessions are replica-local state: no cross-replica retry. The
	// learned owner wins; the ring is only a fallback for affinity
	// entries lost to eviction or a router restart.
	var ranked []string
	if owner, ok := rt.affinity.get(sid); ok {
		ranked = []string{owner}
	} else {
		ranked = rt.candidates(rt.ring.Ranked(sid))[:1]
	}
	rt.forward(w, r, body, ranked, false)
}

// handleTrace sweeps replicas in ranked order until one admits to
// holding the trace: stored traces live on whichever replica ran the
// synthesis, which the router does not track.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var last *http.Response
	for _, name := range rt.candidates(rt.ring.Ranked(r.PathValue("id"))) {
		resp, err := rt.send(r, name, nil)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusNotFound {
			rt.relay(w, resp, name, start)
			return
		}
		if last != nil {
			last.Body.Close()
		}
		last = resp
	}
	if last == nil {
		rt.mUnroutable.Inc()
		http.Error(w, "no replica reachable", http.StatusBadGateway)
		return
	}
	rt.relay(w, last, "", start)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ok\n")
			return
		}
	}
	http.Error(w, "no healthy replicas", http.StatusServiceUnavailable)
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "request body too large") {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return nil, false
	}
	return body, true
}

// forward tries candidates in order, replaying the buffered body after
// transport failures (connection refused, reset, mid-flight EOF — the
// request never produced an HTTP response). HTTP-level failures,
// including 429 with its Retry-After, are relayed as-is: the replica
// answered, and its admission-control answer is authoritative. retry
// gates whether later candidates are tried at all (session-scoped
// calls pin one replica).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, candidates []string, retry bool) {
	start := time.Now()
	for i, name := range candidates {
		resp, err := rt.send(r, name, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gave up; nothing to answer
			}
			rt.log.Warn("forward failed", "replica", name, "path", r.URL.Path, "err", err)
			if retry && i+1 < len(candidates) {
				rt.mRetries.Inc()
				continue
			}
			break
		}
		rt.relay(w, resp, name, start)
		return
	}
	rt.mUnroutable.Inc()
	http.Error(w, "no replica reachable", http.StatusBadGateway)
}

// forwardSessionCreate is forward plus affinity learning: a successful
// create is parsed for its session_id, which pins the session to the
// replica that answered.
func (rt *Router) forwardSessionCreate(w http.ResponseWriter, r *http.Request, body []byte, candidates []string) {
	start := time.Now()
	for i, name := range candidates {
		resp, err := rt.send(r, name, body)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			rt.log.Warn("forward failed", "replica", name, "path", r.URL.Path, "err", err)
			if i+1 < len(candidates) {
				rt.mRetries.Inc()
				continue
			}
			break
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes))
		resp.Body.Close()
		if rerr != nil {
			rt.log.Warn("session create response truncated", "replica", name, "err", rerr)
		}
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
			if sid := sessionID(respBody); sid != "" {
				rt.affinity.put(sid, name)
			}
		}
		rt.mRequests.With(name).Inc()
		rt.mLatency.Observe(time.Since(start).Seconds())
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return
	}
	rt.mUnroutable.Inc()
	http.Error(w, "no replica reachable", http.StatusBadGateway)
}

// send issues one forwarded copy of r to the named replica.
func (rt *Router) send(r *http.Request, name string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, name+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	copyHeader(req.Header, r.Header)
	req.Header.Del("Connection")
	if prior := r.Header.Get("X-Forwarded-For"); prior != "" {
		req.Header.Set("X-Forwarded-For", prior+", "+clientIP(r))
	} else {
		req.Header.Set("X-Forwarded-For", clientIP(r))
	}
	return rt.client.Do(req)
}

// relay streams a replica response back to the client.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, name string, start time.Time) {
	defer resp.Body.Close()
	if name != "" {
		rt.mRequests.With(name).Inc()
	}
	rt.mLatency.Observe(time.Since(start).Seconds())
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func clientIP(r *http.Request) string {
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return strings.Trim(host, "[]")
}
