package router

import (
	"encoding/json"
	"sync"
)

// affinityMap remembers which replica owns each session, learned from
// successful POST /sessions responses. It is a bounded FIFO: sessions
// are created and dropped in rough arrival order, and an evicted entry
// only costs a ring-fallback lookup (which finds the session again
// exactly when the ring placement happened to match, and 404s
// harmlessly otherwise — the same failure mode as a router restart).
type affinityMap struct {
	mu    sync.Mutex
	m     map[string]string
	order []string
	cap   int
}

func newAffinityMap(cap int) *affinityMap {
	return &affinityMap{m: make(map[string]string, cap), cap: cap}
}

func (a *affinityMap) get(sid string) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep, ok := a.m[sid]
	return rep, ok
}

func (a *affinityMap) put(sid, replica string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, exists := a.m[sid]; !exists {
		for len(a.m) >= a.cap && len(a.order) > 0 {
			delete(a.m, a.order[0])
			a.order = a.order[1:]
		}
		a.order = append(a.order, sid)
	}
	a.m[sid] = replica
}

// sessionID extracts session_id from a session-create response body;
// "" when absent or unparseable.
func sessionID(body []byte) string {
	var resp struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return ""
	}
	return resp.SessionID
}
