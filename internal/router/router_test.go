package router

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/egs-synthesis/egs/internal/server"
)

// stubReplica is a fake egs-serve: healthy at /healthz, scripted
// everywhere else, counting hits per path.
type stubReplica struct {
	ts *httptest.Server

	mu   sync.Mutex
	hits map[string]int

	// respond overrides the default 200 text/plain "ok" answer.
	respond func(w http.ResponseWriter, r *http.Request)
}

func newStubReplica(t *testing.T) *stubReplica {
	s := &stubReplica{hits: make(map[string]int)}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		s.mu.Lock()
		s.hits[r.URL.Path]++
		s.mu.Unlock()
		if s.respond != nil {
			s.respond(w, r)
			return
		}
		io.WriteString(w, "ok")
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubReplica) count(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[path]
}

func (s *stubReplica) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.hits {
		n += c
	}
	return n
}

func newTestRouter(t *testing.T, replicas ...string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(Config{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// TestRoutingStickiness checks that identical bodies always land on
// one replica while distinct bodies use both.
func TestRoutingStickiness(t *testing.T) {
	a, b := newStubReplica(t), newStubReplica(t)
	rt, ts := newTestRouter(t, a.ts.URL, b.ts.URL)
	rt.ProbeAll(context.Background())

	post := func(body string) *http.Response {
		resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	for i := 0; i < 10; i++ {
		post("stampede body")
	}
	if a.total() != 10 && b.total() != 10 {
		t.Errorf("identical bodies split across replicas: %d vs %d", a.total(), b.total())
	}

	for i := 0; i < 64; i++ {
		post(fmt.Sprintf("distinct body %d", i))
	}
	if a.total() == 0 || b.total() == 0 {
		t.Errorf("64 distinct bodies never reached one replica: %d vs %d", a.total(), b.total())
	}
}

// TestRetryOnConnectionFailure checks that a transport-level failure
// (dead replica, no HTTP response) fails over to the next ranked
// replica, while the dead replica stays in the ring.
func TestRetryOnConnectionFailure(t *testing.T) {
	alive := newStubReplica(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	rt, ts := newTestRouter(t, alive.ts.URL, deadURL)
	// No probing: the router does not yet know the replica is dead, so
	// the forward itself must discover the failure and retry.

	// Find a body owned by the dead replica so the first attempt fails.
	body := ""
	for i := 0; ; i++ {
		candidate := fmt.Sprintf("task body %d", i)
		if rt.ring.Owner(hashBody(candidate)) == deadURL {
			body = candidate
			break
		}
	}
	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from failover", resp.StatusCode)
	}
	if alive.count("/synthesize") != 1 {
		t.Errorf("alive replica saw %d requests, want 1", alive.count("/synthesize"))
	}
	if got := rt.mRetries.Value(); got != 1 {
		t.Errorf("egs_router_retries_total = %d, want 1", got)
	}
}

// hashBody mirrors handleSynthesize's key derivation for plain-text
// bodies that fail task parsing (stub bodies are not valid tasks).
func hashBody(body string) string {
	return server.RoutingHash("text/plain", []byte(body))
}

// Test429Passthrough checks that replica-level admission control is
// relayed verbatim — status, Retry-After, body — with no failover.
func Test429Passthrough(t *testing.T) {
	a, b := newStubReplica(t), newStubReplica(t)
	reject := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"status":"error","error":"queue full"}`)
	}
	a.respond = reject
	b.respond = reject
	_, ts := newTestRouter(t, a.ts.URL, b.ts.URL)

	resp, err := http.Post(ts.URL+"/synthesize", "text/plain", strings.NewReader("any body"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After %q not propagated", ra)
	}
	if n := a.total() + b.total(); n != 1 {
		t.Errorf("429 caused %d backend requests, want 1 (no failover on HTTP errors)", n)
	}
}

// TestSessionAffinity checks that session-scoped requests follow the
// replica that created the session, not the ring placement of the id.
func TestSessionAffinity(t *testing.T) {
	a, b := newStubReplica(t), newStubReplica(t)
	for i, s := range []*stubReplica{a, b} {
		sid := fmt.Sprintf("sess-%d", i)
		s.respond = func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && r.URL.Path == "/sessions" {
				fmt.Fprintf(w, `{"session_id":%q,"revision":0}`, sid)
				return
			}
			io.WriteString(w, "ok")
		}
	}
	rt, ts := newTestRouter(t, a.ts.URL, b.ts.URL)
	rt.ProbeAll(context.Background())

	resp, err := http.Post(ts.URL+"/sessions", "text/plain", strings.NewReader("create body"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sid := sessionID(body)
	if sid == "" {
		t.Fatalf("no session id in create response %q", body)
	}
	creator, other := a, b
	if sid == "sess-1" {
		creator, other = b, a
	}

	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/sessions/"+sid+"/delta", "application/json",
			strings.NewReader(`{"deltas":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	deltaPath := "/sessions/" + sid + "/delta"
	if creator.count(deltaPath) != 5 {
		t.Errorf("creator replica saw %d deltas, want 5", creator.count(deltaPath))
	}
	if other.count(deltaPath) != 0 {
		t.Errorf("non-creator replica saw %d deltas, want 0", other.count(deltaPath))
	}
}

// TestRouterHealthz checks the router's own liveness aggregation.
func TestRouterHealthz(t *testing.T) {
	a := newStubReplica(t)
	rt, ts := newTestRouter(t, a.ts.URL)

	get := func() int {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusServiceUnavailable {
		t.Errorf("healthz before any probe = %d, want 503", code)
	}
	rt.ProbeAll(context.Background())
	if code := get(); code != http.StatusOK {
		t.Errorf("healthz with a healthy replica = %d, want 200", code)
	}
}
