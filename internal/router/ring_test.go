package router

import (
	"fmt"
	"testing"
)

func replicaNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return names
}

// TestRingBalance checks that rendezvous placement spreads keys
// evenly: over 100k keys and 8 replicas, every replica's share stays
// within 10% of the K/N mean (the expected binomial deviation is
// under 1%, so 10% leaves wide margin without flakiness).
func TestRingBalance(t *testing.T) {
	const (
		n    = 8
		keys = 100000
	)
	r := NewRing(replicaNames(n))
	counts := make(map[string]int, n)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("task-%d", i))]++
	}
	mean := keys / n
	lo, hi := mean-mean/10, mean+mean/10
	for _, name := range r.Replicas() {
		if c := counts[name]; c < lo || c > hi {
			t.Errorf("replica %s owns %d keys, want within [%d, %d] (10%% of mean %d)",
				name, c, lo, hi, mean)
		}
	}
}

// TestRingMovementOnLeave checks the K/N property for removal: only
// the departed replica's keys move, and every one of them lands on its
// previous second choice.
func TestRingMovementOnLeave(t *testing.T) {
	const (
		n    = 8
		keys = 50000
	)
	names := replicaNames(n)
	before := NewRing(names)
	departed := names[3]
	after := NewRing(append(append([]string(nil), names[:3]...), names[4:]...))

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("task-%d", i)
		ownerBefore := before.Owner(key)
		ownerAfter := after.Owner(key)
		if ownerBefore != departed {
			if ownerAfter != ownerBefore {
				t.Fatalf("key %s moved from %s to %s though neither is the departed replica",
					key, ownerBefore, ownerAfter)
			}
			continue
		}
		moved++
		if second := before.Ranked(key)[1]; ownerAfter != second {
			t.Errorf("key %s reassigned to %s, want its previous second choice %s",
				key, ownerAfter, second)
		}
	}
	// Exactly the departed replica's keys move: in expectation K/N,
	// bounded here by the balance tolerance.
	if limit := keys / n * 11 / 10; moved > limit {
		t.Errorf("%d keys moved on leave, want <= %d (~K/N)", moved, limit)
	}
	if moved == 0 {
		t.Error("no keys moved on leave; the departed replica owned nothing")
	}
}

// TestRingMovementOnJoin checks the K/N property for addition: every
// moved key moves to the new replica, and at most ~K/(N+1) keys move.
func TestRingMovementOnJoin(t *testing.T) {
	const (
		n    = 8
		keys = 50000
	)
	names := replicaNames(n)
	before := NewRing(names)
	joined := "http://replica-new:8080"
	after := NewRing(append(append([]string(nil), names...), joined))

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("task-%d", i)
		ownerBefore, ownerAfter := before.Owner(key), after.Owner(key)
		if ownerAfter == ownerBefore {
			continue
		}
		moved++
		if ownerAfter != joined {
			t.Fatalf("key %s moved from %s to %s, but only the joining replica may take keys",
				key, ownerBefore, ownerAfter)
		}
	}
	if limit := keys / (n + 1) * 11 / 10; moved > limit {
		t.Errorf("%d keys moved on join, want <= %d (~K/(N+1))", moved, limit)
	}
	if moved == 0 {
		t.Error("no keys moved on join; the new replica owns nothing")
	}
}

// TestRingRankedIsTotalAndStable sanity-checks Ranked: it permutes the
// replica set and is deterministic.
func TestRingRankedIsTotalAndStable(t *testing.T) {
	r := NewRing(replicaNames(5))
	a := r.Ranked("some-task-digest")
	b := r.Ranked("some-task-digest")
	if len(a) != 5 {
		t.Fatalf("Ranked returned %d names, want 5", len(a))
	}
	seen := make(map[string]bool)
	for i, name := range a {
		if seen[name] {
			t.Fatalf("Ranked repeated %s", name)
		}
		seen[name] = true
		if b[i] != name {
			t.Fatalf("Ranked not deterministic at %d: %s vs %s", i, name, b[i])
		}
	}
	if a[0] != r.Owner("some-task-digest") {
		t.Error("Ranked[0] disagrees with Owner")
	}
}
