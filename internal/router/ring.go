// Package router is a thin HTTP reverse proxy that scales egs-serve
// horizontally: synthesis requests are routed to one of N replicas by
// rendezvous-hashing the task's canonical digest, so identical tasks
// always land on the same replica and its result cache and
// singleflight tier see the full stampede instead of 1/Nth of it.
// Session requests follow the replica that created the session.
package router

import (
	"hash/fnv"
	"sort"
)

// Ring assigns keys to replicas by rendezvous (highest-random-weight)
// hashing: every (key, replica) pair gets an independent pseudo-random
// score and the key belongs to the highest-scoring replica. Unlike a
// mod-N table, adding or removing one replica only moves the keys that
// scored highest on it — in expectation K/N of them — and unlike a
// virtual-node ring there is no placement table to size or rebuild.
// A Ring is immutable and safe for concurrent use.
type Ring struct {
	names  []string
	hashes []uint64
}

// NewRing builds a ring over the given replica names (base URLs).
// Order does not matter; duplicates are dropped.
func NewRing(names []string) *Ring {
	r := &Ring{}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		r.names = append(r.names, n)
		r.hashes = append(r.hashes, hash64(n))
	}
	return r
}

// Replicas returns the replica names in ring order.
func (r *Ring) Replicas() []string { return append([]string(nil), r.names...) }

// Len returns the number of replicas.
func (r *Ring) Len() int { return len(r.names) }

// Ranked returns every replica ordered by descending preference for
// key. The first entry is the key's owner; the rest are the failover
// order, which is itself consistent (replica i+1 for a key is stable
// across rings that contain it).
func (r *Ring) Ranked(key string) []string {
	kh := hash64(key)
	type scored struct {
		name  string
		score uint64
	}
	sc := make([]scored, len(r.names))
	for i, n := range r.names {
		sc[i] = scored{name: n, score: mix64(kh ^ r.hashes[i])}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].name < sc[j].name // total order even on score ties
	})
	out := make([]string, len(sc))
	for i, s := range sc {
		out[i] = s.name
	}
	return out
}

// Owner returns the highest-scoring replica for key ("" on an empty
// ring).
func (r *Ring) Owner(key string) string {
	if len(r.names) == 0 {
		return ""
	}
	kh := hash64(key)
	best, bestScore := 0, uint64(0)
	for i := range r.names {
		s := mix64(kh ^ r.hashes[i])
		if i == 0 || s > bestScore || (s == bestScore && r.names[i] < r.names[best]) {
			best, bestScore = i, s
		}
	}
	return r.names[best]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the SplitMix64 finalizer: a cheap bijective scrambler that
// turns the structured FNV xor into uniformly distributed scores.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
