package query

import (
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

// randomRule builds a random safe rule over a fixed 3-relation schema.
func randomRule(rng *rand.Rand) Rule {
	arities := []int{1, 2, 3}
	nVars := 1 + rng.Intn(4)
	nBody := 1 + rng.Intn(4)
	var body []Literal
	var vars []Var
	seen := map[Var]bool{}
	for i := 0; i < nBody; i++ {
		rel := relation.RelID(rng.Intn(3))
		args := make([]Term, arities[rel])
		for j := range args {
			v := Var(rng.Intn(nVars))
			args[j] = V(v)
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		body = append(body, Literal{Rel: rel, Args: args})
	}
	head := Literal{Rel: relation.RelID(3), Args: make([]Term, 2)}
	for j := range head.Args {
		head.Args[j] = V(vars[rng.Intn(len(vars))])
	}
	return Rule{Head: head, Body: body}
}

// shuffleRename produces a random alpha-variant of r: an injective
// variable renaming followed by a body permutation.
func shuffleRename(rng *rand.Rand, r Rule) Rule {
	perm := rng.Perm(16)
	m := map[Var]Var{}
	for v := 0; v < 16; v++ {
		m[Var(v)] = Var(perm[v])
	}
	renamed := r.Rename(m)
	order := rng.Perm(len(renamed.Body))
	shuffled := renamed.Clone()
	for i, j := range order {
		shuffled.Body[i] = renamed.Body[j].Clone2()
	}
	return shuffled
}

// TestEquivalentToRecognizesAlphaVariants: the exact equivalence test
// must accept every alpha-variant.
func TestEquivalentToRecognizesAlphaVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		r := randomRule(rng)
		v := shuffleRename(rng, r)
		if !r.EquivalentTo(v) {
			t.Fatalf("trial %d: alpha-variant rejected\nr: %+v\nv: %+v", trial, r, v)
		}
		if !v.EquivalentTo(r) {
			t.Fatalf("trial %d: EquivalentTo not symmetric", trial)
		}
	}
}

// TestCanonicalKeySound: equal canonical keys must imply exact
// alpha-equivalence (the converse may fail for symmetric rules; see
// the CanonicalKey doc comment).
func TestCanonicalKeySound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	byKey := map[string]Rule{}
	for trial := 0; trial < 800; trial++ {
		r := randomRule(rng)
		key := r.CanonicalKey()
		if prev, ok := byKey[key]; ok {
			if !prev.EquivalentTo(r) {
				t.Fatalf("trial %d: key collision between inequivalent rules\n%+v\n%+v", trial, prev, r)
			}
		} else {
			byKey[key] = r
		}
	}
}

// TestCanonicalKeyMostlyComplete: the heuristic key should identify
// the overwhelming majority of alpha-variants (it exists to
// deduplicate enumerator output); tolerate rare symmetric cases.
func TestCanonicalKeyMostlyComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	misses := 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		r := randomRule(rng)
		v := shuffleRename(rng, r)
		if r.CanonicalKey() != v.CanonicalKey() {
			misses++
		}
	}
	if misses > trials/20 {
		t.Fatalf("canonical key missed %d/%d alpha-variants (> 5%%)", misses, trials)
	}
}

// TestEquivalentToRejectsDifferent: structurally different rules are
// not equivalent.
func TestEquivalentToRejectsDifferent(t *testing.T) {
	a := Rule{
		Head: Literal{Rel: 3, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: 1, Args: []Term{V(0), V(1)}}},
	}
	b := Rule{
		Head: Literal{Rel: 3, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: 1, Args: []Term{V(1), V(0)}}},
	}
	if a.EquivalentTo(b) {
		t.Error("flipped join reported equivalent")
	}
	c := Rule{
		Head: Literal{Rel: 3, Args: []Term{V(0), V(0)}},
		Body: []Literal{{Rel: 1, Args: []Term{V(0), V(0)}}},
	}
	if a.EquivalentTo(c) {
		t.Error("merged variables reported equivalent")
	}
	d := Rule{
		Head: Literal{Rel: 3, Args: []Term{V(0), V(1)}},
		Body: []Literal{
			{Rel: 1, Args: []Term{V(0), V(1)}},
			{Rel: 0, Args: []Term{V(0)}},
		},
	}
	if a.EquivalentTo(d) {
		t.Error("different body sizes reported equivalent")
	}
}

// Clone2 deep-copies a literal (test helper).
func (l Literal) Clone2() Literal {
	return Literal{Rel: l.Rel, Args: append([]Term(nil), l.Args...)}
}

// TestCanonicalKeySeparates: structurally different rules (different
// relation multisets or different join structure) must get distinct
// keys with overwhelming probability. We check a weaker, exact
// property: rules with different body-relation multisets never
// collide.
func TestCanonicalKeySeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	byKey := map[string]Rule{}
	for trial := 0; trial < 500; trial++ {
		r := randomRule(rng)
		key := r.CanonicalKey()
		if prev, ok := byKey[key]; ok {
			if relMultiset(prev) != relMultiset(r) {
				t.Fatalf("distinct relation multisets share a key:\n%+v\n%+v", prev, r)
			}
			continue
		}
		byKey[key] = r
	}
}

func relMultiset(r Rule) string {
	counts := [4]int{}
	for _, l := range r.Body {
		counts[l.Rel]++
	}
	return string(rune('0'+counts[0])) + string(rune('0'+counts[1])) + string(rune('0'+counts[2]))
}

// TestSafeAfterCanonicalize: canonicalization preserves safety.
func TestSafeAfterCanonicalize(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		r := randomRule(rng)
		if (r.Safe() == nil) != (r.Canonicalize().Safe() == nil) {
			t.Fatalf("trial %d: canonicalization changed safety", trial)
		}
	}
}

// TestNumVarsAfterCanonicalize: canonicalization yields dense
// variable numbering.
func TestNumVarsAfterCanonicalize(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		c := randomRule(rng).Canonicalize()
		used := map[Var]bool{}
		collect := func(l Literal) {
			for _, t := range l.Args {
				if !t.IsConst {
					used[t.Var] = true
				}
			}
		}
		collect(c.Head)
		for _, l := range c.Body {
			collect(l)
		}
		if len(used) != c.NumVars() {
			t.Fatalf("trial %d: sparse numbering after canonicalize: %d used, NumVars %d",
				trial, len(used), c.NumVars())
		}
	}
}
