package query

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

func testSchema(t *testing.T) (*relation.Schema, *relation.Domain, relation.RelID, relation.RelID, relation.RelID) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	color := s.MustDeclare("color", 1, relation.Input)
	out := s.MustDeclare("path", 2, relation.Output)
	d.Intern("a")
	d.Intern("b")
	return s, d, edge, color, out
}

func TestRuleString(t *testing.T) {
	s, d, edge, _, out := testSchema(t)
	r := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(0), V(2)}},
			{Rel: edge, Args: []Term{V(2), V(1)}},
		},
	}
	want := "path(x, y) :- edge(x, z), edge(z, y)."
	if got := r.String(s, d); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestRuleStringWithConstAndManyVars(t *testing.T) {
	s, d, edge, _, out := testSchema(t)
	a, _ := d.Lookup("a")
	r := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(4)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(0), C(a)}},
			{Rel: edge, Args: []Term{V(4), V(0)}},
		},
	}
	got := r.String(s, d)
	if !strings.Contains(got, "edge(x, a)") || !strings.Contains(got, "v4") {
		t.Errorf("String = %q", got)
	}
}

func TestFactString(t *testing.T) {
	s, d, edge, _, _ := testSchema(t)
	a, _ := d.Lookup("a")
	r := Rule{Head: Literal{Rel: edge, Args: []Term{C(a), C(a)}}}
	if got := r.String(s, d); got != "edge(a, a)." {
		t.Errorf("fact String = %q", got)
	}
}

func TestSafe(t *testing.T) {
	_, _, edge, _, out := testSchema(t)
	safe := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0), V(1)}}},
	}
	if err := safe.Safe(); err != nil {
		t.Errorf("safe rule reported unsafe: %v", err)
	}
	unsafe := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(5)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0), V(1)}}},
	}
	if err := unsafe.Safe(); err == nil {
		t.Error("unsafe rule reported safe")
	}
}

func TestValidate(t *testing.T) {
	s, _, edge, color, out := testSchema(t)
	good := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(0), V(1)}},
			{Rel: color, Args: []Term{V(0)}},
		},
	}
	if err := good.Validate(s); err != nil {
		t.Errorf("good rule invalid: %v", err)
	}
	badArity := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0)}}},
	}
	if err := badArity.Validate(s); err == nil {
		t.Error("arity mismatch not caught")
	}
	headInput := Rule{
		Head: Literal{Rel: edge, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0), V(1)}}},
	}
	if err := headInput.Validate(s); err == nil {
		t.Error("input-relation head not caught")
	}
	bodyOutput := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: out, Args: []Term{V(0), V(1)}}},
	}
	if err := bodyOutput.Validate(s); err == nil {
		t.Error("output-relation body not caught")
	}
	undeclared := Rule{
		Head: Literal{Rel: relation.RelID(99), Args: []Term{V(0)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0), V(0)}}},
	}
	if err := undeclared.Validate(s); err == nil {
		t.Error("undeclared relation not caught")
	}
}

func TestNumVarsAndSize(t *testing.T) {
	_, _, edge, _, out := testSchema(t)
	r := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(0), V(3)}},
			{Rel: edge, Args: []Term{V(3), V(1)}},
		},
	}
	if r.NumVars() != 4 {
		t.Errorf("NumVars = %d, want 4", r.NumVars())
	}
	if r.Size() != 2 {
		t.Errorf("Size = %d, want 2", r.Size())
	}
	q := UCQ{Rules: []Rule{r, r}}
	if q.Size() != 4 {
		t.Errorf("UCQ Size = %d, want 4", q.Size())
	}
}

func TestCanonicalizeFirstOccurrenceOrder(t *testing.T) {
	_, _, edge, _, out := testSchema(t)
	r := Rule{
		Head: Literal{Rel: out, Args: []Term{V(7), V(3)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(7), V(9)}},
			{Rel: edge, Args: []Term{V(9), V(3)}},
		},
	}
	c := r.Canonicalize()
	if c.Head.Args[0].Var != 0 || c.Head.Args[1].Var != 1 {
		t.Errorf("head vars = %v", c.Head.Args)
	}
	if c.Body[0].Args[1].Var != 2 {
		t.Errorf("fresh body var = %v", c.Body[0].Args[1])
	}
	if c.NumVars() != 3 {
		t.Errorf("NumVars after canonicalize = %d", c.NumVars())
	}
}

func TestCanonicalKeyInvariantUnderRenamingAndReorder(t *testing.T) {
	_, _, edge, color, out := testSchema(t)
	r1 := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(0), V(2)}},
			{Rel: color, Args: []Term{V(2)}},
			{Rel: edge, Args: []Term{V(2), V(1)}},
		},
	}
	// Rename all variables and shuffle the body.
	r2 := Rule{
		Head: Literal{Rel: out, Args: []Term{V(5), V(8)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(9), V(8)}},
			{Rel: edge, Args: []Term{V(5), V(9)}},
			{Rel: color, Args: []Term{V(9)}},
		},
	}
	if r1.CanonicalKey() != r2.CanonicalKey() {
		t.Errorf("alpha-equivalent rules have different keys:\n%q\n%q",
			r1.CanonicalKey(), r2.CanonicalKey())
	}
	// A genuinely different rule must differ.
	r3 := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{
			{Rel: edge, Args: []Term{V(0), V(2)}},
			{Rel: edge, Args: []Term{V(1), V(2)}}, // flipped join
			{Rel: color, Args: []Term{V(2)}},
		},
	}
	if r1.CanonicalKey() == r3.CanonicalKey() {
		t.Error("distinct rules share a canonical key")
	}
}

func TestCloneIsDeep(t *testing.T) {
	_, _, edge, _, out := testSchema(t)
	r := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0), V(1)}}},
	}
	c := r.Clone()
	c.Body[0].Args[0] = V(9)
	if r.Body[0].Args[0].Var != 0 {
		t.Error("Clone shares body args")
	}
}

func TestUCQString(t *testing.T) {
	s, d, edge, _, out := testSchema(t)
	r := Rule{
		Head: Literal{Rel: out, Args: []Term{V(0), V(1)}},
		Body: []Literal{{Rel: edge, Args: []Term{V(0), V(1)}}},
	}
	q := UCQ{Rules: []Rule{r, r}}
	got := q.String(s, d)
	if strings.Count(got, "\n") != 1 {
		t.Errorf("UCQ String = %q", got)
	}
}
