// Package query defines the abstract syntax of the relational query
// fragment targeted by the synthesizer: conjunctive queries (Horn
// clauses / select-project-join queries) and unions of conjunctive
// queries (UCQs), per Section 3 of the EGS paper (PLDI 2021).
//
// Negation is represented at the relation level: the task
// preprocessing stage (package task) materializes complement relations
// such as not_edge and the built-in inequality relation neq, so rules
// in negation normal form contain only positive literals over an
// extended input schema, exactly as in Section 5.3 of the paper.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/egs-synthesis/egs/internal/relation"
)

// Var identifies a query variable. Within one rule, variables are
// dense: 0..NumVars-1.
type Var int32

// Term is either a variable or a constant. Synthesized rules contain
// no constants (the paper's programs are constant-free; distinguished
// constants are encoded as singleton input relations), but the
// evaluator supports both so that hand-written queries and test
// oracles can use constants directly.
type Term struct {
	IsConst bool
	Var     Var
	Const   relation.Const
}

// V returns a variable term.
func V(v Var) Term { return Term{Var: v} }

// C returns a constant term.
func C(c relation.Const) Term { return Term{IsConst: true, Const: c} }

// Literal is an atom R(t1, ..., tk) occurring in a rule head or body.
type Literal struct {
	Rel  relation.RelID
	Args []Term
}

// Rule is a Horn clause: Head :- Body[0], ..., Body[n-1].
type Rule struct {
	Head Literal
	Body []Literal
}

// UCQ is a union of conjunctive queries: a set of rules, all with
// heads over output relations.
type UCQ struct {
	Rules []Rule
}

// NumVars returns one more than the largest variable index used by
// the rule, i.e. the size of its variable universe.
func (r Rule) NumVars() int {
	max := Var(-1)
	scan := func(l Literal) {
		for _, t := range l.Args {
			if !t.IsConst && t.Var > max {
				max = t.Var
			}
		}
	}
	scan(r.Head)
	for _, l := range r.Body {
		scan(l)
	}
	return int(max) + 1
}

// Size returns the number of body literals (the paper's measure of
// rule size, "joins + 1").
func (r Rule) Size() int { return len(r.Body) }

// Size returns the total number of body literals across all rules.
func (q UCQ) Size() int {
	n := 0
	for _, r := range q.Rules {
		n += r.Size()
	}
	return n
}

// Safe reports whether the rule satisfies the range-restriction
// convention of Section 3.1: every variable appearing in the head also
// appears in the body. It returns a descriptive error otherwise.
func (r Rule) Safe() error {
	inBody := make(map[Var]bool)
	for _, l := range r.Body {
		for _, t := range l.Args {
			if !t.IsConst {
				inBody[t.Var] = true
			}
		}
	}
	for i, t := range r.Head.Args {
		if !t.IsConst && !inBody[t.Var] {
			return fmt.Errorf("unsafe rule: head variable v%d (position %d) does not appear in the body", t.Var, i)
		}
	}
	return nil
}

// Validate checks the rule against a schema: relation ids must be
// declared, literal arities must match, the head must be an output
// relation, and body literals must be input relations.
func (r Rule) Validate(s *relation.Schema) error {
	check := func(l Literal, where string, wantKind relation.Kind) error {
		if int(l.Rel) < 0 || int(l.Rel) >= s.Size() {
			return fmt.Errorf("%s: undeclared relation id %d", where, l.Rel)
		}
		info := s.Info(l.Rel)
		if info.Arity != len(l.Args) {
			return fmt.Errorf("%s: relation %s has arity %d, literal has %d args",
				where, info.Name, info.Arity, len(l.Args))
		}
		if info.Kind != wantKind {
			return fmt.Errorf("%s: relation %s is %v, want %v", where, info.Name, info.Kind, wantKind)
		}
		return nil
	}
	if err := check(r.Head, "head", relation.Output); err != nil {
		return err
	}
	for i, l := range r.Body {
		if err := check(l, fmt.Sprintf("body literal %d", i), relation.Input); err != nil {
			return err
		}
	}
	return r.Safe()
}

// Validate checks every rule of the UCQ.
func (q UCQ) Validate(s *relation.Schema) error {
	for i, r := range q.Rules {
		if err := r.Validate(s); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
	}
	return nil
}

// varName renders variable v as x, y, z, w, then v4, v5, ...
func varName(v Var) string {
	letters := []string{"x", "y", "z", "w"}
	if int(v) < len(letters) {
		return letters[v]
	}
	return fmt.Sprintf("v%d", v)
}

// String renders the literal in Datalog syntax using schema and
// domain names.
func (l Literal) String(s *relation.Schema, d *relation.Domain) string {
	var b strings.Builder
	b.WriteString(s.Name(l.Rel))
	b.WriteByte('(')
	for i, t := range l.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		if t.IsConst {
			b.WriteString(d.Name(t.Const))
		} else {
			b.WriteString(varName(t.Var))
		}
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the rule in Datalog syntax, e.g.
// "Crashes(x) :- Intersects(x, y), HasTraffic(x).".
func (r Rule) String(s *relation.Schema, d *relation.Domain) string {
	var b strings.Builder
	b.WriteString(r.Head.String(s, d))
	if len(r.Body) > 0 {
		b.WriteString(" :- ")
		for i, l := range r.Body {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(l.String(s, d))
		}
	}
	b.WriteByte('.')
	return b.String()
}

// String renders the UCQ one rule per line.
func (q UCQ) String(s *relation.Schema, d *relation.Domain) string {
	lines := make([]string, len(q.Rules))
	for i, r := range q.Rules {
		lines[i] = r.String(s, d)
	}
	return strings.Join(lines, "\n")
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	out := Rule{Head: cloneLit(r.Head), Body: make([]Literal, len(r.Body))}
	for i, l := range r.Body {
		out.Body[i] = cloneLit(l)
	}
	return out
}

func cloneLit(l Literal) Literal {
	return Literal{Rel: l.Rel, Args: append([]Term(nil), l.Args...)}
}

// Rename applies a variable substitution to the rule, returning a new
// rule. Variables absent from the map are left unchanged.
func (r Rule) Rename(m map[Var]Var) Rule {
	out := r.Clone()
	apply := func(l Literal) {
		for i, t := range l.Args {
			if !t.IsConst {
				if nv, ok := m[t.Var]; ok {
					l.Args[i] = V(nv)
				}
			}
		}
	}
	apply(out.Head)
	for _, l := range out.Body {
		apply(l)
	}
	return out
}

// SortBody orders the body literals canonically (by relation id, then
// argument terms) in place. Two rules that differ only in body order
// print identically after SortBody + Canonicalize.
func (r *Rule) SortBody() {
	sort.SliceStable(r.Body, func(i, j int) bool {
		return compareLit(r.Body[i], r.Body[j]) < 0
	})
}

func compareLit(a, b Literal) int {
	if a.Rel != b.Rel {
		if a.Rel < b.Rel {
			return -1
		}
		return 1
	}
	if len(a.Args) != len(b.Args) {
		if len(a.Args) < len(b.Args) {
			return -1
		}
		return 1
	}
	for i := range a.Args {
		ta, tb := a.Args[i], b.Args[i]
		if ta.IsConst != tb.IsConst {
			if tb.IsConst {
				return -1
			}
			return 1
		}
		if ta.IsConst {
			if ta.Const != tb.Const {
				if ta.Const < tb.Const {
					return -1
				}
				return 1
			}
		} else if ta.Var != tb.Var {
			if ta.Var < tb.Var {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Canonicalize renames variables to 0,1,2,... in order of first
// occurrence (head first, then body in current order) and returns the
// renamed rule. Combined with a fixed body order this yields a
// canonical form usable as a dedup key in rule enumerators.
func (r Rule) Canonicalize() Rule {
	m := make(map[Var]Var)
	next := Var(0)
	visit := func(l Literal) {
		for _, t := range l.Args {
			if !t.IsConst {
				if _, ok := m[t.Var]; !ok {
					m[t.Var] = next
					next++
				}
			}
		}
	}
	visit(r.Head)
	for _, l := range r.Body {
		visit(l)
	}
	return r.Rename(m)
}

// CanonicalKey returns a key that is invariant under body reordering
// and under most variable renamings: it greedily sorts the body under
// the current naming, renames by first occurrence, and iterates to a
// fixed point. Equal keys imply alpha-equivalent rules; the converse
// can fail for rules with non-trivial automorphism-like symmetry
// (exact canonization is as hard as graph canonization), so
// CanonicalKey is a sound, slightly conservative deduplication key:
// a duplicate that survives costs a redundant evaluation, never a
// lost rule. Use EquivalentTo for exact alpha-equivalence.
//
// The key sits on the synthesizer's per-context hot path (it is the
// assessment-memo key), so the fixpoint works on a single mutable
// clone with a slice-backed renaming table and renders through
// strconv rather than fmt; the produced string is unchanged.
func (r Rule) CanonicalKey() string {
	cur := r.Clone()
	ren := make([]Var, r.NumVars())
	canonicalizeInPlace(&cur, ren)
	key := appendRuleKey(make([]byte, 0, 96), cur)
	var alt []byte
	for i := 0; i < len(ren)+1; i++ {
		cur.SortBody()
		canonicalizeInPlace(&cur, ren)
		alt = appendRuleKey(alt[:0], cur)
		if string(alt) == string(key) {
			break
		}
		key, alt = alt, key
	}
	return string(key)
}

// canonicalizeInPlace renames cur's variables to 0,1,2,... in order of
// first occurrence (head first, then body), mutating the rule. ren is
// scratch indexed by the current (dense) variable names; it must have
// at least NumVars entries.
func canonicalizeInPlace(cur *Rule, ren []Var) {
	for i := range ren {
		ren[i] = -1
	}
	next := Var(0)
	visit := func(l Literal) {
		for i, t := range l.Args {
			if t.IsConst {
				continue
			}
			v := ren[t.Var]
			if v < 0 {
				v = next
				next++
				ren[t.Var] = v
			}
			l.Args[i].Var = v
		}
	}
	visit(cur.Head)
	for _, l := range cur.Body {
		visit(l)
	}
}

// EquivalentTo reports exact alpha-equivalence: whether some
// variable bijection and body permutation turns r into other. It
// backtracks over literal correspondences; rules here are small
// (bodies of at most a dozen literals), so the worst case is never
// approached in practice.
func (r Rule) EquivalentTo(other Rule) bool {
	if r.Head.Rel != other.Head.Rel || len(r.Head.Args) != len(other.Head.Args) ||
		len(r.Body) != len(other.Body) {
		return false
	}
	fwd := make(map[Var]Var)
	bwd := make(map[Var]Var)
	var matchLit func(a, b Literal) ([][2]Var, bool)
	matchLit = func(a, b Literal) ([][2]Var, bool) {
		if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
			return nil, false
		}
		var added [][2]Var
		undo := func() {
			for _, p := range added {
				delete(fwd, p[0])
				delete(bwd, p[1])
			}
		}
		for i := range a.Args {
			ta, tb := a.Args[i], b.Args[i]
			if ta.IsConst != tb.IsConst {
				undo()
				return nil, false
			}
			if ta.IsConst {
				if ta.Const != tb.Const {
					undo()
					return nil, false
				}
				continue
			}
			fa, okA := fwd[ta.Var]
			fb, okB := bwd[tb.Var]
			switch {
			case okA && fa != tb.Var, okB && fb != ta.Var:
				undo()
				return nil, false
			case !okA && !okB:
				fwd[ta.Var] = tb.Var
				bwd[tb.Var] = ta.Var
				added = append(added, [2]Var{ta.Var, tb.Var})
			case okA != okB:
				undo()
				return nil, false
			}
		}
		return added, true
	}
	headAdded, ok := matchLit(r.Head, other.Head)
	if !ok {
		return false
	}
	used := make([]bool, len(other.Body))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(r.Body) {
			return true
		}
		for j := range other.Body {
			if used[j] {
				continue
			}
			added, ok := matchLit(r.Body[i], other.Body[j])
			if !ok {
				continue
			}
			used[j] = true
			if rec(i + 1) {
				return true
			}
			used[j] = false
			for _, p := range added {
				delete(fwd, p[0])
				delete(bwd, p[1])
			}
		}
		return false
	}
	if rec(0) {
		return true
	}
	for _, p := range headAdded {
		delete(fwd, p[0])
		delete(bwd, p[1])
	}
	return false
}

func ruleKey(r Rule) string {
	return string(appendRuleKey(nil, r))
}

func appendRuleKey(b []byte, r Rule) []byte {
	b = appendLitKey(b, r.Head)
	b = append(b, ':', '-')
	for _, l := range r.Body {
		b = appendLitKey(b, l)
	}
	return b
}

func appendLitKey(b []byte, l Literal) []byte {
	b = strconv.AppendInt(b, int64(l.Rel), 10)
	b = append(b, '(')
	for _, t := range l.Args {
		if t.IsConst {
			b = append(b, 'c')
			b = strconv.AppendInt(b, int64(t.Const), 10)
		} else {
			b = append(b, 'v')
			b = strconv.AppendInt(b, int64(t.Var), 10)
		}
		b = append(b, ',')
	}
	return append(b, ')')
}
