package task

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/egs-synthesis/egs/internal/relation"
)

// Write serializes the task in the .task file format, suitable for
// re-loading with Parse. The task must be prepared. Materialized
// complement and neq tuples are not written (the negate/neq
// directives regenerate them on load), so a written-then-loaded task
// is semantically identical to the original.
func Write(w io.Writer, t *Task) error {
	if !t.prepared {
		return fmt.Errorf("task %s: Write before Prepare", t.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "task %s\n", t.Name)
	if t.Category != "" {
		fmt.Fprintf(&b, "domain %s\n", t.Category)
	}
	fmt.Fprintf(&b, "closed-world %v\n", t.ClosedWorld)
	switch t.Expect {
	case ExpectSat:
		b.WriteString("expect sat\n")
	case ExpectUnsat:
		b.WriteString("expect unsat\n")
	}
	var feats []string
	if t.FeatureDisj {
		feats = append(feats, "disjunction")
	}
	if t.FeatureNeg {
		feats = append(feats, "negation")
	}
	if len(feats) > 0 {
		fmt.Fprintf(&b, "features %s\n", strings.Join(feats, " "))
	}
	if len(t.NegateRels) > 0 {
		fmt.Fprintf(&b, "negate %s\n", strings.Join(t.NegateRels, " "))
	}
	if t.AddNeq {
		b.WriteString("neq true\n")
	}
	if t.TypedNegation {
		b.WriteString("typed-negation true\n")
	}
	if t.Modes != nil {
		fmt.Fprintf(&b, "modes maxv=%d", t.Modes.MaxVars)
		names := make([]string, 0, len(t.Modes.Occurrences))
		for n := range t.Modes.Occurrences {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, t.Modes.Occurrences[n])
		}
		b.WriteByte('\n')
	}

	// Declarations: inputs first (skipping materialized relations),
	// then outputs, in declaration order.
	materialized := map[string]bool{"neq": t.AddNeq}
	for _, n := range t.NegateRels {
		materialized["not_"+n] = true
	}
	for _, rel := range t.Schema.All() {
		info := t.Schema.Info(rel)
		if info.Kind != relation.Input || materialized[info.Name] {
			continue
		}
		fmt.Fprintf(&b, "input %s(%d)\n", info.Name, info.Arity)
	}
	for _, rel := range t.Schema.All() {
		info := t.Schema.Info(rel)
		if info.Kind != relation.Output {
			continue
		}
		fmt.Fprintf(&b, "output %s(%d)\n", info.Name, info.Arity)
	}
	for _, src := range t.IntendedSrc {
		fmt.Fprintf(&b, "intended %s\n", src)
	}

	// Facts: only the first RawInputCount tuples are original; the
	// rest were materialized by Prepare.
	for i, tu := range t.Input.All() {
		if i >= t.RawInputCount {
			break
		}
		b.WriteString(renderFact(t, tu, ""))
	}
	for _, tu := range t.Pos {
		b.WriteString(renderFact(t, tu, "+"))
	}
	for _, tu := range t.Neg {
		b.WriteString(renderFact(t, tu, "-"))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderFact renders one ground atom line, quoting constants that
// the lexer would not re-read as a single identifier.
func renderFact(t *Task, tu relation.Tuple, sign string) string {
	var b strings.Builder
	b.WriteString(sign)
	b.WriteString(t.Schema.Name(tu.Rel))
	b.WriteByte('(')
	for i, c := range tu.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteConst(t.Domain.Name(c)))
	}
	b.WriteString(").\n")
	return b.String()
}

// quoteConst quotes a constant spelling unless it parses as a single
// identifier or number token.
func quoteConst(name string) string {
	if name == "" {
		return `""`
	}
	plain := true
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == '-' && i > 0, r == '\'' && i > 0:
		case r >= '0' && r <= '9':
			if i == 0 {
				// Leading digit: fine only if the whole token is a
				// number, which the loop cannot decide locally; be
				// conservative and quote unless all digits.
				if !allDigits(name) {
					plain = false
				}
			}
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain {
		return name
	}
	escaped := strings.ReplaceAll(name, `\`, `\\`)
	escaped = strings.ReplaceAll(escaped, `"`, `\"`)
	return `"` + escaped + `"`
}

func allDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
