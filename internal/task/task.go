// Package task defines synthesis tasks: an input database I, positive
// and negative output examples O+ and O-, and the metadata needed to
// drive the synthesizers and the benchmark harness.
//
// It implements the example semantics of Sections 3 and 5 of the EGS
// paper:
//
//   - the data domain D is the set of constants occurring in input
//     tuples (Section 3.2);
//   - negative examples are either explicit or implied by
//     closed-world (complete) labelling, O- = D^k \ O+ (Section 6.1);
//   - forbidden i-slices F_i (Equation 7) are decided without
//     materializing D^k;
//   - negation support materializes complement relations not_R and
//     the inequality relation neq as ordinary inputs (Section 5.3).
package task

import (
	"fmt"
	"sort"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/parser"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/types"
)

// Expectation records the ground-truth outcome of a task.
type Expectation uint8

const (
	// ExpectUnknown means the task file did not declare an outcome.
	ExpectUnknown Expectation = iota
	// ExpectSat means a consistent query exists.
	ExpectSat
	// ExpectUnsat means the task is unrealizable.
	ExpectUnsat
)

func (e Expectation) String() string {
	switch e {
	case ExpectSat:
		return "sat"
	case ExpectUnsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ModeSpec is a set of mode declarations in the sense of ILASP: an
// upper bound on distinct variables per rule, and per-relation
// occurrence bounds for body literals (Section 6.2).
type ModeSpec struct {
	MaxVars int
	// Occurrences maps an input relation name to the maximum number
	// of times it may occur in one rule body. Relations absent from
	// the map may not occur at all.
	Occurrences map[string]int
}

// Task is one synthesis benchmark.
type Task struct {
	Name     string
	Category string // knowledge-discovery | program-analysis | database-queries | unrealizable
	Expect   Expectation

	// ClosedWorld selects complete labelling: every undeclared output
	// tuple over D^k is negative.
	ClosedWorld bool
	// NegateRels lists input relations whose complements should be
	// materialized during Prepare (Section 5.3).
	NegateRels []string
	// AddNeq requests the built-in inequality relation (Section 5.3).
	AddNeq bool
	// TypedNegation materializes complements and neq over inferred
	// column types (package types) instead of the untyped domain D —
	// the typed-domains extension of Section 3.1. It changes nothing
	// unless NegateRels or AddNeq is set.
	TypedNegation bool
	// Features records whether the intended program needs
	// disjunction or negation (Table 1 metadata).
	FeatureDisj, FeatureNeg bool

	// Modes is the task-specific mode declaration for the ILASP and
	// ProSynth baselines (nil means none was provided).
	Modes *ModeSpec

	// IntendedSrc holds the source text of the task author's intended
	// program, one rule per entry (the "intended" directive). It is
	// parsed during Prepare; the result is available via Intended.
	// Used by the Section 6.4 program-quality comparison and by the
	// suite's data-sanity tests.
	IntendedSrc []string
	intended    query.UCQ

	Schema *relation.Schema
	Domain *relation.Domain

	// Input is the extensional database I. After Prepare it also
	// holds the materialized complement and neq tuples.
	Input *relation.Database
	// RawInputCount is the tuple count before Prepare (Table 1).
	RawInputCount int
	// RawInputRels is the input relation count before Prepare.
	RawInputRels int

	Pos []relation.Tuple // O+
	Neg []relation.Tuple // explicit O- (empty under closed world)

	prepared bool
	example  *Example
	// seenExamples tracks labelled tuples during Parse so duplicate
	// example lines are rejected; see recordExample.
	seenExamples map[string]byte
}

// Example is the oracle view of a task used by the synthesizers: it
// answers membership and counting queries about the (possibly
// implicit) negative example set and about forbidden slices.
//
// Full-arity example sets (O+ and the explicit O-) are TupleSets over
// the database's dense ids, so the membership tests in the
// synthesizers' inner loops are bitset probes. Slice (prefix) data
// stays string-keyed: i-slices for i < k are not ground tuples and
// have no TupleID.
type Example struct {
	DB          *relation.Database
	DomainSize  int // |D|: constants occurring in input tuples
	ClosedWorld bool

	Pos []relation.Tuple

	// posIDs is O+ as a bitset over DB's interned ids.
	posIDs *relation.TupleSet
	// posPrefix holds SliceKey(i) for every positive tuple and every
	// 1 <= i <= k. Under closed-world labelling an i-slice is
	// forbidden iff it is absent from this set.
	posPrefix map[string]bool
	// posPrefixCount[i] is the number of distinct i-slices of O+,
	// grouped per relation in the key, used to compute |F_i|.
	posPrefixPerLen []map[string]bool

	// negIDs is the explicit O- as a bitset (empty under closed
	// world).
	negIDs *relation.TupleSet
	// negPrefixCount maps an i-slice key to the number of distinct
	// negative tuples extending it (explicit labelling only).
	negPrefixCount []map[string]int
	// negForbidden caches, per slice length, the keys whose every
	// extension is negative.
	negForbidden []map[string]bool

	maxArity int
}

// Prepare finalizes the task: it computes the data domain, checks
// declarations, materializes complement and neq relations, and builds
// the example oracle. It is idempotent.
func (t *Task) Prepare() error {
	if t.prepared {
		return nil
	}
	t.RawInputCount = t.Input.Size()
	t.RawInputRels = len(t.Schema.Relations(relation.Input))

	domainConsts := t.Input.ConstantsOf(t.Input.AllIDs())

	if err := t.materializeNegation(domainConsts); err != nil {
		return err
	}
	ex := &Example{
		DB:          t.Input,
		DomainSize:  len(domainConsts),
		ClosedWorld: t.ClosedWorld,
		Pos:         t.Pos,
		posIDs:      &relation.TupleSet{},
		posPrefix:   make(map[string]bool),
		negIDs:      &relation.TupleSet{},
	}
	for _, p := range t.Pos {
		if len(p.Args) > ex.maxArity {
			ex.maxArity = len(p.Args)
		}
	}
	for _, n := range t.Neg {
		if len(n.Args) > ex.maxArity {
			ex.maxArity = len(n.Args)
		}
	}
	ex.posPrefixPerLen = make([]map[string]bool, ex.maxArity+1)
	ex.negPrefixCount = make([]map[string]int, ex.maxArity+1)
	ex.negForbidden = make([]map[string]bool, ex.maxArity+1)
	for i := range ex.posPrefixPerLen {
		ex.posPrefixPerLen[i] = make(map[string]bool)
		ex.negPrefixCount[i] = make(map[string]int)
		ex.negForbidden[i] = make(map[string]bool)
	}
	for _, p := range t.Pos {
		ex.posIDs.Add(t.Input.InternTuple(p))
		for i := 1; i <= len(p.Args); i++ {
			k := p.SliceKey(i)
			ex.posPrefix[k] = true
			ex.posPrefixPerLen[i][k] = true
		}
	}
	for _, n := range t.Neg {
		if !ex.negIDs.Add(t.Input.InternTuple(n)) {
			continue
		}
		for i := 1; i <= len(n.Args); i++ {
			ex.negPrefixCount[i][n.SliceKey(i)]++
		}
	}
	// Precompute forbidden slices for explicit labelling: an i-slice
	// is forbidden iff all |D|^(k-i) extensions are negative.
	if !t.ClosedWorld {
		for _, n := range t.Neg {
			k := len(n.Args)
			for i := 1; i <= k; i++ {
				key := n.SliceKey(i)
				if ex.negForbidden[i][key] {
					continue
				}
				want, ok := powUint(uint64(ex.DomainSize), k-i)
				if ok && uint64(ex.negPrefixCount[i][key]) >= want {
					ex.negForbidden[i][key] = true
				}
			}
		}
	}
	t.example = ex
	t.prepared = true
	if err := t.validate(); err != nil {
		return err
	}
	return t.parseIntended()
}

// parseIntended resolves the intended-program source against the
// prepared schema (so that materialized not_* and neq relations are
// in scope) and checks each rule.
func (t *Task) parseIntended() error {
	for _, src := range t.IntendedSrc {
		r, err := parser.ParseRule(src, t.Schema, t.Domain)
		if err != nil {
			return fmt.Errorf("task %s: intended: %w", t.Name, err)
		}
		if err := r.Validate(t.Schema); err != nil {
			return fmt.Errorf("task %s: intended rule %q: %w", t.Name, src, err)
		}
		t.intended.Rules = append(t.intended.Rules, r)
	}
	return nil
}

// HasIntended reports whether the task declares an intended program.
func (t *Task) HasIntended() bool { return len(t.IntendedSrc) > 0 }

// Intended returns the parsed intended program; Prepare must have
// been called. The returned UCQ is empty when the task declares none.
func (t *Task) Intended() query.UCQ {
	if !t.prepared {
		panic("task: Intended called before Prepare")
	}
	return t.intended
}

// validate performs sanity checks after preparation.
func (t *Task) validate() error {
	for _, p := range t.Pos {
		if t.Schema.Info(p.Rel).Kind != relation.Output {
			return fmt.Errorf("task %s: positive tuple over non-output relation %s",
				t.Name, t.Schema.Name(p.Rel))
		}
	}
	for _, n := range t.Neg {
		if t.Schema.Info(n.Rel).Kind != relation.Output {
			return fmt.Errorf("task %s: negative tuple over non-output relation %s",
				t.Name, t.Schema.Name(n.Rel))
		}
		if t.example.IsPositive(n) {
			return fmt.Errorf("task %s: tuple %s labelled both positive and negative",
				t.Name, n.String(t.Schema, t.Domain))
		}
	}
	if t.ClosedWorld && len(t.Neg) > 0 {
		return fmt.Errorf("task %s: explicit negative tuples are incompatible with closed-world labelling", t.Name)
	}
	return nil
}

// Relabel returns a new prepared Task sharing this (already
// prepared) task's input database, schema, and domain, with the
// given additional example labels. It supports interactive
// workflows: each user answer extends the example and the task is
// re-synthesized.
//
// The receiver must be prepared and use explicit labelling: under
// closed-world labelling every tuple is already labelled, so there
// is nothing to add. Complement and neq relations are not
// re-materialized (they are already in the shared database), and
// RawInputCount is preserved.
func (t *Task) Relabel(extraPos, extraNeg []relation.Tuple) (*Task, error) {
	if !t.prepared {
		return nil, fmt.Errorf("task %s: Relabel before Prepare", t.Name)
	}
	if t.ClosedWorld && len(extraNeg) > 0 {
		return nil, fmt.Errorf("task %s: closed-world tasks have no unlabelled tuples to relabel", t.Name)
	}
	nt := &Task{
		Name:        t.Name,
		Category:    t.Category,
		Expect:      ExpectUnknown,
		ClosedWorld: t.ClosedWorld,
		// Negation is already materialized in the shared database.
		Modes:       t.Modes,
		IntendedSrc: t.IntendedSrc,
		Schema:      t.Schema,
		Domain:      t.Domain,
		Input:       t.Input,
		Pos:         append(append([]relation.Tuple(nil), t.Pos...), extraPos...),
		Neg:         append(append([]relation.Tuple(nil), t.Neg...), extraNeg...),
	}
	if err := nt.Prepare(); err != nil {
		return nil, err
	}
	nt.RawInputCount = t.RawInputCount
	nt.RawInputRels = t.RawInputRels
	return nt, nil
}

// Revise returns a new prepared Task sharing this (already prepared)
// task's input database, schema, and domain, with the example labels
// replaced wholesale by pos and neg. Unlike Relabel, which can only
// add labels, Revise supports removal and relabelling, and is
// permitted under closed-world labelling, where the positive list is
// the entire labelling. It is the revision constructor behind
// incremental sessions: every delta yields a Revise'd task over the
// same (possibly overlay-grown) database, so interned tuple ids and
// warm search state stay valid.
//
// Complement and neq relations are not re-materialized (they are
// already in the shared database), and RawInputCount/RawInputRels are
// preserved.
func (t *Task) Revise(pos, neg []relation.Tuple) (*Task, error) {
	if !t.prepared {
		return nil, fmt.Errorf("task %s: Revise before Prepare", t.Name)
	}
	if t.ClosedWorld && len(neg) > 0 {
		return nil, fmt.Errorf("task %s: explicit negative tuples are incompatible with closed-world labelling", t.Name)
	}
	nt := &Task{
		Name:        t.Name,
		Category:    t.Category,
		Expect:      ExpectUnknown,
		ClosedWorld: t.ClosedWorld,
		// Negation is already materialized in the shared database.
		Modes:       t.Modes,
		IntendedSrc: t.IntendedSrc,
		Schema:      t.Schema,
		Domain:      t.Domain,
		Input:       t.Input,
		Pos:         append([]relation.Tuple(nil), pos...),
		Neg:         append([]relation.Tuple(nil), neg...),
	}
	if err := nt.Prepare(); err != nil {
		return nil, err
	}
	nt.RawInputCount = t.RawInputCount
	nt.RawInputRels = t.RawInputRels
	return nt, nil
}

// Example returns the prepared oracle; Prepare must have been called.
func (t *Task) Example() *Example {
	if !t.prepared {
		panic("task: Example called before Prepare")
	}
	return t.example
}

// materializeNegation adds not_R for each relation in NegateRels and
// the neq relation when requested. Under the paper's untyped
// construction (Section 5.3) complements range over the data domain
// D; with TypedNegation they range over the inferred column types of
// the negated relation (the Section 3.1 typed extension).
func (t *Task) materializeNegation(domain []relation.Const) error {
	var assign *types.Assignment
	if t.TypedNegation {
		assign = types.Infer(t.Input)
	}
	for _, name := range t.NegateRels {
		rel, ok := t.Schema.Lookup(name)
		if !ok {
			return fmt.Errorf("task %s: negate: undeclared relation %q", t.Name, name)
		}
		if t.Schema.Info(rel).Kind != relation.Input {
			return fmt.Errorf("task %s: negate: %q is not an input relation", t.Name, name)
		}
		arity := t.Schema.Arity(rel)
		comp, err := t.Schema.Declare("not_"+name, arity, relation.Input)
		if err != nil {
			return fmt.Errorf("task %s: %v", t.Name, err)
		}
		// columnDomain returns the candidate constants for column i.
		columnDomain := func(i int) []relation.Const {
			if assign == nil {
				return domain
			}
			tid, ok := assign.ColumnType(rel, i)
			if !ok {
				return nil
			}
			return assign.DomainOf(tid)
		}
		args := make([]relation.Const, arity)
		var emit func(i int)
		emit = func(i int) {
			if i == arity {
				cand := relation.Tuple{Rel: rel, Args: args}
				if !t.Input.Contains(cand) {
					t.Input.Insert(relation.Tuple{Rel: comp, Args: append([]relation.Const(nil), args...)})
				}
				return
			}
			for _, c := range columnDomain(i) {
				args[i] = c
				emit(i + 1)
			}
		}
		emit(0)
	}
	if t.AddNeq {
		neq, err := t.Schema.Declare("neq", 2, relation.Input)
		if err != nil {
			return fmt.Errorf("task %s: %v", t.Name, err)
		}
		pairs := func(dom []relation.Const) {
			for _, a := range dom {
				for _, b := range dom {
					if a != b {
						t.Input.Insert(relation.NewTuple(neq, a, b))
					}
				}
			}
		}
		if assign != nil {
			for tid := 0; tid < assign.NumTypes(); tid++ {
				pairs(assign.DomainOf(types.TypeID(tid)))
			}
		} else {
			pairs(domain)
		}
	}
	return nil
}

// powUint computes base^exp, reporting overflow via ok=false.
func powUint(base uint64, exp int) (uint64, bool) {
	result := uint64(1)
	for i := 0; i < exp; i++ {
		if base != 0 && result > (1<<62)/base {
			return 0, false
		}
		result *= base
	}
	return result, true
}

// PosIDs returns O+ as a bitset over the database's ids. The returned
// set is shared; callers must not mutate it.
func (e *Example) PosIDs() *relation.TupleSet { return e.posIDs }

// IsPositive reports whether tuple t is in O+.
func (e *Example) IsPositive(t relation.Tuple) bool {
	return e.posIDs.Has(e.DB.InternTuple(t))
}

// IsPositiveID is IsPositive for an already-interned tuple id.
func (e *Example) IsPositiveID(id relation.TupleID) bool { return e.posIDs.Has(id) }

// IsNegative reports whether tuple t is a negative example: under
// closed-world labelling, any output tuple not in O+; otherwise,
// membership in the explicit O-.
func (e *Example) IsNegative(t relation.Tuple) bool {
	return e.IsNegativeID(e.DB.InternTuple(t))
}

// IsNegativeID is IsNegative for an already-interned tuple id. Like
// IsNegative, it assumes the tuple is over an output relation (input
// facts are neither positive nor negative examples).
func (e *Example) IsNegativeID(id relation.TupleID) bool {
	if e.ClosedWorld {
		return !e.posIDs.Has(id)
	}
	return e.negIDs.Has(id)
}

// ForbiddenSlice reports whether the i-slice (t.Rel, t.Args[:i]) lies
// in the forbidden set F_i of Equation 7: every extension of the
// slice to full arity is a negative example.
func (e *Example) ForbiddenSlice(t relation.Tuple, i int) bool {
	if i >= len(t.Args) {
		return e.IsNegative(t)
	}
	return e.ForbiddenPrefixKey(t.SliceKey(i), i)
}

// ForbiddenPrefixKey is ForbiddenSlice for a proper slice (i < k)
// whose SliceKey(i) has already been computed. Full-arity slices are
// ground tuples; test those with IsNegativeID.
func (e *Example) ForbiddenPrefixKey(key string, i int) bool {
	if e.ClosedWorld {
		return !e.posPrefix[key]
	}
	if i < len(e.negForbidden) {
		return e.negForbidden[i][key]
	}
	return false
}

// CountForbidden returns |F_i| for output relation rel of arity k:
// the denominator data for the paper's score function at slice i.
// The bool result is false if the count overflows uint64 (treated by
// callers as "astronomically large").
func (e *Example) CountForbidden(rel relation.RelID, i, k int) (uint64, bool) {
	if e.ClosedWorld {
		total, ok := powUint(uint64(e.DomainSize), i)
		if !ok {
			return 0, false
		}
		// Count distinct i-prefixes of positive tuples over rel.
		n := uint64(0)
		if i < len(e.posPrefixPerLen) {
			for key := range e.posPrefixPerLen[i] {
				if sliceKeyRel(key) == rel {
					n++
				}
			}
		} else {
			return total, true
		}
		if n > total {
			return 0, true
		}
		return total - n, true
	}
	n := uint64(0)
	if i < len(e.negForbidden) {
		for key := range e.negForbidden[i] {
			if sliceKeyRel(key) == rel {
				n++
			}
		}
	}
	return n, true
}

// sliceKeyRel decodes the relation id from a Tuple.Key/SliceKey.
func sliceKeyRel(key string) relation.RelID {
	if len(key) < 4 {
		return -1
	}
	return relation.RelID(uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24)
}

// Consistent reports whether query q is consistent with the example:
// it derives every positive tuple and no negative tuple. When it
// returns false, the second result explains why.
func (e *Example) Consistent(q query.UCQ) (bool, string) {
	outs := eval.UCQOutputIDs(q, e.DB)
	for _, p := range e.Pos {
		if !outs.Has(e.DB.InternTuple(p)) {
			return false, fmt.Sprintf("does not derive positive tuple %s", p.String(e.DB.Schema, e.DB.Domain))
		}
	}
	bad := relation.TupleID(-1)
	outs.Iterate(func(id relation.TupleID) bool {
		if e.IsNegativeID(id) {
			bad = id
			return false
		}
		return true
	})
	if bad >= 0 {
		return false, fmt.Sprintf("derives negative tuple %s", e.DB.TupleByID(bad).String(e.DB.Schema, e.DB.Domain))
	}
	return true, ""
}

// RuleConsistentWithNegatives reports whether a single rule derives
// no negative tuples (its positive coverage is checked separately).
func (e *Example) RuleConsistentWithNegatives(r query.Rule) bool {
	ok := true
	eval.EvalRuleIDs(r, e.DB, func(id relation.TupleID) bool {
		if e.IsNegativeID(id) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// OutputRelations returns the output relation ids mentioned by O+
// and O-, sorted by name.
func (t *Task) OutputRelations() []relation.RelID {
	seen := map[relation.RelID]bool{}
	var rels []relation.RelID
	add := func(ts []relation.Tuple) {
		for _, tu := range ts {
			if !seen[tu.Rel] {
				seen[tu.Rel] = true
				rels = append(rels, tu.Rel)
			}
		}
	}
	add(t.Pos)
	add(t.Neg)
	sort.Slice(rels, func(i, j int) bool {
		return t.Schema.Name(rels[i]) < t.Schema.Name(rels[j])
	})
	return rels
}
