package task

import (
	"strings"
	"testing"
)

// mustParse parses an inline task file or fails the test.
func mustParse(t *testing.T, src string) *Task {
	t.Helper()
	tk, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tk
}

const hashBase = `
task kinship
domain knowledge-discovery
closed-world true
input mother(2)
input father(2)
output child(2)
mother(Sarabi, Simba).
father(Mufasa, Simba).
+child(Simba, Sarabi).
+child(Simba, Mufasa).
`

func TestCanonicalHashInvariantToOrder(t *testing.T) {
	a := mustParse(t, hashBase)
	// Same task: declarations, facts, and examples in a different
	// order, different name, extra whitespace and comments.
	b := mustParse(t, `
task kinship-renamed
closed-world true
input father(2)   # declared first this time
input mother(2)
output child(2)
father(Mufasa, Simba).
mother(Sarabi, Simba).
+child(Simba, Mufasa).
+child(Simba, Sarabi).
`)
	ha, hb := CanonicalHash(a), CanonicalHash(b)
	if ha != hb {
		t.Errorf("reordered task hashes differ:\n a=%s\n b=%s", ha, hb)
	}
	if len(ha) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(ha))
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := CanonicalHash(mustParse(t, hashBase))
	variants := map[string]string{
		"extra fact":       hashBase + "mother(Nala, Kiara).\n",
		"extra positive":   hashBase + "+child(Simba, Simba).\n",
		"different domain": strings.Replace(hashBase, "closed-world true", "closed-world false", 1),
		"extra relation":   strings.Replace(hashBase, "input mother(2)", "input mother(2)\ninput likes(2)", 1),
	}
	for name, src := range variants {
		if got := CanonicalHash(mustParse(t, src)); got == base {
			t.Errorf("%s: hash did not change", name)
		}
	}
}

func TestCanonicalHashUnaffectedByPrepare(t *testing.T) {
	src := `
task neg
closed-world false
negate edge
neq true
input edge(2)
output path(2)
edge(a, b).
edge(b, c).
+path(a, c).
-path(c, a).
`
	prepared := mustParse(t, src) // Parse runs Prepare: not_edge and neq are materialized
	fresh := mustParse(t, src)
	// The materialized relations must not leak into the hash: two
	// prepared copies agree, and the count of hashed facts matches
	// the raw input count, not the post-materialization database.
	if CanonicalHash(prepared) != CanonicalHash(fresh) {
		t.Errorf("two prepared copies of the same task hash differently")
	}
	if prepared.Input.Size() == prepared.RawInputCount {
		t.Fatalf("test task should materialize complement tuples (size %d, raw %d)",
			prepared.Input.Size(), prepared.RawInputCount)
	}

	// A task with the same declarations and facts but without the
	// negate/neq directives must hash differently (the directives are
	// part of the semantics).
	plain := mustParse(t, strings.NewReplacer("negate edge\n", "", "neq true\n", "neq false\n").Replace(src))
	if CanonicalHash(plain) == CanonicalHash(prepared) {
		t.Errorf("negation directives did not affect the hash")
	}
}

func TestCanonicalHashIgnoresMetadata(t *testing.T) {
	a := mustParse(t, hashBase)
	b := mustParse(t, strings.Replace(hashBase, "domain knowledge-discovery",
		"domain database-queries\nexpect sat\nmodes maxv=2 mother=1 father=1", 1))
	if CanonicalHash(a) != CanonicalHash(b) {
		t.Errorf("category/expect/modes metadata changed the hash")
	}
}
