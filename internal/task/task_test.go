package task

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/parser"
	"github.com/egs-synthesis/egs/internal/relation"
)

const trafficTask = `
task traffic
domain knowledge-discovery
closed-world true
expect sat

input Intersects(2)
input GreenSignal(1)
input HasTraffic(1)
output Crashes(1)

Intersects(Broadway, LibertySt).
Intersects(Broadway, WallSt).
Intersects(Broadway, Whitehall).
Intersects(LibertySt, Broadway).
Intersects(LibertySt, WilliamSt).
Intersects(WallSt, Broadway).
Intersects(WallSt, WilliamSt).
Intersects(Whitehall, Broadway).
Intersects(WilliamSt, LibertySt).
Intersects(WilliamSt, WallSt).

GreenSignal(Broadway).
GreenSignal(LibertySt).
GreenSignal(WilliamSt).
GreenSignal(Whitehall).

HasTraffic(Broadway).
HasTraffic(WallSt).
HasTraffic(WilliamSt).
HasTraffic(Whitehall).

+Crashes(Broadway).
+Crashes(Whitehall).
`

func parseTask(t *testing.T, src string) *Task {
	t.Helper()
	tk, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestParseTrafficTask(t *testing.T) {
	tk := parseTask(t, trafficTask)
	if tk.Name != "traffic" || tk.Category != "knowledge-discovery" {
		t.Errorf("metadata: %q %q", tk.Name, tk.Category)
	}
	if !tk.ClosedWorld || tk.Expect != ExpectSat {
		t.Error("flags not parsed")
	}
	if tk.RawInputCount != 18 {
		t.Errorf("RawInputCount = %d, want 18", tk.RawInputCount)
	}
	if tk.RawInputRels != 3 {
		t.Errorf("RawInputRels = %d, want 3", tk.RawInputRels)
	}
	if len(tk.Pos) != 2 || len(tk.Neg) != 0 {
		t.Errorf("examples: %d pos, %d neg", len(tk.Pos), len(tk.Neg))
	}
	ex := tk.Example()
	if ex.DomainSize != 5 {
		t.Errorf("DomainSize = %d, want 5", ex.DomainSize)
	}
}

func TestClosedWorldNegatives(t *testing.T) {
	tk := parseTask(t, trafficTask)
	ex := tk.Example()
	crashes, _ := tk.Schema.Lookup("Crashes")
	broadway, _ := tk.Domain.Lookup("Broadway")
	wallst, _ := tk.Domain.Lookup("WallSt")
	if ex.IsNegative(relation.NewTuple(crashes, broadway)) {
		t.Error("positive tuple reported negative")
	}
	if !ex.IsNegative(relation.NewTuple(crashes, wallst)) {
		t.Error("unlabelled tuple not negative under closed world")
	}
	// |F_1| = |D| - |O+| = 5 - 2 = 3.
	n, ok := ex.CountForbidden(crashes, 1, 1)
	if !ok || n != 3 {
		t.Errorf("CountForbidden = %d,%v want 3,true", n, ok)
	}
}

func TestConsistencyCheck(t *testing.T) {
	tk := parseTask(t, trafficTask)
	ex := tk.Example()
	good := parser.MustParseProgram(
		"Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y), GreenSignal(x), GreenSignal(y).",
		tk.Schema, tk.Domain)
	if ok, why := ex.Consistent(good); !ok {
		t.Errorf("paper's solution inconsistent: %s", why)
	}
	overGeneral := parser.MustParseProgram("Crashes(x) :- GreenSignal(x).", tk.Schema, tk.Domain)
	if ok, _ := ex.Consistent(overGeneral); ok {
		t.Error("over-general query reported consistent")
	}
	underGeneral := parser.MustParseProgram(
		"Crashes(x) :- Intersects(x, y), HasTraffic(x), HasTraffic(y), GreenSignal(x), GreenSignal(y), Intersects(y, x), HasTraffic(x).",
		tk.Schema, tk.Domain)
	// Still consistent: extra literals only specialize, and both
	// crash streets intersect each other.
	if ok, why := ex.Consistent(underGeneral); !ok {
		t.Errorf("specialized solution inconsistent: %s", why)
	}
}

const kinshipTask = `
task grandparent-mini
closed-world false
input father(2)
input mother(2)
output grandparent(2)
father(Mufasa, Simba).
mother(Sarabi, Simba).
father(Simba, Kiara).
mother(Nala, Kiara).
+grandparent(Sarabi, Kiara).
-grandparent(Sarabi, Simba).
`

func TestExplicitNegatives(t *testing.T) {
	tk := parseTask(t, kinshipTask)
	ex := tk.Example()
	gp, _ := tk.Schema.Lookup("grandparent")
	sarabi, _ := tk.Domain.Lookup("Sarabi")
	simba, _ := tk.Domain.Lookup("Simba")
	nala, _ := tk.Domain.Lookup("Nala")
	if !ex.IsNegative(relation.NewTuple(gp, sarabi, simba)) {
		t.Error("explicit negative not recognized")
	}
	if ex.IsNegative(relation.NewTuple(gp, nala, simba)) {
		t.Error("unlabelled tuple negative under explicit labelling")
	}
	// F_1 is empty: grandparent(Sarabi, *) has a non-negative
	// extension (the positive one), and |D|=6 extensions are not all
	// listed.
	kiara := relation.NewTuple(gp, sarabi, simba)
	if ex.ForbiddenSlice(kiara, 1) {
		t.Error("slice grandparent(Sarabi) wrongly forbidden")
	}
	n, ok := ex.CountForbidden(gp, 1, 2)
	if !ok || n != 0 {
		t.Errorf("CountForbidden = %d, want 0", n)
	}
}

func TestForbiddenSliceFullCoverage(t *testing.T) {
	// Two constants; all extensions of out(a, *) are negative.
	src := `
task tiny
closed-world false
input p(1)
output out(2)
p(a).
p(b).
-out(a, a).
-out(a, b).
+out(b, a).
`
	tk := parseTask(t, src)
	ex := tk.Example()
	out, _ := tk.Schema.Lookup("out")
	a, _ := tk.Domain.Lookup("a")
	b, _ := tk.Domain.Lookup("b")
	if !ex.ForbiddenSlice(relation.NewTuple(out, a, a), 1) {
		t.Error("fully covered slice not forbidden")
	}
	if ex.ForbiddenSlice(relation.NewTuple(out, b, a), 1) {
		t.Error("positive-prefix slice forbidden")
	}
	n, ok := ex.CountForbidden(out, 1, 2)
	if !ok || n != 1 {
		t.Errorf("CountForbidden = %d, want 1", n)
	}
}

func TestNegationMaterialization(t *testing.T) {
	src := `
task neg-test
closed-world true
negate edge
neq true
input edge(2)
output out(1)
edge(a, b).
edge(b, c).
+out(a).
`
	tk := parseTask(t, src)
	notEdge, ok := tk.Schema.Lookup("not_edge")
	if !ok {
		t.Fatal("not_edge not declared")
	}
	// D = {a, b, c}; 9 pairs, 2 edges -> 7 complements.
	if got := tk.Input.ExtentSize(notEdge); got != 7 {
		t.Errorf("not_edge extent = %d, want 7", got)
	}
	neq, ok := tk.Schema.Lookup("neq")
	if !ok {
		t.Fatal("neq not declared")
	}
	if got := tk.Input.ExtentSize(neq); got != 6 {
		t.Errorf("neq extent = %d, want 6", got)
	}
	// Raw count excludes materialized tuples.
	if tk.RawInputCount != 2 {
		t.Errorf("RawInputCount = %d, want 2", tk.RawInputCount)
	}
}

func TestParseModes(t *testing.T) {
	src := trafficTask + "\nmodes maxv=2 GreenSignal=2 HasTraffic=2 Intersects=1\n"
	tk := parseTask(t, src)
	if tk.Modes == nil {
		t.Fatal("modes not parsed")
	}
	if tk.Modes.MaxVars != 2 || tk.Modes.Occurrences["Intersects"] != 1 {
		t.Errorf("modes = %+v", tk.Modes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"undeclared fact":     "input p(1)\nq(a).\n",
		"arity mismatch":      "input p(1)\np(a, b).\n",
		"unsigned output":     "input p(1)\noutput q(1)\np(a).\nq(a).\n",
		"signed input":        "input p(1)\noutput q(1)\n+p(a).\n",
		"pos and neg overlap": "input p(1)\noutput q(1)\np(a).\n+q(a).\n-q(a).\n",
		"closed world + neg":  "closed-world true\ninput p(1)\noutput q(1)\np(a).\n+q(a).\n-q(b).\n",
		"bad expect":          "expect maybe\n",
		"bad closed-world":    "closed-world yes\n",
		"bad feature":         "features recursion\n",
		"bad mode":            "modes maxv=zero\n",
		"mode without maxv":   "modes p=2\n",
		"negate undeclared":   "input p(1)\noutput q(1)\nnegate r\np(a).\n+q(a).\n",
		"bad decl":            "input p[2]\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestDuplicateExamplesRejected(t *testing.T) {
	cases := map[string]struct {
		src, want string
	}{
		"duplicate positive": {
			src:  "input p(1)\noutput q(1)\np(a).\n+q(a).\n+q(a).\n",
			want: "duplicate positive example",
		},
		"duplicate negative": {
			src:  "input p(2)\noutput q(1)\np(a, b).\n+q(a).\n-q(b).\n-q(b).\n",
			want: "duplicate negative example",
		},
		"conflicting labels": {
			src:  "input p(1)\noutput q(1)\np(a).\n+q(a).\n-q(a).\n",
			want: "labelled both positive and negative",
		},
	}
	for name, c := range cases {
		_, err := Parse(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
	// Duplicate input facts remain legal: the database is a set.
	if _, err := Parse(strings.NewReader("input p(1)\noutput q(1)\np(a).\np(a).\n+q(a).\n")); err != nil {
		t.Errorf("duplicate input fact rejected: %v", err)
	}
}

// TestForbiddenSliceMatchesBruteForce cross-checks the slice oracle
// against a direct materialization of Equation 7 on random explicit
// examples.
func TestForbiddenSliceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		nConst := 2 + rng.Intn(3)
		k := 1 + rng.Intn(3)

		s := relation.NewSchema()
		d := relation.NewDomain()
		p := s.MustDeclare("p", 1, relation.Input)
		out := s.MustDeclare("out", k, relation.Output)
		tk := &Task{Schema: s, Domain: d}
		tk.Input = relation.NewDatabase(s, d)
		consts := make([]relation.Const, nConst)
		for i := range consts {
			consts[i] = d.Intern(string(rune('a' + i)))
			tk.Input.Insert(relation.NewTuple(p, consts[i]))
		}
		// Random labelling of D^k.
		var all [][]relation.Const
		var build func(prefix []relation.Const)
		build = func(prefix []relation.Const) {
			if len(prefix) == k {
				all = append(all, append([]relation.Const(nil), prefix...))
				return
			}
			for _, c := range consts {
				build(append(prefix, c))
			}
		}
		build(nil)
		negSet := map[string]bool{}
		for _, args := range all {
			switch rng.Intn(3) {
			case 0:
				tk.Pos = append(tk.Pos, relation.Tuple{Rel: out, Args: args})
			case 1:
				tk.Neg = append(tk.Neg, relation.Tuple{Rel: out, Args: args})
				negSet[relation.ArgsKey(args)] = true
			}
		}
		if err := tk.Prepare(); err != nil {
			t.Fatal(err)
		}
		ex := tk.Example()
		for i := 1; i <= k; i++ {
			// Brute force F_i: slices whose every extension is negative.
			forbidden := map[string]bool{}
			prefixes := map[string][]relation.Const{}
			for _, args := range all {
				prefixes[relation.ArgsKey(args[:i])] = args[:i]
			}
			for key, prefix := range prefixes {
				allNeg := true
				for _, args := range all {
					if relation.ArgsKey(args[:i]) == key && !negSet[relation.ArgsKey(args)] {
						allNeg = false
						break
					}
				}
				if allNeg {
					forbidden[key] = true
				}
				got := ex.ForbiddenSlice(relation.Tuple{Rel: out, Args: append(append([]relation.Const(nil), prefix...), make([]relation.Const, k-i)...)}, i)
				if got != allNeg {
					t.Fatalf("trial %d slice len %d: oracle=%v brute=%v", trial, i, got, allNeg)
				}
			}
			n, ok := ex.CountForbidden(out, i, k)
			if !ok || n != uint64(len(forbidden)) {
				t.Fatalf("trial %d: CountForbidden(%d) = %d, want %d", trial, i, n, len(forbidden))
			}
		}
	}
}

func TestPowUint(t *testing.T) {
	if v, ok := powUint(10, 3); !ok || v != 1000 {
		t.Errorf("powUint(10,3) = %d,%v", v, ok)
	}
	if v, ok := powUint(7, 0); !ok || v != 1 {
		t.Errorf("powUint(7,0) = %d,%v", v, ok)
	}
	if _, ok := powUint(1<<32, 3); ok {
		t.Error("powUint overflow not detected")
	}
}

func TestOutputRelations(t *testing.T) {
	tk := parseTask(t, kinshipTask)
	rels := tk.OutputRelations()
	if len(rels) != 1 || tk.Schema.Name(rels[0]) != "grandparent" {
		t.Errorf("OutputRelations = %v", rels)
	}
}
