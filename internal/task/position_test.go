package task

import (
	"errors"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/parser"
)

// TestTaskFileErrorPositions pins the file coordinates reported for
// malformed task files: the loader hands each fact sub-line to the
// parser anchored at its real position, so errors point into the file,
// not at column 1 of a stripped sub-line.
func TestTaskFileErrorPositions(t *testing.T) {
	const header = "task t\ninput edge(2)\noutput path(2)\n"
	cases := []struct {
		name      string
		src       string
		line, col int
		contains  string
	}{
		{
			"malformed fact",
			header + "edge(a, b).\nedge(a b).\n",
			5, 8,
			"expected ')'",
		},
		{
			"indented fact",
			header + "   edge(a b).\n",
			4, 11,
			"expected ')'",
		},
		{
			"signed example",
			header + "  + path(a b).\n",
			4, 12,
			"expected ')'",
		},
		{
			"sign with no atom",
			header + "+\n",
			4, 2,
			"expected identifier",
		},
		{
			"undeclared relation",
			header + "edge(a, b).\n+ nosuch(a, b).\n",
			5, 3,
			`undeclared relation "nosuch"`,
		},
		{
			"fact arity mismatch",
			header + "edge(a).\n",
			4, 1,
			`relation "edge" has arity 2, fact has 1 arguments`,
		},
		{
			"error after comment",
			header + "edge(a, b).  # ok\nedge(, b).\n",
			5, 6,
			"expected an argument",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("Parse succeeded, want error at %d:%d", tc.line, tc.col)
			}
			var serr *parser.SyntaxError
			if !errors.As(err, &serr) {
				t.Fatalf("error %v (%T) is not a *parser.SyntaxError", err, err)
			}
			if serr.Pos.Line != tc.line || serr.Pos.Col != tc.col {
				t.Errorf("error position = %v, want %d:%d (%v)", serr.Pos, tc.line, tc.col, err)
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %q does not contain %q", err.Error(), tc.contains)
			}
			// Positioned errors must not also carry the loader's
			// "line N:" prefix; that would double-report the line.
			if strings.Contains(err.Error(), "line ") {
				t.Errorf("positioned error still has a line prefix: %q", err.Error())
			}
		})
	}
}

// TestTaskFileDirectiveErrorsKeepLinePrefix checks that directive
// errors, which have no sub-line parser position, still identify
// their line the old way.
func TestTaskFileDirectiveErrorsKeepLinePrefix(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		prefix string
	}{
		{"bad directive arity", "task\n", "line 1:"},
		{"bad expect", "task t\nexpect maybe\n", "line 2:"},
		{"unsigned output fact", "task t\noutput path(1)\npath(a).\n", "line 3:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.src))
			if err == nil {
				t.Fatal("Parse succeeded, want error")
			}
			if !strings.HasPrefix(err.Error(), tc.prefix) {
				t.Errorf("error %q does not start with %q", err.Error(), tc.prefix)
			}
		})
	}
}
