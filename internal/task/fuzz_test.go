package task_test

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/datagen/family"
	"github.com/egs-synthesis/egs/internal/task"
)

// FuzzParse checks the task-file loader never panics: every input
// either yields a prepared task or an error. The corpus mixes
// hand-written directive edge cases with generated scenario-factory
// instances (one per program class, plus a noisy one), so the fuzzer
// mutates from realistic full-size task files too.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"task t\ninput p(1)\noutput q(1)\np(a).\n+q(a).\n",
		"closed-world true\ninput edge(2)\noutput out(1)\nedge(a, b).\n+out(a).\n",
		"neq true\nnegate p\ninput p(1)\noutput q(1)\np(a).\n+q(a).\n",
		"modes maxv=2 p=1\ninput p(2)\noutput q(2)\np(a, b).\n+q(b, a).\nintended q(x, y) :- p(y, x).\n",
		"typed-negation true\nnegate p\ninput p(2)\noutput q(1)\np(a, b).\n+q(a).\n",
		"input p(1)\n# comment\nexpect unsat\n",
		"garbage directive\n",
		"+q(a).\n",
	}
	for _, class := range family.Classes() {
		inst, err := family.Generate(family.Spec{Class: class, Domain: 8, Density: 1}, 1)
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, inst.Content)
	}
	noisy, err := family.Generate(family.Spec{Class: "union", Domain: 8, Density: 1, Noise: 0.3}, 2)
	if err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, noisy.Content)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tk, err := task.Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// A successfully parsed task must be internally coherent.
		ex := tk.Example()
		if ex == nil {
			t.Fatal("prepared task has no example")
		}
		for _, p := range tk.Pos {
			if ex.IsNegative(p) {
				t.Fatalf("positive tuple classified negative: %s", p.String(tk.Schema, tk.Domain))
			}
		}
		if tk.HasIntended() {
			if got := len(tk.Intended().Rules); got != len(tk.IntendedSrc) {
				t.Fatalf("intended rules: parsed %d of %d", got, len(tk.IntendedSrc))
			}
		}
	})
}
