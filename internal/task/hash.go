package task

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"github.com/egs-synthesis/egs/internal/relation"
)

// CanonicalHash returns a stable hex-encoded SHA-256 digest of the
// task's example semantics: relation declarations, input facts,
// labelled output tuples, and the labelling/negation directives
// (closed-world, negate, neq, typed-negation). Two tasks receive the
// same hash exactly when they describe the same synthesis problem —
// the digest is independent of declaration order, fact order,
// constant interning order, duplicate facts, the task's name and
// category metadata, and of whether Prepare has run (complement and
// neq tuples materialized by Prepare are excluded; the directives
// that regenerate them are hashed instead).
//
// The hash is the result-cache key of the synthesis server
// (internal/server) and is usable anywhere a semantic task identity
// is needed (deduplicating benchmark corpora, memoizing CLI runs).
//
// Mode declarations and the intended program are deliberately
// excluded: they parameterize the baseline synthesizers and the
// quality comparison, not the example itself.
func CanonicalHash(t *Task) string { return hashTask(t, true) }

// BaseHash digests the task's extensional part only: declarations,
// input facts, and the labelling/negation directives — everything
// CanonicalHash covers except the example labels (O+ and O-). Two
// tasks share a base hash exactly when they pose different questions
// over the same database, which is the key of the server's
// copy-on-write snapshot cache: a request whose base matches an
// already-prepared task can adopt that task's interned database
// (via Revise) instead of re-interning and re-indexing the facts.
func BaseHash(t *Task) string { return hashTask(t, false) }

func hashTask(t *Task, includeExamples bool) string {
	h := sha256.New()
	write := func(rec string) {
		h.Write([]byte(rec))
		h.Write([]byte{'\n'})
	}

	write(encodeRec("closed-world", strconv.FormatBool(t.ClosedWorld)))
	write(encodeRec("neq", strconv.FormatBool(t.AddNeq)))
	write(encodeRec("typed-negation", strconv.FormatBool(t.TypedNegation)))

	negate := append([]string(nil), t.NegateRels...)
	sort.Strings(negate)
	write(encodeRec(append([]string{"negate"}, negate...)...))

	synthetic := t.syntheticRels()
	for _, kind := range []relation.Kind{relation.Input, relation.Output} {
		tag := "input"
		if kind == relation.Output {
			tag = "output"
		}
		// Relations returns name-sorted ids, so declaration records
		// are already canonical.
		for _, id := range t.Schema.Relations(kind) {
			if synthetic[id] {
				continue
			}
			write(encodeRec(tag, t.Schema.Name(id), strconv.Itoa(t.Schema.Arity(id))))
		}
	}

	writeSorted := func(tag string, tuples []relation.Tuple) {
		recs := make([]string, 0, len(tuples))
		for _, tu := range tuples {
			if synthetic[tu.Rel] {
				continue
			}
			fields := make([]string, 0, 2+len(tu.Args))
			fields = append(fields, tag, t.Schema.Name(tu.Rel))
			for _, a := range tu.Args {
				fields = append(fields, t.Domain.Name(a))
			}
			recs = append(recs, encodeRec(fields...))
		}
		sort.Strings(recs)
		prev := ""
		for i, r := range recs {
			if i > 0 && r == prev {
				continue // duplicate facts are semantically idempotent
			}
			prev = r
			write(r)
		}
	}
	writeSorted("fact", t.Input.All())
	if includeExamples {
		writeSorted("+", t.Pos)
		writeSorted("-", t.Neg)
	}

	return hex.EncodeToString(h.Sum(nil))
}

// syntheticRels identifies the relations materialized by Prepare
// (not_R complements and neq), which must not contribute to the
// canonical hash: the negate/neq directives that regenerate them are
// hashed instead, so prepared and unprepared copies of a task agree.
func (t *Task) syntheticRels() map[relation.RelID]bool {
	synth := make(map[relation.RelID]bool)
	for _, name := range t.NegateRels {
		if id, ok := t.Schema.Lookup("not_" + name); ok {
			synth[id] = true
		}
	}
	if t.AddNeq {
		if id, ok := t.Schema.Lookup("neq"); ok {
			synth[id] = true
		}
	}
	return synth
}

// encodeRec renders one canonical record: each field is
// netstring-encoded (decimal length, ':', bytes) so the encoding is
// injective even when constant names contain separators.
func encodeRec(fields ...string) string {
	var b strings.Builder
	for _, f := range fields {
		b.WriteString(strconv.Itoa(len(f)))
		b.WriteByte(':')
		b.WriteString(f)
	}
	return b.String()
}
