package task

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

// TestWriteRoundTripSuite serializes every benchmark task and
// re-parses it, checking semantic equality: same declarations, same
// raw facts, same examples, same directives.
func TestWriteRoundTripSuite(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/benchmarks/*/*.task")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 86 {
		t.Fatalf("found %d task files, want 86", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			orig, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			if err := Write(&sb, orig); err != nil {
				t.Fatal(err)
			}
			back, err := Parse(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("re-parse failed: %v\n--- written ---\n%s", err, sb.String())
			}
			compareTasks(t, orig, back)
		})
	}
}

func compareTasks(t *testing.T, a, b *Task) {
	t.Helper()
	if a.Name != b.Name || a.Category != b.Category || a.ClosedWorld != b.ClosedWorld ||
		a.AddNeq != b.AddNeq || a.TypedNegation != b.TypedNegation || a.Expect != b.Expect {
		t.Error("metadata differs")
	}
	if a.RawInputCount != b.RawInputCount {
		t.Errorf("raw input count: %d vs %d", a.RawInputCount, b.RawInputCount)
	}
	if a.Input.Size() != b.Input.Size() {
		t.Errorf("prepared input size: %d vs %d", a.Input.Size(), b.Input.Size())
	}
	if len(a.Pos) != len(b.Pos) || len(a.Neg) != len(b.Neg) {
		t.Errorf("example sizes differ: %d/%d vs %d/%d", len(a.Pos), len(a.Neg), len(b.Pos), len(b.Neg))
	}
	// Tuple sets must match by name (ids may be assigned differently).
	aPos := renderSet(a, a.Pos)
	bPos := renderSet(b, b.Pos)
	for k := range aPos {
		if !bPos[k] {
			t.Errorf("positive %s lost in round trip", k)
		}
	}
	aRaw := renderRaw(a)
	bRaw := renderRaw(b)
	for k := range aRaw {
		if !bRaw[k] {
			t.Errorf("fact %s lost in round trip", k)
		}
	}
	if len(a.IntendedSrc) != len(b.IntendedSrc) {
		t.Errorf("intended rules: %d vs %d", len(a.IntendedSrc), len(b.IntendedSrc))
	}
	if (a.Modes == nil) != (b.Modes == nil) {
		t.Error("modes presence differs")
	} else if a.Modes != nil && a.Modes.MaxVars != b.Modes.MaxVars {
		t.Error("modes maxv differs")
	}
}

func renderSet(tk *Task, ts []relation.Tuple) map[string]bool {
	m := map[string]bool{}
	for _, tu := range ts {
		m[tu.String(tk.Schema, tk.Domain)] = true
	}
	return m
}

func renderRaw(tk *Task) map[string]bool {
	m := map[string]bool{}
	for i, tu := range tk.Input.All() {
		if i >= tk.RawInputCount {
			break
		}
		m[tu.String(tk.Schema, tk.Domain)] = true
	}
	return m
}

func TestQuoteConst(t *testing.T) {
	cases := map[string]string{
		"Broadway":  "Broadway",
		"Wall St":   `"Wall St"`,
		"n0":        "n0",
		"12":        "12",
		"3.5":       `"3.5"`,
		"9lives":    `"9lives"`,
		"":          `""`,
		`say "hi"`:  `"say \"hi\""`,
		"O'Hare":    "O'Hare",
		"with-dash": "with-dash",
		"-neg":      `"-neg"`,
	}
	for in, want := range cases {
		if got := quoteConst(in); got != want {
			t.Errorf("quoteConst(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteUnpreparedFails(t *testing.T) {
	tk := &Task{Name: "x"}
	var sb strings.Builder
	if err := Write(&sb, tk); err == nil {
		t.Error("Write on unprepared task succeeded")
	}
}
