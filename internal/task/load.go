package task

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"

	"github.com/egs-synthesis/egs/internal/parser"
	"github.com/egs-synthesis/egs/internal/relation"
)

// Load reads a task from a .task file and prepares it.
//
// The format is line-oriented; see DESIGN.md section 5. Directive
// lines begin with a keyword (task, domain, closed-world, negate,
// neq, features, input, output, expect, modes); fact lines are ground
// atoms terminated by '.', prefixed by '+' for positive and '-' for
// negative output examples.
func Load(path string) (*Task, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.Name == "" {
		t.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return t, nil
}

// Parse reads a task from r and prepares it.
func Parse(r io.Reader) (*Task, error) {
	t := &Task{
		Schema: relation.NewSchema(),
		Domain: relation.NewDomain(),
	}
	t.Input = relation.NewDatabase(t.Schema, t.Domain)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		stripped := stripComment(sc.Text())
		line := strings.TrimSpace(stripped)
		if line == "" {
			continue
		}
		// The column where the trimmed content starts in the raw line,
		// so parser errors report whole-file coordinates.
		start := strings.IndexFunc(stripped, func(r rune) bool { return !unicode.IsSpace(r) })
		pos := parser.Pos{Line: lineNo, Col: utf8.RuneCountInString(stripped[:start]) + 1}
		if err := t.parseLine(line, pos); err != nil {
			var serr *parser.SyntaxError
			if errors.As(err, &serr) {
				// Already carries a file-absolute position; a "line N:"
				// prefix would duplicate (or contradict) it.
				return nil, err
			}
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	return t, nil
}

func stripComment(line string) string {
	// '#' comments only; '//' inside quoted strings would be risky,
	// and task files use '#'.
	if i := strings.IndexByte(line, '#'); i >= 0 {
		return line[:i]
	}
	return line
}

func (t *Task) parseLine(line string, pos parser.Pos) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "task":
		if len(fields) != 2 {
			return fmt.Errorf("task directive needs exactly one name")
		}
		t.Name = fields[1]
		return nil
	case "domain":
		if len(fields) != 2 {
			return fmt.Errorf("domain directive needs exactly one category")
		}
		t.Category = fields[1]
		return nil
	case "closed-world":
		b, err := parseBool(fields)
		if err != nil {
			return err
		}
		t.ClosedWorld = b
		return nil
	case "neq":
		b, err := parseBool(fields)
		if err != nil {
			return err
		}
		t.AddNeq = b
		return nil
	case "typed-negation":
		b, err := parseBool(fields)
		if err != nil {
			return err
		}
		t.TypedNegation = b
		return nil
	case "negate":
		if len(fields) < 2 {
			return fmt.Errorf("negate directive needs at least one relation name")
		}
		t.NegateRels = append(t.NegateRels, fields[1:]...)
		return nil
	case "features":
		for _, f := range fields[1:] {
			switch f {
			case "disjunction":
				t.FeatureDisj = true
			case "negation":
				t.FeatureNeg = true
			default:
				return fmt.Errorf("unknown feature %q", f)
			}
		}
		return nil
	case "expect":
		if len(fields) != 2 {
			return fmt.Errorf("expect directive needs sat or unsat")
		}
		switch fields[1] {
		case "sat":
			t.Expect = ExpectSat
		case "unsat":
			t.Expect = ExpectUnsat
		default:
			return fmt.Errorf("expect directive needs sat or unsat, got %q", fields[1])
		}
		return nil
	case "input", "output":
		return t.parseDecl(fields)
	case "modes":
		return t.parseModes(fields[1:])
	case "intended":
		rest := strings.TrimSpace(strings.TrimPrefix(line, "intended"))
		if rest == "" {
			return fmt.Errorf("intended directive needs a rule")
		}
		t.IntendedSrc = append(t.IntendedSrc, rest)
		return nil
	}
	// Otherwise: a fact line, possibly prefixed with + or -.
	return t.parseFact(line, pos)
}

func parseBool(fields []string) (bool, error) {
	if len(fields) != 2 {
		return false, fmt.Errorf("%s directive needs true or false", fields[0])
	}
	switch fields[1] {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("%s directive needs true or false, got %q", fields[0], fields[1])
}

// parseDecl handles "input rel(arity)" and "output rel(arity)".
func (t *Task) parseDecl(fields []string) error {
	kind := relation.Input
	if fields[0] == "output" {
		kind = relation.Output
	}
	if len(fields) != 2 {
		return fmt.Errorf("%s directive needs one rel(arity)", fields[0])
	}
	spec := fields[1]
	open := strings.IndexByte(spec, '(')
	if open <= 0 || !strings.HasSuffix(spec, ")") {
		return fmt.Errorf("malformed declaration %q, want rel(arity)", spec)
	}
	name := spec[:open]
	arity, err := strconv.Atoi(spec[open+1 : len(spec)-1])
	if err != nil {
		return fmt.Errorf("malformed arity in %q: %v", spec, err)
	}
	_, err = t.Schema.Declare(name, arity, kind)
	return err
}

// parseModes handles "modes maxv=N rel=occ rel=occ ...".
func (t *Task) parseModes(fields []string) error {
	m := &ModeSpec{Occurrences: make(map[string]int)}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed mode %q, want key=value", f)
		}
		key, valStr := f[:eq], f[eq+1:]
		val, err := strconv.Atoi(valStr)
		if err != nil || val < 0 {
			return fmt.Errorf("malformed mode value in %q", f)
		}
		if key == "maxv" {
			m.MaxVars = val
		} else {
			m.Occurrences[key] = val
		}
	}
	if m.MaxVars <= 0 {
		return fmt.Errorf("modes directive needs maxv=N with N > 0")
	}
	t.Modes = m
	return nil
}

// parseFact handles input facts and +/- output example tuples. pos is
// the file position of the first character of line; positions in the
// returned errors are file-absolute.
func (t *Task) parseFact(line string, pos parser.Pos) error {
	sign := byte(0)
	if line[0] == '+' || line[0] == '-' {
		sign = line[0]
		rest := line[1:]
		// Advance pos past the sign and any whitespace before the atom.
		lead := strings.IndexFunc(rest, func(r rune) bool { return !unicode.IsSpace(r) })
		if lead < 0 {
			lead = len(rest)
		}
		pos.Col += 1 + utf8.RuneCountInString(rest[:lead])
		line = strings.TrimSpace(rest)
	}
	relName, args, err := parser.ParseGroundAtomAt(line, pos)
	if err != nil {
		return err
	}
	rel, ok := t.Schema.Lookup(relName)
	if !ok {
		return &parser.SyntaxError{Pos: pos, Msg: fmt.Sprintf("undeclared relation %q", relName)}
	}
	if got, want := len(args), t.Schema.Arity(rel); got != want {
		return &parser.SyntaxError{Pos: pos, Msg: fmt.Sprintf("relation %q has arity %d, fact has %d arguments", relName, want, got)}
	}
	consts := make([]relation.Const, len(args))
	for i, a := range args {
		consts[i] = t.Domain.Intern(a)
	}
	tuple := relation.Tuple{Rel: rel, Args: consts}
	info := t.Schema.Info(rel)
	switch sign {
	case 0:
		if info.Kind != relation.Input {
			return fmt.Errorf("fact over output relation %q must be signed with + or -", relName)
		}
		t.Input.Insert(tuple)
	case '+':
		if info.Kind != relation.Output {
			return fmt.Errorf("positive example over input relation %q", relName)
		}
		if err := t.recordExample(tuple, '+'); err != nil {
			return err
		}
		t.Pos = append(t.Pos, tuple)
	case '-':
		if info.Kind != relation.Output {
			return fmt.Errorf("negative example over input relation %q", relName)
		}
		if err := t.recordExample(tuple, '-'); err != nil {
			return err
		}
		t.Neg = append(t.Neg, tuple)
	}
	return nil
}

// recordExample tracks the labelled output tuples seen so far in this
// parse and rejects repeats: a duplicate label is almost always a
// task-authoring mistake (a mis-edited tuple), and silently
// deduplicating would mask it. Conflicting labels are rejected here
// too, with the same wording Prepare uses for programmatic tasks.
func (t *Task) recordExample(tuple relation.Tuple, sign byte) error {
	if t.seenExamples == nil {
		t.seenExamples = make(map[string]byte)
	}
	key := tuple.Key()
	prev, ok := t.seenExamples[key]
	if !ok {
		t.seenExamples[key] = sign
		return nil
	}
	rendered := tuple.String(t.Schema, t.Domain)
	if prev != sign {
		return fmt.Errorf("tuple %s labelled both positive and negative", rendered)
	}
	if sign == '+' {
		return fmt.Errorf("duplicate positive example %s", rendered)
	}
	return fmt.Errorf("duplicate negative example %s", rendered)
}

// LoadDir loads every .task file under dir (recursively), sorted by
// task name for determinism.
func LoadDir(dir string) ([]*Task, error) {
	var paths []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".task") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	tasks := make([]*Task, 0, len(paths))
	for _, p := range paths {
		t, err := Load(p)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].Name < tasks[j].Name })
	return tasks, nil
}
