// Package detorder exercises the detorder analyzer: map iteration
// order must not reach the queue, rendered output, or returned slices
// without a sort.
package detorder

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

type item struct{ key string }

type queue struct{ items []item }

func (q *queue) push(it item) { q.items = append(q.items, it) }

type Heap struct{ items []item }

func (h *Heap) Push(it item) { h.items = append(h.items, it) }

// pushUnsorted feeds the worklist straight from a map range — the
// canonical determinism bug.
func pushUnsorted(q *queue, m map[string]item) {
	for _, it := range m {
		q.push(it) // want `push called inside range over map`
	}
}

func pushExported(h *Heap, m map[string]item) {
	for _, it := range m {
		h.Push(it) // want `Push called inside range over map`
	}
}

func sendUnsorted(ch chan<- item, m map[string]item) {
	for _, it := range m {
		ch <- it // want `channel send inside range over map`
	}
}

func renderBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `write to Builder.WriteString inside range over map`
	}
	return b.String()
}

func renderBuffer(m map[string]int) string {
	var b bytes.Buffer
	for k := range m {
		b.WriteString(k) // want `write to Buffer.WriteString inside range over map`
	}
	return b.String()
}

func renderFprintf(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside range over map`
	}
}

// leakUnsorted accumulates map keys and returns them without sorting.
func leakUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order leaks into slice "keys"`
	}
	return keys
}

// sortedKeys is the blessed idiom: accumulate, then sort. No finding.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pushFromSlice ranges over a slice, not a map: order is already
// deterministic. No finding.
func pushFromSlice(q *queue, items []item) {
	for _, it := range items {
		q.push(it)
	}
}

// innerScoped appends to a slice declared inside the loop body; it
// cannot accumulate across iterations. No finding.
func innerScoped(m map[string][]int, sink func([]int)) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		sink(doubled)
	}
}

// session mirrors an incremental-session store: labelled examples
// keyed by tuple. Replaying deltas straight from the map would make
// the rebuilt label order depend on map iteration.
type session struct {
	labels map[string]item
	pos    []item
}

// replayLabels is the session-shaped determinism bug: label order
// drives rule learning, so it must never come from a map range.
func (s *session) replayLabels() {
	for _, it := range s.labels {
		s.pos = append(s.pos, it) // want `map iteration order leaks into slice "s.pos"`
	}
}

// replaySorted is the blessed session idiom: collect, sort by key,
// then replay. No finding.
func (s *session) replaySorted() {
	var keys []string
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.pos = append(s.pos, s.labels[k])
	}
}
