// Package detorder flags Go map iteration whose order can leak into
// synthesizer-visible state: the priority queue, emitted tuples,
// canonical keys, or returned slices.
//
// The EGS search promises bit-identical results regardless of
// AssessParallelism (DESIGN.md §9); that guarantee dies the moment a
// `range` over a map feeds the worklist or any rendered output
// without an intervening sort. detorder encodes the rule "map order
// never escapes": inside a map-range body it flags
//
//   - calls to Push/push methods and to container/heap.Push (queue
//     feeds),
//   - channel sends (downstream ordering),
//   - direct writes into strings.Builder/bytes.Buffer or fmt.Fprint*
//     (canonical keys and printed output),
//   - appends to a slice — a variable declared outside the loop, or a
//     field of one (s.pos = append(s.pos, ...)) — that is not
//     subsequently passed to a sort.* / slices.* call in the same
//     function (returned or retained slices).
//
// Known false negatives (see DESIGN.md §10): the "sorted afterwards"
// check is lexical within one function — a slice sorted by a callee,
// or sorted on one path only, is accepted; sinks reached through
// helper calls inside the loop body are not traced.
package detorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
)

// Analyzer flags map iteration that feeds order-sensitive sinks.
var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc: "flag range-over-map whose iteration order can reach the priority queue, " +
		"emitted tuples, canonical keys, or returned slices without a sort",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Funcs(func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		if pass.IsTestFile(body.Pos()) {
			return
		}
		checkFunc(pass, body)
	})
	return nil, nil
}

// checkFunc examines one function body. Range statements belonging to
// nested function literals are skipped here; Funcs visits those
// bodies separately.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

// appendSite remembers one escaping accumulation: where the append
// happened and how the target reads in source ("keys", "s.pos").
type appendSite struct {
	pos  token.Pos
	name string
}

func checkMapRange(pass *analysis.Pass, fn *ast.BlockStmt, rng *ast.RangeStmt) {
	// appended maps slice variables and fields (rooted outside the
	// loop) that receive map-ordered elements, to their first append.
	appended := map[types.Object]appendSite{}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside range over map: iteration order is nondeterministic; collect and sort keys first")
		case *ast.CallExpr:
			checkCallSink(pass, n)
		case *ast.AssignStmt:
			recordAppend(pass, rng, n, appended)
		}
		return true
	})

	for obj, site := range appended {
		if !sortedAfter(pass, fn, obj, site.pos) {
			pass.Reportf(site.pos, "map iteration order leaks into slice %q, which is never sorted in this function; sort it (or iterate sorted keys) before it feeds the queue, output, or a return value", site.name)
		}
	}
}

// checkCallSink reports calls inside a map-range body that consume
// values in iteration order.
func checkCallSink(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	// Queue feeds: any Push/push method, including container/heap.Push
	// and this repo's ctxQueue.push.
	if name == "Push" || name == "push" {
		pass.Reportf(call.Pos(), "%s called inside range over map: queue order becomes nondeterministic; stage candidates and sort (or sort the keys) first", name)
		return
	}
	// Rendered output: strings.Builder / bytes.Buffer writes and
	// fmt.Fprint* produce strings in iteration order — the canonical-key
	// and printed-output hazard.
	if recv := pass.TypeOf(sel.X); recv != nil && isWriteMethod(name) {
		if named := namedOrPtr(recv); named != nil {
			obj := named.Obj()
			if obj.Pkg() != nil {
				pkg, typ := obj.Pkg().Path(), obj.Name()
				if (pkg == "strings" && typ == "Builder") || (pkg == "bytes" && typ == "Buffer") {
					pass.Reportf(call.Pos(), "write to %s.%s inside range over map renders in nondeterministic order; sort the keys first", typ, name)
					return
				}
			}
		}
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && isFprint(name) {
		if obj := pass.ObjectOf(id); obj == nil || isPkg(obj, "fmt") {
			pass.Reportf(call.Pos(), "fmt.%s inside range over map renders in nondeterministic order; sort the keys first", name)
		}
	}
}

func isWriteMethod(name string) bool {
	switch name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
		return true
	}
	return false
}

func isFprint(name string) bool {
	switch name {
	case "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// recordAppend notes `x = append(x, ...)` and `r.f = append(r.f, ...)`
// inside the loop where the accumulation target is rooted outside the
// loop (an escaping accumulation).
func recordAppend(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, appended map[types.Object]appendSite) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		var obj types.Object
		var name string
		switch lhs := as.Lhs[i].(type) {
		case *ast.Ident:
			obj = pass.ObjectOf(lhs)
			name = lhs.Name
		case *ast.SelectorExpr:
			// Field accumulation (s.pos = append(s.pos, ...)): track the
			// field object, but only when the base is a plain identifier
			// rooted outside the loop — a struct built per iteration
			// cannot accumulate across iterations.
			base, ok := lhs.X.(*ast.Ident)
			if !ok {
				continue
			}
			baseObj := pass.ObjectOf(base)
			if baseObj == nil || (baseObj.Pos() >= rng.Body.Pos() && baseObj.Pos() <= rng.Body.End()) {
				continue
			}
			obj = pass.ObjectOf(lhs.Sel)
			name = base.Name + "." + lhs.Sel.Name
		default:
			continue
		}
		if obj == nil {
			continue
		}
		// Declared inside the loop body: the slice cannot outlive one
		// iteration, so its internal order is single-element noise.
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if _, seen := appended[obj]; !seen {
			appended[obj] = appendSite{pos: as.Pos(), name: name}
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// sortedAfter reports whether obj appears as an argument to a sort.*
// or slices.* call positioned after pos in the function body — the
// idiom `for k := range m { keys = append(keys, k) }; sort.Strings(keys)`.
func sortedAfter(pass *analysis.Pass, fn *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if o := pass.ObjectOf(pkgID); !isPkg(o, "sort") && !isPkg(o, "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isPkg(o types.Object, path string) bool {
	pn, ok := o.(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

func namedOrPtr(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
