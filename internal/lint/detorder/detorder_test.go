package detorder_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/detorder"
)

func TestDetOrder(t *testing.T) {
	analysistest.Run(t, detorder.Analyzer, "detorder")
}
