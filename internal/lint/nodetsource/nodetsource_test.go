package nodetsource_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/nodetsource"
)

func TestNoDetSource(t *testing.T) {
	analysistest.Run(t, nodetsource.Analyzer, "nodetsource")
}
