// Package nodetsource exercises the nodetsource analyzer: no
// wall-clock reads, no math/rand, no map-typed fmt arguments.
package nodetsource

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// stampNow reads the wall clock, making results depend on when the
// search ran.
func stampNow() time.Time {
	return time.Now() // want `time.Now in a deterministic synthesis package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in a deterministic synthesis package`
}

func deadlineIn(t time.Time) time.Duration {
	return time.Until(t) // want `time.Until in a deterministic synthesis package`
}

func pickRandom(n int) int {
	return rand.Intn(n) // want `math/rand.Intn in a deterministic synthesis package`
}

func printMap(m map[string]int) string {
	return fmt.Sprintf("%v", m) // want `map passed to fmt.Sprintf`
}

func logMap(m map[string]int) {
	fmt.Println(m) // want `map passed to fmt.Println`
}

// durationMath uses time only for arithmetic on values the caller
// supplies: pure. No finding.
func durationMath(d time.Duration) time.Duration {
	return 2 * d
}

// printSorted renders map content through sorted keys, the blessed
// idiom. No finding.
func printSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s=%d;", k, m[k])
	}
	return out
}

// formatScalar prints plain values. No finding.
func formatScalar(n int) string {
	return fmt.Sprintf("n=%d", n)
}
