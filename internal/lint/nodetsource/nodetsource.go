// Package nodetsource forbids sources of nondeterminism in the core
// synthesis packages.
//
// The EGS search result must be a pure function of the task and the
// configuration (DESIGN.md §9): wall-clock time, random numbers, and
// Go's randomized map formatting all break replayability and the
// bit-identical-across-parallelism guarantee. Three rules:
//
//   - no calls to time.Now, time.Since, or time.Until,
//   - no use of math/rand or math/rand/v2 (any call through either),
//   - no fmt print/append call given a map-typed argument (fmt sorts
//     map keys since Go 1.12, but only for printed maps at the top
//     level — and a map fed to %v inside a struct renders addresses
//     of reference types nondeterministically; keep maps out of
//     rendered output entirely).
//
// Scoping to the core packages (internal/egs, internal/eval, ...)
// and the exemption for cmd/, internal/server, and tests lives in the
// egslint suite (internal/lint/suite.go), not here: run unscoped,
// the analyzer flags every occurrence.
package nodetsource

import (
	"go/ast"
	"go/types"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
)

// Analyzer forbids nondeterminism sources in core synthesis code.
var Analyzer = &analysis.Analyzer{
	Name: "nodetsource",
	Doc: "forbid time.Now/Since/Until, math/rand, and map-typed fmt arguments " +
		"in deterministic synthesis packages",
	Run: run,
}

var timeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var fmtRenderFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Funcs(func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		if pass.IsTestFile(body.Pos()) {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch path := obj.Pkg().Path(); path {
	case "time":
		if timeFuncs[obj.Name()] {
			pass.Reportf(call.Pos(), "time.%s in a deterministic synthesis package: results must be a pure function of the task; plumb timing through the caller or suppress with a reason", obj.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(), "%s.%s in a deterministic synthesis package: randomness breaks replayable search; derive choices from task content instead", path, obj.Name())
	case "fmt":
		if !fmtRenderFuncs[obj.Name()] {
			return
		}
		for _, arg := range call.Args {
			t := pass.TypeOf(arg)
			if t == nil {
				continue
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(arg.Pos(), "map passed to fmt.%s: rendered key order is a nondeterminism hazard; print sorted keys explicitly", obj.Name())
			}
		}
	}
}
