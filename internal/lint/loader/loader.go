// Package loader loads and type-checks packages of the enclosing
// module for static analysis, using only the standard library and the
// go toolchain.
//
// The x/tools go/packages loader is unavailable in this build
// environment (no module proxy), so this loader reconstructs the part
// egslint needs: it shells out to `go list -export -json -deps` to
// obtain, for every dependency, the path of its compiled export data
// in the build cache, then type-checks the target packages' sources
// with go/types, resolving imports through
// importer.ForCompiler(fset, "gc", lookup). Dependencies are never
// re-parsed — they are imported from export data exactly as the
// compiler would — so loading the whole module takes well under a
// second warm.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// ListedPackage mirrors the subset of `go list -json` output the
// loader consumes.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// FindModuleRoot walks upward from dir to the nearest directory
// containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("loader: no go.mod found above " + dir)
		}
		dir = parent
	}
}

// GoList runs `go list -export -json -deps` on the given patterns in
// moduleDir and returns every listed package. Export data is forced
// for all dependencies, so the result doubles as an import resolver.
func GoList(moduleDir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list: %v: %s", err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(ListedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns (relative to
// moduleDir, e.g. "./...") and returns them with full syntax and type
// information. Test files are not included: the egslint invariants
// bind production code, and `go vet -vettool` covers test variants
// separately.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*ListedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// ExportImporter returns a go/types importer that resolves import
// paths through a map from import path to compiled export data file
// (as produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return ImporterWithLookup(fset, func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ImporterWithLookup returns a gc-export-data importer driven by an
// arbitrary lookup function (used by the vettool protocol, where the
// export file map comes from go vet's .cfg unit description).
func ImporterWithLookup(fset *token.FileSet, lookup func(path string) (io.ReadCloser, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", lookup)
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}
