package lint

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/checker"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

// TestRepoIsLintClean runs the full egslint suite over the repository
// exactly as cmd/egslint does and requires zero unsuppressed
// findings. Any suppressed findings must carry a reason (guaranteed
// by the directive grammar), and are listed for visibility.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := checker.Run(pkgs, Suite(), Applies)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range checker.Unsuppressed(findings) {
		t.Errorf("unsuppressed finding: %s", f)
	}
	for _, f := range checker.Suppressed(findings) {
		t.Logf("suppressed (%s): %s", f.Reason, f)
	}
}

func TestApplies(t *testing.T) {
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"detorder", "github.com/egs-synthesis/egs/internal/egs", true},
		{"detorder", "github.com/egs-synthesis/egs/internal/cograph", true},
		{"detorder", "github.com/egs-synthesis/egs/internal/server", false},
		{"nodetsource", "github.com/egs-synthesis/egs/internal/eval", true},
		{"nodetsource", "github.com/egs-synthesis/egs/internal/server", false},
		{"nodetsource", "github.com/egs-synthesis/egs/cmd/egs", false},
		{"tuplealias", "github.com/egs-synthesis/egs/internal/server", true},
		{"poolrelease", "github.com/egs-synthesis/egs/cmd/egs", true},
		// The lint tree itself is exempt: fixtures violate the rules on
		// purpose.
		{"detorder", "github.com/egs-synthesis/egs/internal/lint/detorder", false},
		{"poolrelease", "github.com/egs-synthesis/egs/internal/lint", false},
		// No analyzer matches path fragments inside identifiers.
		{"poolrelease", "example.com/internal/linting", true},
		{"unknown", "github.com/egs-synthesis/egs/internal/egs", false},
	}
	for _, c := range cases {
		if got := Applies(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestSuiteNamesMatchScopes(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc, or Run", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if _, ok := scopes[a.Name]; !ok {
			t.Errorf("analyzer %q has no scope entry", a.Name)
		}
		if strings.ContainsAny(a.Name, " /") {
			t.Errorf("analyzer name %q must be a bare identifier (used in egslint/<name> directives)", a.Name)
		}
	}
	for name := range scopes {
		if !names[name] {
			t.Errorf("scope entry %q has no analyzer", name)
		}
	}
}
