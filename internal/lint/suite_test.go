package lint

import (
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/lint/checker"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

// analysisBudget bounds the pure analysis phase (checker.RunAll over
// the already-loaded module, all analyzers including the CFG/dataflow
// passes). The bound is deliberately loose — an order of magnitude
// above the observed time — so it only trips if a dataflow fixpoint
// regresses to something pathological, not on a slow CI machine.
// scripts/lint.sh enforces a wall-clock bound on the whole binary
// (load + analysis) separately via EGSLINT_BUDGET_SECS.
const analysisBudget = 30 * time.Second

// TestRepoIsLintClean runs the full egslint suite over the repository
// exactly as cmd/egslint does and requires zero unsuppressed
// findings, zero stale //lint:ignore directives, and an analysis
// phase inside its runtime budget. Any suppressed findings must carry
// a reason (guaranteed by the directive grammar), and are listed for
// visibility.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := loader.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	findings, directives, err := checker.RunAll(pkgs, Suite(), Applies)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range checker.Unsuppressed(findings) {
		t.Errorf("unsuppressed finding: %s", f)
	}
	for _, f := range checker.Suppressed(findings) {
		t.Logf("suppressed (%s): %s", f.Reason, f)
	}
	for _, d := range checker.Stale(directives) {
		t.Errorf("stale //lint:ignore at %s:%d (no matching diagnostic): %s", d.File, d.Line, d.Reason)
	}
	t.Logf("analysis phase: %v over %d packages", elapsed, len(pkgs))
	if elapsed > analysisBudget {
		t.Errorf("analysis took %v, over the %v budget: a flow-sensitive pass has regressed", elapsed, analysisBudget)
	}
}

func TestApplies(t *testing.T) {
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"detorder", "github.com/egs-synthesis/egs/internal/egs", true},
		{"detorder", "github.com/egs-synthesis/egs/internal/cograph", true},
		{"detorder", "github.com/egs-synthesis/egs/internal/server", false},
		{"nodetsource", "github.com/egs-synthesis/egs/internal/eval", true},
		{"nodetsource", "github.com/egs-synthesis/egs/internal/server", false},
		{"nodetsource", "github.com/egs-synthesis/egs/cmd/egs", false},
		{"tuplealias", "github.com/egs-synthesis/egs/internal/server", true},
		{"poolrelease", "github.com/egs-synthesis/egs/cmd/egs", true},
		// The concurrency analyzers police the serving tier only: the
		// synthesis core is single-threaded by design.
		{"ctxflow", "github.com/egs-synthesis/egs/internal/server", true},
		{"ctxflow", "github.com/egs-synthesis/egs/internal/server/metrics", true},
		{"ctxflow", "github.com/egs-synthesis/egs/internal/router", true},
		{"ctxflow", "github.com/egs-synthesis/egs/internal/session", true},
		{"ctxflow", "github.com/egs-synthesis/egs/internal/load", false},
		{"ctxflow", "github.com/egs-synthesis/egs/internal/egs", false},
		{"lockscope", "github.com/egs-synthesis/egs/internal/server", true},
		{"lockscope", "github.com/egs-synthesis/egs/internal/load", true},
		{"lockscope", "github.com/egs-synthesis/egs/internal/eval", false},
		{"goroleak", "github.com/egs-synthesis/egs/internal/router", true},
		{"goroleak", "github.com/egs-synthesis/egs/internal/load", true},
		{"goroleak", "github.com/egs-synthesis/egs/cmd/egs", false},
		// The lint tree itself is exempt: fixtures violate the rules on
		// purpose.
		{"detorder", "github.com/egs-synthesis/egs/internal/lint/detorder", false},
		{"poolrelease", "github.com/egs-synthesis/egs/internal/lint", false},
		// No analyzer matches path fragments inside identifiers.
		{"poolrelease", "example.com/internal/linting", true},
		{"unknown", "github.com/egs-synthesis/egs/internal/egs", false},
	}
	for _, c := range cases {
		if got := Applies(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}

func TestSuiteNamesMatchScopes(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Suite() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing Name, Doc, or Run", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if _, ok := scopes[a.Name]; !ok {
			t.Errorf("analyzer %q has no scope entry", a.Name)
		}
		if strings.ContainsAny(a.Name, " /") {
			t.Errorf("analyzer name %q must be a bare identifier (used in egslint/<name> directives)", a.Name)
		}
	}
	for name := range scopes {
		if !names[name] {
			t.Errorf("scope entry %q has no analyzer", name)
		}
	}
}
