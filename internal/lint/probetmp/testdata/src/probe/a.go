package probe

import (
	"context"
	"sync"
	"time"
)

type S struct{ mu sync.Mutex }

// defer via closure: does the unlock discharge?
func (s *S) deferClosure() {
	s.mu.Lock()
	defer func() { s.mu.Unlock() }()
}

// blocking call inside a switch case EXPRESSION under a held lock
func (s *S) caseExpr(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case len(ch) > 0 && sleepTrue():
		return 1
	}
	return 0
}

func sleepTrue() bool { time.Sleep(time.Second); return true }

// cancel used only inside a case expression of a switch
func caseExprCancel(ctx context.Context, f func(context.CancelFunc) bool) {
	ctx2, cancel := context.WithCancel(ctx)
	_ = ctx2
	switch {
	case f(cancel):
	}
}
