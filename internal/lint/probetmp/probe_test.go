package probetmp

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/ctxflow"
	"github.com/egs-synthesis/egs/internal/lint/lockscope"
)

func TestProbeLockscope(t *testing.T) { analysistest.Run(t, lockscope.Analyzer, "probe") }
func TestProbeCtxflow(t *testing.T)  { analysistest.Run(t, ctxflow.Analyzer, "probe") }
