package ctxflow_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "ctxflow")
}
