// Regression fixture: the near-miss shape next door to
// internal/server/singleflight.go. The real flightGroup.join hands its
// cancel func to the flight struct (an ownership escape, clean); this
// variant adds a capacity check AFTER minting the context, and the
// rejection path returns without cancelling — the bug one refactor
// away from the real code, which the flow-sensitive pass must catch.
package ctxflow

import (
	"context"
	"sync"
	"time"
)

type leakyFlight struct {
	done   chan struct{}
	cancel context.CancelFunc
}

type leakyGroup struct {
	mu sync.Mutex
	m  map[string]*leakyFlight
}

func (g *leakyGroup) join(key string, timeout time.Duration) (*leakyFlight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f := g.m[key]; f != nil {
		return f, false
	}
	fctx, cancel := context.WithTimeout(context.Background(), timeout) // want `context\.Background\(\) on a serving path` `cancel/stop func cancel from context\.WithTimeout may not be called on all return paths`
	if len(g.m) >= 128 {
		// Rejected for capacity — but fctx's timer is already running
		// and nothing will ever stop it.
		return nil, false
	}
	f := &leakyFlight{done: make(chan struct{}), cancel: cancel}
	g.m[key] = f
	_ = fctx
	return f, true
}
