// Fixture for the ctxflow analyzer: root-context minting and
// cancel-on-all-paths shapes.
package ctxflow

import (
	"context"
	"time"
)

func mintsRoots() {
	_ = context.Background() // want `context\.Background\(\) on a serving path`
	_ = context.TODO()       // want `context\.TODO\(\) on a serving path`
}

// deferCancel is the blessed shape: the defer discharges the cancel on
// every path, including the early return.
func deferCancel(ctx context.Context, fast bool) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if fast {
		return nil
	}
	return work(ctx)
}

// earlyReturnLeaks forgets the cancel on the fast path.
func earlyReturnLeaks(ctx context.Context, fast bool) error {
	ctx, cancel := context.WithCancel(ctx) // want `cancel/stop func cancel from context\.WithCancel may not be called on all return paths`
	if fast {
		return nil
	}
	err := work(ctx)
	cancel()
	return err
}

// bothBranchesCancel releases on every path without a defer; flow
// analysis must not flag it.
func bothBranchesCancel(ctx context.Context, fast bool) error {
	ctx, cancel := context.WithCancel(ctx)
	if fast {
		cancel()
		return nil
	}
	err := work(ctx)
	cancel()
	return err
}

// panicPathOwesNothing: the error path dies, so only the success path
// owes the cancel, and it pays.
func panicPathOwesNothing(ctx context.Context, bad bool) {
	ctx, cancel := context.WithCancel(ctx)
	if bad {
		panic("bad")
	}
	_ = work(ctx)
	cancel()
}

// escapeTransfersOwnership: storing the cancel func hands
// responsibility to the struct's owner; the analyzer must stop
// tracking it.
type holder struct{ stop context.CancelFunc }

func escapeTransfersOwnership(ctx context.Context) *holder {
	_, cancel := context.WithCancel(ctx)
	return &holder{stop: cancel}
}

// closureCaptureTransfers: a goroutine capturing the cancel func also
// counts as an escape.
func closureCaptureTransfers(ctx context.Context, done chan struct{}) {
	_, cancel := context.WithCancel(ctx)
	go func() {
		<-done
		cancel()
	}()
}

// discarded cancel funcs report at the creation site.
func discards(ctx context.Context) context.Context {
	c, _ := context.WithCancel(ctx) // want `cancel/stop func returned by context\.WithCancel is discarded`
	context.AfterFunc(ctx, noop)    // want `result of context\.AfterFunc is discarded`
	return c
}

// afterFuncStopped uses the stop func, so it is clean.
func afterFuncStopped(ctx context.Context) {
	stop := context.AfterFunc(ctx, noop)
	defer stop()
	_ = work(ctx)
}

func work(ctx context.Context) error { return ctx.Err() }
func noop()                          {}
