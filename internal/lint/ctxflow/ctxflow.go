// Package ctxflow enforces context discipline on the serving tier.
//
// Two invariants, both motivated by the refcounted flight-context
// pattern in internal/server/singleflight.go:
//
//  1. No context.Background() or context.TODO() on a request path. A
//     serving-tier function that mints a root context detaches its work
//     from request cancellation and server shutdown; it must derive
//     from the ctx it was handed. (The one blessed detachment — a
//     singleflight flight that outlives its first caller — carries a
//     //lint:ignore with its reason.)
//
//  2. Every cancel/stop function returned by context.WithCancel,
//     WithTimeout, WithDeadline, WithCancelCause, or AfterFunc must be
//     used on every path to return: called, deferred, stored, passed
//     along, or captured by a closure. Discarding one (assigning to _,
//     or dropping an AfterFunc result on the floor) is reported at the
//     creation site; missing it on just one early-return path is found
//     by forward dataflow over the function's CFG.
//
// "Used" is deliberately weaker than "called": once the cancel func
// escapes — stored in a struct, handed to another function, captured
// by a goroutine — responsibility has been transferred and this
// analyzer stops tracking it. That trades a little soundness for zero
// false positives on the ownership-transfer patterns the serving tier
// actually uses; the flow-sensitive part exists to catch the common
// real bug, an early return between creation and the defer.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
	"github.com/egs-synthesis/egs/internal/lint/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "serving-tier context discipline: no context.Background()/TODO() on request paths, " +
		"and every cancel/stop func from context.WithCancel/WithTimeout/WithDeadline/WithCancelCause/AfterFunc " +
		"must be called (or escape) on all return paths",
	Run: run,
}

// cancelReturning maps the context constructors we track to the index
// of the cancel/stop func in their result list.
var cancelReturning = map[string]int{
	"WithCancel":      1,
	"WithTimeout":     1,
	"WithDeadline":    1,
	"WithCancelCause": 1,
	"AfterFunc":       0,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := contextCall(pass, call); ok && (name == "Background" || name == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() on a serving path: derive the context from the request or session instead", name)
				}
			}
			return true
		})
	}
	pass.Funcs(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if pass.IsTestFile(body.Pos()) {
			return
		}
		checkCancelPaths(pass, body)
	})
	return nil, nil
}

// obligation is one tracked cancel/stop func within a function body.
type obligation struct {
	bit      uint64
	obj      types.Object // the variable holding the cancel func
	def      *ast.Ident   // its identifier at the creation site (not a use)
	creation ast.Node     // the assignment statement
	ctor     string       // "context.WithCancel" etc., for the message
	pos      token.Pos
}

func checkCancelPaths(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect obligations lexically first so bits are stable. Nested
	// function literals are skipped: Pass.Funcs visits their bodies
	// separately, and a WithCancel inside a closure owes its cancel on
	// the closure's paths, not ours.
	var obs []*obligation
	byObj := map[types.Object]*obligation{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := contextCall(pass, call); ok {
					if _, tracked := cancelReturning[name]; tracked {
						pass.Reportf(call.Pos(), "result of context.%s is discarded; its cancel/stop func must be called to release the context's resources", name)
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := contextCall(pass, call)
			if !ok {
				return true
			}
			idx, tracked := cancelReturning[name]
			if !tracked || idx >= len(n.Lhs) {
				return true
			}
			id, ok := n.Lhs[idx].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(id.Pos(), "cancel/stop func returned by context.%s is discarded; it must be called on every path", name)
				return true
			}
			obj := pass.ObjectOf(id)
			if obj == nil || len(obs) >= 64 {
				return true
			}
			if prev, ok := byObj[obj]; ok {
				// The same variable re-bound (e.g. in a loop): reuse its
				// bit; the creation set below fires at both sites.
				obs = append(obs, &obligation{bit: prev.bit, obj: obj, def: id, creation: n, ctor: "context." + name, pos: call.Pos()})
				return true
			}
			ob := &obligation{bit: 1 << uint(len(byObj)), obj: obj, def: id, creation: n, ctor: "context." + name, pos: call.Pos()}
			byObj[obj] = ob
			obs = append(obs, ob)
		}
		return true
	})
	if len(obs) == 0 {
		return
	}

	creations := map[ast.Node]uint64{}
	defs := map[*ast.Ident]bool{}
	for _, ob := range obs {
		creations[ob.creation] |= ob.bit
		defs[ob.def] = true
	}

	g := cfg.Build(body)
	transfer := func(n cfg.Node, s uint64) uint64 {
		// Closures are descended into here: a closure capturing the
		// cancel func counts as the responsibility escaping to it.
		cfg.InspectNodeClosures(n, func(x ast.Node) bool {
			id, ok := x.(*ast.Ident)
			if !ok || defs[id] {
				return true
			}
			if ob, tracked := byObj[pass.ObjectOf(id)]; tracked {
				s &^= ob.bit
			}
			return true
		})
		if bits, ok := creations[n.Syntax]; ok {
			s |= bits
		}
		return s
	}
	join := func(a, b uint64) uint64 { return a | b }
	in := cfg.Solve(g, 0, transfer, join)
	leaked := cfg.ExitState(g, in, transfer, join)
	reported := uint64(0)
	for _, ob := range obs {
		if leaked&ob.bit != 0 && reported&ob.bit == 0 {
			reported |= ob.bit
			pass.Reportf(ob.pos, "cancel/stop func %s from %s may not be called on all return paths (add defer %s())", ob.obj.Name(), ob.ctor, ob.obj.Name())
		}
	}
}

// contextCall reports whether call invokes a function from the
// standard context package, returning its name.
func contextCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	// Exclude methods (e.g. ctx.Done): only package-level functions.
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}
