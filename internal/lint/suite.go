// Package lint defines the egslint suite: which analyzers exist and
// which packages each one polices. Scoping lives here, in the driver,
// rather than in the analyzers themselves, so analysistest can run
// each analyzer unscoped over its annotated fixtures.
package lint

import (
	"strings"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
	"github.com/egs-synthesis/egs/internal/lint/ctxflow"
	"github.com/egs-synthesis/egs/internal/lint/detorder"
	"github.com/egs-synthesis/egs/internal/lint/goroleak"
	"github.com/egs-synthesis/egs/internal/lint/lockscope"
	"github.com/egs-synthesis/egs/internal/lint/nodetsource"
	"github.com/egs-synthesis/egs/internal/lint/poolrelease"
	"github.com/egs-synthesis/egs/internal/lint/tuplealias"
)

// Suite returns the egslint analyzers in deterministic order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		detorder.Analyzer,
		goroleak.Analyzer,
		lockscope.Analyzer,
		nodetsource.Analyzer,
		poolrelease.Analyzer,
		tuplealias.Analyzer,
	}
}

// scopes maps each analyzer to the package path suffixes it polices.
// Suffix matching keeps the table valid if the module is ever
// vendored or renamed. A nil entry means the analyzer runs everywhere
// except its exemptions.
var scopes = map[string][]string{
	// Determinism of iteration order matters where map order could
	// reach the queue, canonical keys, or rendered queries.
	// internal/session revises tasks and owns the cross-revision memo,
	// so a ranged map there could reorder labels or deltas.
	// internal/prosynth drives a CEGIS loop whose clause order shapes
	// the SAT search, so map order must not reach clause emission.
	"detorder": {
		"internal/egs", "internal/eval", "internal/query", "internal/cograph",
		"internal/session", "internal/prosynth",
	},
	// Wall-clock and randomness are banned from the synthesis core and
	// the data structures it renders. internal/session is in: session
	// TTLs belong to the HTTP layer, and revisions must re-synthesize
	// identically regardless of when a delta arrived. cmd/,
	// internal/server, and benches legitimately report timings, so
	// they are out of scope.
	"nodetsource": {
		"internal/egs", "internal/eval", "internal/query", "internal/cograph",
		"internal/relation", "internal/task", "internal/session",
		"internal/prosynth",
	},
	// Everywhere except internal/relation itself (the analyzer skips
	// the owning package) and the lint tree (fixtures deliberately
	// violate the rules).
	"tuplealias":  nil,
	"poolrelease": nil,
	// The flow-sensitive concurrency analyzers police the serving tier:
	// the HTTP server (sessions, singleflight, snapshot cache, worker
	// pool), its metrics registry, the scale-out router, and the load
	// harness. The synthesis core is single-threaded by design and the
	// deterministic analyzers above already keep it that way.
	"ctxflow": {
		"internal/server", "internal/server/metrics", "internal/router",
		"internal/session",
	},
	"lockscope": {
		"internal/server", "internal/server/metrics", "internal/router",
		"internal/session", "internal/load",
	},
	"goroleak": {
		"internal/server", "internal/server/metrics", "internal/router",
		"internal/session", "internal/load",
	},
}

// exemptEverywhere are package path fragments no analyzer polices:
// the lint implementation itself (its testdata deliberately violates
// every rule it checks).
var exemptEverywhere = []string{"internal/lint"}

// Applies reports whether analyzer name runs on the package with the
// given import path. It is the `applies` callback for checker.Run.
func Applies(name, importPath string) bool {
	for _, frag := range exemptEverywhere {
		if pathHasFragment(importPath, frag) {
			return false
		}
	}
	suffixes, known := scopes[name]
	if !known {
		return false
	}
	if suffixes == nil {
		return true
	}
	for _, s := range suffixes {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// pathHasFragment reports whether frag occurs in importPath on path
// element boundaries ("internal/lint" matches ".../internal/lint" and
// ".../internal/lint/checker" but not ".../internal/linting").
func pathHasFragment(importPath, frag string) bool {
	idx := strings.Index(importPath, frag)
	if idx < 0 {
		return false
	}
	if idx > 0 && importPath[idx-1] != '/' {
		return false
	}
	end := idx + len(frag)
	return end == len(importPath) || importPath[end] == '/'
}
