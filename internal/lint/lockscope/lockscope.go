// Package lockscope checks the two flow-sensitive locking invariants
// the serving tier depends on:
//
//  1. A sync.Mutex/RWMutex locked in a function must be released on
//     every path to return. `defer mu.Unlock()` discharges this (the
//     deferred call runs on every exit, including panics).
//
//  2. A held lock must not span a blocking operation: a channel send
//     or receive, a default-less select, a range over a channel,
//     WaitGroup.Wait, Cond.Wait, an outbound HTTP/network call, or
//     time.Sleep. Blocking under a lock turns an independent slow peer
//     into whole-server convoying — the exact failure the snapshot
//     cache and metrics writer avoid by copying under the lock and
//     doing I/O outside it. Note that a deferred unlock does NOT
//     discharge this rule: the lock stays held from the defer to the
//     actual return, so blocking after `defer mu.Unlock()` still
//     reports.
//
// Locks are identified syntactically by their receiver expression
// (types.ExprString), so `s.mu` in two methods of the same receiver
// name is one lock for analysis purposes within each function. The
// analysis is per-function: a lock handed to another function, or
// locked in one function and unlocked in another (the singleflight
// join/leave refcount dance), is out of scope and must carry a
// //lint:ignore with its reason if flagged.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
	"github.com/egs-synthesis/egs/internal/lint/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc: "held sync.Mutex/RWMutex must be released on all return paths and must not span " +
		"blocking operations (channel ops, select, network calls, WaitGroup.Wait)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Funcs(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if pass.IsTestFile(body.Pos()) {
			return
		}
		checkBody(pass, body)
	})
	return nil, nil
}

// lockState is the dataflow fact: bit i of unrel means "lock i may be
// unreleased at this point" (no unlock, not even deferred, has
// executed); bit i of held means "lock i may be held right here".
// They differ only in how a DeferStmt unlock transfers: it clears
// unrel (the exit paths are covered) but not held (the critical
// section runs to the actual return).
type lockState struct {
	unrel, held uint64
}

type lockInfo struct {
	bit  uint64
	name string    // receiver expression, e.g. "s.mu"
	pos  token.Pos // first Lock/RLock site
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Assign a bit to each distinct lock receiver, in lexical order of
	// first Lock. Functions that only unlock (the unlock half of a
	// cross-function pairing) get no bits and are skipped.
	locks := map[string]*lockInfo{}
	var order []*lockInfo
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, op, ok := mutexOp(pass, call)
		if !ok || op != opLock || locks[name] != nil || len(order) >= 64 {
			return true
		}
		li := &lockInfo{bit: 1 << uint(len(order)), name: name, pos: call.Pos()}
		locks[name] = li
		order = append(order, li)
		return true
	})
	if len(order) == 0 {
		return
	}

	transfer := func(n cfg.Node, s lockState) lockState {
		if d, ok := n.Syntax.(*ast.DeferStmt); ok {
			if name, op, ok := mutexOp(pass, d.Call); ok && op == opUnlock {
				if li := locks[name]; li != nil {
					s.unrel &^= li.bit
				}
			}
			return s
		}
		cfg.InspectNode(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, op, ok := mutexOp(pass, call); ok {
				if li := locks[name]; li != nil {
					switch op {
					case opLock:
						s.unrel |= li.bit
						s.held |= li.bit
					case opUnlock:
						s.unrel &^= li.bit
						s.held &^= li.bit
					}
				}
			}
			return true
		})
		return s
	}
	join := func(a, b lockState) lockState {
		return lockState{unrel: a.unrel | b.unrel, held: a.held | b.held}
	}

	g := cfg.Build(body)
	in := cfg.Solve(g, lockState{}, transfer, join)

	// Reporting pass 1: blocking ops under a held lock. Replay each
	// block from its solved in-state; the check uses the state BEFORE
	// the node's own transfer, so `mu.Unlock()` itself never reports.
	for _, blk := range g.Blocks {
		s := in[blk]
		for _, n := range blk.Nodes {
			if s.held != 0 {
				if desc, blocking := blockingOp(pass, n); blocking {
					var names []string
					for _, li := range order {
						if s.held&li.bit != 0 {
							names = append(names, li.name)
						}
					}
					pass.Reportf(n.Syntax.Pos(), "mutex %s is held across a blocking operation (%s); release it first or //lint:ignore with a reason", strings.Join(names, ", "), desc)
				}
			}
			s = transfer(n, s)
		}
	}

	// Reporting pass 2: locks that may still be unreleased at return.
	leaked := cfg.ExitState(g, in, transfer, join)
	for _, li := range order {
		if leaked.unrel&li.bit != 0 {
			pass.Reportf(li.pos, "mutex %s may not be unlocked on all return paths (add defer %s.Unlock())", li.name, li.name)
		}
	}
}

type mutexOpKind int

const (
	opLock mutexOpKind = iota
	opUnlock
)

// mutexOp classifies call as a Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver expression text
// as the lock's identity.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (string, mutexOpKind, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	var op mutexOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", 0, false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return "", 0, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", 0, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), op, true
	}
	return "", 0, false
}

// blockingOp reports whether node n performs an operation that can
// block indefinitely. Comm clauses (KindComm) never report — the
// blocking decision is the select header's, and a ready comm does not
// block. FuncLits inside n are opaque: code in a closure runs on the
// closure's schedule, not under this function's locks... unless called
// inline, which is out of scope.
func blockingOp(pass *analysis.Pass, n cfg.Node) (string, bool) {
	switch n.Kind {
	case cfg.KindComm:
		return "", false
	case cfg.KindSelect:
		if !cfg.HasDefault(n.Syntax) {
			return "select without default", true
		}
		return "", false
	case cfg.KindRange:
		rng := n.Syntax.(*ast.RangeStmt)
		if t := pass.TypeOf(rng.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel", true
			}
		}
		return "", false
	}
	desc, found := "", false
	cfg.InspectNode(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch x := x.(type) {
		case *ast.SendStmt:
			desc, found = "channel send", true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				desc, found = "channel receive", true
			}
		case *ast.CallExpr:
			if d, ok := blockingCall(pass, x); ok {
				desc, found = d, true
			}
		}
		return !found
	})
	return desc, found
}

// blockingCall recognizes well-known blocking calls: WaitGroup.Wait,
// Cond.Wait, http.Client.Do, the http package-level request helpers,
// net dialers/listeners, and time.Sleep.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return "", false
		}
		rname := named.Obj().Name()
		switch {
		case pkg == "sync" && rname == "WaitGroup" && name == "Wait":
			return "sync.WaitGroup.Wait", true
		case pkg == "sync" && rname == "Cond" && name == "Wait":
			return "sync.Cond.Wait", true
		case pkg == "net/http" && rname == "Client" && name == "Do":
			return "http.Client.Do", true
		}
		return "", false
	}
	switch {
	case pkg == "time" && name == "Sleep":
		return "time.Sleep", true
	case pkg == "net/http" && (name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
		return "http." + name, true
	case pkg == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")):
		return "net." + name, true
	}
	return "", false
}
