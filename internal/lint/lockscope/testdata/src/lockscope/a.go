// Fixture for the lockscope analyzer: release-on-all-paths and
// no-blocking-under-lock shapes.
package lockscope

import (
	"net/http"
	"sync"
	"time"
)

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	m    map[string]int
	work chan int
}

// deferUnlock is the blessed shape.
func (s *store) deferUnlock(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// earlyReturnLeaksLock misses the unlock on the not-found path.
func (s *store) earlyReturnLeaksLock(k string) (int, bool) {
	s.mu.Lock() // want `mutex s\.mu may not be unlocked on all return paths`
	v, ok := s.m[k]
	if !ok {
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// bothPathsUnlock releases on every path without a defer; clean.
func (s *store) bothPathsUnlock(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		return 0, false
	}
	s.mu.Unlock()
	return v, true
}

// rlockCounts: RLock/RUnlock pair on the RWMutex, with a leak on one
// branch.
func (s *store) rlockCounts(k string, fast bool) int {
	s.rw.RLock() // want `mutex s\.rw may not be unlocked on all return paths`
	if fast {
		return len(s.m)
	}
	v := s.m[k]
	s.rw.RUnlock()
	return v
}

// sendUnderLock blocks on a channel send while holding the mutex.
func (s *store) sendUnderLock(v int) {
	s.mu.Lock()
	s.work <- v // want `mutex s\.mu is held across a blocking operation \(channel send\)`
	s.mu.Unlock()
}

// deferThenBlock: the deferred unlock covers the exit paths, but the
// lock is STILL HELD at the receive — must report.
func (s *store) deferThenBlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.work // want `mutex s\.mu is held across a blocking operation \(channel receive\)`
}

// selectUnderLock: a default-less select blocks under the lock.
func (s *store) selectUnderLock(stop chan struct{}) {
	s.mu.Lock()
	select { // want `mutex s\.mu is held across a blocking operation \(select without default\)`
	case v := <-s.work:
		s.m["last"] = v
	case <-stop:
	}
	s.mu.Unlock()
}

// selectWithDefaultIsFine: a ready-or-bail select never blocks; the
// enqueue fast path in internal/server does exactly this under RLock.
func (s *store) selectWithDefaultIsFine(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.work <- v:
		return true
	default:
		return false
	}
}

// unlockBeforeBlocking releases first; clean.
func (s *store) unlockBeforeBlocking(v int) {
	s.mu.Lock()
	s.m["pending"]++
	s.mu.Unlock()
	s.work <- v
}

// httpUnderLock: an outbound call under the lock convoys the server.
func (s *store) httpUnderLock(c *http.Client, r *http.Request) {
	s.mu.Lock()
	resp, err := c.Do(r) // want `mutex s\.mu is held across a blocking operation \(http\.Client\.Do\)`
	s.mu.Unlock()
	if err == nil {
		resp.Body.Close()
	}
}

// sleepUnderLock, the classic.
func (s *store) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `mutex s\.mu is held across a blocking operation \(time\.Sleep\)`
	s.mu.Unlock()
}

// waitUnderLock: waiting for a WaitGroup while holding the lock the
// workers need is a deadlock factory.
func (s *store) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `mutex s\.mu is held across a blocking operation \(sync\.WaitGroup\.Wait\)`
	s.mu.Unlock()
}

// drainUnderLock: ranging a channel under the lock holds it for the
// queue's whole lifetime.
func (s *store) drainUnderLock() {
	s.mu.Lock()
	for v := range s.work { // want `mutex s\.mu is held across a blocking operation \(range over channel\)`
		s.m["sum"] += v
	}
	s.mu.Unlock()
}

// closureOpsAreOpaque: lock ops inside a spawned closure belong to the
// closure's own paths, not this function's; no findings here (the
// closure body is analyzed separately and is itself clean).
func (s *store) closureOpsAreOpaque() {
	go func() {
		s.mu.Lock()
		s.m["bg"]++
		s.mu.Unlock()
	}()
}

// unlockOnlyHalf: the unlock side of a cross-function pairing locks
// nothing, so it gets no bits and no findings.
func (s *store) unlockOnlyHalf() {
	s.mu.Unlock()
}
