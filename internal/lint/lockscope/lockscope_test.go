package lockscope_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, lockscope.Analyzer, "lockscope")
}
