// Package poolrelease enforces the lifecycle invariants of pooled and
// arena-allocated objects — the bug class behind PR 3's emitID
// stale-arity aliasing fix.
//
// Pool structure is discovered, not configured: a package-level
// sync.Pool variable defines a pooled element type (from its New
// function), the element's method that calls pool.Put is its
// releaser, and a function that calls pool.Get and returns the
// element is an acquirer. Three rules follow:
//
//  1. Release on all paths. A value obtained from an acquirer must be
//     released before every return that follows the acquisition,
//     either via `defer v.release()` or by an explicit release call
//     preceding each return. The check is lexical, not control-flow
//     exact: a release on a sibling branch satisfies it (documented
//     false negative), but the common bug — an early return inserted
//     without a release — is caught.
//
//  2. No stale scratch. Inside the pooled type's methods, a
//     slice-typed field used as a bare value (bound to a local,
//     placed in a composite literal, or returned) must be preceded in
//     the same function by an assignment that re-establishes its
//     length (`e.scratch = growConsts(e.scratch, n)`, `e.f = e.f[:n]`).
//     Deleting that resize is exactly the PR 3 emitID bug: the buffer
//     keeps the arity of the previous rule.
//
//  3. No arena escapes. Results of idArena.alloc/copy/extend and
//     ectxSlab.alloc (internal/egs's bump allocators) must not be
//     assigned directly into struct fields of types other than ectx,
//     nor returned from exported functions: arena chunks are recycled
//     wholesale when the searcher is dropped, so a stored slice
//     outlives its memory's meaning.
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
)

// Analyzer enforces pooled-object and arena lifecycle rules.
var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc: "require pool-acquired values to be released on all paths, pooled scratch slices " +
		"to be re-lengthed before use, and arena allocations not to escape",
	Run: run,
}

// arenaTypes are the bump allocators of internal/egs; their
// allocations must not outlive the owning searcher. The method sets
// are the allocation entry points.
var arenaTypes = map[string]map[string]bool{
	"idArena":  {"alloc": true, "copy": true, "extend": true},
	"ectxSlab": {"alloc": true},
}

// arenaExemptOwners are struct types whose fields may hold arena
// slices: ectx structs are slab-allocated and share the arena's
// lifetime.
var arenaExemptOwners = map[string]bool{"ectx": true}

// pool describes one discovered sync.Pool and its protocol.
type pool struct {
	poolVar  types.Object // the sync.Pool variable
	elem     *types.Named // pooled element type T (pool.New returns *T)
	releaser string       // method of T calling poolVar.Put
}

func run(pass *analysis.Pass) (any, error) {
	pools := discoverPools(pass)
	acquirers := discoverAcquirers(pass, pools)

	pass.Funcs(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if pass.IsTestFile(body.Pos()) {
			return
		}
		if len(pools) > 0 {
			checkReleasePaths(pass, body, acquirers)
		}
		if decl != nil {
			if p := receiverPool(pass, decl, pools); p != nil {
				checkScratchFields(pass, decl, body, p)
			}
			checkArenaEscapes(pass, decl, body)
		}
	})
	return nil, nil
}

// discoverPools finds package-level sync.Pool variables, their element
// types, and their releaser methods.
func discoverPools(pass *analysis.Pass) []*pool {
	var pools []*pool
	// Pass 1: pool variables and element types from their New funcs.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					obj := pass.ObjectOf(name)
					if obj == nil || !isSyncPool(obj.Type()) {
						continue
					}
					if elem := poolElemType(pass, vs.Values[i]); elem != nil {
						pools = append(pools, &pool{poolVar: obj, elem: elem})
					}
				}
			}
		}
	}
	if len(pools) == 0 {
		return nil
	}
	// Pass 2: releaser = the element's method containing poolVar.Put.
	pass.Funcs(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if decl == nil || decl.Recv == nil {
			return
		}
		for _, p := range pools {
			if receiverNamed(pass, decl) != p.elem {
				continue
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
					if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == p.poolVar {
						p.releaser = decl.Name.Name
					}
				}
				return true
			})
		}
	})
	return pools
}

func isSyncPool(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// poolElemType extracts T from `sync.Pool{New: func() any { return new(T) }}`.
func poolElemType(pass *analysis.Pass, v ast.Expr) *types.Named {
	cl, ok := v.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "New" {
			continue
		}
		fl, ok := kv.Value.(*ast.FuncLit)
		if !ok {
			return nil
		}
		var elem *types.Named
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			t := pass.TypeOf(ret.Results[0])
			if ptr, ok := t.(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok {
					elem = named
				}
			}
			return elem == nil
		})
		return elem
	}
	return nil
}

// discoverAcquirers maps function objects that call poolVar.Get and
// return the pooled element to their pool.
func discoverAcquirers(pass *analysis.Pass, pools []*pool) map[types.Object]*pool {
	acquirers := make(map[types.Object]*pool)
	if len(pools) == 0 {
		return acquirers
	}
	pass.Funcs(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		if decl == nil {
			return
		}
		obj := pass.ObjectOf(decl.Name)
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			return
		}
		for _, p := range pools {
			if p.releaser == "" || !returnsElem(sig, p.elem) {
				continue
			}
			callsGet := false
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
					if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == p.poolVar {
						callsGet = true
					}
				}
				return !callsGet
			})
			if callsGet {
				acquirers[obj] = p
			}
		}
	})
	return acquirers
}

func returnsElem(sig *types.Signature, elem *types.Named) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		t := res.At(i).Type()
		if ptr, ok := t.(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok && named == elem {
				return true
			}
		}
	}
	return false
}

// checkReleasePaths enforces rule 1 in one function body.
func checkReleasePaths(pass *analysis.Pass, body *ast.BlockStmt, acquirers map[types.Object]*pool) {
	type acquisition struct {
		obj  types.Object
		pos  token.Pos
		pool *pool
	}
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		var fnObj types.Object
		switch f := call.Fun.(type) {
		case *ast.Ident:
			fnObj = pass.ObjectOf(f)
		case *ast.SelectorExpr:
			fnObj = pass.ObjectOf(f.Sel)
		}
		p, ok := acquirers[fnObj]
		if !ok {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				acqs = append(acqs, acquisition{obj: obj, pos: as.Pos(), pool: p})
			}
		}
		return true
	})

	for _, acq := range acqs {
		if functionReleases(pass, body, acq.obj, acq.pos, acq.pool.releaser) {
			continue
		}
		pass.Reportf(acq.pos, "%q acquired from %s pool is not released on every path; add `defer %s.%s()` or release before each return",
			acq.obj.Name(), acq.pool.elem.Obj().Name(), acq.obj.Name(), acq.pool.releaser)
	}
}

// functionReleases reports whether the acquired object is released on
// every (lexical) path after pos: either a defer of the releaser, or a
// release call before each subsequent return — and at least one
// release overall.
func functionReleases(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos, releaser string) bool {
	var releasePositions []token.Pos
	deferred := false
	var returns []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if isReleaseCall(pass, n.Call, obj, releaser) && n.Pos() > pos {
				deferred = true
			}
		case *ast.CallExpr:
			if isReleaseCall(pass, n, obj, releaser) && n.Pos() > pos {
				releasePositions = append(releasePositions, n.Pos())
			}
		case *ast.ReturnStmt:
			if n.Pos() > pos {
				returns = append(returns, n.Pos())
			}
		}
		return true
	})
	if deferred {
		return true
	}
	if len(releasePositions) == 0 {
		return false
	}
	for _, ret := range returns {
		ok := false
		for _, rel := range releasePositions {
			if rel < ret {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func isReleaseCall(pass *analysis.Pass, call *ast.CallExpr, obj types.Object, releaser string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != releaser {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.ObjectOf(id) == obj
}

// receiverPool returns the pool whose element type is decl's receiver.
func receiverPool(pass *analysis.Pass, decl *ast.FuncDecl, pools []*pool) *pool {
	named := receiverNamed(pass, decl)
	if named == nil {
		return nil
	}
	for _, p := range pools {
		if p.elem == named {
			return p
		}
	}
	return nil
}

func receiverNamed(pass *analysis.Pass, decl *ast.FuncDecl) *types.Named {
	if decl.Recv == nil || len(decl.Recv.List) != 1 {
		return nil
	}
	t := pass.TypeOf(decl.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// checkScratchFields enforces rule 2 in one method of a pooled type.
func checkScratchFields(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt, p *pool) {
	if len(decl.Recv.List[0].Names) != 1 {
		return
	}
	recv := pass.ObjectOf(decl.Recv.List[0].Names[0])
	if recv == nil {
		return
	}

	// resizedAt collects positions of assignments TO recv.<field>.
	resizedAt := map[string][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if f := bareSliceField(pass, lhs, recv); f != "" {
				resizedAt[f] = append(resizedAt[f], as.Pos())
			}
		}
		return true
	})
	resized := func(field string, before token.Pos) bool {
		for _, p := range resizedAt[field] {
			if p < before {
				return true
			}
		}
		return false
	}
	report := func(pos token.Pos, field, how string) {
		pass.Reportf(pos, "pooled scratch field %q %s without re-establishing its length in this function; stale-arity aliasing (the emitID bug class) — resize it first", field, how)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if f := bareSliceField(pass, rhs, recv); f != "" && !resized(f, n.Pos()) {
					report(n.Pos(), f, "bound to a local")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if f := bareSliceField(pass, kv.Value, recv); f != "" && !resized(f, kv.Pos()) {
					report(kv.Pos(), f, "placed in a composite literal")
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if f := bareSliceField(pass, res, recv); f != "" {
					pass.Reportf(res.Pos(), "pooled scratch field %q returned from a method of the pooled type: it escapes release and will be overwritten by the next acquire; return a copy", f)
				}
			}
		}
		return true
	})
}

// bareSliceField returns the field name if e is exactly `recv.f` with
// f a slice-typed field (no call, index, or slice wrapping).
func bareSliceField(pass *analysis.Pass, e ast.Expr, recv types.Object) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || pass.ObjectOf(id) != recv {
		return ""
	}
	t := pass.TypeOf(sel)
	if t == nil {
		return ""
	}
	if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
		return ""
	}
	return sel.Sel.Name
}

// checkArenaEscapes enforces rule 3 in one function.
func checkArenaEscapes(pass *analysis.Pass, decl *ast.FuncDecl, body *ast.BlockStmt) {
	exported := decl.Name.IsExported()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isArenaAlloc(pass, rhs) || i >= len(n.Lhs) {
					continue
				}
				sel, ok := n.Lhs[i].(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if owner := namedOf(pass.TypeOf(sel.X)); owner != nil && !arenaExemptOwners[owner.Obj().Name()] {
					pass.Reportf(n.Pos(), "arena-allocated slice stored into field %s.%s: arena memory is recycled with the searcher; copy it if the holder outlives the search", owner.Obj().Name(), sel.Sel.Name)
				}
			}
		case *ast.ReturnStmt:
			if !exported {
				return true
			}
			for _, res := range n.Results {
				if isArenaAlloc(pass, res) {
					pass.Reportf(res.Pos(), "arena-allocated slice returned from exported %s: callers outlive the arena; return a copy", decl.Name.Name)
				}
			}
		}
		return true
	})
}

// isArenaAlloc matches calls to the allocation methods of the known
// arena types (idArena.alloc/copy/extend, ectxSlab.alloc).
func isArenaAlloc(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recv := namedOf(pass.TypeOf(sel.X))
	if recv == nil {
		return false
	}
	methods, ok := arenaTypes[recv.Obj().Name()]
	return ok && methods[sel.Sel.Name]
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
