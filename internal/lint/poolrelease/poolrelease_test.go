package poolrelease_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/poolrelease"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, poolrelease.Analyzer, "poolrelease")
}
