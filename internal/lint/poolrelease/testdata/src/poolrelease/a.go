// Package poolrelease exercises the poolrelease analyzer: release on
// all paths, no stale pooled scratch (the emitID bug class), and no
// arena escapes.
package poolrelease

import "sync"

type evaluator struct {
	scratch []int
	order   []int
	n       int
}

var evaluatorPool = sync.Pool{New: func() any { return new(evaluator) }}

func newEvaluator(n int) *evaluator {
	e := evaluatorPool.Get().(*evaluator)
	e.n = n
	return e
}

func (e *evaluator) release() {
	e.n = 0
	evaluatorPool.Put(e)
}

func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// leakOnEarlyReturn forgets the release on the error path — the
// classic pool leak.
func leakOnEarlyReturn(n int) int {
	e := newEvaluator(n) // want `"e" acquired from evaluator pool is not released on every path`
	if n < 0 {
		return 0
	}
	out := e.n
	e.release()
	return out
}

// neverReleased acquires and drops the value entirely.
func neverReleased(n int) {
	e := newEvaluator(n) // want `"e" acquired from evaluator pool is not released on every path`
	_ = e
}

// deferredRelease is the blessed shape. No finding.
func deferredRelease(n int) int {
	e := newEvaluator(n)
	defer e.release()
	if n < 0 {
		return 0
	}
	return e.n
}

// releaseOnEachPath releases explicitly before every return. No
// finding.
func releaseOnEachPath(n int) int {
	e := newEvaluator(n)
	if n < 0 {
		e.release()
		return 0
	}
	out := e.n
	e.release()
	return out
}

// staleScratch reproduces the emitID bug: binding the pooled scratch
// slice without re-establishing its length first, so it keeps the
// arity of the previous rule.
func (e *evaluator) staleScratch(vals []int) []int {
	args := e.scratch // want `pooled scratch field "scratch" bound to a local without re-establishing its length`
	copy(args, vals)
	out := make([]int, len(args))
	copy(out, args)
	return out
}

// freshScratch is the fixed emitID shape: resize, then bind. No
// finding.
func (e *evaluator) freshScratch(vals []int) []int {
	e.scratch = grow(e.scratch, len(vals))
	args := e.scratch
	copy(args, vals)
	out := make([]int, len(args))
	copy(out, args)
	return out
}

// escapeScratch returns the pooled buffer itself; it will be
// overwritten by the next acquire.
func (e *evaluator) escapeScratch() []int {
	return e.scratch // want `pooled scratch field "scratch" returned from a method of the pooled type`
}

// structScratch smuggles the unresized buffer out through a composite
// literal.
type result struct{ args []int }

func (e *evaluator) structScratch() result {
	return result{args: e.scratch} // want `pooled scratch field "scratch" placed in a composite literal`
}

// sliceElem reads an element; element reads are not a stale-arity
// hazard by themselves. No finding.
func (e *evaluator) sliceElem(i int) int {
	if i < len(e.order) {
		return e.order[i]
	}
	return -1
}
