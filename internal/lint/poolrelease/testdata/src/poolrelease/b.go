package poolrelease

// idArena mirrors internal/egs's bump allocator; poolrelease matches
// it by type name and allocation method names.
type idArena struct {
	chunk []int32
	off   int
}

func (a *idArena) alloc(n int) []int32 {
	if a.off+n > len(a.chunk) {
		a.chunk = make([]int32, 4096)
		a.off = 0
	}
	s := a.chunk[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

func (a *idArena) copy(src []int32) []int32 {
	dst := a.alloc(len(src))
	copy(dst, src)
	return dst
}

// ectx shares the arena's lifetime; its fields may hold arena slices.
type ectx struct {
	ids []int32
}

// holder is an ordinary struct that outlives the search.
type holder struct {
	ids []int32
}

// storeInEctx is the blessed pattern: arena memory into an
// arena-lifetime struct. No finding.
func storeInEctx(a *idArena, c *ectx, src []int32) {
	c.ids = a.copy(src)
}

// storeInHolder leaks arena memory into a long-lived struct.
func storeInHolder(a *idArena, h *holder, src []int32) {
	h.ids = a.copy(src) // want `arena-allocated slice stored into field holder.ids`
}

// CopyIDs returns arena memory from an exported function: callers
// outlive the arena.
func CopyIDs(a *idArena, src []int32) []int32 {
	return a.copy(src) // want `arena-allocated slice returned from exported CopyIDs`
}

// internalCopy is unexported; intra-package callers are assumed to
// respect the arena lifetime. No finding.
func internalCopy(a *idArena, src []int32) []int32 {
	return a.copy(src)
}

// storeLocal binds the allocation to a local, the normal working
// pattern. No finding.
func storeLocal(a *idArena, n int) int {
	s := a.alloc(n)
	return len(s)
}
