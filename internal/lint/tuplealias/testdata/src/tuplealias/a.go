// Package tuplealias exercises the tuplealias analyzer: Tuple.Args
// writes outside internal/relation and mutation of NewTuple buffers.
package tuplealias

import (
	"github.com/egs-synthesis/egs/internal/relation"
)

// rewriteArgs writes through an interned tuple's argument slice.
func rewriteArgs(t relation.Tuple) {
	t.Args[0] = 7 // want `write through Tuple.Args outside internal/relation`
}

func replaceArgs(t *relation.Tuple, args []relation.Const) {
	t.Args = args // want `write through Tuple.Args outside internal/relation`
}

func growArgs(t relation.Tuple, c relation.Const) relation.Tuple {
	t.Args = append(t.Args, c) // want `write through Tuple.Args outside internal/relation` `append to Tuple.Args outside internal/relation`
	return t
}

func aliasArgs(t relation.Tuple) *relation.Const {
	return &t.Args[0] // want `taking the address of Tuple.Args`
}

// mutateAfterNewTuple reuses a buffer handed to NewTuple, which does
// not copy: the tuple changes underfoot.
func mutateAfterNewTuple(rel relation.RelID, buf []relation.Const) relation.Tuple {
	t := relation.NewTuple(rel, buf...)
	buf[0] = 9 // want `was passed to relation.NewTuple, which does not copy`
	return t
}

func appendAfterNewTuple(rel relation.RelID, buf []relation.Const) relation.Tuple {
	t := relation.NewTuple(rel, buf...)
	buf = append(buf, 3) // want `was passed to relation.NewTuple, which does not copy`
	_ = buf
	return t
}

// mutateAfterCopy uses NewTupleCopy, which snapshots the buffer:
// reuse is safe. No finding.
func mutateAfterCopy(rel relation.RelID, buf []relation.Const) relation.Tuple {
	t := relation.NewTupleCopy(rel, buf)
	buf[0] = 9
	return t
}

// mutateAfterInsert reuses a buffer across Insert calls. Insert copies
// args at its boundary (the PR 2 contract), so this is the blessed
// batch-load idiom. No finding.
func mutateAfterInsert(db *relation.Database, rel relation.RelID, rows [][]relation.Const) {
	buf := make([]relation.Const, 2)
	for _, row := range rows {
		copy(buf, row)
		db.Insert(relation.NewTupleCopy(rel, buf))
		buf[0] = 0
	}
}

// readArgs only reads; reads never corrupt interned storage. No
// finding.
func readArgs(t relation.Tuple) relation.Const {
	if len(t.Args) == 0 {
		return 0
	}
	return t.Args[0]
}

// freshReassign rebinds the variable to a new slice rather than
// writing in place; the tuple keeps the original backing array. No
// finding.
func freshReassign(rel relation.RelID, buf []relation.Const) relation.Tuple {
	t := relation.NewTuple(rel, buf...)
	buf = []relation.Const{1, 2}
	_ = buf
	return t
}
