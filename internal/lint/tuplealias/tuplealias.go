// Package tuplealias enforces the PR 2 copy-at-boundary rule for
// relation.Tuple argument slices.
//
// Database.Insert and Database.InternTuple copy Args at their
// boundary, so callers may reuse buffers across those calls. Two
// things remain unsafe and are flagged:
//
//   - Writing through Tuple.Args outside internal/relation. A tuple
//     obtained from a Database aliases interned storage
//     (Database.Tuple returns the indexed backing tuple); writing
//     through Args corrupts the database and every bitset keyed by
//     its ids.
//   - Passing a slice to relation.NewTuple (which documents that it
//     does NOT copy) and mutating that slice afterwards in the same
//     function: the tuple silently changes underfoot. Use
//     relation.NewTupleCopy for reused buffers.
//
// Known false negatives (DESIGN.md §10): mutation tracking is lexical
// and function-local — a buffer stored and mutated by a helper, or
// mutated on a later loop iteration of a caller, is not traced.
// _test.go files are exempt; tests deliberately alias tuples to prove
// the boundary copies.
package tuplealias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
)

// Analyzer enforces the tuple copy-at-boundary rule.
var Analyzer = &analysis.Analyzer{
	Name: "tuplealias",
	Doc: "flag writes through relation.Tuple.Args outside internal/relation, and slices " +
		"passed to relation.NewTuple that are mutated afterwards",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// The relation package itself owns tuple storage and may write it.
	if isRelationPath(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Funcs(func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		if pass.IsTestFile(body.Pos()) {
			return
		}
		checkArgsWrites(pass, body)
		checkNewTupleAliasing(pass, body)
	})
	return nil, nil
}

func isRelationPath(path string) bool {
	return path == "relation" || strings.HasSuffix(path, "/relation")
}

// checkArgsWrites flags assignments whose destination reaches through
// a relation.Tuple's Args field, and append calls that grow one.
func checkArgsWrites(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := tupleArgsSelector(pass, lhs); sel != nil {
					pass.Reportf(lhs.Pos(), "write through Tuple.Args outside internal/relation: tuples alias interned database storage; build a fresh tuple (NewTupleCopy) instead")
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, ok := pass.ObjectOf(id).(*types.Builtin); ok && len(n.Args) > 0 {
					if sel := tupleArgsSelector(pass, n.Args[0]); sel != nil {
						pass.Reportf(n.Pos(), "append to Tuple.Args outside internal/relation: may write through interned storage; copy the args first")
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel := tupleArgsSelector(pass, n.X); sel != nil {
					pass.Reportf(n.Pos(), "taking the address of Tuple.Args (or an element) outside internal/relation: the pointer aliases interned storage")
				}
			}
		}
		return true
	})
}

// tupleArgsSelector returns the `x.Args` selector if e is x.Args or
// x.Args[i] with x of type relation.Tuple or *relation.Tuple.
func tupleArgsSelector(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	if idx, ok := e.(*ast.IndexExpr); ok {
		e = idx.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Args" {
		return nil
	}
	if isRelationTuple(pass.TypeOf(sel.X)) {
		return sel
	}
	return nil
}

// isRelationTuple reports whether t is relation.Tuple or a pointer to
// it, matching by package path suffix so the check works both on the
// real module path and on analysistest packages.
func isRelationTuple(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tuple" && obj.Pkg() != nil && isRelationPath(obj.Pkg().Path())
}

// checkNewTupleAliasing flags `relation.NewTuple(rel, buf...)`
// followed by a mutation of buf in the same function.
func checkNewTupleAliasing(pass *analysis.Pass, body *ast.BlockStmt) {
	// handed maps a slice variable to the position of the NewTuple
	// call it was spread into.
	handed := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Ellipsis == token.NoPos || len(call.Args) == 0 {
			return true
		}
		if !isNewTupleCall(pass, call) {
			return true
		}
		if id, ok := call.Args[len(call.Args)-1].(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				if _, seen := handed[obj]; !seen {
					handed[obj] = call.Pos()
				}
			}
		}
		return true
	})
	if len(handed) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			var id *ast.Ident
			switch l := lhs.(type) {
			case *ast.IndexExpr:
				id, _ = l.X.(*ast.Ident)
			case *ast.Ident:
				// Reassignment only aliases when it can write in place:
				// `buf = append(buf, ...)`.
				if !isSelfAppend(pass, as, l) {
					continue
				}
				id = l
			}
			if id == nil {
				continue
			}
			obj := pass.ObjectOf(id)
			callPos, ok := handed[obj]
			if !ok || as.Pos() <= callPos {
				continue
			}
			pass.Reportf(as.Pos(), "%q was passed to relation.NewTuple, which does not copy; mutating it afterwards changes the tuple underfoot — use NewTupleCopy or copy before mutating", id.Name)
		}
		return true
	})
}

// isNewTupleCall matches relation.NewTuple (but not NewTupleCopy).
func isNewTupleCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	var fn types.Object
	if ok {
		fn = pass.ObjectOf(sel.Sel)
	} else if id, ok := call.Fun.(*ast.Ident); ok {
		fn = pass.ObjectOf(id)
	}
	if fn == nil || fn.Name() != "NewTuple" || fn.Pkg() == nil {
		return false
	}
	return isRelationPath(fn.Pkg().Path())
}

// isSelfAppend reports whether the assignment to id is
// `id = append(id, ...)`.
func isSelfAppend(pass *analysis.Pass, as *ast.AssignStmt, id *ast.Ident) bool {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		fid, ok := call.Fun.(*ast.Ident)
		if !ok || fid.Name != "append" {
			continue
		}
		if _, ok := pass.ObjectOf(fid).(*types.Builtin); !ok {
			continue
		}
		if len(call.Args) > 0 {
			if aid, ok := call.Args[0].(*ast.Ident); ok && pass.ObjectOf(aid) == pass.ObjectOf(id) {
				return true
			}
		}
	}
	return false
}
