package tuplealias_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/tuplealias"
)

func TestTupleAlias(t *testing.T) {
	analysistest.Run(t, tuplealias.Analyzer, "tuplealias")
}
