// Package goroleak requires every `go` statement in the serving
// packages to carry visible lifecycle evidence — something that bounds
// the goroutine's lifetime to a context, a stop signal, a WaitGroup,
// or a drained queue. A goroutine with none of these outlives shutdown
// at best and accumulates per-request at worst; under the load harness
// that is the difference between a flat goroutine count and a leak.
//
// Accepted evidence, checked in the spawned body (for `go func(){…}()`)
// or in the body of the same-package function being spawned (for
// `go s.worker()`):
//
//   - a call to Done() on a context.Context (the ctx.Done() select arm);
//   - a call to Done() or Wait() on a sync.WaitGroup (registration with
//     a drain barrier);
//   - a receive from a `chan struct{}` (the conventional stop channel);
//   - a `for … range ch` over a channel (a worker draining a bounded
//     queue, which ends when the queue closes).
//
// Spawns whose callee cannot be resolved within the package (an
// external function, a method value, a dynamic call) are reported:
// either wrap them in a bound closure or carry a //lint:ignore
// explaining what bounds them.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "every go statement in serving packages must be bound to a cancellable context, " +
		"a stop channel, a WaitGroup, or a drained channel; unbounded spawns leak",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Index same-package function and method bodies by their object so
	// `go s.worker()` can be checked through worker's body.
	bodies := map[types.Object]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					bodies[obj] = fd.Body
				}
			}
		}
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !bound(pass, g.Call, bodies) {
				pass.Reportf(g.Pos(), "goroutine is not visibly bound to a cancellable context, stop channel, WaitGroup, or drained channel; bind its lifetime or //lint:ignore with what bounds it")
			}
			return true
		})
	}
	return nil, nil
}

// bound reports whether the spawned call's body carries lifecycle
// evidence. Arguments to the call are also accepted: passing a
// context, a stop channel, or an evidence expression (`go
// run(ctx.Done())`) hands the goroutine its bound explicitly.
func bound(pass *analysis.Pass, call *ast.CallExpr, bodies map[types.Object]*ast.BlockStmt) bool {
	for _, arg := range call.Args {
		if hasEvidence(pass, arg) {
			return true
		}
		if t := pass.TypeOf(arg); t != nil {
			if isStopChan(t) || isNamed(t, "context", "Context") {
				return true
			}
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return hasEvidence(pass, fun.Body)
	case *ast.Ident:
		if body, ok := bodies[pass.ObjectOf(fun)]; ok {
			return hasEvidence(pass, body)
		}
	case *ast.SelectorExpr:
		if body, ok := bodies[pass.ObjectOf(fun.Sel)]; ok {
			return hasEvidence(pass, body)
		}
	}
	return false
}

// hasEvidence scans one body (including nested closures — evidence one
// level down still bounds the tree rooted at this goroutine) for any
// of the accepted lifecycle signals.
func hasEvidence(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						recv := sig.Recv().Type()
						if p, ok := recv.(*types.Pointer); ok {
							recv = p.Elem()
						}
						switch {
						case isNamed(recv, "context", "Context") && fn.Name() == "Done":
							found = true
						case isNamed(recv, "sync", "WaitGroup") && (fn.Name() == "Done" || fn.Name() == "Wait"):
							found = true
						}
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isStopChan(pass.TypeOf(n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isStopChan reports whether t is a channel of struct{} — the
// conventional stop/done signal type (ctx.Done()'s <-chan struct{}
// included).
func isStopChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isNamed reports whether t is the named type pkg.name, through
// interfaces and pointers already stripped by the caller.
func isNamed(t types.Type, pkg, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkg && obj.Name() == name
}
