// Fixture for the goroleak analyzer: goroutine lifecycle-evidence
// shapes.
package goroleak

import (
	"context"
	"sync"
)

type srv struct {
	wg    sync.WaitGroup
	queue chan int
	stop  chan struct{}
	n     int
}

// ctxBound: the classic select-on-ctx.Done loop.
func ctxBound(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// wgBound: registered with a drain barrier.
func (s *srv) wgBound() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.n++
	}()
}

// stopChanBound: a conventional chan struct{} stop signal.
func (s *srv) stopChanBound() {
	go func() {
		<-s.stop
		s.n = 0
	}()
}

// drainBound: a worker ends when its queue closes.
func (s *srv) drainBound() {
	go s.worker()
}

func (s *srv) worker() {
	defer s.wg.Done()
	for v := range s.queue {
		s.n += v
	}
}

// shutdownBarrier: the wait-then-signal closure from Shutdown.
func (s *srv) shutdownBarrier() chan struct{} {
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	return done
}

// unboundedClosure has no lifecycle evidence at all.
func (s *srv) unboundedClosure() {
	go func() { // want `goroutine is not visibly bound`
		s.n++
	}()
}

// unboundedNamed spawns a same-package function whose body carries no
// evidence either.
func (s *srv) unboundedNamed() {
	go s.tick() // want `goroutine is not visibly bound`
}

func (s *srv) tick() { s.n++ }

// unresolvable: the callee is a method value parameter; the analyzer
// cannot see its body and must report.
func runDetached(f func()) {
	go f() // want `goroutine is not visibly bound`
}

// evidenceViaArgument: the bound is passed in explicitly.
func spawnWith(done <-chan struct{}, body func(<-chan struct{})) {
	go body(done)
}
