package goroleak_test

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysistest"
	"github.com/egs-synthesis/egs/internal/lint/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer, "goroleak")
}
