// Package analysistest runs one analyzer over an annotated testdata
// package and compares its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest (which is
// unavailable in this offline build environment).
//
// A testdata package lives in testdata/src/<name>/ beside the
// analyzer's test. Expectations are written on the offending line:
//
//	for k := range m { // want `map iteration order`
//
// Each string literal after "want" is a regular expression that must
// match exactly one diagnostic reported on that line; diagnostics
// with no matching expectation, and expectations with no matching
// diagnostic, fail the test. Testdata may import standard library
// packages and the repo's own packages — imports are resolved through
// the enclosing module's build cache via `go list -export`.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

// Run analyzes testdata/src/<pkg> (relative to the caller's working
// directory, i.e. the analyzer package) with a and checks the
// diagnostics against the package's // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	pass, err := loadTestdata(dir)
	if err != nil {
		t.Fatal(err)
	}
	pass.Analyzer = a

	type key struct {
		file string
		line int
	}
	var got []analysis.Diagnostic
	pass.Report = func(d analysis.Diagnostic) { got = append(got, d) }
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	wants := collectWants(t, pass.Fset, pass.Files)
	matched := make([]bool, len(got))
	for _, w := range wants {
		found := false
		for i, d := range got {
			if matched[i] {
				continue
			}
			pos := pass.Fset.Position(d.Pos)
			if (key{pos.Filename, pos.Line}) != (key{w.file, w.line}) {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range got {
		if !matched[i] {
			pos := pass.Fset.Position(d.Pos)
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
}

// loadTestdata parses and type-checks the single package in dir.
func loadTestdata(dir string) (*analysis.Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "C" {
				importSet[p] = true
			}
		}
	}

	// Resolve the testdata package's imports through the module's
	// build cache; transitive dependencies ride along via -deps.
	exports := map[string]string{}
	if len(importSet) > 0 {
		root, err := loader.FindModuleRoot(".")
		if err != nil {
			return nil, err
		}
		var patterns []string
		for p := range importSet {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		listed, err := loader.GoList(root, patterns...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	info := loader.NewInfo()
	conf := types.Config{Importer: loader.ExportImporter(fset, exports)}
	pkgPath := "egslint.test/" + filepath.Base(dir)
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %v", dir, err)
	}
	return &analysis.Pass{
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
	}, nil
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts // want annotations from the files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if !strings.HasPrefix(text, "//") || idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos, text[idx+len("want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// parsePatterns splits the tail of a want comment into its string
// literals (double-quoted or backquoted).
func parsePatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", pos.Filename, pos.Line, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, s[:end+1], err)
			}
			pats = append(pats, pat)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", pos.Filename, pos.Line, s)
			}
			pats = append(pats, s[1:1+end])
			s = s[end+2:]
		default:
			t.Fatalf("%s:%d: want patterns must be quoted or backquoted strings, got %q", pos.Filename, pos.Line, s)
		}
	}
}
