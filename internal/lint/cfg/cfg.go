// Package cfg builds per-function control-flow graphs over go/ast and
// solves forward dataflow problems on them. It is the flow-sensitive
// substrate of the egslint concurrency analyzers (ctxflow, lockscope,
// goroleak): where the PR 4 analyzers reason lexically ("is there a
// release before every return"), these reason per-path ("is the
// obligation discharged on every path that reaches an exit").
//
// The graph is deliberately syntactic — no SSA, no types — because
// the analyzers that consume it track obligations attached to
// identifiers (a cancel func, a mutex receiver) whose identity the
// type checker already resolves. What the graph adds is path
// structure:
//
//   - if/else, for, range, switch, type switch, and select each
//     contribute their real branch edges, including the
//     loop-may-not-run edge and the select-clause fan-out;
//   - short-circuit conditions are decomposed: `if a && b` evaluates
//     a in its own block with a false-edge that bypasses b, so an
//     obligation discharged only under b's evaluation is seen as
//     missing on the a-false path;
//   - break/continue/goto (labelled or not) and fallthrough edges are
//     resolved;
//   - return statements edge to the synthetic Exit block; falling off
//     the end of the body does too (implicit return);
//   - panic(...) and the conventional terminating calls (os.Exit,
//     log.Fatal*, runtime.Goexit, testing's t.Fatal*) end their block
//     with NO successor: obligations are not owed on dying paths, so
//     analyzers get that rule for free.
//
// Nested function literals are NOT inlined: a FuncLit is an opaque
// node of the enclosing graph, and analysis.Pass.Funcs yields its
// body separately for its own graph. Defer statements are ordinary
// nodes; clients model their at-exit semantics in their transfer
// functions (see Solve's documentation).
package cfg

import (
	"go/ast"
	"go/token"
)

// NodeKind tells a transfer function how to scan a node.
type NodeKind int

const (
	// KindStmt is a simple statement (assign, expr, send, defer, go,
	// decl, return, ...). Compound statements never appear whole; only
	// their header parts do, with the kinds below.
	KindStmt NodeKind = iota
	// KindCond is a decomposed condition (or switch tag) expression
	// evaluated for control flow; the block has a true and a false
	// successor (in that order) when it ends in one.
	KindCond
	// KindRange is a *ast.RangeStmt header: the ranged expression is
	// evaluated here. Clients must not descend into Body.
	KindRange
	// KindSelect is a *ast.SelectStmt header. Clients must not descend
	// into the clause bodies; use HasDefault for blocking-ness.
	KindSelect
	// KindComm is one select communication statement (the `case v :=
	// <-ch:` part). Its channel operation belongs to the select header,
	// so blocking-op scans should skip it, but obligation scans (does
	// this bind or use a tracked identifier) still apply.
	KindComm
)

// Node is one program point: a piece of syntax plus how to read it.
type Node struct {
	Syntax ast.Node
	Kind   NodeKind
}

// Block is a basic block: nodes executed in order, then a transfer of
// control to one of Succs. A block with no successors ends the
// function without reaching Exit (panic or a terminating call).
type Block struct {
	Index int
	Nodes []Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is synthetic: every return statement and the fall-off-end
	// path edge to it. It holds no nodes.
	Exit *Block
}

// Build constructs the graph of one function body.
func Build(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelTargets{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	last := b.stmts(body.List, b.g.Entry)
	if last != nil {
		addEdge(last, b.g.Exit)
	}
	// Prune blocks unreachable from Entry (code after a return, the
	// continuation of a default-less select, …). Leaving them in would
	// let their fall-through edges contaminate Exit's predecessor set —
	// a dataflow client would then see states from paths that cannot
	// execute. Exit is kept even when unreachable (a function whose
	// every path panics) so clients need not nil-check it.
	live := map[*Block]bool{b.g.Entry: true, b.g.Exit: true}
	stack := []*Block{b.g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !live[s] {
				live[s] = true
				stack = append(stack, s)
			}
		}
	}
	kept := b.g.Blocks[:0]
	for _, blk := range b.g.Blocks {
		if !live[blk] {
			continue
		}
		succs := blk.Succs[:0]
		for _, s := range blk.Succs {
			if live[s] {
				succs = append(succs, s)
			}
		}
		blk.Succs = succs
		kept = append(kept, blk)
	}
	b.g.Blocks = kept
	for i, blk := range b.g.Blocks {
		blk.Index = i
	}
	// Seal: derive predecessor lists (deterministic: block order, then
	// successor order).
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// HasDefault reports whether a select or switch statement has a
// default clause (a select with default never blocks).
func HasDefault(n ast.Node) bool {
	var list []ast.Stmt
	switch s := n.(type) {
	case *ast.SelectStmt:
		list = s.Body.List
	case *ast.SwitchStmt:
		list = s.Body.List
	case *ast.TypeSwitchStmt:
		list = s.Body.List
	default:
		return false
	}
	for _, c := range list {
		switch c := c.(type) {
		case *ast.CommClause:
			if c.Comm == nil {
				return true
			}
		case *ast.CaseClause:
			if c.List == nil {
				return true
			}
		}
	}
	return false
}

// terminalSelectors are call names that conventionally never return.
// The match is syntactic (the builder has no type information); the
// receivers in practice are os.Exit, runtime.Goexit, log.Fatal*, and
// testing's t.Fatal*/t.Skip* helpers.
var terminalSelectors = map[string]bool{
	"Exit": true, "Goexit": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Skip": true, "Skipf": true, "SkipNow": true, "FailNow": true,
}

// IsTerminalCall reports whether stmt is a call that ends the
// goroutine (panic or a conventional terminating call), so control
// does not continue to the next statement or to Exit.
func IsTerminalCall(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		return terminalSelectors[fun.Sel.Name]
	}
	return false
}

// labelTargets resolves a label to the blocks its branches jump to.
type labelTargets struct {
	start     *Block // goto target / labelled statement entry
	brk, cont *Block // set while the labelled loop/switch is open
}

type builder struct {
	g      *Graph
	labels map[string]*labelTargets
	// break/continue stacks for the innermost enclosing constructs.
	breaks, continues []*Block
	// pendingLabel is the label immediately wrapping the next
	// loop/switch/select statement, so its break/continue targets can
	// be registered under that name.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

func (blk *Block) add(n ast.Node, kind NodeKind) {
	blk.Nodes = append(blk.Nodes, Node{Syntax: n, Kind: kind})
}

// stmts threads the statement list through cur, returning the block
// control reaches afterwards; nil means control cannot fall through
// (every path returned, panicked, or branched away).
func (b *builder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code still gets a graph (fresh, predecessor-less
			// block) so its nodes exist for position-based reporting.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *builder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.ReturnStmt:
		cur.add(s, KindStmt)
		addEdge(cur, b.g.Exit)
		return nil

	case *ast.ExprStmt:
		cur.add(s, KindStmt)
		if IsTerminalCall(s) {
			return nil // panic/os.Exit: no successor at all
		}
		return cur

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		then, els, after := b.newBlock(), b.newBlock(), b.newBlock()
		b.cond(s.Cond, cur, then, els)
		if end := b.stmts(s.Body.List, then); end != nil {
			addEdge(end, after)
		}
		if s.Else != nil {
			if end := b.stmt(s.Else, els); end != nil {
				addEdge(end, after)
			}
		} else {
			addEdge(els, after)
		}
		return after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		addEdge(cur, head)
		if s.Cond != nil {
			b.cond(s.Cond, head, body, after)
		} else {
			addEdge(head, body)
		}
		b.pushLoop(label, after, post)
		end := b.stmts(s.Body.List, body)
		b.popLoop(label)
		if end != nil {
			addEdge(end, post)
		}
		if s.Post != nil {
			p := b.stmt(s.Post, post)
			if p != nil {
				addEdge(p, head)
			}
		}
		return after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head, body, after := b.newBlock(), b.newBlock(), b.newBlock()
		addEdge(cur, head)
		head.add(s, KindRange)
		addEdge(head, body)
		addEdge(head, after)
		b.pushLoop(label, after, head)
		end := b.stmts(s.Body.List, body)
		b.popLoop(label)
		if end != nil {
			addEdge(end, head)
		}
		return after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur.add(s.Tag, KindCond)
		}
		return b.caseClauses(s.Body.List, cur, label, HasDefault(s))

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.add(s.Assign, KindStmt)
		return b.caseClauses(s.Body.List, cur, label, HasDefault(s))

	case *ast.SelectStmt:
		label := b.takeLabel()
		cur.add(s, KindSelect)
		after := b.newBlock()
		b.pushLoop(label, after, nil)
		reachable := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			addEdge(cur, blk)
			if cc.Comm != nil {
				blk.add(cc.Comm, KindComm)
			}
			if end := b.stmts(cc.Body, blk); end != nil {
				addEdge(end, after)
				reachable = true
			}
		}
		b.popLoop(label)
		_ = reachable
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever.
			return nil
		}
		// after may be predecessor-less (every clause returns and nothing
		// breaks); an unreachable continuation block is harmless.
		return after

	case *ast.LabeledStmt:
		lt := b.labelFor(s.Label.Name)
		addEdge(cur, lt.start)
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			return b.stmt(s.Stmt, lt.start)
		default:
			return b.stmt(s.Stmt, lt.start)
		}

	case *ast.BranchStmt:
		cur.add(s, KindStmt)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				addEdge(cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				addEdge(cur, t)
			}
		case token.GOTO:
			if s.Label != nil {
				addEdge(cur, b.labelFor(s.Label.Name).start)
			}
		case token.FALLTHROUGH:
			// Edge added by caseClauses, which sees the clause layout.
			return cur
		}
		return nil

	default:
		// Assign, Decl, Send, IncDec, Defer, Go, Empty: plain nodes.
		cur.add(s, KindStmt)
		return cur
	}
}

// caseClauses builds the clause fan-out shared by switch and type
// switch: header → every clause, clause end → after, fallthrough →
// next clause, and header → after when no default exists.
func (b *builder) caseClauses(clauses []ast.Stmt, header *Block, label string, hasDefault bool) *Block {
	after := b.newBlock()
	if !hasDefault {
		addEdge(header, after)
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		addEdge(header, blocks[i])
	}
	b.pushLoop(label, after, nil)
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		end := b.stmts(body, blocks[i])
		if end != nil {
			if fallsThrough && i+1 < len(blocks) {
				addEdge(end, blocks[i+1])
			} else {
				addEdge(end, after)
			}
		}
	}
	b.popLoop(label)
	return after
}

// cond decomposes a condition into short-circuit control flow: each
// leaf lands in its own block with edges to the true and false
// targets (in that order).
func (b *builder) cond(e ast.Expr, cur, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, cur, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, cur, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, cur, mid, f)
			b.cond(x.Y, mid, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, cur, t, mid)
			b.cond(x.Y, mid, t, f)
			return
		}
	}
	cur.add(e, KindCond)
	addEdge(cur, t)
	addEdge(cur, f)
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) labelFor(name string) *labelTargets {
	lt, ok := b.labels[name]
	if !ok {
		lt = &labelTargets{start: b.newBlock()}
		b.labels[name] = lt
	}
	return lt
}

// pushLoop opens one break scope (loop, switch, or select). cont is
// nil for switch/select, which break out of but do not continue; the
// nil entry keeps the stacks aligned so continue resolves past it to
// the innermost enclosing loop.
func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if label != "" {
		lt := b.labelFor(label)
		lt.brk, lt.cont = brk, cont
	}
}

func (b *builder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if label != "" {
		lt := b.labels[label]
		lt.brk, lt.cont = nil, nil
	}
}

// branchTarget resolves break/continue to a block; nil when the label
// is unknown (malformed code — the type checker rejects it anyway).
func (b *builder) branchTarget(label *ast.Ident, isBreak bool) *Block {
	if label != nil {
		lt, ok := b.labels[label.Name]
		if !ok {
			return nil
		}
		if isBreak {
			return lt.brk
		}
		return lt.cont
	}
	if isBreak {
		if len(b.breaks) == 0 {
			return nil
		}
		return b.breaks[len(b.breaks)-1]
	}
	// Skip the nil entries pushed by switch/select scopes.
	for i := len(b.continues) - 1; i >= 0; i-- {
		if b.continues[i] != nil {
			return b.continues[i]
		}
	}
	return nil
}
