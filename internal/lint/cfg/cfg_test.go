package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildFunc parses src as the body of a function and builds its graph.
// src is the full function declaration, e.g. "func f() { ... }".
func buildFunc(t *testing.T, src string) *Graph {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return Build(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// nodeStrings flattens the graph's nodes to short descriptions for
// structural assertions.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func TestStraightLineReachesExit(t *testing.T) {
	g := buildFunc(t, `func f() { x := 1; _ = x }`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable in straight-line code")
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1 (implicit return)", len(g.Exit.Preds))
	}
}

func TestIfElseBothPathsMerge(t *testing.T) {
	g := buildFunc(t, `func f(c bool) int {
		if c {
			return 1
		}
		return 2
	}`)
	// Two returns, each its own edge into Exit; no fall-off edge.
	if got := len(g.Exit.Preds); got != 2 {
		t.Fatalf("exit preds = %d, want 2", got)
	}
}

func TestShortCircuitEdges(t *testing.T) {
	g := buildFunc(t, `func f(a, b bool) {
		if a && b {
			println("both")
		}
	}`)
	// The condition must be decomposed: a's block has a false edge
	// that bypasses b's block entirely.
	var aBlk, bBlk *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if id, ok := n.Syntax.(*ast.Ident); ok && n.Kind == KindCond {
				switch id.Name {
				case "a":
					aBlk = blk
				case "b":
					bBlk = blk
				}
			}
		}
	}
	if aBlk == nil || bBlk == nil {
		t.Fatal("condition not decomposed into per-operand blocks")
	}
	if aBlk == bBlk {
		t.Fatal("a and b share a block; short-circuit edge lost")
	}
	foundTrue, foundFalse := false, false
	for _, s := range aBlk.Succs {
		if s == bBlk {
			foundTrue = true
		} else {
			foundFalse = true
		}
	}
	if !foundTrue || !foundFalse {
		t.Fatalf("a's successors must include b (true) and the bypass (false); got %d succs", len(aBlk.Succs))
	}
}

func TestForLoopBackEdgeAndZeroTrip(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
		for i := 0; i < n; i++ {
			println(i)
		}
		println("after")
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The cond block must have two successors (body and after), giving
	// the zero-trip path.
	var cond *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Kind == KindCond {
				cond = blk
			}
		}
	}
	if cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("loop condition block missing or has %d succs, want 2", len(cond.Succs))
	}
	// A back edge exists: some block reachable from cond's body
	// successor leads back to cond.
	body := cond.Succs[0]
	back := false
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			if s == cond {
				back = true
				return
			}
			walk(s)
		}
	}
	walk(body)
	if !back {
		t.Fatal("no back edge to the loop condition")
	}
}

func TestRangeHeaderKindAndExit(t *testing.T) {
	g := buildFunc(t, `func f(xs []int) {
		for _, x := range xs {
			println(x)
		}
	}`)
	var head *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Kind == KindRange {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("range header not marked KindRange")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range header succs = %d, want 2 (body, after)", len(head.Succs))
	}
}

func TestPanicPathHasNoExitEdge(t *testing.T) {
	g := buildFunc(t, `func f(c bool) {
		if c {
			panic("boom")
		}
		println("ok")
	}`)
	// Exactly one path reaches Exit (the non-panic one): panic blocks
	// must not edge to Exit.
	for _, p := range g.Exit.Preds {
		for _, n := range p.Nodes {
			if es, ok := n.Syntax.(*ast.ExprStmt); ok && IsTerminalCall(es) {
				t.Fatal("panic block has an edge to Exit")
			}
		}
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
}

func TestSelectClauses(t *testing.T) {
	g := buildFunc(t, `func f(a, b chan int) int {
		select {
		case x := <-a:
			return x
		case <-b:
			return 0
		}
	}`)
	var header *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if n.Kind == KindSelect {
				header = blk
			}
		}
	}
	if header == nil {
		t.Fatal("select header missing")
	}
	if len(header.Succs) != 2 {
		t.Fatalf("select header succs = %d, want 2 clauses", len(header.Succs))
	}
	comms := 0
	for _, s := range header.Succs {
		if len(s.Nodes) > 0 && s.Nodes[0].Kind == KindComm {
			comms++
		}
	}
	if comms != 2 {
		t.Fatalf("comm-marked clause heads = %d, want 2", comms)
	}
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2 returns", len(g.Exit.Preds))
	}
}

func TestHasDefault(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p
func f(ch chan int) {
	select {
	case <-ch:
	default:
	}
	select {
	case <-ch:
	}
	switch 1 {
	default:
	}
}`
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SelectStmt, *ast.SwitchStmt:
			got = append(got, HasDefault(n))
		}
		return true
	})
	want := []bool{true, false, true}
	if len(got) != len(want) {
		t.Fatalf("saw %d statements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("HasDefault #%d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGotoAndLabelledBreak(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
	outer:
		for i := 0; i < n; i++ {
			for {
				if i > 2 {
					break outer
				}
				goto done
			}
		}
	done:
		println("done")
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable through goto/labelled break")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `func f(n int) {
		switch n {
		case 1:
			println("one")
			fallthrough
		case 2:
			println("two")
		}
	}`)
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// The fallthrough edge: the block printing "one" must reach the
	// block printing "two" without going through the switch header.
	var one, two *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			es, ok := n.Syntax.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				switch lit.Value {
				case `"one"`:
					one = blk
				case `"two"`:
					two = blk
				}
			}
		}
	}
	if one == nil || two == nil {
		t.Fatal("case bodies not found")
	}
	linked := false
	for _, s := range one.Succs {
		if s == two {
			linked = true
		}
	}
	if !linked {
		t.Fatal("fallthrough edge missing")
	}
}

// TestSolveMayAnalysis runs a tiny may-analysis: bit 0 is set by any
// call to set() and cleared by any call to clear(); the exit state
// must reflect the union over paths.
func TestSolveMayAnalysis(t *testing.T) {
	transfer := func(n Node, s uint64) uint64 {
		InspectNode(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "set":
					s |= 1
				case "clear":
					s &^= 1
				}
			}
			return true
		})
		return s
	}
	join := func(a, b uint64) uint64 { return a | b }

	cases := []struct {
		name string
		src  string
		want uint64
	}{
		{"cleared on all paths", `func f(c bool) {
			set()
			if c { clear() } else { clear() }
		}`, 0},
		{"missed on one path", `func f(c bool) {
			set()
			if c { clear() }
		}`, 1},
		{"early return leaks", `func f(c bool) {
			set()
			if c { return }
			clear()
		}`, 1},
		{"panic path owes nothing", `func f(c bool) {
			set()
			if c { panic("x") }
			clear()
		}`, 0},
		{"short circuit covered", `func f(a, b bool) {
			set()
			if a && maybe(b) { clear(); return }
			clear()
		}`, 0},
		{"loop clears", `func f(n int) {
			set()
			for i := 0; i < n; i++ { clear() }
		}`, 1}, // zero-trip path skips the clear
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := buildFunc(t, c.src)
			in := Solve(g, uint64(0), transfer, join)
			got := ExitState(g, in, transfer, join)
			if got != c.want {
				t.Fatalf("exit state = %b, want %b", got, c.want)
			}
		})
	}
}

// TestSolveUnreachableIsBottom: code after a return contributes
// nothing to the exit state.
func TestSolveUnreachableIsBottom(t *testing.T) {
	g := buildFunc(t, `func f() {
		clear()
		return
		set()
	}`)
	transfer := func(n Node, s uint64) uint64 {
		InspectNode(n, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "set" {
					s |= 1
				}
			}
			return true
		})
		return s
	}
	join := func(a, b uint64) uint64 { return a | b }
	in := Solve(g, uint64(0), transfer, join)
	if got := ExitState(g, in, transfer, join); got != 0 {
		t.Fatalf("unreachable set() leaked into exit state: %b", got)
	}
}
