// Forward dataflow over a Graph: a worklist fixpoint of
//
//	in(b)  = join over p in preds(b) of out(p)
//	out(b) = transfer applied to b's nodes in order, starting from in(b)
//
// The framework is generic in the state type S. Clients must pick S so
// that its zero value is the lattice bottom (the state of an
// unreachable block), join is commutative/associative/idempotent, and
// transfer is monotone — the analyzers here use small bitsets
// ("obligation i is possibly outstanding"), for which all three hold
// by construction and the fixpoint is reached in O(blocks × bits).
//
// Defer semantics are the client's concern: a DeferStmt node arrives
// at the transfer function like any other statement. An analyzer
// checking "obligation discharged on every path to Exit" typically
// treats `defer release()` as discharging immediately — a path that
// executes the defer will release at exit, and only exit states are
// inspected — while an analyzer tracking "resource held here" must
// NOT, because the resource stays held from the defer to the actual
// return (the lockscope blocking-op rule depends on exactly this
// distinction).

package cfg

import "go/ast"

// Solve runs the fixpoint and returns the in-state of every block.
// boundary is the state entering the function. The transfer function
// receives each node with its kind; it must be pure (no reporting —
// report in a separate pass over blocks using the returned states, so
// diagnostics do not depend on fixpoint iteration order).
func Solve[S comparable](g *Graph, boundary S, transfer func(n Node, s S) S, join func(a, b S) S) map[*Block]S {
	in := make(map[*Block]S, len(g.Blocks))
	out := make(map[*Block]S, len(g.Blocks))
	in[g.Entry] = boundary

	// Iterate to fixpoint. Blocks are in construction order, which is
	// near-topological for reducible Go control flow, so a handful of
	// passes suffice; the guard bounds pathological graphs.
	maxPasses := 2*len(g.Blocks) + 4
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, blk := range g.Blocks {
			s := in[blk]
			if blk != g.Entry {
				var acc S
				first := true
				for _, p := range blk.Preds {
					if first {
						acc = out[p]
						first = false
					} else {
						acc = join(acc, out[p])
					}
				}
				s = acc
			}
			if s != in[blk] {
				in[blk] = s
				changed = true
			}
			o := FlowThrough(blk, s, transfer)
			if o != out[blk] {
				out[blk] = o
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// FlowThrough applies transfer to every node of blk starting from s,
// returning the block's out-state. Exposed so reporting passes can
// replay a block node-by-node from its solved in-state.
func FlowThrough[S any](blk *Block, s S, transfer func(n Node, s S) S) S {
	for _, n := range blk.Nodes {
		s = transfer(n, s)
	}
	return s
}

// ExitState joins the out-states of Exit's predecessors — the state
// on the function's return paths (paths ending in panic or a
// terminating call have no edge to Exit and do not contribute).
func ExitState[S comparable](g *Graph, in map[*Block]S, transfer func(n Node, s S) S, join func(a, b S) S) S {
	var acc S
	first := true
	for _, p := range g.Exit.Preds {
		o := FlowThrough(p, in[p], transfer)
		if first {
			acc, first = o, false
		} else {
			acc = join(acc, o)
		}
	}
	return acc
}

// InspectNode walks the syntax of one node for obligation scanning,
// honouring the node-kind contract: Range and Select headers are not
// descended into (their bodies are separate blocks), and nested
// function literals are opaque (their bodies are separate graphs).
// The visitor returns false to prune a subtree.
func InspectNode(n Node, visit func(ast.Node) bool) {
	inspectNode(n, false, visit)
}

// InspectNodeClosures is InspectNode but descends into nested
// function literals too — for analyses where a closure capturing a
// tracked identifier is itself an event (ctxflow treats a cancel func
// captured by a goroutine closure as escaped-to-that-closure).
func InspectNodeClosures(n Node, visit func(ast.Node) bool) {
	inspectNode(n, true, visit)
}

func inspectNode(n Node, intoFuncs bool, visit func(ast.Node) bool) {
	switch n.Kind {
	case KindRange:
		// Only the ranged expression (and key/value lhs) execute here.
		rng := n.Syntax.(*ast.RangeStmt)
		if rng.Key != nil {
			inspectPruned(rng.Key, intoFuncs, visit)
		}
		if rng.Value != nil {
			inspectPruned(rng.Value, intoFuncs, visit)
		}
		inspectPruned(rng.X, intoFuncs, visit)
	case KindSelect:
		// The header decides readiness; the comm statements and bodies
		// are their own blocks.
	default:
		inspectPruned(n.Syntax, intoFuncs, visit)
	}
}

// inspectPruned is ast.Inspect with optional function-literal pruning.
func inspectPruned(root ast.Node, intoFuncs bool, visit func(ast.Node) bool) {
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return true
		}
		if _, ok := x.(*ast.FuncLit); ok && !intoFuncs {
			return false
		}
		return visit(x)
	})
}
