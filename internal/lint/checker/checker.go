// Package checker drives a suite of analyzers over loaded packages,
// applies the repo's suppression convention, and renders findings.
//
// Suppression: a comment of the form
//
//	//lint:ignore egslint/<name>[,egslint/<name>...] reason
//
// on the offending line, or on the line directly above it, marks a
// finding as acknowledged. Suppressed findings are retained (with
// their reasons) rather than dropped, so `egslint -show-suppressed`
// and scripts/lint.sh can trend accepted lint debt the same way
// BENCH_eval.json trends performance.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

// Finding is one diagnostic, resolved to a position and suppression
// status.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the justification given in the //lint:ignore
	// directive; empty for unsuppressed findings.
	Reason string `json:"reason,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzers map[string]bool // "egslint/<name>" keys
	reason    string
}

// Run applies every analyzer to every package and returns the merged,
// deterministically ordered findings. applies filters analyzers per
// package import path (nil means all analyzers run everywhere).
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer, applies func(analyzer, importPath string) bool) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		supp := collectSuppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if applies != nil && !applies(a.Name, pkg.ImportPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{
					Analyzer: name,
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Message:  d.Message,
				}
				if s := supp.lookup(pos.Filename, pos.Line, "egslint/"+name); s != nil {
					f.Suppressed = true
					f.Reason = s.reason
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("checker: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Unsuppressed returns the findings that are not acknowledged by a
// suppression directive.
func Unsuppressed(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Suppressed returns the acknowledged findings.
func Suppressed(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// suppressionIndex maps (file, line) to the directive covering it. A
// directive on line L covers findings on L and L+1, matching the
// staticcheck convention of ignoring either the annotated line or the
// statement beneath the comment.
type suppressionIndex map[string]map[int]*suppression

func (idx suppressionIndex) lookup(file string, line int, key string) *suppression {
	byLine := idx[file]
	if byLine == nil {
		return nil
	}
	for _, l := range [2]int{line, line - 1} {
		if s := byLine[l]; s != nil && s.analyzers[key] {
			return s
		}
	}
	return nil
}

// collectSuppressions scans the package's comments for //lint:ignore
// directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*suppression)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = s
			}
		}
	}
	return idx
}

// parseDirective parses one //lint:ignore comment. It returns ok
// false for comments that are not directives. The directive grammar is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// where each check is the full "egslint/<name>" spelling; a reason is
// mandatory (an unexplained suppression is itself lint debt).
func parseDirective(text string) (*suppression, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	checks, reason, ok := strings.Cut(rest, " ")
	if !ok || strings.TrimSpace(reason) == "" {
		return nil, false
	}
	s := &suppression{analyzers: make(map[string]bool), reason: strings.TrimSpace(reason)}
	for _, c := range strings.Split(checks, ",") {
		if c = strings.TrimSpace(c); c != "" {
			s.analyzers[c] = true
		}
	}
	return s, true
}
