// Package checker drives a suite of analyzers over loaded packages,
// applies the repo's suppression convention, and renders findings.
//
// Suppression: a comment of the form
//
//	//lint:ignore egslint/<name>[,egslint/<name>...] reason
//
// on the offending line, or on the line directly above it, marks a
// finding as acknowledged. Suppressed findings are retained (with
// their reasons) rather than dropped, so `egslint -show-suppressed`
// and scripts/lint.sh can trend accepted lint debt the same way
// BENCH_eval.json trends performance.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/egs-synthesis/egs/internal/lint/analysis"
	"github.com/egs-synthesis/egs/internal/lint/loader"
)

// Finding is one diagnostic, resolved to a position and suppression
// status.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// Reason is the justification given in the //lint:ignore
	// directive; empty for unsuppressed findings.
	Reason string `json:"reason,omitempty"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Column, f.Analyzer, f.Message)
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzers map[string]bool // "egslint/<name>" keys
	checks    []string        // the keys in written order, for reporting
	reason    string
	file      string
	line      int
	matched   bool // some finding was acknowledged by this directive
}

// Directive is one //lint:ignore comment, with whether any finding in
// the run matched it. An unmatched (stale) directive means the code it
// excused has been fixed or moved: the comment is dead weight and —
// worse — would silently excuse a future, different finding on its
// line. `egslint -stale-ignores` fails on them.
type Directive struct {
	File    string   `json:"file"`
	Line    int      `json:"line"`
	Checks  []string `json:"checks"`
	Reason  string   `json:"reason"`
	Matched bool     `json:"matched"`
}

// Stale returns the directives no finding matched.
func Stale(ds []Directive) []Directive {
	var out []Directive
	for _, d := range ds {
		if !d.Matched {
			out = append(out, d)
		}
	}
	return out
}

// Run applies every analyzer to every package and returns the merged,
// deterministically ordered findings. applies filters analyzers per
// package import path (nil means all analyzers run everywhere).
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer, applies func(analyzer, importPath string) bool) ([]Finding, error) {
	findings, _, err := RunAll(pkgs, analyzers, applies)
	return findings, err
}

// RunAll is Run plus the suppression ledger: every //lint:ignore
// directive seen in the loaded packages, marked with whether it
// acknowledged at least one finding.
func RunAll(pkgs []*loader.Package, analyzers []*analysis.Analyzer, applies func(analyzer, importPath string) bool) ([]Finding, []Directive, error) {
	var findings []Finding
	var allSupp []*suppression
	for _, pkg := range pkgs {
		supp := collectSuppressions(pkg.Fset, pkg.Files)
		for _, byLine := range supp {
			for _, s := range byLine {
				allSupp = append(allSupp, s)
			}
		}
		for _, a := range analyzers {
			if applies != nil && !applies(a.Name, pkg.ImportPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{
					Analyzer: name,
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Message:  d.Message,
				}
				if s := supp.lookup(pos.Filename, pos.Line, "egslint/"+name); s != nil {
					f.Suppressed = true
					f.Reason = s.reason
					s.matched = true
				}
				findings = append(findings, f)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("checker: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	// Render the suppression ledger. A file shared by several loaded
	// packages (a package and its external test) would list its
	// directives twice; dedupe by position, keeping the matched one.
	byPos := map[string]*Directive{}
	for _, s := range allSupp {
		key := fmt.Sprintf("%s:%d", s.file, s.line)
		if prev, ok := byPos[key]; ok {
			prev.Matched = prev.Matched || s.matched
			continue
		}
		byPos[key] = &Directive{File: s.file, Line: s.line, Checks: s.checks, Reason: s.reason, Matched: s.matched}
	}
	dirs := make([]Directive, 0, len(byPos))
	for _, d := range byPos {
		dirs = append(dirs, *d)
	}
	sort.Slice(dirs, func(i, j int) bool {
		if dirs[i].File != dirs[j].File {
			return dirs[i].File < dirs[j].File
		}
		return dirs[i].Line < dirs[j].Line
	})
	return findings, dirs, nil
}

// Unsuppressed returns the findings that are not acknowledged by a
// suppression directive.
func Unsuppressed(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Suppressed returns the acknowledged findings.
func Suppressed(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// suppressionIndex maps (file, line) to the directive covering it. A
// directive on line L covers findings on L and L+1, matching the
// staticcheck convention of ignoring either the annotated line or the
// statement beneath the comment.
type suppressionIndex map[string]map[int]*suppression

func (idx suppressionIndex) lookup(file string, line int, key string) *suppression {
	byLine := idx[file]
	if byLine == nil {
		return nil
	}
	for _, l := range [2]int{line, line - 1} {
		if s := byLine[l]; s != nil && s.analyzers[key] {
			return s
		}
	}
	return nil
}

// collectSuppressions scans the package's comments for //lint:ignore
// directives.
func collectSuppressions(fset *token.FileSet, files []*ast.File) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				s.file, s.line = pos.Filename, pos.Line
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*suppression)
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = s
			}
		}
	}
	return idx
}

// parseDirective parses one //lint:ignore comment. It returns ok
// false for comments that are not directives. The directive grammar is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// where each check is the full "egslint/<name>" spelling; a reason is
// mandatory (an unexplained suppression is itself lint debt).
func parseDirective(text string) (*suppression, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	checks, reason, ok := strings.Cut(rest, " ")
	if !ok || strings.TrimSpace(reason) == "" {
		return nil, false
	}
	s := &suppression{analyzers: make(map[string]bool), reason: strings.TrimSpace(reason)}
	for _, c := range strings.Split(checks, ",") {
		if c = strings.TrimSpace(c); c != "" {
			s.analyzers[c] = true
			s.checks = append(s.checks, c)
		}
	}
	return s, true
}
