package checker

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		checks []string
		reason string
	}{
		{"//lint:ignore egslint/nodetsource timing stats only", true, []string{"egslint/nodetsource"}, "timing stats only"},
		{"//lint:ignore egslint/detorder,egslint/tuplealias both are fine here", true, []string{"egslint/detorder", "egslint/tuplealias"}, "both are fine here"},
		// A reason is mandatory: an unexplained suppression is lint debt.
		{"//lint:ignore egslint/detorder", false, nil, ""},
		{"//lint:ignore egslint/detorder    ", false, nil, ""},
		{"// ordinary comment", false, nil, ""},
		{"//lint:ignoreegslint/detorder x", false, nil, ""},
	}
	for _, c := range cases {
		s, ok := parseDirective(c.text)
		if ok != c.ok {
			t.Errorf("parseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if s.reason != c.reason {
			t.Errorf("parseDirective(%q) reason = %q, want %q", c.text, s.reason, c.reason)
		}
		for _, check := range c.checks {
			if !s.analyzers[check] {
				t.Errorf("parseDirective(%q) missing check %q", c.text, check)
			}
		}
		if len(s.analyzers) != len(c.checks) {
			t.Errorf("parseDirective(%q) parsed %d checks, want %d", c.text, len(s.analyzers), len(c.checks))
		}
	}
}

func TestSuppressionCoversLineAndNext(t *testing.T) {
	src := `package p

func f() {
	//lint:ignore egslint/demo directive above the statement
	_ = 1
	_ = 2
	_ = 3 //lint:ignore egslint/demo directive on the line itself
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := collectSuppressions(fset, []*ast.File{f})

	if s := idx.lookup("p.go", 5, "egslint/demo"); s == nil {
		t.Error("line below a directive should be covered")
	}
	if s := idx.lookup("p.go", 6, "egslint/demo"); s != nil {
		t.Error("a directive must not reach two lines down")
	}
	if s := idx.lookup("p.go", 8, "egslint/demo"); s == nil {
		t.Error("the directive's own line should be covered")
	}
	if s := idx.lookup("p.go", 5, "egslint/other"); s != nil {
		t.Error("a directive only suppresses the named checks")
	}
	if s := idx.lookup("q.go", 5, "egslint/demo"); s != nil {
		t.Error("suppressions are per file")
	}
}

func TestStaleDirectives(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:ignore egslint/demo this one is matched
	_ = 2 //lint:ignore egslint/demo nothing fires here anymore
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx := collectSuppressions(fset, []*ast.File{f})
	// Simulate the checker acknowledging a finding on line 4 only.
	if s := idx.lookup("p.go", 4, "egslint/demo"); s != nil {
		s.matched = true
	} else {
		t.Fatal("directive on line 4 not indexed")
	}

	var all []*suppression
	for _, byLine := range idx {
		for _, s := range byLine {
			all = append(all, s)
		}
	}
	var dirs []Directive
	for _, s := range all {
		dirs = append(dirs, Directive{File: s.file, Line: s.line, Checks: s.checks, Reason: s.reason, Matched: s.matched})
	}
	stale := Stale(dirs)
	if len(stale) != 1 {
		t.Fatalf("stale directives = %d, want 1", len(stale))
	}
	if stale[0].Line != 5 {
		t.Errorf("stale directive on line %d, want 5", stale[0].Line)
	}
	if stale[0].Reason != "nothing fires here anymore" {
		t.Errorf("stale reason = %q", stale[0].Reason)
	}
	if len(stale[0].Checks) != 1 || stale[0].Checks[0] != "egslint/demo" {
		t.Errorf("stale checks = %v", stale[0].Checks)
	}
}

func TestFindingFilters(t *testing.T) {
	fs := []Finding{
		{Analyzer: "a", File: "x.go", Line: 1, Suppressed: true, Reason: "why"},
		{Analyzer: "b", File: "x.go", Line: 2},
	}
	if got := Unsuppressed(fs); len(got) != 1 || got[0].Analyzer != "b" {
		t.Errorf("Unsuppressed = %v", got)
	}
	if got := Suppressed(fs); len(got) != 1 || got[0].Analyzer != "a" {
		t.Errorf("Suppressed = %v", got)
	}
	f := Finding{Analyzer: "detorder", File: "x.go", Line: 3, Column: 7, Message: "m"}
	if got, want := f.String(), "x.go:3:7: detorder: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
