// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a
// named check, a Pass presents one type-checked package to it, and
// diagnostics are reported through the pass.
//
// The container this repo builds in has no module proxy access, so
// the real x/tools framework cannot be vendored; this package keeps
// the same shape (Analyzer/Pass/Diagnostic, a Run function returning
// (any, error)) so the egslint analyzers can migrate to x/tools by
// swapping an import path once the dependency is available. Facts,
// SSA, and the inspector are deliberately out of scope: the egslint
// suite is syntactic + type-directed and needs none of them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in suppression
	// directives (//lint:ignore egslint/<Name> reason).
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Several egslint invariants bind only production code: tests
// may use wall clocks, randomness, and raw map iteration freely.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Funcs yields every function or method body in the package, paired
// with its declaration (nil for function literals). Analyzers that
// reason lexically about "all paths through this function" iterate
// per-body rather than per-node. Bodies of functions nested inside
// other functions are yielded separately as well, since a FuncLit has
// its own paths.
func (p *Pass) Funcs(visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			visit(fd, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					visit(nil, fl.Body)
				}
				return true
			})
		}
	}
}
