package cograph

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

// trafficDB builds the Figure 1b database.
func trafficDB(t *testing.T) (*relation.Database, map[string]relation.Const) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	intersects := s.MustDeclare("Intersects", 2, relation.Input)
	green := s.MustDeclare("GreenSignal", 1, relation.Input)
	traffic := s.MustDeclare("HasTraffic", 1, relation.Input)
	db := relation.NewDatabase(s, d)
	cs := map[string]relation.Const{}
	for _, n := range []string{"Broadway", "LibertySt", "WallSt", "Whitehall", "WilliamSt"} {
		cs[n] = d.Intern(n)
	}
	pairs := [][2]string{
		{"Broadway", "LibertySt"}, {"Broadway", "WallSt"}, {"Broadway", "Whitehall"},
		{"LibertySt", "Broadway"}, {"LibertySt", "WilliamSt"},
		{"WallSt", "Broadway"}, {"WallSt", "WilliamSt"},
		{"Whitehall", "Broadway"},
		{"WilliamSt", "LibertySt"}, {"WilliamSt", "WallSt"},
	}
	for _, p := range pairs {
		db.Insert(relation.NewTuple(intersects, cs[p[0]], cs[p[1]]))
	}
	for _, n := range []string{"Broadway", "LibertySt", "WilliamSt", "Whitehall"} {
		db.Insert(relation.NewTuple(green, cs[n]))
	}
	for _, n := range []string{"Broadway", "WallSt", "WilliamSt", "Whitehall"} {
		db.Insert(relation.NewTuple(traffic, cs[n]))
	}
	return db, cs
}

func TestGraphVerticesAndEdges(t *testing.T) {
	db, _ := trafficDB(t)
	g := New(db)
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", g.NumVertices())
	}
	// 10 binary tuples, each witnessing 2 directed edges.
	if g.NumEdges() != 20 {
		t.Errorf("NumEdges = %d, want 20", g.NumEdges())
	}
}

func TestWhitehallNeighbourhood(t *testing.T) {
	// Section 2.2: only 4 tuples refer to Whitehall.
	db, cs := trafficDB(t)
	g := New(db)
	inc := g.IncidentTuples(cs["Whitehall"])
	if len(inc) != 4 {
		t.Errorf("IncidentTuples(Whitehall) = %d tuples, want 4", len(inc))
	}
	ns := g.Neighbors(cs["Whitehall"])
	if len(ns) != 1 || ns[0] != cs["Broadway"] {
		t.Errorf("Neighbors(Whitehall) = %v, want [Broadway]", ns)
	}
	if g.Degree(cs["Broadway"]) != 3 {
		t.Errorf("Degree(Broadway) = %d, want 3", g.Degree(cs["Broadway"]))
	}
}

func TestSuccessorsMatchPaperExample(t *testing.T) {
	// Context C5 = {GreenSignal(Whitehall), HasTraffic(Whitehall)}
	// has exactly two successors: the two Intersects tuples that
	// mention Whitehall (Section 2.2).
	db, cs := trafficDB(t)
	g := New(db)
	green, _ := db.Schema.Lookup("GreenSignal")
	traffic, _ := db.Schema.Lookup("HasTraffic")
	id1, _ := db.ID(relation.NewTuple(green, cs["Whitehall"]))
	id2, _ := db.ID(relation.NewTuple(traffic, cs["Whitehall"]))
	in := map[relation.TupleID]bool{id1: true, id2: true}
	succ := g.Successors([]relation.Const{cs["Whitehall"]}, func(id relation.TupleID) bool { return in[id] })
	if len(succ) != 2 {
		t.Fatalf("successors of C5 = %d, want 2", len(succ))
	}
	for _, id := range succ {
		tu := db.Tuple(id)
		if db.Schema.Name(tu.Rel) != "Intersects" {
			t.Errorf("unexpected successor %s", tu.String(db.Schema, db.Domain))
		}
	}
}

func TestSuccessorsDeduplicate(t *testing.T) {
	db, cs := trafficDB(t)
	g := New(db)
	// Broadway and Whitehall share the Intersects tuples; successors
	// must not repeat them.
	succ := g.Successors([]relation.Const{cs["Broadway"], cs["Whitehall"]},
		func(relation.TupleID) bool { return false })
	seen := map[relation.TupleID]bool{}
	for _, id := range succ {
		if seen[id] {
			t.Fatalf("duplicate successor %d", id)
		}
		seen[id] = true
	}
}

func TestConnectedComponents(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	edge := s.MustDeclare("edge", 2, relation.Input)
	mark := s.MustDeclare("mark", 1, relation.Input)
	db := relation.NewDatabase(s, d)
	a, b := d.Intern("a"), d.Intern("b")
	c := d.Intern("c")
	lonely := d.Intern("lonely")
	db.Insert(relation.NewTuple(edge, a, b))
	db.Insert(relation.NewTuple(edge, b, c))
	db.Insert(relation.NewTuple(mark, lonely))
	g := New(db)
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 {
		t.Errorf("component sizes = %d, %d", len(comps[0]), len(comps[1]))
	}
}

func TestUnaryOnlyGraphHasNoEdges(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	mark := s.MustDeclare("mark", 1, relation.Input)
	db := relation.NewDatabase(s, d)
	db.Insert(relation.NewTuple(mark, d.Intern("a")))
	db.Insert(relation.NewTuple(mark, d.Intern("b")))
	g := New(db)
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d, want 0", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2", g.NumVertices())
	}
	// Unary incidences still drive expansion.
	a, _ := d.Lookup("a")
	if len(g.IncidentTuples(a)) != 1 {
		t.Error("unary incidence missing")
	}
}

func TestTernaryTupleEdges(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	r3 := s.MustDeclare("r3", 3, relation.Input)
	db := relation.NewDatabase(s, d)
	db.Insert(relation.NewTuple(r3, d.Intern("a"), d.Intern("b"), d.Intern("c")))
	g := New(db)
	// 3 constants, all ordered pairs: 6 directed edges.
	if g.NumEdges() != 6 {
		t.Errorf("NumEdges = %d, want 6", g.NumEdges())
	}
	a, _ := d.Lookup("a")
	if got := len(g.Neighbors(a)); got != 2 {
		t.Errorf("Neighbors(a) = %d, want 2", got)
	}
}

func TestGraphString(t *testing.T) {
	db, _ := trafficDB(t)
	g := New(db)
	out := g.String()
	if !strings.Contains(out, "Whitehall: [GreenSignal,HasTraffic,Intersects] -> Broadway") {
		t.Errorf("String output missing Whitehall line:\n%s", out)
	}
}

func TestDOTRendering(t *testing.T) {
	db, _ := trafficDB(t)
	g := New(db)
	out := g.DOT("traffic example")
	if !strings.HasPrefix(out, "graph traffic_example {") {
		t.Errorf("header wrong:\n%s", out[:40])
	}
	// Undirected dedup: Broadway--Whitehall appears once.
	if n := strings.Count(out, "Broadway -- Whitehall") + strings.Count(out, "Whitehall -- Broadway"); n != 1 {
		t.Errorf("Broadway/Whitehall edges rendered %d times, want 1", n)
	}
	if !strings.Contains(out, "GreenSignal") {
		t.Error("unary incidence labels missing")
	}
	if sanitizeDotID("Wall St") != "Wall_St" || sanitizeDotID("9x") != "_x" || sanitizeDotID("") != "_" {
		t.Error("sanitizeDotID wrong")
	}
}
