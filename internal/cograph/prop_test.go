package cograph

import (
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

// randomDB builds a random database over small relations.
func randomDB(rng *rand.Rand) *relation.Database {
	s := relation.NewSchema()
	d := relation.NewDomain()
	rels := []relation.RelID{
		s.MustDeclare("u", 1, relation.Input),
		s.MustDeclare("b", 2, relation.Input),
		s.MustDeclare("t", 3, relation.Input),
	}
	nConst := 2 + rng.Intn(5)
	consts := make([]relation.Const, nConst)
	for i := range consts {
		consts[i] = d.Intern(string(rune('a' + i)))
	}
	db := relation.NewDatabase(s, d)
	for i := 0; i < rng.Intn(15); i++ {
		rel := rels[rng.Intn(len(rels))]
		args := make([]relation.Const, s.Arity(rel))
		for j := range args {
			args[j] = consts[rng.Intn(nConst)]
		}
		db.Insert(relation.Tuple{Rel: rel, Args: args})
	}
	return db
}

// TestEdgesMatchDefinition cross-checks the graph against Equation 4
// computed by brute force: c -R-> c' exists iff some tuple of R
// contains both constants at distinct positions.
func TestEdgesMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		g := New(db)
		// Brute force edge set.
		type edge struct {
			from, to relation.Const
			rel      relation.RelID
		}
		want := map[edge]bool{}
		for _, tu := range db.All() {
			for i, a := range tu.Args {
				for j, b := range tu.Args {
					if i != j {
						want[edge{a, b, tu.Rel}] = true
					}
				}
			}
		}
		got := map[edge]bool{}
		for _, v := range g.Vertices() {
			for _, e := range g.EdgesFrom(v) {
				got[edge{e.From, e.To, e.Rel}] = true
				// The witness must actually contain both endpoints.
				w := db.Tuple(e.Witness)
				if !w.Contains(e.From) || !w.Contains(e.To) {
					t.Fatalf("trial %d: witness does not contain edge endpoints", trial)
				}
			}
		}
		for e := range want {
			if !got[e] {
				t.Fatalf("trial %d: edge missing from graph", trial)
			}
		}
		for e := range got {
			if !want[e] {
				t.Fatalf("trial %d: spurious edge in graph", trial)
			}
		}
	}
}

// TestSuccessorsMatchDefinition cross-checks Successors against its
// specification: tuples outside the context sharing a constant with
// the context's constant set.
func TestSuccessorsMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 200; trial++ {
		db := randomDB(rng)
		if db.Size() == 0 {
			continue
		}
		g := New(db)
		// Random context.
		inCtx := map[relation.TupleID]bool{}
		for _, id := range db.AllIDs() {
			if rng.Intn(2) == 0 {
				inCtx[id] = true
			}
		}
		var ctxConsts []relation.Const
		seen := map[relation.Const]bool{}
		for id := range inCtx {
			for _, c := range db.Tuple(id).Args {
				if !seen[c] {
					seen[c] = true
					ctxConsts = append(ctxConsts, c)
				}
			}
		}
		got := map[relation.TupleID]bool{}
		for _, id := range g.Successors(ctxConsts, func(id relation.TupleID) bool { return inCtx[id] }) {
			got[id] = true
		}
		// The bitset variant must agree exactly with the func-based one.
		ctxSet := relation.NewTupleSet(db.Size())
		for id := range inCtx {
			ctxSet.Add(id)
		}
		set := g.SuccessorSet(ctxConsts, ctxSet)
		if set.Len() != len(got) {
			t.Fatalf("trial %d: SuccessorSet has %d ids, Successors has %d", trial, set.Len(), len(got))
		}
		set.Iterate(func(id relation.TupleID) bool {
			if !got[id] {
				t.Fatalf("trial %d: SuccessorSet contains %d, Successors does not", trial, id)
			}
			return true
		})
		for _, id := range db.AllIDs() {
			shares := false
			for _, c := range db.Tuple(id).Args {
				if seen[c] {
					shares = true
					break
				}
			}
			want := shares && !inCtx[id]
			if got[id] != want {
				t.Fatalf("trial %d: successor disagreement on tuple %d: got %v want %v",
					trial, id, got[id], want)
			}
		}
	}
}

// TestComponentsPartitionVertices: connected components partition
// the vertex set.
func TestComponentsPartitionVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng)
		g := New(db)
		seen := map[relation.Const]int{}
		for ci, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if prev, dup := seen[v]; dup {
					t.Fatalf("trial %d: vertex in components %d and %d", trial, prev, ci)
				}
				seen[v] = ci
			}
		}
		if len(seen) != g.NumVertices() {
			t.Fatalf("trial %d: components cover %d of %d vertices", trial, len(seen), g.NumVertices())
		}
	}
}
