// Package cograph implements the constant co-occurrence graph G_I of
// Section 4.1 of the EGS paper.
//
// Vertices are the constants of the data domain D (every constant
// occurring in an input tuple). For every input tuple
// R(c1, ..., ck) and every ordered pair of positions i != j there is
// a labelled edge ci -R-> cj witnessed by that tuple, so edges are
// bi-directional as in the paper. Unary tuples contribute vertices
// with tuple incidences but no proper edges; we additionally treat
// every tuple as incident to each of its constants, which is what the
// EGS enumeration actually consumes: the successors of an enumeration
// context C are exactly the input tuples outside C that share at
// least one constant with C (this covers the paper's worked example,
// where the unary fact HasTraffic(Whitehall) extends the context
// {GreenSignal(Whitehall)}).
package cograph

import (
	"fmt"
	"sort"
	"strings"

	"github.com/egs-synthesis/egs/internal/relation"
)

// Edge is a labelled, directed co-occurrence edge c -R-> c'.
type Edge struct {
	From, To relation.Const
	Rel      relation.RelID
	Witness  relation.TupleID
}

// Graph is the constant co-occurrence graph of a database.
type Graph struct {
	db *relation.Database
	// edges grouped by source constant, deterministic order.
	edges map[relation.Const][]Edge
	// vertices in ascending order.
	vertices []relation.Const
	numEdges int
}

// New builds the co-occurrence graph of db. The database must not be
// modified afterwards.
func New(db *relation.Database) *Graph {
	g := &Graph{db: db, edges: make(map[relation.Const][]Edge)}
	seen := make(map[relation.Const]bool)
	for _, id := range db.AllIDs() {
		t := db.Tuple(id)
		for _, c := range t.Args {
			if !seen[c] {
				seen[c] = true
				g.vertices = append(g.vertices, c)
			}
		}
		for i, a := range t.Args {
			for j, b := range t.Args {
				if i == j {
					continue
				}
				g.edges[a] = append(g.edges[a], Edge{From: a, To: b, Rel: t.Rel, Witness: id})
				g.numEdges++
			}
		}
	}
	sort.Slice(g.vertices, func(i, j int) bool { return g.vertices[i] < g.vertices[j] })
	return g
}

// Vertices returns the constants of the graph in ascending id order.
// The returned slice is shared; do not mutate.
func (g *Graph) Vertices() []relation.Const { return g.vertices }

// NumVertices reports |D| restricted to constants that occur in
// input tuples.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges reports the number of directed labelled edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// EdgesFrom returns the edges with source c. The returned slice is
// shared; do not mutate.
func (g *Graph) EdgesFrom(c relation.Const) []Edge { return g.edges[c] }

// Neighbors returns the distinct constants adjacent to c, ascending.
func (g *Graph) Neighbors(c relation.Const) []relation.Const {
	seen := make(map[relation.Const]bool)
	var out []relation.Const
	for _, e := range g.edges[c] {
		if !seen[e.To] {
			seen[e.To] = true
			out = append(out, e.To)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IncidentTuples returns the ids of tuples mentioning constant c:
// the tuples that witness edges at c plus unary incidences. This is
// the expansion neighbourhood used by the EGS enumerator.
func (g *Graph) IncidentTuples(c relation.Const) []relation.TupleID {
	return g.db.Mentioning(c)
}

// Successors returns the ids of tuples, outside the context given by
// inContext, that share at least one constant with the context's
// constant set. This realizes Step 3(c) of Algorithm 1.
func (g *Graph) Successors(contextConsts []relation.Const, inContext func(relation.TupleID) bool) []relation.TupleID {
	seen := make(map[relation.TupleID]bool)
	var out []relation.TupleID
	for _, c := range contextConsts {
		for _, id := range g.db.Mentioning(c) {
			if seen[id] || inContext(id) {
				continue
			}
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SuccessorSet is Successors on the dense-id plane: the context is a
// bitset over tuple ids and the result is the bitset of expansion
// candidates (membership tests and dedup are both word operations, and
// the result iterates in ascending id order for free).
func (g *Graph) SuccessorSet(contextConsts []relation.Const, context *relation.TupleSet) *relation.TupleSet {
	out := relation.NewTupleSet(g.db.Size())
	for _, c := range contextConsts {
		for _, id := range g.db.Mentioning(c) {
			if !context.Has(id) {
				out.Add(id)
			}
		}
	}
	return out
}

// String renders an adjacency summary resembling Figure 1c: one line
// per vertex with its incident relations and neighbours.
func (g *Graph) String() string {
	var b strings.Builder
	s, d := g.db.Schema, g.db.Domain
	for _, v := range g.vertices {
		fmt.Fprintf(&b, "%s:", d.Name(v))
		// Unary/relation incidences.
		rels := map[string]bool{}
		for _, id := range g.db.Mentioning(v) {
			rels[s.Name(g.db.Tuple(id).Rel)] = true
		}
		names := make([]string, 0, len(rels))
		for n := range rels {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, " [%s]", strings.Join(names, ","))
		ns := g.Neighbors(v)
		if len(ns) > 0 {
			parts := make([]string, len(ns))
			for i, n := range ns {
				parts[i] = d.Name(n)
			}
			fmt.Fprintf(&b, " -> %s", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the graph in Graphviz syntax, one undirected edge per
// unordered constant pair, labelled with the witnessing relations —
// a faithful rendering of Figure 1c. Vertices carry their unary
// incidences as a second label line.
func (g *Graph) DOT(name string) string {
	s, d := g.db.Schema, g.db.Domain
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", sanitizeDotID(name))
	fmt.Fprintf(&b, "  node [shape=box];\n")
	for _, v := range g.vertices {
		rels := map[string]bool{}
		for _, id := range g.db.Mentioning(v) {
			t := g.db.Tuple(id)
			if len(t.Args) == 1 {
				rels[s.Name(t.Rel)] = true
			}
		}
		names := make([]string, 0, len(rels))
		for n := range rels {
			names = append(names, n)
		}
		sort.Strings(names)
		label := d.Name(v)
		if len(names) > 0 {
			label += "\\n" + strings.Join(names, ", ")
		}
		fmt.Fprintf(&b, "  %s [label=\"%s\"];\n", sanitizeDotID(d.Name(v)), label)
	}
	type pair struct{ a, b relation.Const }
	edgeRels := map[pair]map[string]bool{}
	for _, v := range g.vertices {
		for _, e := range g.edges[v] {
			p := pair{e.From, e.To}
			if p.b < p.a {
				p.a, p.b = p.b, p.a
			}
			if edgeRels[p] == nil {
				edgeRels[p] = map[string]bool{}
			}
			edgeRels[p][s.Name(e.Rel)] = true
		}
	}
	var pairs []pair
	for p := range edgeRels {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		var names []string
		for n := range edgeRels[p] {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  %s -- %s [label=\"%s\"];\n",
			sanitizeDotID(d.Name(p.a)), sanitizeDotID(d.Name(p.b)), strings.Join(names, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}

// sanitizeDotID turns an arbitrary constant spelling into a valid
// Graphviz identifier.
func sanitizeDotID(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// Degree returns the number of distinct neighbours of c.
func (g *Graph) Degree(c relation.Const) int { return len(g.Neighbors(c)) }

// ConnectedComponents returns the vertex sets of the connected
// components of the undirected co-occurrence graph, each sorted, in
// order of smallest member.
func (g *Graph) ConnectedComponents() [][]relation.Const {
	visited := make(map[relation.Const]bool)
	var comps [][]relation.Const
	for _, v := range g.vertices {
		if visited[v] {
			continue
		}
		var comp []relation.Const
		stack := []relation.Const{v}
		visited[v] = true
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, c)
			for _, e := range g.edges[c] {
				if !visited[e.To] {
					visited[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}
