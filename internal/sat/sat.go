// Package sat implements a small DPLL SAT solver with unit
// propagation and a cardinality (at-most-k) encoding.
//
// It is the constraint-solving substrate for the ILASP-style and
// ProSynth-style baselines of the EGS reproduction (the original
// tools delegate to clingo and Z3 respectively): hypothesis selection
// over a candidate-rule space is encoded as clauses over one boolean
// per rule, with coverage disjunctions, hard exclusions, and a
// sequential-counter cardinality bound used to minimize hypothesis
// size.
package sat

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Lit is a literal: +v for variable v, -v for its negation. Variable
// numbering starts at 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Solver is a DPLL solver. The zero value is ready to use.
type Solver struct {
	numVars int
	clauses [][]Lit
}

// ErrInterrupted reports that Solve stopped because its context was
// cancelled; satisfiability is undetermined.
var ErrInterrupted = errors.New("sat: interrupted")

// NewVar allocates a fresh variable and returns it.
func (s *Solver) NewVar() int {
	s.numVars++
	return s.numVars
}

// NumVars reports the number of allocated variables.
func (s *Solver) NumVars() int { return s.numVars }

// NumClauses reports the number of clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// AddClause adds a disjunction of literals. An empty clause makes the
// instance trivially unsatisfiable. Variables mentioned beyond the
// allocated range are allocated implicitly.
func (s *Solver) AddClause(lits ...Lit) {
	cl := make([]Lit, 0, len(lits))
	seen := make(map[Lit]bool, len(lits))
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		if seen[l] {
			continue
		}
		if seen[l.Neg()] {
			return // tautology
		}
		seen[l] = true
		cl = append(cl, l)
		if l.Var() > s.numVars {
			s.numVars = l.Var()
		}
	}
	s.clauses = append(s.clauses, cl)
}

// AddAtMost constrains at most k of the given literals to be true,
// using the sequential-counter encoding (Sinz 2005), which adds
// O(n*k) auxiliary variables and clauses and is propagation-complete.
func (s *Solver) AddAtMost(lits []Lit, k int) {
	n := len(lits)
	if k >= n {
		return
	}
	if k == 0 {
		for _, l := range lits {
			s.AddClause(l.Neg())
		}
		return
	}
	// reg[i][j] is true when at least j+1 of lits[0..i] are true.
	reg := make([][]int, n-1)
	for i := range reg {
		reg[i] = make([]int, k)
		for j := range reg[i] {
			reg[i][j] = s.NewVar()
		}
	}
	s.AddClause(lits[0].Neg(), Lit(reg[0][0]))
	for j := 1; j < k; j++ {
		s.AddClause(Lit(reg[0][j]).Neg())
	}
	for i := 1; i < n-1; i++ {
		s.AddClause(lits[i].Neg(), Lit(reg[i][0]))
		s.AddClause(Lit(reg[i-1][0]).Neg(), Lit(reg[i][0]))
		for j := 1; j < k; j++ {
			s.AddClause(lits[i].Neg(), Lit(reg[i-1][j-1]).Neg(), Lit(reg[i][j]))
			s.AddClause(Lit(reg[i-1][j]).Neg(), Lit(reg[i][j]))
		}
		s.AddClause(lits[i].Neg(), Lit(reg[i-1][k-1]).Neg())
	}
	s.AddClause(lits[n-1].Neg(), Lit(reg[n-2][k-1]).Neg())
}

// AddAtLeastOne adds the plain disjunction of the literals.
func (s *Solver) AddAtLeastOne(lits []Lit) {
	if len(lits) == 0 {
		s.AddClause() // empty clause: unsatisfiable
		return
	}
	s.AddClause(lits...)
}

// Model is a satisfying assignment: Model[v] is the value of variable
// v (index 0 unused).
type Model []bool

// Lit reports the value of literal l under the model.
func (m Model) Lit(l Lit) bool {
	v := m[l.Var()]
	if l < 0 {
		return !v
	}
	return v
}

// Solve decides satisfiability. It returns the model if satisfiable.
// The context is checked periodically; cancellation yields
// ErrInterrupted.
func (s *Solver) Solve(ctx context.Context) (Model, bool, error) {
	d := &dpll{
		ctx:     ctx,
		clauses: s.clauses,
		assign:  make([]int8, s.numVars+1),
		occur:   make([][]int, s.numVars+1),
	}
	for ci, cl := range s.clauses {
		for _, l := range cl {
			d.occur[l.Var()] = append(d.occur[l.Var()], ci)
		}
	}
	// Static branching order: most occurrences first.
	d.order = make([]int, 0, s.numVars)
	for v := 1; v <= s.numVars; v++ {
		d.order = append(d.order, v)
	}
	sort.SliceStable(d.order, func(i, j int) bool {
		return len(d.occur[d.order[i]]) > len(d.occur[d.order[j]])
	})
	ok, err := d.solve()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	m := make(Model, s.numVars+1)
	for v := 1; v <= s.numVars; v++ {
		m[v] = d.assign[v] == 1
	}
	return m, true, nil
}

type dpll struct {
	ctx     context.Context
	clauses [][]Lit
	assign  []int8 // 0 unknown, 1 true, -1 false
	occur   [][]int
	order   []int
	steps   int
	trail   []int // assigned variables in order
}

func (d *dpll) value(l Lit) int8 {
	v := d.assign[l.Var()]
	if l < 0 {
		return -v
	}
	return v
}

// propagate performs unit propagation to a fixed point under the
// current assignment. It returns false on conflict. Newly assigned
// variables are appended to the trail. Full-scan propagation is
// deliberate: the instances built by the baselines are small
// (hundreds to low thousands of clauses), and the simplicity keeps
// the solver auditable.
func (d *dpll) propagate() bool {
	for {
		changed := false
		for ci := range d.clauses {
			cl := d.clauses[ci]
			numUnknown := 0
			var unknown Lit
			satisfied := false
			for _, l := range cl {
				switch d.value(l) {
				case 1:
					satisfied = true
				case 0:
					numUnknown++
					unknown = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if numUnknown == 0 {
				return false // conflict
			}
			if numUnknown == 1 {
				d.set(unknown)
				changed = true
			}
		}
		if !changed {
			return true
		}
	}
}

func (d *dpll) set(l Lit) {
	if l < 0 {
		d.assign[l.Var()] = -1
	} else {
		d.assign[l.Var()] = 1
	}
	d.trail = append(d.trail, l.Var())
}

func (d *dpll) undoTo(mark int) {
	for len(d.trail) > mark {
		v := d.trail[len(d.trail)-1]
		d.trail = d.trail[:len(d.trail)-1]
		d.assign[v] = 0
	}
}

func (d *dpll) solve() (bool, error) {
	d.steps++
	if d.steps%256 == 0 {
		select {
		case <-d.ctx.Done():
			return false, ErrInterrupted
		default:
		}
	}
	mark := len(d.trail)
	if !d.propagate() {
		d.undoTo(mark)
		return false, nil
	}
	// Pick an unassigned variable.
	branch := 0
	for _, v := range d.order {
		if d.assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		return true, nil // all assigned, no conflict
	}
	for _, phase := range []Lit{Lit(branch), -Lit(branch)} {
		mark2 := len(d.trail)
		d.set(phase)
		ok, err := d.solve()
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
		d.undoTo(mark2)
	}
	d.undoTo(mark)
	return false, nil
}

// String summarizes the instance for debugging.
func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver{vars: %d, clauses: %d}", s.numVars, len(s.clauses))
}
