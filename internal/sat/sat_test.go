package sat

import (
	"context"
	"math/rand"
	"testing"
)

func solve(t *testing.T, s *Solver) (Model, bool) {
	t.Helper()
	m, ok, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m, ok
}

func TestTrivialSat(t *testing.T) {
	var s Solver
	a := s.NewVar()
	s.AddClause(Lit(a))
	m, ok := solve(t, &s)
	if !ok || !m.Lit(Lit(a)) {
		t.Fatalf("ok=%v model=%v", ok, m)
	}
}

func TestTrivialUnsat(t *testing.T) {
	var s Solver
	a := s.NewVar()
	s.AddClause(Lit(a))
	s.AddClause(-Lit(a))
	if _, ok := solve(t, &s); ok {
		t.Fatal("contradiction reported sat")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	var s Solver
	s.AddClause()
	if _, ok := solve(t, &s); ok {
		t.Fatal("empty clause reported sat")
	}
}

func TestNoClausesSat(t *testing.T) {
	var s Solver
	s.NewVar()
	if _, ok := solve(t, &s); !ok {
		t.Fatal("empty instance reported unsat")
	}
}

func TestTautologyDropped(t *testing.T) {
	var s Solver
	a := s.NewVar()
	s.AddClause(Lit(a), -Lit(a))
	if s.NumClauses() != 0 {
		t.Errorf("tautology stored: %d clauses", s.NumClauses())
	}
}

func TestImplicationChain(t *testing.T) {
	var s Solver
	const n = 20
	vs := make([]int, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	s.AddClause(Lit(vs[0]))
	for i := 0; i+1 < n; i++ {
		s.AddClause(-Lit(vs[i]), Lit(vs[i+1]))
	}
	m, ok := solve(t, &s)
	if !ok {
		t.Fatal("chain unsat")
	}
	for i := range vs {
		if !m.Lit(Lit(vs[i])) {
			t.Fatalf("var %d not propagated true", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// 4 pigeons, 3 holes: unsatisfiable.
	var s Solver
	p := make([][]int, 4)
	for i := range p {
		p[i] = make([]int, 3)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < 4; i++ {
		s.AddClause(Lit(p[i][0]), Lit(p[i][1]), Lit(p[i][2]))
	}
	for j := 0; j < 3; j++ {
		for a := 0; a < 4; a++ {
			for b := a + 1; b < 4; b++ {
				s.AddClause(-Lit(p[a][j]), -Lit(p[b][j]))
			}
		}
	}
	if _, ok := solve(t, &s); ok {
		t.Fatal("pigeonhole reported sat")
	}
}

// bruteForce decides satisfiability by enumeration; n <= 20.
func bruteForce(numVars int, clauses [][]Lit) bool {
	for mask := 0; mask < 1<<numVars; mask++ {
		ok := true
		for _, cl := range clauses {
			clauseSat := false
			for _, l := range cl {
				v := l.Var()
				val := mask&(1<<(v-1)) != 0
				if (l > 0) == val {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		numVars := 1 + rng.Intn(10)
		numClauses := rng.Intn(30)
		var s Solver
		for i := 0; i < numVars; i++ {
			s.NewVar()
		}
		clauses := make([][]Lit, 0, numClauses)
		for i := 0; i < numClauses; i++ {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, 0, width)
			for j := 0; j < width; j++ {
				l := Lit(1 + rng.Intn(numVars))
				if rng.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		m, got, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(numVars, clauses)
		if got != want {
			t.Fatalf("trial %d: solver=%v brute=%v (%d vars, %d clauses)", trial, got, want, numVars, numClauses)
		}
		if got {
			// The model must actually satisfy every clause.
			for _, cl := range clauses {
				sat := false
				for _, l := range cl {
					if m.Lit(l) {
						sat = true
						break
					}
				}
				if !sat {
					t.Fatalf("trial %d: returned model violates a clause", trial)
				}
			}
		}
	}
}

func TestAtMostExact(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for k := 0; k <= n; k++ {
			var s Solver
			lits := make([]Lit, n)
			for i := range lits {
				lits[i] = Lit(s.NewVar())
			}
			s.AddAtMost(lits, k)
			// Force exactly j of them true for each j and check
			// satisfiability matches j <= k.
			for j := 0; j <= n; j++ {
				var s2 Solver
				lits2 := make([]Lit, n)
				for i := range lits2 {
					lits2[i] = Lit(s2.NewVar())
				}
				s2.AddAtMost(lits2, k)
				for i := 0; i < n; i++ {
					if i < j {
						s2.AddClause(lits2[i])
					} else {
						s2.AddClause(lits2[i].Neg())
					}
				}
				_, ok := solve(t, &s2)
				if want := j <= k; ok != want {
					t.Errorf("n=%d k=%d j=%d: sat=%v want %v", n, k, j, ok, want)
				}
			}
		}
	}
}

func TestAtMostWithSearch(t *testing.T) {
	// AtMost(2) of 5 vars plus AtLeastOne over two disjoint pairs.
	var s Solver
	lits := make([]Lit, 5)
	for i := range lits {
		lits[i] = Lit(s.NewVar())
	}
	s.AddAtMost(lits, 2)
	s.AddAtLeastOne([]Lit{lits[0], lits[1]})
	s.AddAtLeastOne([]Lit{lits[2], lits[3]})
	m, ok := solve(t, &s)
	if !ok {
		t.Fatal("unsat")
	}
	count := 0
	for _, l := range lits {
		if m.Lit(l) {
			count++
		}
	}
	if count > 2 {
		t.Errorf("model sets %d lits, bound was 2", count)
	}
}

func TestAtLeastOneEmpty(t *testing.T) {
	var s Solver
	s.AddAtLeastOne(nil)
	if _, ok := solve(t, &s); ok {
		t.Fatal("empty at-least-one reported sat")
	}
}

func TestCancellation(t *testing.T) {
	var s Solver
	// A hard instance: pigeonhole 7 into 6.
	const P, H = 7, 6
	p := make([][]int, P)
	for i := range p {
		p[i] = make([]int, H)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < P; i++ {
		cl := make([]Lit, H)
		for j := 0; j < H; j++ {
			cl[j] = Lit(p[i][j])
		}
		s.AddClause(cl...)
	}
	for j := 0; j < H; j++ {
		for a := 0; a < P; a++ {
			for b := a + 1; b < P; b++ {
				s.AddClause(-Lit(p[a][j]), -Lit(p[b][j]))
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Solve(ctx); err != ErrInterrupted {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestModelLitNegative(t *testing.T) {
	var s Solver
	a := s.NewVar()
	s.AddClause(-Lit(a))
	m, ok := solve(t, &s)
	if !ok {
		t.Fatal("unsat")
	}
	if m.Lit(Lit(a)) || !m.Lit(-Lit(a)) {
		t.Error("negative literal valuation wrong")
	}
}
