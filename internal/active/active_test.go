package active

import (
	"context"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// trafficPartial is the Figure 1 instance with only one positive and
// one negative label; the loop must recover the paper's concept by
// asking membership queries.
const trafficPartial = `
task traffic-interactive
closed-world false
input Intersects(2)
input GreenSignal(1)
input HasTraffic(1)
output Crashes(1)
Intersects(Broadway, LibertySt).
Intersects(Broadway, WallSt).
Intersects(Broadway, Whitehall).
Intersects(LibertySt, Broadway).
Intersects(LibertySt, WilliamSt).
Intersects(WallSt, Broadway).
Intersects(WallSt, WilliamSt).
Intersects(Whitehall, Broadway).
Intersects(WilliamSt, LibertySt).
Intersects(WilliamSt, WallSt).
GreenSignal(Broadway).
GreenSignal(LibertySt).
GreenSignal(WilliamSt).
GreenSignal(Whitehall).
HasTraffic(Broadway).
HasTraffic(WallSt).
HasTraffic(WilliamSt).
HasTraffic(Whitehall).
+Crashes(Whitehall).
-Crashes(WallSt).
`

// groundTruth answers membership queries according to the paper's
// concept: crashes happen exactly on Broadway and Whitehall.
func groundTruth(t *testing.T, tk *task.Task) Oracle {
	t.Helper()
	broadway, _ := tk.Domain.Lookup("Broadway")
	whitehall, _ := tk.Domain.Lookup("Whitehall")
	return func(tu relation.Tuple) bool {
		return len(tu.Args) == 1 && (tu.Args[0] == broadway || tu.Args[0] == whitehall)
	}
}

func TestLearnConvergesOnTraffic(t *testing.T) {
	tk, err := task.Parse(strings.NewReader(trafficPartial))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(context.Background(), tk, groundTruth(t, tk), Config{MaxRounds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("interactive loop reported unsat")
	}
	if !res.Converged {
		t.Fatalf("did not converge after %d rounds", res.Rounds)
	}
	// The final query must respect the ground truth on the training
	// input: it derives Broadway and Whitehall and no other street.
	outs := eval.UCQOutputs(res.Query, tk.Input)
	oracle := groundTruth(t, tk)
	for _, tu := range outs {
		if !oracle(tu) {
			t.Errorf("final query derives %s, which the oracle rejects",
				tu.String(tk.Schema, tk.Domain))
		}
	}
	whitehall, _ := tk.Domain.Lookup("Whitehall")
	crashes, _ := tk.Schema.Lookup("Crashes")
	if _, ok := outs[relation.NewTuple(crashes, whitehall).Key()]; !ok {
		t.Error("final query misses Crashes(Whitehall)")
	}
	if res.Rounds == 0 {
		t.Error("converged without asking anything; the partial labels should be ambiguous")
	}
	if len(res.Labels) != res.Rounds {
		t.Errorf("labels=%d rounds=%d", len(res.Labels), res.Rounds)
	}
}

func TestLearnRespectsMaxRounds(t *testing.T) {
	tk, err := task.Parse(strings.NewReader(trafficPartial))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(context.Background(), tk, groundTruth(t, tk), Config{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 1 {
		t.Errorf("rounds = %d, want <= 1", res.Rounds)
	}
	// Even without convergence a consistent query is returned.
	if len(res.Query.Rules) == 0 && !res.Unsat {
		t.Error("no query returned")
	}
}

func TestLearnRejectsClosedWorld(t *testing.T) {
	src := strings.Replace(trafficPartial, "closed-world false", "closed-world true", 1)
	src = strings.Replace(src, "-Crashes(WallSt).\n", "", 1)
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Learn(context.Background(), tk, func(relation.Tuple) bool { return false }, Config{}); err != ErrClosedWorld {
		t.Fatalf("err = %v, want ErrClosedWorld", err)
	}
}

func TestLearnAdversarialOracleMayGoUnsat(t *testing.T) {
	// An oracle that rejects everything eventually contradicts the
	// positive label... it cannot: rejecting tuples only adds
	// negatives, and the task stays realizable as long as Whitehall
	// is distinguishable. Instead check the loop terminates and the
	// result stays consistent with all acquired labels.
	tk, err := task.Parse(strings.NewReader(trafficPartial))
	if err != nil {
		t.Fatal(err)
	}
	// QuickUnsat keeps the possibly-unrealizable rounds cheap
	// (Lemma 4.2) — exactly the situation the fast path exists for.
	res, err := Learn(context.Background(), tk, func(relation.Tuple) bool { return false },
		Config{MaxRounds: 5, Options: egs.Options{QuickUnsat: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		// Acceptable: rejecting every street can make the example
		// unrealizable if Whitehall becomes indistinguishable.
		return
	}
	outs := eval.UCQOutputs(res.Query, tk.Input)
	for _, l := range res.Labels {
		_, derived := outs[l.Tuple.Key()]
		if l.Positive && !derived {
			t.Errorf("positive label %s not derived", l.Tuple.String(tk.Schema, tk.Domain))
		}
		if !l.Positive && derived {
			t.Errorf("negative label %s derived", l.Tuple.String(tk.Schema, tk.Domain))
		}
	}
}

func TestRelabelSharing(t *testing.T) {
	tk, err := task.Parse(strings.NewReader(trafficPartial))
	if err != nil {
		t.Fatal(err)
	}
	crashes, _ := tk.Schema.Lookup("Crashes")
	broadway, _ := tk.Domain.Lookup("Broadway")
	nt, err := tk.Relabel([]relation.Tuple{relation.NewTuple(crashes, broadway)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nt.Pos) != len(tk.Pos)+1 {
		t.Errorf("Pos not extended: %d", len(nt.Pos))
	}
	if nt.Input != tk.Input {
		t.Error("database not shared")
	}
	if nt.RawInputCount != tk.RawInputCount {
		t.Error("RawInputCount changed")
	}
	// Original task unchanged.
	if len(tk.Pos) != 1 {
		t.Error("original task mutated")
	}
}
