// Package active implements an interactive synthesis loop on top of
// EGS — the "interactive feedback mechanisms" direction the paper
// sketches in Section 8 as a way to reduce the amount of labelled
// data a user must provide up front.
//
// The loop works on tasks with explicit (partial) labelling:
//
//  1. synthesize a query consistent with the current labels;
//  2. ask EGS for alternative explanations of each positive tuple
//     (the top-k variant of Algorithm 1) and look for an output tuple
//     on which two alternatives disagree;
//  3. if none exists, the data pins the concept down (up to the
//     training input) — stop; otherwise ask the user's oracle to
//     label one disputed tuple, extend the example, and repeat.
//
// Each round therefore costs the user exactly one membership query,
// chosen to split the remaining version space.
package active

import (
	"context"
	"errors"
	"sort"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// Oracle answers membership queries: is the given output tuple
// desirable? It stands in for the user.
type Oracle func(t relation.Tuple) bool

// Config tunes the loop.
type Config struct {
	// MaxRounds caps oracle interactions (default 10).
	MaxRounds int
	// Alternatives is how many explanations to request per positive
	// tuple when hunting for disagreement (default 4).
	Alternatives int
	// Options forwards to the core synthesizer.
	Options egs.Options
}

// Labeled records one oracle interaction.
type Labeled struct {
	Tuple    relation.Tuple
	Positive bool
}

// Result is the outcome of the interactive loop.
type Result struct {
	// Query is consistent with the original labels plus everything
	// the oracle answered.
	Query query.UCQ
	// Unsat reports that the labels (original or acquired) admit no
	// consistent query.
	Unsat bool
	// Converged is true when no two alternative explanations
	// disagreed on any unlabelled tuple — the concept is determined
	// up to the training input.
	Converged bool
	// Rounds is the number of oracle queries made.
	Rounds int
	// Labels lists the acquired labels in order.
	Labels []Labeled
}

// ErrClosedWorld reports a task with complete labelling, which has
// nothing for an oracle to answer.
var ErrClosedWorld = errors.New("active: closed-world tasks are fully labelled")

// Learn runs the interactive loop.
func Learn(ctx context.Context, t *task.Task, oracle Oracle, cfg Config) (Result, error) {
	if err := t.Prepare(); err != nil {
		return Result{}, err
	}
	if t.ClosedWorld {
		return Result{}, ErrClosedWorld
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 10
	}
	if cfg.Alternatives == 0 {
		cfg.Alternatives = 4
	}

	cur := t
	var res Result
	for {
		synth, err := egs.Synthesize(ctx, cur, cfg.Options)
		if err != nil {
			return Result{}, err
		}
		if synth.Unsat {
			res.Unsat = true
			return res, nil
		}
		res.Query = synth.Query

		// Phase 1: disagreement between alternative explanations.
		disputed, err := findDisputed(ctx, cur, cfg)
		if err != nil {
			return Result{}, err
		}
		// Phase 2: unlabelled predictions of the current query. At
		// convergence every derived tuple has been labelled or
		// confirmed by the oracle, so the final query agrees with
		// the oracle on the training input.
		if disputed == nil {
			disputed = findUnconfirmed(cur, synth.Query)
		}
		if disputed == nil {
			res.Converged = true
			return res, nil
		}
		if res.Rounds >= cfg.MaxRounds {
			return res, nil
		}
		res.Rounds++
		lbl := Labeled{Tuple: *disputed, Positive: oracle(*disputed)}
		res.Labels = append(res.Labels, lbl)
		if lbl.Positive {
			cur, err = cur.Relabel([]relation.Tuple{lbl.Tuple}, nil)
		} else {
			cur, err = cur.Relabel(nil, []relation.Tuple{lbl.Tuple})
		}
		if err != nil {
			return Result{}, err
		}
	}
}

// findDisputed looks for an unlabelled output tuple on which two
// alternative explanations of some positive tuple disagree. It
// returns nil when every pair of alternatives agrees everywhere.
func findDisputed(ctx context.Context, t *task.Task, cfg Config) (*relation.Tuple, error) {
	ex := t.Example()
	for _, pos := range t.Pos {
		alts, err := egs.Alternatives(ctx, t, pos, cfg.Alternatives, cfg.Options)
		if err != nil {
			return nil, err
		}
		if len(alts) < 2 {
			continue
		}
		outs := make([]*relation.TupleSet, len(alts))
		for i, r := range alts {
			outs[i] = eval.RuleOutputIDs(r, ex.DB)
		}
		// A tuple derived by some alternative but not all of them,
		// and not already labelled, is a useful membership query.
		var candidates []relation.Tuple
		seen := &relation.TupleSet{}
		for i := range outs {
			outs[i].Iterate(func(id relation.TupleID) bool {
				if !seen.Add(id) {
					return true
				}
				if ex.IsPositiveID(id) || ex.IsNegativeID(id) {
					return true
				}
				inAll := true
				for j := range outs {
					if !outs[j].Has(id) {
						inAll = false
						break
					}
				}
				if !inAll {
					candidates = append(candidates, ex.DB.TupleByID(id))
				}
				return true
			})
		}
		if len(candidates) > 0 {
			// Deterministic choice: smallest tuple.
			sort.Slice(candidates, func(i, j int) bool {
				return candidates[i].Compare(candidates[j]) < 0
			})
			return &candidates[0], nil
		}
	}
	return nil, nil
}

// findUnconfirmed returns an unlabelled tuple derived by the current
// query, smallest first, or nil when every prediction is labelled.
func findUnconfirmed(t *task.Task, q query.UCQ) *relation.Tuple {
	ex := t.Example()
	var candidates []relation.Tuple
	eval.UCQOutputIDs(q, ex.DB).Iterate(func(id relation.TupleID) bool {
		if !ex.IsPositiveID(id) && !ex.IsNegativeID(id) {
			candidates = append(candidates, ex.DB.TupleByID(id))
		}
		return true
	})
	if len(candidates) == 0 {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		return candidates[i].Compare(candidates[j]) < 0
	})
	return &candidates[0]
}
