package enumerative

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

func load(t *testing.T, src string) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

const twoHopSrc = `
task twohop
closed-world true
input edge(2)
output out(2)
edge(a, b).
edge(b, c).
edge(c, d).
+out(a, c).
+out(b, d).
`

func TestEnumerateTwoHop(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v (%s)", res.Status, res.Detail)
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
	// Size-ordered enumeration finds the minimal 2-literal rule.
	if got := res.Query.Rules[0].Size(); got != 2 {
		t.Errorf("rule size = %d, want 2", got)
	}
}

func TestIndistinguishabilityPrunesWork(t *testing.T) {
	tkPlain := load(t, twoHopSrc)
	plain, err := (&Synthesizer{}).Synthesize(context.Background(), tkPlain)
	if err != nil {
		t.Fatal(err)
	}
	tkOpt := load(t, twoHopSrc)
	opt, err := (&Synthesizer{Indistinguishability: true}).Synthesize(context.Background(), tkOpt)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Status != synth.Sat || opt.Status != synth.Sat {
		t.Fatal("both configurations should solve")
	}
	// Both count enumerated candidates in Detail; with pruning the
	// count must not exceed the plain one.
	if candidates(t, opt.Detail) > candidates(t, plain.Detail) {
		t.Errorf("indistinguishability increased work: %q vs %q", opt.Detail, plain.Detail)
	}
}

func candidates(t *testing.T, detail string) int {
	t.Helper()
	fields := strings.Fields(detail)
	if len(fields) == 0 {
		t.Fatalf("bad detail %q", detail)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		t.Fatalf("bad detail %q", detail)
	}
	return n
}

func TestExhaustedWithinBounds(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{MaxSize: 1, MaxVars: 2}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
}

func TestUnionDivideAndConquer(t *testing.T) {
	src := `
task u
closed-world true
input p(1)
input q(1)
output out(1)
p(a).
q(b).
+out(a).
+out(b).
`
	tk := load(t, src)
	res, err := (&Synthesizer{Indistinguishability: true}).Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat || len(res.Query.Rules) != 2 {
		t.Fatalf("status=%v rules=%d", res.Status, len(res.Query.Rules))
	}
}

func TestCancellation(t *testing.T) {
	tk := load(t, twoHopSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Synthesizer{}).Synthesize(ctx, tk); err == nil {
		t.Skip("solved before first cancellation check")
	}
}

func TestNames(t *testing.T) {
	if (&Synthesizer{}).Name() != "enumerative" {
		t.Error("plain name wrong")
	}
	if (&Synthesizer{Indistinguishability: true}).Name() != "enumerative+indist" {
		t.Error("optimized name wrong")
	}
}
