// Package enumerative implements the naive syntax-guided baseline
// sketched in Section 2.1 of the EGS paper: enumerate candidate
// conjunctive queries in order of increasing size until one is
// consistent with the examples.
//
// Two standard optimizations from the syntax-guided literature are
// included so the baseline is honest rather than a strawman:
//
//   - canonical enumeration: candidates are generated modulo variable
//     renaming and body order (the same machinery as package modes);
//   - the indistinguishability optimization (TRANSIT, Udupa et al.):
//     two candidates producing identical outputs on the given inputs
//     are equivalent, so only the first representative of each output
//     signature is retained as the search deepens.
//
// Unions are handled by the divide-and-conquer loop over unexplained
// positive tuples. Like every syntax-guided tool, the enumerator
// bounds its space (body size and variable count), so a fruitless
// search yields Exhausted rather than an unrealizability proof.
package enumerative

import (
	"context"
	"fmt"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// Synthesizer is the naive enumerative baseline.
type Synthesizer struct {
	// MaxSize bounds the number of body literals (default 6).
	MaxSize int
	// MaxVars bounds distinct variables per rule (default 8).
	MaxVars int
	// Indistinguishability enables output-signature pruning.
	Indistinguishability bool
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string {
	if s.Indistinguishability {
		return "enumerative+indist"
	}
	return "enumerative"
}

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(ctx context.Context, t *task.Task) (synth.Result, error) {
	if err := t.Prepare(); err != nil {
		return synth.Result{}, err
	}
	maxSize := s.MaxSize
	if maxSize == 0 {
		maxSize = 6
	}
	maxVars := s.MaxVars
	if maxVars == 0 {
		maxVars = 8
	}
	ex := t.Example()
	unexplained := append([]relation.Tuple(nil), t.Pos...)
	var rules []query.Rule
	enumerated := 0
	for len(unexplained) > 0 {
		target := unexplained[0]
		e := &enumerator{
			ctx:      ctx,
			t:        t,
			ex:       ex,
			target:   target,
			targetID: ex.DB.InternTuple(target),
			maxVars:  maxVars,
			indist:   s.Indistinguishability,
			sigSeen:  make(map[string]bool),
			canSeen:  make(map[string]bool),
		}
		var found *query.Rule
		for size := 1; size <= maxSize && found == nil; size++ {
			r, ok, err := e.enumerate(size)
			if err != nil {
				return synth.Result{}, err
			}
			if ok {
				found = &r
			}
		}
		enumerated += e.count
		if found == nil {
			return synth.Result{Status: synth.Exhausted,
				Detail: fmt.Sprintf("%d candidates enumerated", enumerated)}, nil
		}
		outs := eval.RuleOutputIDs(*found, ex.DB)
		var still []relation.Tuple
		for _, u := range unexplained {
			if !outs.Has(ex.DB.InternTuple(u)) {
				still = append(still, u)
			}
		}
		unexplained = still
		rules = append(rules, *found)
	}
	return synth.Result{
		Status: synth.Sat,
		Query:  query.UCQ{Rules: rules},
		Detail: fmt.Sprintf("%d candidates enumerated", enumerated),
	}, nil
}

type enumerator struct {
	ctx      context.Context
	t        *task.Task
	ex       *task.Example
	target   relation.Tuple
	targetID relation.TupleID
	maxVars  int
	indist   bool
	sigSeen  map[string]bool
	canSeen  map[string]bool
	count    int
	steps    int
}

// enumerate searches all rules with exactly size body literals for
// one that derives the target and no negative tuple.
func (e *enumerator) enumerate(size int) (query.Rule, bool, error) {
	schema := e.t.Schema
	inputs := schema.Relations(relation.Input)
	k := len(e.target.Args)
	head := query.Literal{Rel: e.target.Rel, Args: make([]query.Term, k)}
	for i := 0; i < k; i++ {
		head.Args[i] = query.V(query.Var(i))
	}
	var body []query.Literal
	var hit query.Rule
	found := false

	var rec func(minRelIdx, usedVars int) error
	rec = func(minRelIdx, usedVars int) error {
		e.steps++
		if e.steps%1024 == 0 {
			select {
			case <-e.ctx.Done():
				return e.ctx.Err()
			default:
			}
		}
		if found {
			return nil
		}
		if len(body) == size {
			return e.consider(head, body, &hit, &found)
		}
		for ri := minRelIdx; ri < len(inputs); ri++ {
			rel := inputs[ri]
			arity := schema.Arity(rel)
			args := make([]query.Term, arity)
			var argRec func(ai, used int) error
			argRec = func(ai, used int) error {
				if found {
					return nil
				}
				if ai == arity {
					body = append(body, query.Literal{Rel: rel, Args: append([]query.Term(nil), args...)})
					err := rec(ri, used)
					body = body[:len(body)-1]
					return err
				}
				limit := used
				if used < e.maxVars {
					limit = used + 1
				}
				for v := 0; v < limit; v++ {
					args[ai] = query.V(query.Var(v))
					nu := used
					if v == used {
						nu = used + 1
					}
					if err := argRec(ai+1, nu); err != nil {
						return err
					}
				}
				return nil
			}
			if err := argRec(0, usedVars); err != nil {
				return err
			}
		}
		return nil
	}
	err := rec(0, k)
	return hit, found, err
}

// consider checks one candidate.
func (e *enumerator) consider(head query.Literal, body []query.Literal, hit *query.Rule, found *bool) error {
	r := query.Rule{Head: head, Body: append([]query.Literal(nil), body...)}
	if r.Safe() != nil {
		return nil
	}
	key := r.CanonicalKey()
	if e.canSeen[key] {
		return nil
	}
	e.canSeen[key] = true
	e.count++

	outs := eval.RuleOutputIDs(r, e.ex.DB)
	if e.indist {
		// TupleSet.Key is a canonical encoding of the id set, so it
		// doubles as the indistinguishability signature — no sorting
		// or string-joining of tuple keys required.
		sig := outs.Key()
		if e.sigSeen[sig] {
			return nil
		}
		e.sigSeen[sig] = true
	}
	if !outs.Has(e.targetID) {
		return nil
	}
	bad := false
	outs.Iterate(func(id relation.TupleID) bool {
		if e.ex.IsNegativeID(id) {
			bad = true
			return false
		}
		return true
	})
	if bad {
		return nil
	}
	*hit = r
	*found = true
	return nil
}
