package types_test

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/task"
)

// TestTypedNegationShrinksComplement is the integration check: on a
// downcast-like schema, the typed complement of subtype is the
// type x type one, not the D^2 one.
func TestTypedNegationShrinksComplement(t *testing.T) {
	src := `
task typed
closed-world true
typed-negation true
negate subtype
input subtype(2)
input pointsto(2)
output out(1)
subtype(TA, TB).
subtype(TB, TC).
pointsto(v1, o1).
pointsto(v2, o2).
pointsto(v3, o1).
+out(v1).
`
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	notSub, ok := tk.Schema.Lookup("not_subtype")
	if !ok {
		t.Fatal("not_subtype missing")
	}
	// Types: {TA,TB,TC} for subtype columns; 3x3 - 2 = 7 complements.
	if got := tk.Input.ExtentSize(notSub); got != 7 {
		t.Errorf("typed complement = %d tuples, want 7", got)
	}
	// Untyped comparison: D = 8 constants -> 64 - 2 = 62.
	src2 := strings.Replace(src, "typed-negation true", "typed-negation false", 1)
	tk2, err := task.Parse(strings.NewReader(src2))
	if err != nil {
		t.Fatal(err)
	}
	notSub2, _ := tk2.Schema.Lookup("not_subtype")
	if got := tk2.Input.ExtentSize(notSub2); got != 62 {
		t.Errorf("untyped complement = %d tuples, want 62", got)
	}
}

// TestTypedNeq checks that neq pairs only same-type constants under
// typed negation.
func TestTypedNeq(t *testing.T) {
	src := `
task tneq
closed-world true
typed-negation true
neq true
input lives(2)
output out(1)
lives(Ann, Oslo).
lives(Ben, Rome).
+out(Ann).
`
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	neq, ok := tk.Schema.Lookup("neq")
	if !ok {
		t.Fatal("neq missing")
	}
	// Two types of 2 constants each: 2 + 2 = 4 ordered unequal pairs,
	// versus 12 untyped.
	if got := tk.Input.ExtentSize(neq); got != 4 {
		t.Errorf("typed neq = %d tuples, want 4", got)
	}
}
