// Package types infers column types for an extensional database, the
// typed-domains extension sketched in Section 3.1 of the EGS paper
// ("the synthesis framework and its theoretical guarantees can be
// extended to support typed constants and typed relations").
//
// Two relation columns receive the same type when they share at
// least one constant; the relation "shares a constant" is closed
// under union (a union-find over columns seeded by each constant's
// occurrence set). Each type's domain is the set of constants
// occurring in its columns.
//
// The practical payoff is negation: Section 5.3 materializes the
// complement of a k-ary relation over D^k, which swamps the
// co-occurrence graph when D mixes, say, program variables with type
// names. With inferred column types the complement ranges over the
// product of the column domains instead, which is both smaller and
// semantically right (the downcast benchmark's not_subtype relation
// is the type x type complement, not the D^2 one).
package types

import (
	"fmt"
	"sort"

	"github.com/egs-synthesis/egs/internal/relation"
)

// TypeID identifies an inferred column type; ids are dense, 0-based.
type TypeID int32

// colKey identifies a relation column.
type colKey struct {
	rel relation.RelID
	col int
}

// Assignment is the result of type inference over a database.
type Assignment struct {
	colType    map[colKey]TypeID
	constType  map[relation.Const]TypeID
	domains    [][]relation.Const
	numColumns int
}

// Infer computes column types for db. Columns never populated by any
// tuple get fresh singleton types with empty domains.
func Infer(db *relation.Database) *Assignment {
	// Union-find over columns.
	var cols []colKey
	colIndex := map[colKey]int{}
	for _, rel := range db.Schema.All() {
		info := db.Schema.Info(rel)
		for c := 0; c < info.Arity; c++ {
			k := colKey{rel, c}
			colIndex[k] = len(cols)
			cols = append(cols, k)
		}
	}
	parent := make([]int, len(cols))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// For each constant, union every column it occurs in.
	occurs := map[relation.Const][]int{}
	for _, id := range db.AllIDs() {
		t := db.Tuple(id)
		for c, cst := range t.Args {
			occurs[cst] = append(occurs[cst], colIndex[colKey{t.Rel, c}])
		}
	}
	for _, cs := range occurs {
		for i := 1; i < len(cs); i++ {
			union(cs[0], cs[i])
		}
	}
	// Assign dense type ids per root, in first-column order.
	a := &Assignment{
		colType:    make(map[colKey]TypeID),
		constType:  make(map[relation.Const]TypeID),
		numColumns: len(cols),
	}
	rootType := map[int]TypeID{}
	for i, k := range cols {
		r := find(i)
		tid, ok := rootType[r]
		if !ok {
			tid = TypeID(len(a.domains))
			rootType[r] = tid
			a.domains = append(a.domains, nil)
		}
		a.colType[k] = tid
	}
	// Populate domains and constant types.
	seen := map[relation.Const]bool{}
	for _, id := range db.AllIDs() {
		t := db.Tuple(id)
		for c, cst := range t.Args {
			tid := a.colType[colKey{t.Rel, c}]
			if !seen[cst] {
				seen[cst] = true
				a.constType[cst] = tid
				a.domains[tid] = append(a.domains[tid], cst)
			}
		}
	}
	for _, dom := range a.domains {
		sort.Slice(dom, func(i, j int) bool { return dom[i] < dom[j] })
	}
	return a
}

// NumTypes reports the number of inferred types.
func (a *Assignment) NumTypes() int { return len(a.domains) }

// ColumnType returns the type of relation rel's column col, and
// whether the column was known to the inference.
func (a *Assignment) ColumnType(rel relation.RelID, col int) (TypeID, bool) {
	t, ok := a.colType[colKey{rel, col}]
	return t, ok
}

// ConstType returns the type of a constant, and whether the constant
// occurs in the database.
func (a *Assignment) ConstType(c relation.Const) (TypeID, bool) {
	t, ok := a.constType[c]
	return t, ok
}

// DomainOf returns the constants of the given type, ascending. The
// returned slice is shared; do not mutate.
func (a *Assignment) DomainOf(t TypeID) []relation.Const {
	if int(t) < 0 || int(t) >= len(a.domains) {
		return nil
	}
	return a.domains[t]
}

// TypeName renders a stable display name for a type.
func (a *Assignment) TypeName(t TypeID) string { return fmt.Sprintf("t%d", int32(t)) }

// String summarizes the assignment for diagnostics: one line per
// type with its domain size.
func (a *Assignment) String() string {
	s := fmt.Sprintf("%d types over %d columns\n", len(a.domains), a.numColumns)
	for i, dom := range a.domains {
		s += fmt.Sprintf("  %s: %d constants\n", a.TypeName(TypeID(i)), len(dom))
	}
	return s
}

// ComplementSize returns the number of tuples in the typed
// complement of relation rel: the product of its column domain sizes
// minus its extent. The bool result is false on overflow.
func (a *Assignment) ComplementSize(db *relation.Database, rel relation.RelID) (uint64, bool) {
	arity := db.Schema.Arity(rel)
	total := uint64(1)
	for c := 0; c < arity; c++ {
		t, ok := a.ColumnType(rel, c)
		if !ok {
			return 0, false
		}
		n := uint64(len(a.DomainOf(t)))
		if n != 0 && total > (1<<62)/n {
			return 0, false
		}
		total *= n
	}
	ext := uint64(db.ExtentSize(rel))
	if ext > total {
		return 0, true
	}
	return total - ext, true
}
