package types

import (
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

// buildDB constructs a database with clearly separated column types:
// people appear in person-columns, cities in city-columns.
func buildDB(t *testing.T) (*relation.Database, relation.RelID, relation.RelID) {
	t.Helper()
	s := relation.NewSchema()
	d := relation.NewDomain()
	lives := s.MustDeclare("lives", 2, relation.Input) // person x city
	knows := s.MustDeclare("knows", 2, relation.Input) // person x person
	db := relation.NewDatabase(s, d)
	ann, ben := d.Intern("Ann"), d.Intern("Ben")
	oslo, rome := d.Intern("Oslo"), d.Intern("Rome")
	db.Insert(relation.NewTuple(lives, ann, oslo))
	db.Insert(relation.NewTuple(lives, ben, rome))
	db.Insert(relation.NewTuple(knows, ann, ben))
	return db, lives, knows
}

func TestInferSeparatesTypes(t *testing.T) {
	db, lives, knows := buildDB(t)
	a := Infer(db)
	// People and cities must land in different types.
	pCol, ok1 := a.ColumnType(lives, 0)
	cCol, ok2 := a.ColumnType(lives, 1)
	if !ok1 || !ok2 {
		t.Fatal("columns unassigned")
	}
	if pCol == cCol {
		t.Error("person and city columns share a type")
	}
	// knows columns join with lives column 0 through Ann/Ben.
	k0, _ := a.ColumnType(knows, 0)
	k1, _ := a.ColumnType(knows, 1)
	if k0 != pCol || k1 != pCol {
		t.Errorf("knows columns typed %v/%v, want %v", k0, k1, pCol)
	}
	if a.NumTypes() < 2 {
		t.Errorf("NumTypes = %d, want >= 2", a.NumTypes())
	}
	// Domains partition the constants.
	ann, _ := db.Domain.Lookup("Ann")
	oslo, _ := db.Domain.Lookup("Oslo")
	ta, _ := a.ConstType(ann)
	to, _ := a.ConstType(oslo)
	if ta != pCol || to != cCol {
		t.Errorf("const types: Ann=%v Oslo=%v", ta, to)
	}
	if len(a.DomainOf(pCol)) != 2 || len(a.DomainOf(cCol)) != 2 {
		t.Errorf("domain sizes: %d, %d", len(a.DomainOf(pCol)), len(a.DomainOf(cCol)))
	}
}

func TestInferMergesSharedConstants(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	r1 := s.MustDeclare("r1", 1, relation.Input)
	r2 := s.MustDeclare("r2", 1, relation.Input)
	db := relation.NewDatabase(s, d)
	shared := d.Intern("x")
	db.Insert(relation.NewTuple(r1, shared))
	db.Insert(relation.NewTuple(r2, shared))
	a := Infer(db)
	t1, _ := a.ColumnType(r1, 0)
	t2, _ := a.ColumnType(r2, 0)
	if t1 != t2 {
		t.Error("columns sharing a constant got different types")
	}
}

func TestInferEmptyColumns(t *testing.T) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	empty := s.MustDeclare("empty", 2, relation.Input)
	db := relation.NewDatabase(s, d)
	a := Infer(db)
	tid, ok := a.ColumnType(empty, 0)
	if !ok {
		t.Fatal("empty column unassigned")
	}
	if len(a.DomainOf(tid)) != 0 {
		t.Error("empty column has a nonempty domain")
	}
	if _, ok := a.ConstType(relation.Const(99)); ok {
		t.Error("unknown constant typed")
	}
	if a.DomainOf(TypeID(-1)) != nil {
		t.Error("out-of-range type has a domain")
	}
}

func TestComplementSize(t *testing.T) {
	db, lives, _ := buildDB(t)
	a := Infer(db)
	// lives ranges over 2 people x 2 cities = 4 candidates, 2 present.
	n, ok := a.ComplementSize(db, lives)
	if !ok || n != 2 {
		t.Errorf("ComplementSize = %d,%v want 2,true", n, ok)
	}
}

func TestStringSummary(t *testing.T) {
	db, _, _ := buildDB(t)
	a := Infer(db)
	if !strings.Contains(a.String(), "types over") {
		t.Error("summary format changed")
	}
	if a.TypeName(TypeID(0)) != "t0" {
		t.Error("TypeName format changed")
	}
}
