package ilasp

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/modes"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

const twoHopSrc = `
task twohop
closed-world true
modes maxv=3 edge=2
input edge(2)
output out(2)
edge(a, b).
edge(b, c).
edge(c, d).
+out(a, c).
+out(b, d).
`

func load(t *testing.T, src string) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func TestSynthesizeTwoHop(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{Source: TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v (%s)", res.Status, res.Detail)
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
	// Minimality: one rule suffices.
	if len(res.Query.Rules) != 1 {
		t.Errorf("hypothesis has %d rules, want 1:\n%s",
			len(res.Query.Rules), res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestExhaustedOutsideModes(t *testing.T) {
	// maxv=2 cannot express the two-hop join, so the space holds no
	// consistent hypothesis.
	src := strings.Replace(twoHopSrc, "modes maxv=3 edge=2", "modes maxv=2 edge=1", 1)
	tk := load(t, src)
	s := &Synthesizer{Source: TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Exhausted {
		t.Fatalf("status = %v, want exhausted", res.Status)
	}
}

func TestMinimalityPrefersFewerRules(t *testing.T) {
	// Both out(x) :- p(x) and the union {q-rule, r-rule} are
	// consistent; the minimal hypothesis is the single p rule.
	src := `
task min
closed-world true
modes maxv=1 p=1 q=1 r=1
input p(1)
input q(1)
input r(1)
output out(1)
p(a).
p(b).
q(a).
r(b).
+out(a).
+out(b).
`
	tk := load(t, src)
	s := &Synthesizer{Source: TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat || len(res.Query.Rules) != 1 {
		t.Fatalf("got %d rules (%v), want minimal 1:\n%s",
			len(res.Query.Rules), res.Status, res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestSATDescentBeatsGreedy(t *testing.T) {
	// Classic set-cover trap: the greedy cover picks the big middle
	// set (inC covers 4 of 6 positives) and then needs two more
	// rules; the optimal hypothesis is the two disjoint halves. The
	// cardinality descent must find the 2-rule optimum.
	src := `
task cover
closed-world true
modes maxv=1 inA=1 inB=1 inC=1
input inA(1)
input inB(1)
input inC(1)
output out(1)
inA(p1).
inA(p2).
inA(p3).
inB(p4).
inB(p5).
inB(p6).
inC(p2).
inC(p3).
inC(p4).
inC(p5).
+out(p1).
+out(p2).
+out(p3).
+out(p4).
+out(p5).
+out(p6).
`
	tk := load(t, src)
	s := &Synthesizer{Source: TaskSpecific}
	res, err := s.Synthesize(context.Background(), tk)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != synth.Sat {
		t.Fatalf("status = %v", res.Status)
	}
	if len(res.Query.Rules) != 2 {
		t.Fatalf("hypothesis has %d rules, want the SAT-minimal 2:\n%s",
			len(res.Query.Rules), res.Query.String(tk.Schema, tk.Domain))
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
}

func TestModesForFallback(t *testing.T) {
	tk := load(t, strings.Replace(twoHopSrc, "modes maxv=3 edge=2\n", "", 1))
	if tk.Modes != nil {
		t.Fatal("modes unexpectedly parsed")
	}
	m := ModesFor(tk, TaskSpecific)
	if m.MaxVars != 10 {
		t.Errorf("fallback modes = %+v, want agnostic", m)
	}
	tk2 := load(t, twoHopSrc)
	if got := ModesFor(tk2, TaskSpecific); got.MaxVars != 3 {
		t.Errorf("task-specific modes = %+v", got)
	}
	if got := ModesFor(tk2, TaskAgnostic); got.MaxVars != 10 {
		t.Errorf("task-agnostic modes = %+v", got)
	}
}

func TestEvaluateCandidates(t *testing.T) {
	tk := load(t, twoHopSrc)
	gen := modes.Generate(context.Background(), tk, tk.Modes, 0)
	modes.SortRules(gen.Rules)
	allowed, derivers, err := EvaluateCandidates(context.Background(), tk.Example(), tk.Pos, gen.Rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(allowed) == 0 {
		t.Fatal("no allowed rules")
	}
	// Under closed-world labelling, out(x, y) :- edge(x, y) derives
	// negative tuples and must be excluded.
	for _, ri := range allowed {
		r := gen.Rules[ri]
		if r.Size() == 1 && len(r.Head.Args) == 2 &&
			r.Head.Args[0].Var == r.Body[0].Args[0].Var &&
			r.Head.Args[1].Var == r.Body[0].Args[1].Var {
			t.Errorf("copy rule wrongly allowed: %s", r.String(tk.Schema, tk.Domain))
		}
	}
	for pi := range tk.Pos {
		if len(derivers[pi]) == 0 {
			t.Errorf("positive %d has no derivers", pi)
		}
	}
}

func TestRuleCapError(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{Source: TaskAgnostic, RuleCap: 5}
	_, err := s.Synthesize(context.Background(), tk)
	if err == nil {
		t.Fatal("rule cap exceeded but no error")
	}
}

func TestDeadlinePropagates(t *testing.T) {
	tk := load(t, twoHopSrc)
	s := &Synthesizer{Source: TaskAgnostic}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := s.Synthesize(ctx, tk)
	if err == nil {
		t.Skip("agnostic space enumerated within 10ms")
	}
}

func TestNames(t *testing.T) {
	if (&Synthesizer{Source: TaskSpecific}).Name() != "ilasp-L" {
		t.Error("ilasp-L name wrong")
	}
	if (&Synthesizer{Source: TaskAgnostic}).Name() != "ilasp-F" {
		t.Error("ilasp-F name wrong")
	}
}

func TestSelectMinimalInfeasible(t *testing.T) {
	tk := load(t, twoHopSrc)
	_, status, err := SelectMinimal(context.Background(), tk, nil)
	if err != nil || status != synth.Exhausted {
		t.Errorf("empty candidate set: status=%v err=%v", status, err)
	}
	// A single rule that derives negatives leaves positives uncovered.
	copyRule := query.Rule{
		Head: query.Literal{Rel: tk.Pos[0].Rel, Args: []query.Term{query.V(0), query.V(1)}},
		Body: []query.Literal{{Rel: mustRel(t, tk, "edge"), Args: []query.Term{query.V(0), query.V(1)}}},
	}
	_, status, err = SelectMinimal(context.Background(), tk, []query.Rule{copyRule})
	if err != nil || status != synth.Exhausted {
		t.Errorf("violating-only candidates: status=%v err=%v", status, err)
	}
}

func mustRel(t *testing.T, tk *task.Task, name string) relation.RelID {
	t.Helper()
	id, ok := tk.Schema.Lookup(name)
	if !ok {
		t.Fatalf("relation %s missing", name)
	}
	return id
}
