// Package ilasp re-implements the constraint-solving baseline of the
// EGS evaluation (Section 6.2): an ILASP-style learner that phrases
// hypothesis selection over a mode-bounded candidate-rule space as a
// constraint problem.
//
// The original ILASP compiles the learning task to answer-set
// programming and delegates to clingo. For the paper's fragment —
// non-recursive unions of conjunctive queries — the encoding
// simplifies without loss of behaviour:
//
//  1. generate every candidate rule permitted by the mode
//     declarations (package modes);
//  2. evaluate each candidate once; a rule deriving any negative
//     tuple can never be part of a hypothesis (hard exclusion,
//     because unions are monotone);
//  3. select a minimal set of remaining rules covering every
//     positive tuple, solved with the SAT substrate (package sat)
//     using coverage clauses and a descending cardinality bound.
//
// Like ILASP, this baseline searches a *finite* space: when no
// hypothesis exists within the modes it reports Exhausted, which —
// as the paper emphasizes in Section 6.5 — does not prove
// unrealizability.
package ilasp

import (
	"context"
	"fmt"
	"sort"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/modes"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/sat"
	"github.com/egs-synthesis/egs/internal/synth"
	"github.com/egs-synthesis/egs/internal/task"
)

// ModeSource selects where the mode declarations come from,
// mirroring the paper's two configurations.
type ModeSource uint8

const (
	// TaskSpecific uses the task's minimal mode declaration (the
	// paper's "L" rule sets).
	TaskSpecific ModeSource = iota
	// TaskAgnostic uses the uniform declaration: every relation up
	// to 3 occurrences, up to 10 variables (the paper's "F" sets).
	TaskAgnostic
)

// Synthesizer is the ILASP-style baseline.
type Synthesizer struct {
	Source ModeSource
	// RuleCap bounds candidate generation as a safety valve
	// (0 = unlimited; generation is still bounded by the context
	// deadline, as the paper's enumerator was by its timeout).
	RuleCap int
}

// Name implements synth.Synthesizer.
func (s *Synthesizer) Name() string {
	if s.Source == TaskAgnostic {
		return "ilasp-F"
	}
	return "ilasp-L"
}

// ModesFor resolves the mode declaration for a task under the given
// source, falling back to task-agnostic modes when the task carries
// none.
func ModesFor(t *task.Task, src ModeSource) *task.ModeSpec {
	if src == TaskSpecific && t.Modes != nil {
		return t.Modes
	}
	return modes.AgnosticModes(t)
}

// Synthesize implements synth.Synthesizer.
func (s *Synthesizer) Synthesize(ctx context.Context, t *task.Task) (synth.Result, error) {
	if err := t.Prepare(); err != nil {
		return synth.Result{}, err
	}
	spec := ModesFor(t, s.Source)
	gen := modes.Generate(ctx, t, spec, s.RuleCap)
	if gen.Truncated {
		if err := ctx.Err(); err != nil {
			return synth.Result{}, err
		}
		return synth.Result{}, fmt.Errorf("ilasp: candidate rule cap %d exceeded", s.RuleCap)
	}
	modes.SortRules(gen.Rules)

	sel, status, err := SelectMinimal(ctx, t, gen.Rules)
	if err != nil {
		return synth.Result{}, err
	}
	detail := fmt.Sprintf("%d candidate rules", len(gen.Rules))
	if status != synth.Sat {
		return synth.Result{Status: status, Detail: detail}, nil
	}
	return synth.Result{Status: synth.Sat, Query: query.UCQ{Rules: sel}, Detail: detail}, nil
}

// SelectMinimal picks a minimum-cardinality subset of the candidate
// rules that covers every positive tuple and derives no negative
// tuple, via SAT with a descending at-most bound. It returns
// Exhausted when the space contains no consistent hypothesis.
func SelectMinimal(ctx context.Context, t *task.Task, candidates []query.Rule) ([]query.Rule, synth.Status, error) {
	ex := t.Example()
	allowed, derivers, err := EvaluateCandidates(ctx, ex, t.Pos, candidates)
	if err != nil {
		return nil, 0, err
	}
	// Coverage feasibility check.
	for pi := range t.Pos {
		if len(derivers[pi]) == 0 {
			return nil, synth.Exhausted, nil
		}
	}
	// Feasible upper bound: a greedy set cover. Starting the
	// cardinality descent from this small bound keeps the
	// sequential-counter encodings tiny (the bound is typically a
	// handful of rules, versus thousands of candidates).
	greedy := greedyCover(t.Pos, derivers)
	best := len(greedy)
	bestRules := make([]query.Rule, 0, best)
	for _, ri := range greedy {
		bestRules = append(bestRules, candidates[ri])
	}
	for bound := best - 1; bound >= 1; bound-- {
		var solver sat.Solver
		vars := make(map[int]sat.Lit, len(allowed))
		var all []sat.Lit
		for _, ri := range allowed {
			l := sat.Lit(solver.NewVar())
			vars[ri] = l
			all = append(all, l)
		}
		for pi := range t.Pos {
			lits := make([]sat.Lit, 0, len(derivers[pi]))
			for _, ri := range derivers[pi] {
				lits = append(lits, vars[ri])
			}
			solver.AddAtLeastOne(lits)
		}
		solver.AddAtMost(all, bound)
		model, ok, err := solver.Solve(ctx)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		var chosen []query.Rule
		for _, ri := range allowed {
			if model.Lit(vars[ri]) {
				chosen = append(chosen, candidates[ri])
			}
		}
		best = len(chosen)
		bestRules = chosen
		if best <= bound {
			bound = best // skip straight below the achieved size
		}
	}
	return bestRules, synth.Sat, nil
}

// greedyCover picks rules covering all positives by repeatedly
// choosing the rule deriving the most still-uncovered tuples. All
// positives are coverable (checked by the caller).
func greedyCover(pos []relation.Tuple, derivers [][]int) []int {
	covered := make([]bool, len(pos))
	remaining := len(pos)
	// coverage[ri] = positive indices derived by rule ri.
	coverage := map[int][]int{}
	for pi, ds := range derivers {
		for _, ri := range ds {
			coverage[ri] = append(coverage[ri], pi)
		}
	}
	var chosen []int
	for remaining > 0 {
		bestRule, bestGain := -1, 0
		for ri, ps := range coverage {
			gain := 0
			for _, pi := range ps {
				if !covered[pi] {
					gain++
				}
			}
			if gain > bestGain || (gain == bestGain && bestRule != -1 && ri < bestRule) {
				bestRule, bestGain = ri, gain
			}
		}
		if bestRule < 0 || bestGain == 0 {
			break // unreachable: caller verified coverage
		}
		chosen = append(chosen, bestRule)
		for _, pi := range coverage[bestRule] {
			if !covered[pi] {
				covered[pi] = true
				remaining--
			}
		}
		delete(coverage, bestRule)
	}
	sort.Ints(chosen)
	return chosen
}

// EvaluateCandidates evaluates every candidate rule once, returning
// the indices of rules that derive no negative tuple (allowed) and,
// for each positive tuple, the allowed rules deriving it. Outputs are
// scored on the dense-id plane: negativity and per-positive coverage
// are bitset probes against the example's interned tuple sets.
func EvaluateCandidates(ctx context.Context, ex *task.Example, pos []relation.Tuple, candidates []query.Rule) (allowed []int, derivers [][]int, err error) {
	derivers = make([][]int, len(pos))
	posIDs := make([]relation.TupleID, len(pos))
	for pi, p := range pos {
		posIDs[pi] = ex.DB.InternTuple(p)
	}
	for ri, r := range candidates {
		if ri%32 == 0 {
			select {
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			default:
			}
		}
		outs := eval.RuleOutputIDs(r, ex.DB)
		bad := false
		outs.Iterate(func(id relation.TupleID) bool {
			if ex.IsNegativeID(id) {
				bad = true
				return false
			}
			return true
		})
		if bad {
			continue
		}
		allowed = append(allowed, ri)
		for pi, pid := range posIDs {
			if outs.Has(pid) {
				derivers[pi] = append(derivers[pi], ri)
			}
		}
	}
	return allowed, derivers, nil
}
