// Package load is a deterministic, template-driven load generator for
// egs-serve and egs-router: it replays parameterized synthesis-task
// mixes against a target at a configured arrival pattern and reports
// client-side latency quantiles alongside server-side metric deltas
// (cache and singleflight hit rates, queue-wait vs solve attribution,
// per-replica routing skew). Everything random flows from one seeded
// PRNG, so a scenario replays byte-identically: the same seed produces
// the same task bodies in the same order at the same (scheduled)
// arrival offsets.
package load

import (
	"fmt"
	"math"
	"strings"
)

// prng is the same 64-bit LCG the data generator uses (Knuth MMIX
// constants, top 31 bits), so load runs are reproducible everywhere
// without math/rand's process-global state.
type prng struct {
	state uint64
}

func newPRNG(seed uint64) *prng {
	return &prng{state: seed*0x9e3779b97f4a7c15 + 1}
}

func (p *prng) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return p.state >> 33
}

// float returns a uniform float64 in [0, 1).
func (p *prng) float() float64 {
	return float64(p.next()) / float64(uint64(1)<<31)
}

// expInterval returns one exponentially distributed inter-arrival gap
// (seconds) for a Poisson process at the given rate (events/second).
func (p *prng) expInterval(rate float64) float64 {
	u := p.float()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// Mix describes how request bodies are drawn: a hot set of HotTasks
// recurring tasks hit with probability HotRatio, everything else a
// never-repeated unique task. The three canonical mixes:
//
//	stampede: HotTasks=1, HotRatio=1 — every request identical
//	miss:     HotRatio=0             — every request unique
//	mixed:    HotTasks=k, 0<HotRatio<1
type Mix struct {
	Name     string  `json:"name"`
	HotTasks int     `json:"hot_tasks"`
	HotRatio float64 `json:"hot_ratio"`
}

// MixByName resolves the canonical mix names.
func MixByName(name string) (Mix, error) {
	switch name {
	case "stampede":
		return Mix{Name: name, HotTasks: 1, HotRatio: 1}, nil
	case "miss":
		return Mix{Name: name}, nil
	case "mixed":
		return Mix{Name: name, HotTasks: 16, HotRatio: 0.5}, nil
	}
	return Mix{}, fmt.Errorf("unknown mix %q (want stampede, miss, or mixed)", name)
}

// pick returns the task index for the next request. uniq is the
// caller's monotonically increasing unique-task counter.
func (m Mix) pick(p *prng, uniq *int) int {
	if m.HotRatio > 0 && m.HotTasks > 0 && p.float() < m.HotRatio {
		return int(p.next() % uint64(m.HotTasks))
	}
	*uniq++
	return m.HotTasks + *uniq
}

// TaskBody renders the load template for one (seed, index) pair: a
// three-fact inverse-copy task over constants unique to the pair, so
// distinct indexes are distinct synthesis problems (cache misses) and
// distinct seeds occupy disjoint task spaces (back-to-back runs
// against one server do not poison each other's miss mixes). The
// intended program — child(x, y) :- parent(y, x) — is found within a
// few candidates, keeping engine time negligible next to the serving
// overheads under test.
func TaskBody(seed uint64, index int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "task load-%d-%d\nclosed-world true\ninput parent(2)\noutput child(2)\n", seed, index)
	for k := 0; k < 3; k++ {
		fmt.Fprintf(&b, "parent(P%d_%d_%d, C%d_%d_%d).\n", seed, index, k, seed, index, k)
	}
	for k := 0; k < 3; k++ {
		fmt.Fprintf(&b, "+child(C%d_%d_%d, P%d_%d_%d).\n", seed, index, k, seed, index, k)
	}
	return b.String()
}
