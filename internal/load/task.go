// Package load is a deterministic, template-driven load generator for
// egs-serve and egs-router: it replays parameterized synthesis-task
// mixes against a target at a configured arrival pattern and reports
// client-side latency quantiles alongside server-side metric deltas
// (cache and singleflight hit rates, queue-wait vs solve attribution,
// per-replica routing skew). Everything random flows from one seeded
// PRNG, so a scenario replays byte-identically: the same seed produces
// the same task bodies in the same order at the same (scheduled)
// arrival offsets.
package load

import (
	"fmt"
	"math"
	"strings"

	"github.com/egs-synthesis/egs/internal/datagen/family"
)

// prng is the same 64-bit LCG the data generator uses (Knuth MMIX
// constants, top 31 bits), so load runs are reproducible everywhere
// without math/rand's process-global state.
type prng struct {
	state uint64
}

func newPRNG(seed uint64) *prng {
	return &prng{state: seed*0x9e3779b97f4a7c15 + 1}
}

func (p *prng) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return p.state >> 33
}

// float returns a uniform float64 in [0, 1).
func (p *prng) float() float64 {
	return float64(p.next()) / float64(uint64(1)<<31)
}

// expInterval returns one exponentially distributed inter-arrival gap
// (seconds) for a Poisson process at the given rate (events/second).
func (p *prng) expInterval(rate float64) float64 {
	u := p.float()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log(1-u) / rate
}

// Mix describes how request bodies are drawn: a hot set of HotTasks
// recurring tasks hit with probability HotRatio, everything else a
// never-repeated unique task. The three canonical mixes:
//
//	stampede: HotTasks=1, HotRatio=1 — every request identical
//	miss:     HotRatio=0             — every request unique
//	mixed:    HotTasks=k, 0<HotRatio<1
type Mix struct {
	Name     string  `json:"name"`
	HotTasks int     `json:"hot_tasks"`
	HotRatio float64 `json:"hot_ratio"`
}

// MixByName resolves the canonical mix names.
func MixByName(name string) (Mix, error) {
	switch name {
	case "stampede":
		return Mix{Name: name, HotTasks: 1, HotRatio: 1}, nil
	case "miss":
		return Mix{Name: name}, nil
	case "mixed":
		return Mix{Name: name, HotTasks: 16, HotRatio: 0.5}, nil
	}
	return Mix{}, fmt.Errorf("unknown mix %q (want stampede, miss, or mixed)", name)
}

// pick returns the task index for the next request. uniq is the
// caller's monotonically increasing unique-task counter; the unique
// sequence starts at HotTasks+0, adjacent to the hot range (the old
// pre-increment skipped that first index, leaving an unused gap
// between hot and unique task IDs).
func (m Mix) pick(p *prng, uniq *int) int {
	if m.HotRatio > 0 && m.HotTasks > 0 && p.float() < m.HotRatio {
		return int(p.next() % uint64(m.HotTasks))
	}
	u := *uniq
	*uniq++
	return m.HotTasks + u
}

// TaskBody renders the load template for one (seed, index) pair: a
// three-fact inverse-copy task over constants unique to the pair, so
// distinct indexes are distinct synthesis problems (cache misses) and
// distinct seeds occupy disjoint task spaces (back-to-back runs
// against one server do not poison each other's miss mixes). The
// intended program — child(x, y) :- parent(y, x) — is found within a
// few candidates, keeping engine time negligible next to the serving
// overheads under test.
func TaskBody(seed uint64, index int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "task load-%d-%d\nclosed-world true\ninput parent(2)\noutput child(2)\n", seed, index)
	for k := 0; k < 3; k++ {
		fmt.Fprintf(&b, "parent(P%d_%d_%d, C%d_%d_%d).\n", seed, index, k, seed, index, k)
	}
	for k := 0; k < 3; k++ {
		fmt.Fprintf(&b, "+child(C%d_%d_%d, P%d_%d_%d).\n", seed, index, k, seed, index, k)
	}
	return b.String()
}

// TemplateInverseParent is the default Config.Template: the
// three-fact inverse-copy micro-task above.
const TemplateInverseParent = "inverse-parent"

// familyTemplatePrefix selects scenario-factory bodies:
// "family:<class>" draws small instances of the named program class
// from internal/datagen/family.
const familyTemplatePrefix = "family:"

// familyLoadScale is the (domain, density) the load templates use:
// small enough that solve time stays negligible next to the serving
// overheads under test (sub-millisecond per class at this scale),
// large enough to exercise real joins, unions, and negation.
var familyLoadScale = family.Scale{Domain: 12, Density: 1.5}

// resolveTemplate returns the per-index body function for one
// Config.Template value. The empty string means TemplateInverseParent.
// Family bodies derive the instance seed injectively from (seed,
// index), so hot indexes repeat byte-identical bodies and unique
// indexes are distinct synthesis problems, exactly like the
// inverse-parent template.
func resolveTemplate(name string, seed uint64) (func(index int) string, error) {
	switch {
	case name == "" || name == TemplateInverseParent:
		return func(index int) string { return TaskBody(seed, index) }, nil
	case strings.HasPrefix(name, familyTemplatePrefix):
		spec := family.Spec{
			Class:   strings.TrimPrefix(name, familyTemplatePrefix),
			Domain:  familyLoadScale.Domain,
			Density: familyLoadScale.Density,
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("template %q: %w", name, err)
		}
		return func(index int) string {
			inst, err := family.Generate(spec, seed*0x632be59bd9b4e019+uint64(index)+1)
			if err != nil {
				// Unreachable: the spec validated above and Generate
				// is deterministic, so any failure is a family bug.
				panic(fmt.Sprintf("load: family template %q index %d: %v", name, index, err))
			}
			return inst.Content
		}, nil
	}
	return nil, fmt.Errorf("unknown template %q (want %s or family:<%s>)",
		name, TemplateInverseParent, strings.Join(family.Classes(), "|"))
}
