package load

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config parameterizes one load scenario.
type Config struct {
	// Scenario names the run in the emitted JSON.
	Scenario string
	// Target is the base URL receiving POST /synthesize (a replica or
	// a router).
	Target string
	// Mode selects the arrival pattern:
	//
	//	burst:  Requests simultaneous requests, one round
	//	closed: Concurrency workers back-to-back for Duration
	//	open:   Poisson arrivals at Rate for Duration, unbounded
	//	        concurrency (the open-loop property: a slow server
	//	        does not slow the arrival process)
	Mode string
	// Requests is the burst size (burst mode only).
	Requests int
	// Concurrency is the closed-loop worker count (closed mode only).
	Concurrency int
	// Rate is the open-loop target arrival rate per second.
	Rate float64
	// Duration bounds closed and open runs.
	Duration time.Duration
	// Mix picks task bodies (see Mix).
	Mix Mix
	// Template selects the request-body source: "inverse-parent" (the
	// default, also the empty string) renders the three-fact
	// inverse-copy micro-task, "family:<class>" draws small
	// scenario-factory instances of the named program class (chain,
	// star, union, negation, typed) from internal/datagen/family.
	Template string
	// Seed drives every random draw; same seed, same run.
	Seed uint64
	// Timeout bounds one request (default 60s).
	Timeout time.Duration
	// ScrapeURLs are additional /metrics bases (the replicas behind a
	// router) whose counter deltas are aggregated into the result; the
	// Target is always scraped.
	ScrapeURLs []string
	// Client is the HTTP client (default: pooled transport).
	Client *http.Client
}

// Result is one scenario's measurement, serialized into
// BENCH_serve.json.
type Result struct {
	Scenario    string  `json:"scenario"`
	Target      string  `json:"target"`
	Mode        string  `json:"mode"`
	Mix         Mix     `json:"mix"`
	Template    string  `json:"template,omitempty"`
	Seed        uint64  `json:"seed"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency,omitempty"`
	RateTarget  float64 `json:"rate_target,omitempty"`
	DurationS   float64 `json:"duration_s"`

	OK        int     `json:"ok"`
	Rejected  int     `json:"rejected"` // HTTP 429
	Errored   int     `json:"errored"`  // transport errors and non-429 failures
	QPS       float64 `json:"qps"`      // completed OK per wall-clock second
	RejectPct float64 `json:"reject_pct"`

	// Client-observed latency quantiles (milliseconds), measured per
	// request at the generator. Convention change: since PR 10 these
	// are nearest-rank quantiles (ceil(q*n)-th smallest sample); the
	// truncating index used before under-read the tail, so
	// client_p99_ms values in BENCH_serve.json runs recorded earlier
	// sit one sample low at small request counts.
	ClientP50MS float64 `json:"client_p50_ms"`
	ClientP99MS float64 `json:"client_p99_ms"`

	// Server-side quantiles (milliseconds) derived from the scraped
	// histogram deltas: end-to-end, queue-wait, and solve attribution.
	ServerP50MS    float64 `json:"server_p50_ms,omitempty"`
	ServerP99MS    float64 `json:"server_p99_ms,omitempty"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms,omitempty"`
	SolveP99MS     float64 `json:"solve_p99_ms,omitempty"`

	// Counters aggregates selected server metric deltas over the
	// target plus every scrape URL.
	Counters map[string]float64 `json:"counters,omitempty"`
	// PerReplica is the routed-request split (router targets only).
	PerReplica map[string]float64 `json:"per_replica,omitempty"`
}

// counterKeys are the metric families whose deltas a scenario records.
var counterKeys = []string{
	"egs_cache_hits_total",
	"egs_cache_misses_total",
	"egs_singleflight_leaders_total",
	"egs_singleflight_shared_total",
	"egs_snapshot_hits_total",
	"egs_snapshot_misses_total",
	"egs_snapshot_fallbacks_total",
	"egs_assess_evals_total",
	"egs_assess_memo_hits_total",
	"egs_queue_rejections_total",
	"egs_router_retries_total",
	"egs_router_unroutable_total",
}

type sample struct {
	latency time.Duration
	status  int
	err     bool
}

// Run executes one scenario and collates the result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}

	scrapeBases := append([]string{cfg.Target}, cfg.ScrapeURLs...)
	before := make([]Snapshot, len(scrapeBases))
	for i, base := range scrapeBases {
		snap, err := Scrape(client, base+"/metrics")
		if err != nil {
			return nil, fmt.Errorf("pre-scrape %s: %w", base, err)
		}
		before[i] = snap
	}

	body, err := resolveTemplate(cfg.Template, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var samples []sample
	var elapsed time.Duration
	switch cfg.Mode {
	case "burst":
		samples, elapsed, err = runBurst(ctx, cfg, client, body)
	case "closed":
		samples, elapsed, err = runClosed(ctx, cfg, client, body)
	case "open":
		samples, elapsed, err = runOpen(ctx, cfg, client, body)
	default:
		return nil, fmt.Errorf("unknown mode %q (want burst, closed, or open)", cfg.Mode)
	}
	if err != nil {
		return nil, err
	}

	after := make([]Snapshot, len(scrapeBases))
	for i, base := range scrapeBases {
		snap, serr := Scrape(client, base+"/metrics")
		if serr != nil {
			return nil, fmt.Errorf("post-scrape %s: %w", base, serr)
		}
		after[i] = snap
	}
	deltas := make([]Snapshot, len(scrapeBases))
	for i := range scrapeBases {
		deltas[i] = Delta(before[i], after[i])
	}

	return collate(cfg, samples, elapsed, deltas), nil
}

// issue posts one task body and classifies the outcome.
func issue(ctx context.Context, client *http.Client, cfg Config, body string) sample {
	rctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()
	start := time.Now()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, cfg.Target+"/synthesize", strings.NewReader(body))
	if err != nil {
		return sample{err: true}
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		return sample{latency: time.Since(start), err: true}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{latency: time.Since(start), status: resp.StatusCode}
}

func runBurst(ctx context.Context, cfg Config, client *http.Client, body func(int) string) ([]sample, time.Duration, error) {
	if cfg.Requests <= 0 {
		return nil, 0, fmt.Errorf("burst mode needs -requests > 0")
	}
	// Draw all bodies up front (deterministic order), then release
	// every request at once.
	p := newPRNG(cfg.Seed)
	uniq := 0
	bodies := make([]string, cfg.Requests)
	for i := range bodies {
		bodies[i] = body(cfg.Mix.pick(p, &uniq))
	}
	samples := make([]sample, cfg.Requests)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-release
			samples[i] = issue(ctx, client, cfg, bodies[i])
		}(i)
	}
	start := time.Now()
	close(release)
	wg.Wait()
	return samples, time.Since(start), nil
}

func runClosed(ctx context.Context, cfg Config, client *http.Client, body func(int) string) ([]sample, time.Duration, error) {
	if cfg.Concurrency <= 0 || cfg.Duration <= 0 {
		return nil, 0, fmt.Errorf("closed mode needs -concurrency and -duration > 0")
	}
	perWorker := make([][]sample, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Worker-disjoint streams: each worker's PRNG and unique
			// space derive from (seed, worker), so the global request
			// sequence is independent of goroutine interleaving.
			p := newPRNG(cfg.Seed + uint64(w)*0x632be59bd9b4e019)
			uniq := w << 24
			for time.Now().Before(deadline) && ctx.Err() == nil {
				b := body(cfg.Mix.pick(p, &uniq))
				perWorker[w] = append(perWorker[w], issue(ctx, client, cfg, b))
			}
		}(w)
	}
	wg.Wait()
	var samples []sample
	for _, s := range perWorker {
		samples = append(samples, s...)
	}
	return samples, time.Since(start), nil
}

func runOpen(ctx context.Context, cfg Config, client *http.Client, body func(int) string) ([]sample, time.Duration, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, 0, fmt.Errorf("open mode needs -rate and -duration > 0")
	}
	p := newPRNG(cfg.Seed)
	uniq := 0
	// Precompute the whole deterministic arrival schedule and body
	// sequence so dispatch jitter cannot perturb the draws.
	var offsets []time.Duration
	var bodies []string
	for at := time.Duration(0); at < cfg.Duration; {
		at += time.Duration(p.expInterval(cfg.Rate) * float64(time.Second))
		if at >= cfg.Duration {
			break
		}
		offsets = append(offsets, at)
		bodies = append(bodies, body(cfg.Mix.pick(p, &uniq)))
	}
	samples := make([]sample, len(offsets))
	var wg sync.WaitGroup
	start := time.Now()
	for i, at := range offsets {
		if d := time.Until(start.Add(at)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return samples[:i], time.Since(start), nil
			}
		}
		// Fire-and-forget keeps arrivals open-loop: a slow response
		// never delays the next arrival.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples[i] = issue(ctx, client, cfg, bodies[i])
		}(i)
	}
	wg.Wait()
	return samples, time.Since(start), nil
}

func collate(cfg Config, samples []sample, elapsed time.Duration, deltas []Snapshot) *Result {
	r := &Result{
		Scenario:    cfg.Scenario,
		Target:      cfg.Target,
		Mode:        cfg.Mode,
		Mix:         cfg.Mix,
		Template:    cfg.Template,
		Seed:        cfg.Seed,
		Requests:    len(samples),
		Concurrency: cfg.Concurrency,
		RateTarget:  cfg.Rate,
		DurationS:   elapsed.Seconds(),
		Counters:    make(map[string]float64),
	}
	var latencies []time.Duration
	for _, s := range samples {
		switch {
		case s.err:
			r.Errored++
		case s.status == http.StatusOK:
			r.OK++
			latencies = append(latencies, s.latency)
		case s.status == http.StatusTooManyRequests:
			r.Rejected++
		default:
			r.Errored++
		}
	}
	if elapsed > 0 {
		r.QPS = float64(r.OK) / elapsed.Seconds()
	}
	if len(samples) > 0 {
		r.RejectPct = 100 * float64(r.Rejected) / float64(len(samples))
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		r.ClientP50MS = quantileMS(latencies, 0.50)
		r.ClientP99MS = quantileMS(latencies, 0.99)
	}

	for _, key := range counterKeys {
		if v := Sum(deltas, key); v != 0 {
			r.Counters[key] = v
		}
	}
	// The target's own latency histogram: the router's end-to-end view
	// when routing, the replica's otherwise.
	target := deltas[0]
	histName := "egs_router_request_seconds"
	if _, routed := target[histName+"_count"]; !routed {
		histName = "egs_synthesis_seconds"
	}
	r.ServerP50MS = 1000 * HistogramQuantile(target, histName, 0.50)
	r.ServerP99MS = 1000 * HistogramQuantile(target, histName, 0.99)
	// Queue-wait vs solve attribution aggregates over every scraped
	// replica (merged bucket deltas).
	merged := make(Snapshot)
	for _, d := range deltas {
		for k, v := range d {
			if strings.HasPrefix(k, "egs_queue_wait_seconds") || strings.HasPrefix(k, "egs_solve_seconds") {
				merged[k] += v
			}
		}
	}
	r.QueueWaitP99MS = 1000 * HistogramQuantile(merged, "egs_queue_wait_seconds", 0.99)
	r.SolveP99MS = 1000 * HistogramQuantile(merged, "egs_solve_seconds", 0.99)
	sanitizeNaNs(r)

	if per := PerLabel(target, "egs_router_requests_total", "replica"); len(per) > 0 {
		r.PerReplica = per
	}
	return r
}

// sanitizeNaNs zeroes quantiles that had no observations: NaN is not
// valid JSON.
func sanitizeNaNs(r *Result) {
	for _, f := range []*float64{&r.ServerP50MS, &r.ServerP99MS, &r.QueueWaitP99MS, &r.SolveP99MS} {
		if *f != *f {
			*f = 0
		}
	}
}

// quantileMS returns the q-quantile of sorted client latencies in
// milliseconds, using the nearest-rank convention: the smallest
// sample with at least ceil(q*n) samples at or below it. The previous
// `int(q*float64(n-1))` truncation under-read the tail — over 10
// samples it reported the 89th percentile as ClientP99MS.
func quantileMS(sorted []time.Duration, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return float64(sorted[i].Microseconds()) / 1000
}
