package load

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is one parse of a Prometheus text exposition: sample values
// keyed by "name" or `name{label="value"}` exactly as exposed.
type Snapshot map[string]float64

// Scrape fetches and parses url (a /metrics endpoint).
func Scrape(client *http.Client, url string) (Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode)
	}
	return ParsePrometheus(resp.Body)
}

// ParsePrometheus parses the text exposition format (comments and
// blank lines skipped; the trailing-timestamp form is not emitted by
// our servers and not supported).
func ParsePrometheus(r io.Reader) (Snapshot, error) {
	snap := make(Snapshot)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed metrics value in %q: %w", line, err)
		}
		snap[line[:sp]] = v
	}
	return snap, sc.Err()
}

// Delta returns after-minus-before for every key in after (keys new
// since before count from zero). Gauges subtract too; callers should
// only read counter and histogram keys from a delta.
func Delta(before, after Snapshot) Snapshot {
	d := make(Snapshot, len(after))
	for k, v := range after {
		d[k] = v - before[k]
	}
	return d
}

// Sum adds the values of key across snapshots (aggregating one metric
// over several replicas' scrapes).
func Sum(snaps []Snapshot, key string) float64 {
	total := 0.0
	for _, s := range snaps {
		total += s[key]
	}
	return total
}

// histBucket is one cumulative histogram bucket.
type histBucket struct {
	le    float64
	count float64
}

// HistogramQuantile estimates the q-quantile (0 < q < 1) of the named
// histogram within a snapshot (typically a Delta), interpolating
// linearly inside the landing bucket, as Prometheus's
// histogram_quantile does. Returns NaN when the histogram is absent or
// empty.
func HistogramQuantile(snap Snapshot, name string, q float64) float64 {
	prefix := name + `_bucket{le="`
	var buckets []histBucket
	for k, v := range snap {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		le := math.Inf(1)
		if leStr != "+Inf" {
			f, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				continue
			}
			le = f
		}
		buckets = append(buckets, histBucket{le: le, count: v})
	}
	if len(buckets) == 0 {
		return math.NaN()
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	for i, b := range buckets {
		if b.count >= rank {
			lower, lowerCount := 0.0, 0.0
			if i > 0 {
				lower, lowerCount = buckets[i-1].le, buckets[i-1].count
			}
			if math.IsInf(b.le, 1) {
				return lower // the paper's convention: clamp +Inf to the last finite bound
			}
			width := b.count - lowerCount
			if width <= 0 {
				return b.le
			}
			return lower + (b.le-lower)*(rank-lowerCount)/width
		}
	}
	return buckets[len(buckets)-1].le
}

// PerLabel extracts every sample of a labelled family, keyed by label
// value: PerLabel(d, "egs_router_requests_total", "replica") returns
// each replica's forwarded-request delta.
func PerLabel(snap Snapshot, name, label string) map[string]float64 {
	prefix := name + "{" + label + `="`
	out := make(map[string]float64)
	for k, v := range snap {
		if strings.HasPrefix(k, prefix) {
			out[strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)] = v
		}
	}
	return out
}
