package load

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/server"
)

// TestPRNGDeterminism: same seed, same stream; different seeds
// diverge.
func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(7), newPRNG(7)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := newPRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if newPRNG(7).state == c.state {
			same++
		}
		c.next()
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

// TestPRNGUniform sanity-checks float(): mean near 0.5, all in [0,1).
func TestPRNGUniform(t *testing.T) {
	p := newPRNG(42)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := p.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float() = %v outside [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("float() mean = %v, want ~0.5", mean)
	}
}

// TestExpIntervalMean checks the Poisson gap generator: at rate λ the
// mean gap must be ~1/λ.
func TestExpIntervalMean(t *testing.T) {
	p := newPRNG(3)
	const rate = 50.0
	sum := 0.0
	for i := 0; i < 20000; i++ {
		g := p.expInterval(rate)
		if g < 0 || math.IsInf(g, 0) || math.IsNaN(g) {
			t.Fatalf("expInterval = %v", g)
		}
		sum += g
	}
	if mean := sum / 20000; mean < 0.9/rate || mean > 1.1/rate {
		t.Errorf("mean gap %v, want ~%v", mean, 1/rate)
	}
}

// TestMixes checks the three canonical mixes produce the advertised
// shapes.
func TestMixes(t *testing.T) {
	stampede, _ := MixByName("stampede")
	p, uniq := newPRNG(1), 0
	for i := 0; i < 100; i++ {
		if idx := stampede.pick(p, &uniq); idx != 0 {
			t.Fatalf("stampede picked index %d, want 0", idx)
		}
	}

	miss, _ := MixByName("miss")
	p, uniq = newPRNG(1), 0
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		idx := miss.pick(p, &uniq)
		if seen[idx] {
			t.Fatalf("miss mix repeated index %d", idx)
		}
		seen[idx] = true
	}

	mixed, _ := MixByName("mixed")
	p, uniq = newPRNG(1), 0
	hot, cold := 0, 0
	for i := 0; i < 1000; i++ {
		if mixed.pick(p, &uniq) < mixed.HotTasks {
			hot++
		} else {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Errorf("mixed mix degenerate: %d hot, %d cold", hot, cold)
	}

	if _, err := MixByName("nope"); err == nil {
		t.Error("unknown mix name accepted")
	}
}

// TestTaskBodySolvable posts generated bodies to a real server: they
// must parse, synthesize sat, and distinct indexes must be distinct
// cache keys while equal indexes collide.
func TestTaskBodySolvable(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	h0 := server.RoutingHash("text/plain", []byte(TaskBody(1, 0)))
	if h1 := server.RoutingHash("text/plain", []byte(TaskBody(1, 1))); h1 == h0 {
		t.Error("distinct indexes hash identically")
	}
	if hs := server.RoutingHash("text/plain", []byte(TaskBody(2, 0))); hs == h0 {
		t.Error("distinct seeds hash identically")
	}
	if again := server.RoutingHash("text/plain", []byte(TaskBody(1, 0))); again != h0 {
		t.Error("equal (seed, index) hashes differ")
	}

	res, err := Run(context.Background(), Config{
		Scenario: "test-burst",
		Target:   ts.URL,
		Mode:     "burst",
		Requests: 8,
		Mix:      Mix{Name: "stampede", HotTasks: 1, HotRatio: 1},
		Seed:     1,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 8 || res.Errored != 0 || res.Rejected != 0 {
		t.Fatalf("burst result %+v, want 8 ok", res)
	}
	// An 8-way stampede of one task on a fresh server is one synthesis.
	if leaders := res.Counters["egs_singleflight_leaders_total"]; leaders != 1 {
		t.Errorf("singleflight leaders = %v, want 1", leaders)
	}
	if res.ClientP99MS <= 0 {
		t.Error("no client latency recorded")
	}
	if res.ServerP99MS <= 0 {
		t.Error("no server histogram quantile derived")
	}
}

// TestParsePrometheus covers the value forms our registries emit.
func TestParsePrometheus(t *testing.T) {
	text := `# HELP egs_x helper
# TYPE egs_x counter
egs_x 41
egs_vec{replica="http://a:1"} 7
egs_hist_bucket{le="0.5"} 3
egs_hist_bucket{le="+Inf"} 4
egs_hist_sum 1.25
egs_hist_count 4
egs_ratio 0.75
`
	snap, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"egs_x":                         41,
		`egs_vec{replica="http://a:1"}`: 7,
		`egs_hist_bucket{le="0.5"}`:     3,
		`egs_hist_bucket{le="+Inf"}`:    4,
		"egs_hist_sum":                  1.25,
		"egs_ratio":                     0.75,
	} {
		if snap[key] != want {
			t.Errorf("%s = %v, want %v", key, snap[key], want)
		}
	}
	per := PerLabel(snap, "egs_vec", "replica")
	if per["http://a:1"] != 7 {
		t.Errorf("PerLabel = %v", per)
	}
}

// TestHistogramQuantile checks interpolation and edge cases.
func TestHistogramQuantile(t *testing.T) {
	snap := Snapshot{
		`egs_h_bucket{le="0.1"}`:  10,
		`egs_h_bucket{le="0.2"}`:  20,
		`egs_h_bucket{le="+Inf"}`: 20,
	}
	// Median: rank 10 lands exactly on the first bucket boundary.
	if q := HistogramQuantile(snap, "egs_h", 0.5); math.Abs(q-0.1) > 1e-9 {
		t.Errorf("p50 = %v, want 0.1", q)
	}
	// p75: rank 15, halfway through the (0.1, 0.2] bucket.
	if q := HistogramQuantile(snap, "egs_h", 0.75); math.Abs(q-0.15) > 1e-9 {
		t.Errorf("p75 = %v, want 0.15", q)
	}
	if q := HistogramQuantile(snap, "absent", 0.5); !math.IsNaN(q) {
		t.Errorf("quantile of absent histogram = %v, want NaN", q)
	}
	empty := Snapshot{`egs_e_bucket{le="+Inf"}`: 0}
	if q := HistogramQuantile(empty, "egs_e", 0.5); !math.IsNaN(q) {
		t.Errorf("quantile of empty histogram = %v, want NaN", q)
	}
}

// TestDeltaAndSum covers the scrape arithmetic helpers.
func TestDeltaAndSum(t *testing.T) {
	before := Snapshot{"a": 10, "b": 1}
	after := Snapshot{"a": 15, "b": 1, "c": 2}
	d := Delta(before, after)
	if d["a"] != 5 || d["b"] != 0 || d["c"] != 2 {
		t.Errorf("Delta = %v", d)
	}
	if s := Sum([]Snapshot{{"k": 1}, {"k": 2}, {}}, "k"); s != 3 {
		t.Errorf("Sum = %v, want 3", s)
	}
}

// TestQuantileMS pins the nearest-rank convention: over ten sorted
// 1..10ms samples, p50 is the 5th smallest (5ms) and p99 the 10th
// (10ms) — the old truncating index read the 89th percentile as p99.
func TestQuantileMS(t *testing.T) {
	var sorted []time.Duration
	for ms := 1; ms <= 10; ms++ {
		sorted = append(sorted, time.Duration(ms)*time.Millisecond)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 5},
		{0.90, 9},
		{0.99, 10},
		{1.00, 10},
		{0.0001, 1},
	}
	for _, c := range cases {
		if got := quantileMS(sorted, c.q); got != c.want {
			t.Errorf("quantileMS(1..10ms, %v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := quantileMS([]time.Duration{7 * time.Millisecond}, 0.99); got != 7 {
		t.Errorf("single-sample p99 = %v, want 7", got)
	}
	if got := quantileMS(nil, 0.5); got != 0 {
		t.Errorf("empty p50 = %v, want 0", got)
	}
}

// TestMixUniqueSequenceAdjacent pins the unique-index sequence: the
// first unique task is HotTasks+0, directly adjacent to the hot
// range, and the sequence increments by one (the old pre-increment
// skipped HotTasks+0, leaving a permanent gap in replayed mixes).
func TestMixUniqueSequenceAdjacent(t *testing.T) {
	miss, _ := MixByName("miss")
	p, uniq := newPRNG(1), 0
	for i := 0; i < 5; i++ {
		if idx := miss.pick(p, &uniq); idx != i {
			t.Fatalf("miss pick %d = %d, want %d", i, idx, i)
		}
	}

	mixed, _ := MixByName("mixed")
	p, uniq = newPRNG(1), 0
	next := mixed.HotTasks
	for i := 0; i < 200; i++ {
		idx := mixed.pick(p, &uniq)
		if idx < mixed.HotTasks {
			continue
		}
		if idx != next {
			t.Fatalf("unique pick = %d, want %d (sequence must be adjacent and gap-free)", idx, next)
		}
		next++
	}
	if next == mixed.HotTasks {
		t.Fatal("mixed mix drew no unique tasks in 200 picks")
	}
}

// TestResolveTemplate covers the template registry: default and
// inverse-parent are aliases, family templates are deterministic,
// injective in index, and repeat byte-identically for hot indexes;
// unknown names and classes are rejected.
func TestResolveTemplate(t *testing.T) {
	def, err := resolveTemplate("", 1)
	if err != nil {
		t.Fatal(err)
	}
	named, err := resolveTemplate(TemplateInverseParent, 1)
	if err != nil {
		t.Fatal(err)
	}
	if def(3) != TaskBody(1, 3) || named(3) != TaskBody(1, 3) {
		t.Error("default template is not the inverse-parent body")
	}

	fam, err := resolveTemplate("family:chain", 1)
	if err != nil {
		t.Fatal(err)
	}
	if fam(0) != fam(0) {
		t.Error("family template not deterministic for equal indexes")
	}
	if fam(0) == fam(1) {
		t.Error("family template identical for distinct indexes")
	}
	fam2, err := resolveTemplate("family:chain", 2)
	if err != nil {
		t.Fatal(err)
	}
	if fam(0) == fam2(0) {
		t.Error("family template identical for distinct seeds")
	}
	if !strings.Contains(fam(0), "task fam-chain-") {
		t.Errorf("family body missing task header:\n%s", fam(0))
	}

	for _, bad := range []string{"family:nosuch", "nosuch"} {
		if _, err := resolveTemplate(bad, 1); err == nil {
			t.Errorf("template %q accepted", bad)
		}
	}
}

// TestFamilyTemplateSolvable replays a family-template burst through
// a real server: every class must synthesize OK end to end.
func TestFamilyTemplateSolvable(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for _, class := range []string{"chain", "star", "union", "negation", "typed"} {
		res, err := Run(context.Background(), Config{
			Scenario: "test-family-" + class,
			Target:   ts.URL,
			Mode:     "burst",
			Requests: 3,
			Mix:      Mix{Name: "miss"},
			Template: "family:" + class,
			Seed:     1,
			Timeout:  30 * time.Second,
		})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if res.OK != 3 || res.Errored != 0 || res.Rejected != 0 {
			t.Errorf("%s: result %+v, want 3 ok", class, res)
		}
		if res.Template != "family:"+class {
			t.Errorf("%s: result template %q not recorded", class, res.Template)
		}
	}
}
