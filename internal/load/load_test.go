package load

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/server"
)

// TestPRNGDeterminism: same seed, same stream; different seeds
// diverge.
func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(7), newPRNG(7)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
	c := newPRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if newPRNG(7).state == c.state {
			same++
		}
		c.next()
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

// TestPRNGUniform sanity-checks float(): mean near 0.5, all in [0,1).
func TestPRNGUniform(t *testing.T) {
	p := newPRNG(42)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := p.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float() = %v outside [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("float() mean = %v, want ~0.5", mean)
	}
}

// TestExpIntervalMean checks the Poisson gap generator: at rate λ the
// mean gap must be ~1/λ.
func TestExpIntervalMean(t *testing.T) {
	p := newPRNG(3)
	const rate = 50.0
	sum := 0.0
	for i := 0; i < 20000; i++ {
		g := p.expInterval(rate)
		if g < 0 || math.IsInf(g, 0) || math.IsNaN(g) {
			t.Fatalf("expInterval = %v", g)
		}
		sum += g
	}
	if mean := sum / 20000; mean < 0.9/rate || mean > 1.1/rate {
		t.Errorf("mean gap %v, want ~%v", mean, 1/rate)
	}
}

// TestMixes checks the three canonical mixes produce the advertised
// shapes.
func TestMixes(t *testing.T) {
	stampede, _ := MixByName("stampede")
	p, uniq := newPRNG(1), 0
	for i := 0; i < 100; i++ {
		if idx := stampede.pick(p, &uniq); idx != 0 {
			t.Fatalf("stampede picked index %d, want 0", idx)
		}
	}

	miss, _ := MixByName("miss")
	p, uniq = newPRNG(1), 0
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		idx := miss.pick(p, &uniq)
		if seen[idx] {
			t.Fatalf("miss mix repeated index %d", idx)
		}
		seen[idx] = true
	}

	mixed, _ := MixByName("mixed")
	p, uniq = newPRNG(1), 0
	hot, cold := 0, 0
	for i := 0; i < 1000; i++ {
		if mixed.pick(p, &uniq) < mixed.HotTasks {
			hot++
		} else {
			cold++
		}
	}
	if hot == 0 || cold == 0 {
		t.Errorf("mixed mix degenerate: %d hot, %d cold", hot, cold)
	}

	if _, err := MixByName("nope"); err == nil {
		t.Error("unknown mix name accepted")
	}
}

// TestTaskBodySolvable posts generated bodies to a real server: they
// must parse, synthesize sat, and distinct indexes must be distinct
// cache keys while equal indexes collide.
func TestTaskBodySolvable(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	h0 := server.RoutingHash("text/plain", []byte(TaskBody(1, 0)))
	if h1 := server.RoutingHash("text/plain", []byte(TaskBody(1, 1))); h1 == h0 {
		t.Error("distinct indexes hash identically")
	}
	if hs := server.RoutingHash("text/plain", []byte(TaskBody(2, 0))); hs == h0 {
		t.Error("distinct seeds hash identically")
	}
	if again := server.RoutingHash("text/plain", []byte(TaskBody(1, 0))); again != h0 {
		t.Error("equal (seed, index) hashes differ")
	}

	res, err := Run(context.Background(), Config{
		Scenario: "test-burst",
		Target:   ts.URL,
		Mode:     "burst",
		Requests: 8,
		Mix:      Mix{Name: "stampede", HotTasks: 1, HotRatio: 1},
		Seed:     1,
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 8 || res.Errored != 0 || res.Rejected != 0 {
		t.Fatalf("burst result %+v, want 8 ok", res)
	}
	// An 8-way stampede of one task on a fresh server is one synthesis.
	if leaders := res.Counters["egs_singleflight_leaders_total"]; leaders != 1 {
		t.Errorf("singleflight leaders = %v, want 1", leaders)
	}
	if res.ClientP99MS <= 0 {
		t.Error("no client latency recorded")
	}
	if res.ServerP99MS <= 0 {
		t.Error("no server histogram quantile derived")
	}
}

// TestParsePrometheus covers the value forms our registries emit.
func TestParsePrometheus(t *testing.T) {
	text := `# HELP egs_x helper
# TYPE egs_x counter
egs_x 41
egs_vec{replica="http://a:1"} 7
egs_hist_bucket{le="0.5"} 3
egs_hist_bucket{le="+Inf"} 4
egs_hist_sum 1.25
egs_hist_count 4
egs_ratio 0.75
`
	snap, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"egs_x":                         41,
		`egs_vec{replica="http://a:1"}`: 7,
		`egs_hist_bucket{le="0.5"}`:     3,
		`egs_hist_bucket{le="+Inf"}`:    4,
		"egs_hist_sum":                  1.25,
		"egs_ratio":                     0.75,
	} {
		if snap[key] != want {
			t.Errorf("%s = %v, want %v", key, snap[key], want)
		}
	}
	per := PerLabel(snap, "egs_vec", "replica")
	if per["http://a:1"] != 7 {
		t.Errorf("PerLabel = %v", per)
	}
}

// TestHistogramQuantile checks interpolation and edge cases.
func TestHistogramQuantile(t *testing.T) {
	snap := Snapshot{
		`egs_h_bucket{le="0.1"}`:  10,
		`egs_h_bucket{le="0.2"}`:  20,
		`egs_h_bucket{le="+Inf"}`: 20,
	}
	// Median: rank 10 lands exactly on the first bucket boundary.
	if q := HistogramQuantile(snap, "egs_h", 0.5); math.Abs(q-0.1) > 1e-9 {
		t.Errorf("p50 = %v, want 0.1", q)
	}
	// p75: rank 15, halfway through the (0.1, 0.2] bucket.
	if q := HistogramQuantile(snap, "egs_h", 0.75); math.Abs(q-0.15) > 1e-9 {
		t.Errorf("p75 = %v, want 0.15", q)
	}
	if q := HistogramQuantile(snap, "absent", 0.5); !math.IsNaN(q) {
		t.Errorf("quantile of absent histogram = %v, want NaN", q)
	}
	empty := Snapshot{`egs_e_bucket{le="+Inf"}`: 0}
	if q := HistogramQuantile(empty, "egs_e", 0.5); !math.IsNaN(q) {
		t.Errorf("quantile of empty histogram = %v, want NaN", q)
	}
}

// TestDeltaAndSum covers the scrape arithmetic helpers.
func TestDeltaAndSum(t *testing.T) {
	before := Snapshot{"a": 10, "b": 1}
	after := Snapshot{"a": 15, "b": 1, "c": 2}
	d := Delta(before, after)
	if d["a"] != 5 || d["b"] != 0 || d["c"] != 2 {
		t.Errorf("Delta = %v", d)
	}
	if s := Sum([]Snapshot{{"k": 1}, {"k": 2}, {}}, "k"); s != 3 {
		t.Errorf("Sum = %v, want 3", s)
	}
}
