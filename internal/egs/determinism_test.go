package egs

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// determinismTasks spans realizable tasks of several shapes (single
// rule, union, multi-column, negation-heavy) plus unrealizable ones,
// so the differential covers both verdicts and the Alternatives-style
// multi-cell searches.
var determinismTasks = []string{
	"../../testdata/benchmarks/knowledge-discovery/traffic.task",
	"../../testdata/benchmarks/knowledge-discovery/grandparent.task",
	"../../testdata/benchmarks/knowledge-discovery/kinship.task",
	"../../testdata/benchmarks/knowledge-discovery/predecessor.task",
	"../../testdata/benchmarks/knowledge-discovery/undirected-edge.task",
	"../../testdata/benchmarks/database-queries/sql01.task",
	"../../testdata/benchmarks/database-queries/sql05.task",
	"../../testdata/benchmarks/program-analysis/reach.task",
	"../../testdata/benchmarks/program-analysis/block-succ.task",
	"../../testdata/benchmarks/unrealizable/isomorphism.task",
	"../../testdata/benchmarks/unrealizable/traffic-partial.task",
}

// fingerprint reduces a synthesis outcome to what the determinism
// contract promises: the Unsat verdict and the exact sequence of
// learned rules, identified by canonical key. Stats are deliberately
// excluded — under parallel assessment two copies of one canonical
// rule can land in the same batch and both miss the memo, perturbing
// RuleEvals/MemoHits without affecting any result.
func fingerprint(res Result) []string {
	fp := []string{}
	if res.Unsat {
		fp = append(fp, "UNSAT")
		if res.Witness != nil && res.Witness.ViaLemma42 {
			fp = append(fp, "lemma4.2")
		}
		return fp
	}
	for _, r := range res.Query.Rules {
		fp = append(fp, r.CanonicalKey())
	}
	return fp
}

// TestAssessParallelismDeterministic is the differential test for the
// parallel assessment pool: for every task and both priority
// functions, AssessParallelism ∈ {2, 8} must learn the identical rule
// list (by canonical key, in order) and reach the identical Unsat
// verdict as the sequential search.
func TestAssessParallelismDeterministic(t *testing.T) {
	for _, path := range determinismTasks {
		tk, err := task.Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, pri := range []Priority{P2, P1} {
			seqRes, err := Synthesize(context.Background(), tk, Options{Priority: pri})
			if err != nil {
				t.Fatalf("%s (%v) sequential: %v", path, pri, err)
			}
			want := fingerprint(seqRes)
			for _, par := range []int{2, 8} {
				// Reload: Synthesize freezes and mutates the task's
				// database (interned output tuples), so runs must not
				// share task state.
				tk2, err := task.Load(path)
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				parRes, err := Synthesize(context.Background(), tk2,
					Options{Priority: pri, AssessParallelism: par})
				if err != nil {
					t.Fatalf("%s (%v) parallel=%d: %v", path, pri, par, err)
				}
				got := fingerprint(parRes)
				if len(got) != len(want) {
					t.Fatalf("%s (%v) parallel=%d: %d rules, sequential %d",
						path, pri, par, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s (%v) parallel=%d: rule %d diverges from sequential",
							path, pri, par, i)
					}
				}
				// Exploration effort must match too: the pool may not
				// change what gets pushed or popped, only who assesses.
				if parRes.Stats.ContextsPopped != seqRes.Stats.ContextsPopped ||
					parRes.Stats.ContextsPushed != seqRes.Stats.ContextsPushed {
					t.Errorf("%s (%v) parallel=%d: popped/pushed %d/%d, sequential %d/%d",
						path, pri, par,
						parRes.Stats.ContextsPopped, parRes.Stats.ContextsPushed,
						seqRes.Stats.ContextsPopped, seqRes.Stats.ContextsPushed)
				}
			}
		}
	}
}

// renderOutcome reduces a run to the exact bytes a user would see:
// the printed UCQ for realizable tasks, the rendered witness for
// unrealizable ones.
func renderOutcome(tk *task.Task, res Result) string {
	if res.Unsat {
		return "UNSAT\n" + res.Witness.String(tk.Schema, tk.Domain)
	}
	return res.Query.String(tk.Schema, tk.Domain)
}

// statsFull renders every Stats counter except Duration, which is
// wall-clock and excluded by contract (see the egslint/nodetsource
// suppressions in egs.go).
func statsFull(st Stats) string {
	return fmt.Sprintf("pushed=%d popped=%d evals=%d memo=%d maxq=%d cells=%d rules=%d",
		st.ContextsPushed, st.ContextsPopped, st.RuleEvals, st.MemoHits,
		st.MaxQueue, st.CellsSolved, st.RulesLearned)
}

// statsSched additionally drops RuleEvals and MemoHits: under
// parallel assessment two copies of one canonical rule can land in
// the same batch and both miss the memo, legitimately perturbing
// those two counters (and only those) across parallelism levels.
func statsSched(st Stats) string {
	return fmt.Sprintf("pushed=%d popped=%d maxq=%d cells=%d rules=%d",
		st.ContextsPushed, st.ContextsPopped, st.MaxQueue, st.CellsSolved, st.RulesLearned)
}

// TestSynthesisByteGolden strengthens the differential above from
// canonical-key equality to byte equality: for every task, the
// printed query (or witness) must be bit-identical across repeat runs,
// across AssessParallelism ∈ {1, 8}, AND across tracing on vs off; the
// Stats counters must be identical across repeats at fixed parallelism
// (traced runs included — the recorder sits outside the search's
// decision path by contract) and — minus the documented memo counters
// — across parallelism. Any map-ordered rendering, scheduling, or
// instrumentation leak shows up here as a byte diff.
func TestSynthesisByteGolden(t *testing.T) {
	for _, path := range determinismTasks {
		type run struct {
			par    int
			traced bool
			text   string
			full   string
			sched  string
		}
		var runs []run
		for _, par := range []int{1, 8} {
			// Two untraced repeats, then one traced run at each level.
			for _, traced := range []bool{false, false, true} {
				// Reload per run: Synthesize freezes and mutates the
				// task's database.
				tk, err := task.Load(path)
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				opts := Options{AssessParallelism: par}
				var col *trace.Collector
				if traced {
					col = trace.NewCollector()
					opts.Trace = col
				}
				res, err := Synthesize(context.Background(), tk, opts)
				if err != nil {
					t.Fatalf("%s parallel=%d traced=%v: %v", path, par, traced, err)
				}
				if traced && col.Len() == 0 {
					t.Errorf("%s parallel=%d: traced run recorded no events", path, par)
				}
				runs = append(runs, run{
					par:    par,
					traced: traced,
					text:   renderOutcome(tk, res),
					full:   statsFull(res.Stats),
					sched:  statsSched(res.Stats),
				})
			}
		}
		golden := runs[0]
		for _, r := range runs[1:] {
			if r.text != golden.text {
				t.Errorf("%s: rendered output diverges between parallel=%d/traced=%v and parallel=%d/traced=%v:\n--- golden\n%s\n--- got\n%s",
					path, golden.par, golden.traced, r.par, r.traced, golden.text, r.text)
			}
			if r.sched != golden.sched {
				t.Errorf("%s: scheduling-independent stats diverge between parallel=%d/traced=%v and parallel=%d/traced=%v: %s vs %s",
					path, golden.par, golden.traced, r.par, r.traced, golden.sched, r.sched)
			}
			if r.par == golden.par && r.full != golden.full {
				t.Errorf("%s: run at parallel=%d (traced=%v) changed stats: %s vs %s",
					path, r.par, r.traced, golden.full, r.full)
			}
		}
		// Runs at parallelism 8 — two untraced repeats and the traced
		// run — must also agree on the full counters among themselves
		// (golden is a parallelism-1 run, so compare them directly).
		for _, r := range runs[4:] {
			if r.full != runs[3].full {
				t.Errorf("%s: runs at parallel=8 disagree on stats: %s vs %s (traced=%v)",
					path, runs[3].full, r.full, r.traced)
			}
		}
	}
}

// TestSynthesisByteGoldenStrategies is the forced-strategy
// differential: for every task, synthesis with the join strategy
// pinned to backtracking and pinned to batch must produce output
// byte-identical to the auto-heuristic run — and identical Stats
// counters, since strategies may only change how a rule is joined,
// never which tuples it derives and hence never any search decision.
func TestSynthesisByteGoldenStrategies(t *testing.T) {
	for _, path := range determinismTasks {
		var golden, goldenStats string
		for _, strat := range []eval.Strategy{eval.StrategyAuto, eval.StrategyBacktrack, eval.StrategyBatch} {
			// Reload per run: Synthesize freezes and mutates the task's
			// database.
			tk, err := task.Load(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			restore := eval.ForceStrategy(strat)
			res, err := Synthesize(context.Background(), tk, Options{})
			restore()
			if err != nil {
				t.Fatalf("%s strategy=%v: %v", path, strat, err)
			}
			text, stats := renderOutcome(tk, res), statsFull(res.Stats)
			if strat == eval.StrategyAuto {
				golden, goldenStats = text, stats
				continue
			}
			if text != golden {
				t.Errorf("%s: output under forced %v diverges from auto:\n--- auto\n%s\n--- %v\n%s",
					path, strat, golden, strat, text)
			}
			if stats != goldenStats {
				t.Errorf("%s: stats under forced %v diverge from auto: %s vs %s",
					path, strat, goldenStats, stats)
			}
		}
	}
}

// TestTraceRecorderRace shares one Collector between parallel
// searchers, each running parallel assessment, so `go test -race`
// exercises every Record call site concurrently. It also pins the
// merge order: Events must group shards by ascending searcher id
// regardless of goroutine interleaving.
func TestTraceRecorderRace(t *testing.T) {
	tk, err := task.Load("../../testdata/benchmarks/knowledge-discovery/kinship.task")
	if err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	res, err := SynthesizeParallel(context.Background(), tk,
		Options{AssessParallelism: 8, Trace: col}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("kinship unexpectedly unsat")
	}
	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Searcher < evs[i-1].Searcher {
			t.Fatalf("event %d: searcher %d after searcher %d — merge not ordered",
				i, evs[i].Searcher, evs[i-1].Searcher)
		}
	}
}

// TestMemoReducesRuleEvals pins the tentpole's accounting: on traffic
// (whose cells repeatedly regenerate alpha-equivalent candidates from
// different anchor constants) the memo must convert a nonzero share
// of assessments into hits; RuleEvals counts only evaluations
// actually executed, and the two counters together cannot exceed the
// contexts pushed.
func TestMemoReducesRuleEvals(t *testing.T) {
	tk, err := task.Load("../../testdata/benchmarks/knowledge-discovery/traffic.task")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(context.Background(), tk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MemoHits == 0 {
		t.Error("memo recorded no hits on traffic")
	}
	if res.Stats.RuleEvals == 0 {
		t.Error("no rule evaluations recorded")
	}
	if res.Stats.MemoHits+res.Stats.RuleEvals > res.Stats.ContextsPushed {
		t.Errorf("evals %d + hits %d exceed contexts pushed %d",
			res.Stats.RuleEvals, res.Stats.MemoHits, res.Stats.ContextsPushed)
	}
}

// TestConcurrentAssessRace drives many assessors concurrently against
// one shared example — concurrent generalize/EvalRule traffic through
// Database.InternTuple and the shared memo — so `go test -race`
// exercises the lock-free read path and the memo lock. The assertions
// are secondary; the race detector is the point.
func TestConcurrentAssessRace(t *testing.T) {
	tk, err := task.Load("../../testdata/benchmarks/knowledge-discovery/kinship.task")
	if err != nil {
		t.Fatal(err)
	}
	if err := tk.Prepare(); err != nil {
		t.Fatal(err)
	}
	ex := tk.Example()
	db := ex.DB
	target := tk.Pos[0]
	asr := &assessor{ex: ex, memo: NewMemo()}
	p := &cellParams{target: target, i: len(target.Args)}
	p.totalForbidden, p.countKnown = ex.CountForbidden(target.Rel, p.i, len(target.Args))

	seeds := db.Mentioning(target.Args[p.i-1])
	if len(seeds) == 0 {
		t.Fatal("no seed contexts")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				id := seeds[(w+rep)%len(seeds)]
				c := &ectx{ids: []relation.TupleID{id}}
				asr.assess(c, p)
				// Grow one two-tuple context too, to intern fresh
				// derived tuples from several goroutines at once.
				for _, other := range db.Mentioning(target.Args[0]) {
					if other != id {
						c2 := &ectx{}
						var fresh bool
						if c2.ids, fresh = extend([]relation.TupleID{id}, other); fresh {
							asr.assess(c2, p)
						}
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
