// Package egs implements the Example-Guided Synthesis algorithm for
// relational queries (Sections 4 and 5 of the PLDI 2021 paper): the
// ExplainCell worklist search over enumeration contexts drawn from
// the constant co-occurrence graph, the slice-wise ExplainTuple
// procedure for multi-column outputs, and the divide-and-conquer
// LearnUCQ loop for unions of conjunctive queries.
package egs

import (
	"sort"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
)

// ectx is an enumeration context: a set of input tuples C ⊆ I
// (Section 4.2), held as sorted tuple ids, together with the
// evaluation results that the priority queue orders by.
type ectx struct {
	ids []relation.TupleID // sorted ascending

	// consistent records whether r_{C -> t[1..i]} derives no
	// forbidden i-slice (Step 3b of Algorithm 1).
	consistent bool
	// score is the paper's p2 priority: forbidden slices eliminated
	// per body literal (see cellParams for the unknown-|F_i| case).
	score float64
	// seq is a FIFO tie-breaker for deterministic exploration,
	// assigned in generation order by the (sequential) staging pass.
	seq int

	// evals (0 or 1) counts the rule evaluations performed while
	// assessing this context; memoHit records that the assessment was
	// answered from the canonical-rule cache instead.
	evals   uint8
	memoHit bool
}

func (c *ectx) size() int { return len(c.ids) }

// idArena bump-allocates the id slices of enumeration contexts. One
// searcher allocates tens of thousands of short-lived contexts; the
// arena turns one heap allocation per context into one per chunk.
// Slices are never individually freed — contexts that outlive a cell
// (the explaining contexts) keep their chunks alive, everything else
// is reclaimed when the searcher is dropped.
type idArena struct {
	chunk []relation.TupleID
	// next is the capacity of the next chunk. Chunks double from
	// arenaMinChunkIDs to arenaMaxChunkIDs, so a search that explores
	// five contexts pays for five contexts, not for 8192 ids.
	next int
}

const (
	arenaMinChunkIDs = 256
	arenaChunkIDs    = 8192 // max chunk size; also the steady-state stride
)

// alloc carves an n-id slice out of the current chunk. The result has
// capacity exactly n, so a later append cannot bleed into a
// neighbouring context's ids.
func (a *idArena) alloc(n int) []relation.TupleID {
	if len(a.chunk)+n > cap(a.chunk) {
		if a.next == 0 {
			a.next = arenaMinChunkIDs
		}
		size := a.next
		if n > size {
			size = n
		}
		if a.next < arenaChunkIDs {
			a.next *= 2
		}
		a.chunk = make([]relation.TupleID, 0, size)
	}
	start := len(a.chunk)
	a.chunk = a.chunk[:start+n]
	return a.chunk[start : start+n : start+n]
}

// copy clones a sorted id set into the arena.
func (a *idArena) copy(ids []relation.TupleID) []relation.TupleID {
	out := a.alloc(len(ids))
	copy(out, ids)
	return out
}

// extend returns the sorted set ids ∪ {id}, allocated in the arena.
// The caller must have checked id ∉ ids (containsID).
func (a *idArena) extend(ids []relation.TupleID, id relation.TupleID) []relation.TupleID {
	out := a.alloc(len(ids) + 1)
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	copy(out, ids[:i])
	out[i] = id
	copy(out[i+1:], ids[i:])
	return out
}

// ectxSlab batch-allocates ectx structs. Contexts are allocated once
// per staging and never recycled (popped contexts may still be
// referenced as explanations), so the slab only amortizes allocation.
// Chunks double from slabMinChunkCtxs to slabMaxChunkCtxs, matching
// the arena's growth policy. Fresh slots come zeroed from make.
type ectxSlab struct {
	chunk []ectx
	next  int
}

const (
	slabMinChunkCtxs = 32
	slabMaxChunkCtxs = 1024
)

func (s *ectxSlab) alloc() *ectx {
	if len(s.chunk) == cap(s.chunk) {
		if s.next == 0 {
			s.next = slabMinChunkCtxs
		}
		size := s.next
		if s.next < slabMaxChunkCtxs {
			s.next *= 2
		}
		s.chunk = make([]ectx, 0, size)
	}
	s.chunk = s.chunk[:len(s.chunk)+1]
	return &s.chunk[len(s.chunk)-1]
}

// extend returns a new sorted id set ids ∪ {id}; ok is false when id
// is already present.
func extend(ids []relation.TupleID, id relation.TupleID) ([]relation.TupleID, bool) {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i < len(ids) && ids[i] == id {
		return nil, false
	}
	out := make([]relation.TupleID, 0, len(ids)+1)
	out = append(out, ids[:i]...)
	out = append(out, id)
	out = append(out, ids[i:]...)
	return out, true
}

func containsID(ids []relation.TupleID, id relation.TupleID) bool {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	return i < len(ids) && ids[i] == id
}

// generalize builds the rule r_{C -> t[1..i]} of Equation 5: the
// context's tuples become body literals and the target slice becomes
// the head, with constants consistently replaced by fresh variables.
// ok is false when some head constant does not occur in the context
// (the rule would be unsafe, so the context cannot explain the slice).
func generalize(db *relation.Database, ids []relation.TupleID, target relation.Tuple, i int) (query.Rule, bool) {
	varOf := make(map[relation.Const]query.Var)
	next := query.Var(0)
	lookup := func(c relation.Const) query.Var {
		v, ok := varOf[c]
		if !ok {
			v = next
			next++
			varOf[c] = v
		}
		return v
	}
	// Assign body variables first (deterministic in tuple-id order),
	// so admissibility of the head is checkable afterwards.
	body := make([]query.Literal, len(ids))
	for bi, id := range ids {
		tu := db.Tuple(id)
		lit := query.Literal{Rel: tu.Rel, Args: make([]query.Term, len(tu.Args))}
		for ai, c := range tu.Args {
			lit.Args[ai] = query.V(lookup(c))
		}
		body[bi] = lit
	}
	head := query.Literal{Rel: target.Rel, Args: make([]query.Term, i)}
	for ai := 0; ai < i; ai++ {
		v, ok := varOf[target.Args[ai]]
		if !ok {
			return query.Rule{}, false
		}
		head.Args[ai] = query.V(v)
	}
	return query.Rule{Head: head, Body: body}, true
}
