// Package egs implements the Example-Guided Synthesis algorithm for
// relational queries (Sections 4 and 5 of the PLDI 2021 paper): the
// ExplainCell worklist search over enumeration contexts drawn from
// the constant co-occurrence graph, the slice-wise ExplainTuple
// procedure for multi-column outputs, and the divide-and-conquer
// LearnUCQ loop for unions of conjunctive queries.
package egs

import (
	"sort"
	"strings"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// ectx is an enumeration context: a set of input tuples C ⊆ I
// (Section 4.2), held as sorted tuple ids, together with the
// evaluation results that the priority queue orders by.
type ectx struct {
	ids []relation.TupleID // sorted ascending

	// consistent records whether r_{C -> t[1..i]} derives no
	// forbidden i-slice (Step 3b of Algorithm 1).
	consistent bool
	// score is the paper's p2 numerator: forbidden slices eliminated
	// per body literal.
	score float64
	// seq is a FIFO tie-breaker for deterministic exploration.
	seq int
}

func (c *ectx) size() int { return len(c.ids) }

// ctxKey canonically encodes a sorted id set.
func ctxKey(ids []relation.TupleID) string {
	var b strings.Builder
	b.Grow(4 * len(ids))
	for _, id := range ids {
		b.WriteByte(byte(id))
		b.WriteByte(byte(id >> 8))
		b.WriteByte(byte(id >> 16))
		b.WriteByte(byte(id >> 24))
	}
	return b.String()
}

// extend returns a new sorted id set ids ∪ {id}; ok is false when id
// is already present.
func extend(ids []relation.TupleID, id relation.TupleID) ([]relation.TupleID, bool) {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	if i < len(ids) && ids[i] == id {
		return nil, false
	}
	out := make([]relation.TupleID, 0, len(ids)+1)
	out = append(out, ids[:i]...)
	out = append(out, id)
	out = append(out, ids[i:]...)
	return out, true
}

func containsID(ids []relation.TupleID, id relation.TupleID) bool {
	i := sort.Search(len(ids), func(k int) bool { return ids[k] >= id })
	return i < len(ids) && ids[i] == id
}

// generalize builds the rule r_{C -> t[1..i]} of Equation 5: the
// context's tuples become body literals and the target slice becomes
// the head, with constants consistently replaced by fresh variables.
// ok is false when some head constant does not occur in the context
// (the rule would be unsafe, so the context cannot explain the slice).
func generalize(db *relation.Database, ids []relation.TupleID, target relation.Tuple, i int) (query.Rule, bool) {
	varOf := make(map[relation.Const]query.Var)
	next := query.Var(0)
	lookup := func(c relation.Const) query.Var {
		v, ok := varOf[c]
		if !ok {
			v = next
			next++
			varOf[c] = v
		}
		return v
	}
	// Assign body variables first (deterministic in tuple-id order),
	// so admissibility of the head is checkable afterwards.
	body := make([]query.Literal, len(ids))
	for bi, id := range ids {
		tu := db.Tuple(id)
		lit := query.Literal{Rel: tu.Rel, Args: make([]query.Term, len(tu.Args))}
		for ai, c := range tu.Args {
			lit.Args[ai] = query.V(lookup(c))
		}
		body[bi] = lit
	}
	head := query.Literal{Rel: target.Rel, Args: make([]query.Term, i)}
	for ai := 0; ai < i; ai++ {
		v, ok := varOf[target.Args[ai]]
		if !ok {
			return query.Rule{}, false
		}
		head.Args[ai] = query.V(v)
	}
	return query.Rule{Head: head, Body: body}, true
}

// assess evaluates r_{C -> t[1..i]} against the example: it counts
// the derived i-slices lying in the forbidden set F_i and computes
// the paper's score |F_i \ [[r]]| / |C|. A context whose head
// constants are missing from C is inadmissible: never consistent and
// of minimal score.
func assess(ex *task.Example, ids []relation.TupleID, target relation.Tuple, i int, totalForbidden float64) (consistent bool, score float64, evals int) {
	rule, ok := generalize(ex.DB, ids, target, i)
	if !ok {
		return false, -1, 0
	}
	k := len(target.Args)
	derivedForbidden := 0
	if i == k {
		// Full-arity heads are ground output tuples: stay on the
		// dense-id plane and test forbiddenness as a bitset probe.
		eval.EvalRuleIDs(rule, ex.DB, func(id relation.TupleID) bool {
			if ex.IsNegativeID(id) {
				derivedForbidden++
			}
			return true
		})
	} else {
		// Proper slices are not ground tuples and have no TupleID;
		// their forbidden sets stay keyed by slice prefix.
		eval.EvalRule(rule, ex.DB, func(t relation.Tuple) bool {
			if ex.ForbiddenPrefixKey(t.Key(), i) {
				derivedForbidden++
			}
			return true
		})
	}
	eliminated := totalForbidden - float64(derivedForbidden)
	return derivedForbidden == 0, eliminated / float64(len(ids)), 1
}
