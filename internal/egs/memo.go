package egs

import (
	"sync"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// Memo caches candidate-rule assessments — CanonicalKey to the number
// of derived forbidden i-slices — with validity stamps so a memo can
// outlive the task revision it was built on. A fresh Memo behind a
// single synthesis run behaves exactly like the PR 3 per-searcher
// memo; an incremental session passes one Memo (Options.Memo) across
// revisions and tells it which inputs each delta touched:
//
//   - BumpFact(rel) after inserting facts into rel: every entry whose
//     rule body reads rel re-evaluates (its join output may change).
//   - BumpExample(rel) after an example delta on output rel: entries
//     with heads over rel are invalidated — except full-arity entries,
//     which keep the rule's derived output ids and revalidate by
//     re-probing the new labelling, skipping the join entirely.
//   - BumpDomain() when the data domain grows: under explicit
//     labelling the forbidden sets of proper slices count completions
//     over the domain, so those entries must not survive. Domain
//     epochs fold into the example stamp, which conservatively also
//     re-labels closed-world entries.
//
// Soundness: a stored count is a pure function of (canonical rule,
// extents of the body relations, labelling of the head relation).
// The fact stamp sums the epochs of the body relations and the
// example stamp sums the head relation's example epoch with the
// domain epoch; epochs are monotone non-decreasing, so stamp equality
// implies every summand is unchanged and the cached count is exact.
//
// A Memo is safe for concurrent use; two workers racing on one key
// both compute identical values (see the assessor's soundness note),
// so a race costs at most one redundant evaluation.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry

	// Epochs are lazily allocated: a memo that is never bumped (every
	// cold run) keeps both maps nil and skips stamp computation
	// entirely, so one-shot synthesis pays nothing for the machinery.
	factEpoch   map[relation.RelID]uint64
	exEpoch     map[relation.RelID]uint64
	domainEpoch uint64
}

type memoEntry struct {
	derived   int
	factStamp uint64
	exStamp   uint64
	// outs records the full-arity rule's derived output ids, in
	// emission order with multiplicity, enabling revalidation after a
	// pure example delta. nil for proper-slice entries (slices have no
	// ids) and for rules whose output exceeded memoOutsCap.
	outs []relation.TupleID
}

// memoOutsCap bounds the per-entry output-id storage. Rules deriving
// more tuples than this fall back to full re-evaluation when their
// example stamp moves; the bound keeps session memos from pinning
// whole join outputs for every candidate ever assessed.
const memoOutsCap = 4096

// NewMemo returns an empty memo ready for sharing across runs.
func NewMemo() *Memo { return &Memo{} }

// BumpFact records that facts were added to relation r.
func (m *Memo) BumpFact(r relation.RelID) {
	m.mu.Lock()
	if m.factEpoch == nil {
		m.factEpoch = make(map[relation.RelID]uint64)
	}
	m.factEpoch[r]++
	m.mu.Unlock()
}

// BumpExample records an example delta (add, remove, relabel) on
// output relation r.
func (m *Memo) BumpExample(r relation.RelID) {
	m.mu.Lock()
	if m.exEpoch == nil {
		m.exEpoch = make(map[relation.RelID]uint64)
	}
	m.exEpoch[r]++
	m.mu.Unlock()
}

// BumpDomain records that the data domain grew (a delta introduced a
// constant not seen before).
func (m *Memo) BumpDomain() {
	m.mu.Lock()
	m.domainEpoch++
	m.mu.Unlock()
}

// stamps computes the validity stamps of an entry for rule: the sum
// of the body relations' fact epochs (each distinct relation counted
// once) and the head relation's example epoch plus the domain epoch.
// Callers must hold m.mu.
func (m *Memo) stamps(rule *query.Rule) (factStamp, exStamp uint64) {
	if m.factEpoch != nil {
		for i, l := range rule.Body {
			dup := false
			for _, prev := range rule.Body[:i] {
				if prev.Rel == l.Rel {
					dup = true
					break
				}
			}
			if !dup {
				factStamp += m.factEpoch[l.Rel]
			}
		}
	}
	if m.exEpoch != nil {
		exStamp = m.exEpoch[rule.Head.Rel]
	}
	return factStamp, exStamp + m.domainEpoch
}

// lookup resolves key against the memo. hit reports that the cached
// (or revalidated) count is valid for the current revision; on a miss
// the caller must evaluate the rule and store the result. Revalidation
// — fact stamp current, example stamp stale, output ids on hand —
// re-probes the stored ids against the example's current labelling,
// which costs one bitset probe per derived tuple instead of a join.
func (m *Memo) lookup(key string, rule *query.Rule, ex *task.Example) (derived int, hit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return 0, false
	}
	factStamp, exStamp := m.stamps(rule)
	if e.factStamp != factStamp {
		return 0, false
	}
	if e.exStamp != exStamp {
		if e.outs == nil {
			return 0, false
		}
		derived = 0
		for _, id := range e.outs {
			if ex.IsNegativeID(id) {
				derived++
			}
		}
		e.derived, e.exStamp = derived, exStamp
		return derived, true
	}
	return e.derived, true
}

// store records an evaluated assessment. outs may be nil (proper
// slice, or output too large to retain).
func (m *Memo) store(key string, rule *query.Rule, derived int, outs []relation.TupleID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = make(map[string]*memoEntry)
	}
	factStamp, exStamp := m.stamps(rule)
	m.entries[key] = &memoEntry{
		derived:   derived,
		factStamp: factStamp,
		exStamp:   exStamp,
		outs:      outs,
	}
}

// Len reports the number of cached assessments.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
