package egs

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

const trafficSrc = `
task traffic
closed-world true
expect sat
input Intersects(2)
input GreenSignal(1)
input HasTraffic(1)
output Crashes(1)
Intersects(Broadway, LibertySt).
Intersects(Broadway, WallSt).
Intersects(Broadway, Whitehall).
Intersects(LibertySt, Broadway).
Intersects(LibertySt, WilliamSt).
Intersects(WallSt, Broadway).
Intersects(WallSt, WilliamSt).
Intersects(Whitehall, Broadway).
Intersects(WilliamSt, LibertySt).
Intersects(WilliamSt, WallSt).
GreenSignal(Broadway).
GreenSignal(LibertySt).
GreenSignal(WilliamSt).
GreenSignal(Whitehall).
HasTraffic(Broadway).
HasTraffic(WallSt).
HasTraffic(WilliamSt).
HasTraffic(Whitehall).
+Crashes(Broadway).
+Crashes(Whitehall).
`

const grandparentSrc = `
task grandparent
closed-world false
input father(2)
input mother(2)
output grandparent(2)
father(Mufasa, Simba).
mother(Sarabi, Simba).
father(Jasiri, Nala).
mother(Sarafina, Nala).
father(Simba, Kiara).
mother(Nala, Kiara).
father(Kopa, Unused).
+grandparent(Sarabi, Kiara).
+grandparent(Mufasa, Kiara).
+grandparent(Jasiri, Kiara).
+grandparent(Sarafina, Kiara).
-grandparent(Mufasa, Nala).
-grandparent(Sarafina, Simba).
-grandparent(Sarabi, Simba).
`

const isomorphismSrc = `
task isomorphism
closed-world true
expect unsat
input edge(2)
output target(1)
edge(a, b).
edge(b, a).
+target(a).
`

func mustTask(t *testing.T, src string) *task.Task {
	t.Helper()
	tk, err := task.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return tk
}

func synth(t *testing.T, tk *task.Task, opts Options) Result {
	t.Helper()
	res, err := Synthesize(context.Background(), tk, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTrafficSynthesis(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	res := synth(t, tk, Options{})
	if res.Unsat {
		t.Fatal("traffic reported unsat")
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("synthesized query inconsistent: %s\n%s", why, res.Query.String(tk.Schema, tk.Domain))
	}
	// The paper's target concept needs one rule.
	if len(res.Query.Rules) != 1 {
		t.Errorf("learned %d rules, want 1:\n%s", len(res.Query.Rules), res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestTrafficP1AlsoSolves(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	res := synth(t, tk, Options{Priority: P1})
	if res.Unsat {
		t.Fatal("traffic reported unsat under p1")
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("p1 query inconsistent: %s", why)
	}
	// p1 guarantees the smallest solution; the paper's is 5 literals.
	if got := res.Query.Rules[0].Size(); got > 5 {
		t.Errorf("p1 solution has %d literals, want <= 5", got)
	}
}

func TestGrandparentUnion(t *testing.T) {
	tk := mustTask(t, grandparentSrc)
	res := synth(t, tk, Options{})
	if res.Unsat {
		t.Fatal("grandparent reported unsat")
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("synthesized query inconsistent: %s\n%s", why, res.Query.String(tk.Schema, tk.Domain))
	}
	// Four positives from four distinct parent-gender combinations
	// cannot be covered by fewer than... actually mother/father pairs
	// differ, so expect multiple disjuncts.
	if len(res.Query.Rules) < 2 {
		t.Errorf("expected a union, got %d rule(s):\n%s",
			len(res.Query.Rules), res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestSiblingNeedsNeq(t *testing.T) {
	base := `
task sibling
closed-world false
input mother(2)
output sibling(2)
mother(Nala, Kiara).
mother(Nala, Kopa).
+sibling(Kopa, Kiara).
-sibling(Kopa, Kopa).
`
	// Without neq the task is unrealizable (Section 5.3).
	tk := mustTask(t, base)
	res := synth(t, tk, Options{})
	if !res.Unsat {
		t.Fatalf("sibling without neq should be unsat, got:\n%s", res.Query.String(tk.Schema, tk.Domain))
	}
	// With neq it is solvable.
	tk2 := mustTask(t, strings.Replace(base, "closed-world false", "closed-world false\nneq true", 1))
	res2 := synth(t, tk2, Options{})
	if res2.Unsat {
		t.Fatal("sibling with neq reported unsat")
	}
	if ok, why := tk2.Example().Consistent(res2.Query); !ok {
		t.Fatalf("sibling query inconsistent: %s", why)
	}
	// The solution must use the neq relation.
	if !strings.Contains(res2.Query.String(tk2.Schema, tk2.Domain), "neq(") {
		t.Errorf("solution does not use neq:\n%s", res2.Query.String(tk2.Schema, tk2.Domain))
	}
}

func TestIsomorphismUnsat(t *testing.T) {
	tk := mustTask(t, isomorphismSrc)
	res := synth(t, tk, Options{})
	if !res.Unsat {
		t.Fatalf("isomorphism should be unsat, got:\n%s", res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestQuickUnsatAgreesWithExhaustive(t *testing.T) {
	for _, src := range []string{isomorphismSrc, trafficSrc, grandparentSrc} {
		slow := synth(t, mustTask(t, src), Options{})
		fast := synth(t, mustTask(t, src), Options{QuickUnsat: true})
		if slow.Unsat != fast.Unsat {
			t.Errorf("QuickUnsat disagrees with exhaustive search: %v vs %v", fast.Unsat, slow.Unsat)
		}
	}
}

func TestOutputConstantMissingFromInput(t *testing.T) {
	// traffic-extra-output style: a positive tuple mentions a
	// constant absent from the input, so no context can explain it.
	src := `
task extra
closed-world true
input p(1)
output q(1)
p(a).
+q(Mars).
`
	tk := mustTask(t, src)
	res := synth(t, tk, Options{})
	if !res.Unsat {
		t.Fatal("unknown output constant should be unsat")
	}
}

func TestContextCancellation(t *testing.T) {
	tk := mustTask(t, isomorphismSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Synthesize(ctx, tk, Options{})
	if err == nil {
		t.Fatal("cancelled synthesis returned no error")
	}
}

func TestDeadlineRespected(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if _, err := Synthesize(ctx, tk, Options{}); err == nil {
		t.Fatal("expired deadline returned no error")
	}
}

func TestMaxContextsBudget(t *testing.T) {
	tk := mustTask(t, isomorphismSrc)
	_, err := Synthesize(context.Background(), tk, Options{MaxContexts: 1})
	if err != ErrBudgetExceeded {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestStatspopulated(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	res := synth(t, tk, Options{})
	st := res.Stats
	if st.ContextsPopped == 0 || st.ContextsPushed == 0 || st.RuleEvals == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.RulesLearned != len(res.Query.Rules) {
		t.Errorf("RulesLearned = %d, want %d", st.RulesLearned, len(res.Query.Rules))
	}
	if st.Duration <= 0 {
		t.Error("Duration not set")
	}
}

func TestExplainOne(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	crashes, _ := tk.Schema.Lookup("Crashes")
	broadway, _ := tk.Domain.Lookup("Broadway")
	rule, ok, err := ExplainOne(context.Background(), tk, relation.NewTuple(crashes, broadway), Options{})
	if err != nil || !ok {
		t.Fatalf("ExplainOne: ok=%v err=%v", ok, err)
	}
	if rule.Head.Rel != crashes {
		t.Errorf("rule head = %v", rule.Head)
	}
	if !tk.Example().RuleConsistentWithNegatives(rule) {
		t.Errorf("explaining rule derives negatives: %s", rule.String(tk.Schema, tk.Domain))
	}
}

func TestRepeatedConstantTarget(t *testing.T) {
	// sibling(Kopa, Kopa) as a positive: the second cell's anchor is
	// already in the slice-1 context.
	src := `
task self
closed-world true
input likes(2)
output pair(2)
likes(Kopa, Kopa).
likes(Kopa, Kiara).
+pair(Kopa, Kopa).
`
	tk := mustTask(t, src)
	res := synth(t, tk, Options{})
	if res.Unsat {
		t.Fatal("self-pair reported unsat")
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s\n%s", why, res.Query.String(tk.Schema, tk.Domain))
	}
}

func TestMultiColumnSlicing(t *testing.T) {
	// The grandparent slicing example of Section 5.1 with explicit
	// negatives forcing the slice-1 search to avoid Sarabi->Simba.
	src := `
task gp-slice
closed-world false
input father(2)
input mother(2)
output grandparent(2)
father(Mufasa, Simba).
mother(Sarabi, Simba).
father(Simba, Kiara).
mother(Nala, Kiara).
+grandparent(Sarabi, Kiara).
-grandparent(Sarabi, Simba).
`
	tk := mustTask(t, src)
	res := synth(t, tk, Options{})
	if res.Unsat {
		t.Fatal("gp-slice reported unsat")
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s\n%s", why, res.Query.String(tk.Schema, tk.Domain))
	}
	got := res.Query.String(tk.Schema, tk.Domain)
	if !strings.Contains(got, "mother(") || !strings.Contains(got, "father(") {
		t.Errorf("expected mother/father join, got:\n%s", got)
	}
}
