package egs

import "sync"

// assessJob asks a pool worker to run a.assess(c, p) and signal wg.
type assessJob struct {
	c  *ectx
	p  *cellParams
	a  *assessor
	wg *sync.WaitGroup
}

// assessPool is a bounded worker pool for batch context assessment.
// The searcher stages one batch (the successors of a popped context,
// deduplicated and seq-stamped sequentially), fans the assessments out
// here, waits, and then pushes results in staging order — so the
// worklist contents are bit-identical to a sequential run while the
// rule evaluations, the expensive part, proceed in parallel.
//
// Workers never block on anything except the jobs channel, and the
// submitting goroutine only blocks on wg after sending every job, so
// the pool cannot deadlock. Memory effects of a worker's assessment
// happen-before the submitter's wg.Wait return.
type assessPool struct {
	jobs chan assessJob
	wg   sync.WaitGroup // tracks worker goroutines, not jobs
}

func newAssessPool(workers int) *assessPool {
	p := &assessPool{jobs: make(chan assessJob, workers*2)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for j := range p.jobs {
				j.a.assess(j.c, j.p)
				j.wg.Done()
			}
		}()
	}
	return p
}

// submit enqueues one assessment; the caller's wg must already count it.
func (p *assessPool) submit(j assessJob) { p.jobs <- j }

// close shuts the workers down and waits for them to exit. Safe to
// call once; callers must not submit afterwards.
func (p *assessPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
