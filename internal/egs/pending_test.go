package egs

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// These tests pin the explainCell cleanup contract: every exit path —
// success, queue exhaustion, cancellation, and budget errors — must
// hand the staged-batch buffer back to the searcher. Before the
// cleanup was centralized in a defer, the two error paths returned
// without the writeback, so a reused searcher lost the buffer's grown
// capacity and the abandoned backing array kept stale context
// pointers alive.

func TestPendingResetAfterBudgetExceeded(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	if err := tk.Prepare(); err != nil {
		t.Fatal(err)
	}
	s := newSearcher(context.Background(), tk.Example(), Options{MaxContexts: 1})
	defer s.close()
	if _, err := s.explainCellMulti(nil, tk.Pos[0], 1, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("explainCellMulti err = %v, want ErrBudgetExceeded", err)
	}
	if len(s.pending) != 0 {
		t.Fatalf("%d stale pending contexts survive the budget-exceeded return", len(s.pending))
	}
	if cap(s.pending) == 0 {
		t.Fatal("staged-batch buffer was not returned to the searcher on the budget-exceeded path")
	}
}

func TestPendingResetAfterCancellation(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	if err := tk.Prepare(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := newSearcher(ctx, tk.Example(), Options{})
	defer s.close()
	if _, err := s.explainCellMulti(nil, tk.Pos[0], 1, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("explainCellMulti err = %v, want context.Canceled", err)
	}
	if len(s.pending) != 0 {
		t.Fatalf("%d stale pending contexts survive the cancelled return", len(s.pending))
	}
	if cap(s.pending) == 0 {
		t.Fatal("staged-batch buffer was not returned to the searcher on the cancelled path")
	}
}

// TestSearcherReuseAfterBudgetMatchesFresh reuses a searcher whose
// previous cell died on the context budget and checks the next cell
// behaves exactly like a fresh searcher's — no residue from the
// abandoned batch leaks into staging, assessment, or the queue. The
// burned searcher runs with a worker pool, so its clean close() also
// checks that the budget-exceeded exit left no assessment jobs in
// flight.
func TestSearcherReuseAfterBudgetMatchesFresh(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	if err := tk.Prepare(); err != nil {
		t.Fatal(err)
	}
	ex := tk.Example()
	target := tk.Pos[0]

	burned := newSearcher(context.Background(), ex, Options{MaxContexts: 1, AssessParallelism: 8})
	defer burned.close()
	if _, err := burned.explainCellMulti(nil, target, 1, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("burn cell err = %v, want ErrBudgetExceeded", err)
	}
	burned.opts.MaxContexts = 0
	got, err := burned.explainCellMulti(nil, target, 1, 1)
	if err != nil {
		t.Fatalf("reused searcher: %v", err)
	}

	fresh := newSearcher(context.Background(), ex, Options{})
	defer fresh.close()
	want, err := fresh.explainCellMulti(nil, target, 1, 1)
	if err != nil {
		t.Fatalf("fresh searcher: %v", err)
	}

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reused searcher found %v, fresh searcher found %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("cell unexpectedly unexplained")
	}
}
