package egs

import (
	"context"
	"fmt"
	"sync"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// SynthesizeParallel is Algorithm 3 with the per-tuple explanations
// fanned out across worker goroutines. The paper's tool is
// single-threaded (Section 6); this variant exploits the observation
// that ExplainTuple calls for different positive tuples are
// independent.
//
// Work proceeds in waves: up to `workers` still-unexplained tuples
// are explained concurrently, then the resulting rules are applied in
// input order, discarding rules whose target was already covered by
// an earlier rule of the same wave. Waves bound the redundant work to
// at most `workers` explanations per accepted rule — explaining every
// positive tuple up front would do far more total work than the
// sequential algorithm saves.
//
// The result is consistent exactly as in the sequential algorithm,
// though its union may decompose differently.
func SynthesizeParallel(ctx context.Context, t *task.Task, opts Options, workers int) (Result, error) {
	if workers <= 1 {
		return Synthesize(ctx, t, opts)
	}
	if err := t.Prepare(); err != nil {
		return Result{}, err
	}
	ex := t.Example()

	var res Result
	unexplained := append([]relation.Tuple(nil), t.Pos...)
	var rules []query.Rule

	// Searcher ids are assigned wave-major in spawn order, so each
	// searcher's trace shard lands under a stable identity no matter
	// how the goroutines interleave.
	nextSearcherID := int32(0)

	for len(unexplained) > 0 {
		if err := ctx.Err(); err != nil {
			return Result{Stats: res.Stats}, err
		}
		n := workers
		if n > len(unexplained) {
			n = len(unexplained)
		}
		batch := unexplained[:n]

		type outcome struct {
			ids  []relation.TupleID
			ok   bool
			err  error
			stat Stats
		}
		outcomes := make([]outcome, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int, id int32) {
				defer wg.Done()
				s := newSearcher(ctx, ex, opts)
				s.id = id
				defer s.close()
				ids, ok, err := s.explainTuple(batch[i])
				outcomes[i] = outcome{ids: ids, ok: ok, err: err, stat: s.stats}
			}(i, nextSearcherID)
			nextSearcherID++
		}
		wg.Wait()

		covered := &relation.TupleSet{}
		var stillUncovered []relation.Tuple
		for i := 0; i < n; i++ {
			out := outcomes[i]
			res.Stats.ContextsPopped += out.stat.ContextsPopped
			res.Stats.ContextsPushed += out.stat.ContextsPushed
			res.Stats.RuleEvals += out.stat.RuleEvals
			res.Stats.MemoHits += out.stat.MemoHits
			res.Stats.CellsSolved += out.stat.CellsSolved
			// MaxQueue is a high-water mark, not a flow count: the
			// workers' queues exist side by side, so the run's peak is
			// the max over workers, not their sum.
			if out.stat.MaxQueue > res.Stats.MaxQueue {
				res.Stats.MaxQueue = out.stat.MaxQueue
			}
			if out.err != nil {
				return Result{Stats: res.Stats}, out.err
			}
			if !out.ok {
				if opts.BestEffort {
					res.Uncovered = append(res.Uncovered, batch[i])
					continue
				}
				res.Unsat = true
				return res, nil
			}
			if covered.Has(ex.DB.InternTuple(batch[i])) {
				continue
			}
			rule, admissible := generalize(ex.DB, out.ids, batch[i], len(batch[i].Args))
			if !admissible {
				return Result{Stats: res.Stats}, fmt.Errorf("egs: internal error: inadmissible parallel context for %s",
					batch[i].String(t.Schema, t.Domain))
			}
			covered.Union(eval.RuleOutputIDs(rule, ex.DB))
			rules = append(rules, rule)
		}
		for _, p := range unexplained[n:] {
			if !covered.Has(ex.DB.InternTuple(p)) {
				stillUncovered = append(stillUncovered, p)
			}
		}
		unexplained = stillUncovered
	}
	res.Query = query.UCQ{Rules: rules}
	res.Stats.RulesLearned = len(rules)
	return res, nil
}
