package egs

import (
	"context"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/relation"
)

func TestBestEffortSkipsNoise(t *testing.T) {
	// Crashes(Albany) is noise: the constant never occurs in the
	// input, so it cannot be explained. Best-effort mode must learn
	// the clean concept and report the noisy tuple.
	src := strings.Replace(trafficSrc, "+Crashes(Broadway).",
		"+Crashes(Broadway).\n+Crashes(Albany).", 1)
	tk := mustTask(t, src)
	// Exact mode: unsat.
	exact := synth(t, tk, Options{})
	if !exact.Unsat {
		t.Fatal("noisy task should be unsat in exact mode")
	}
	// Best-effort: solves, reporting the noise.
	tk2 := mustTask(t, src)
	res, err := Synthesize(context.Background(), tk2, Options{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("best-effort mode reported unsat")
	}
	if len(res.Uncovered) != 1 {
		t.Fatalf("uncovered = %d tuples, want 1", len(res.Uncovered))
	}
	albany, ok := tk2.Domain.Lookup("Albany")
	if !ok || !res.Uncovered[0].Contains(albany) {
		t.Errorf("uncovered tuple = %v", res.Uncovered[0].String(tk2.Schema, tk2.Domain))
	}
	// The learned program must still avoid all negatives and derive
	// the clean positives.
	ex := tk2.Example()
	for _, r := range res.Query.Rules {
		if !ex.RuleConsistentWithNegatives(r) {
			t.Errorf("best-effort rule derives negatives: %s", r.String(tk2.Schema, tk2.Domain))
		}
	}
}

func TestBestEffortCleanTaskUnchanged(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	res, err := Synthesize(context.Background(), tk, Options{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat || len(res.Uncovered) != 0 {
		t.Fatalf("clean task: unsat=%v uncovered=%d", res.Unsat, len(res.Uncovered))
	}
	if ok, why := tk.Example().Consistent(res.Query); !ok {
		t.Fatalf("inconsistent: %s", why)
	}
}

func TestUnsatWitnessExhaustion(t *testing.T) {
	tk := mustTask(t, isomorphismSrc)
	res := synth(t, tk, Options{})
	if !res.Unsat || res.Witness == nil {
		t.Fatalf("unsat=%v witness=%v", res.Unsat, res.Witness)
	}
	w := res.Witness
	if w.ViaLemma42 || w.ContextsExhausted == 0 || w.FailedSlice != 1 {
		t.Errorf("witness = %+v", w)
	}
	msg := w.String(tk.Schema, tk.Domain)
	if !strings.Contains(msg, "Theorem 4.3") || !strings.Contains(msg, "target(a)") {
		t.Errorf("witness message = %q", msg)
	}
}

func TestUnsatWitnessMissingConstant(t *testing.T) {
	src := `
task ghost
closed-world true
input p(1)
output q(1)
p(a).
+q(Mars).
`
	tk := mustTask(t, src)
	res := synth(t, tk, Options{})
	if !res.Unsat || res.Witness == nil {
		t.Fatal("no witness")
	}
	msg := res.Witness.String(tk.Schema, tk.Domain)
	if !strings.Contains(msg, "occurs in no input tuple") {
		t.Errorf("witness message = %q", msg)
	}
}

func TestUnsatWitnessLemma42(t *testing.T) {
	tk := mustTask(t, isomorphismSrc)
	res := synth(t, tk, Options{QuickUnsat: true})
	if !res.Unsat || res.Witness == nil || !res.Witness.ViaLemma42 {
		t.Fatalf("witness = %+v", res.Witness)
	}
	if !strings.Contains(res.Witness.String(tk.Schema, tk.Domain), "Lemma 4.2") {
		t.Error("fast-path witness does not cite Lemma 4.2")
	}
}

func TestSatResultHasNoWitness(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	res := synth(t, tk, Options{})
	if res.Witness != nil {
		t.Errorf("sat result carries a witness: %+v", res.Witness)
	}
}

func TestAlternativesDistinctAndConsistent(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	crashes, _ := tk.Schema.Lookup("Crashes")
	whitehall, _ := tk.Domain.Lookup("Whitehall")
	target := relation.NewTuple(crashes, whitehall)
	rules, err := Alternatives(context.Background(), tk, target, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no alternatives found")
	}
	seen := map[string]bool{}
	ex := tk.Example()
	for _, r := range rules {
		key := r.CanonicalKey()
		if seen[key] {
			t.Errorf("duplicate alternative %s", r.String(tk.Schema, tk.Domain))
		}
		seen[key] = true
		if !ex.RuleConsistentWithNegatives(r) {
			t.Errorf("alternative derives negatives: %s", r.String(tk.Schema, tk.Domain))
		}
	}
}

func TestAlternativesUnsatYieldsNone(t *testing.T) {
	tk := mustTask(t, isomorphismSrc)
	targetRel, _ := tk.Schema.Lookup("target")
	a, _ := tk.Domain.Lookup("a")
	rules, err := Alternatives(context.Background(), tk, relation.NewTuple(targetRel, a), 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatalf("unrealizable target produced %d alternatives", len(rules))
	}
}

func TestAlternativesKZero(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	crashes, _ := tk.Schema.Lookup("Crashes")
	b, _ := tk.Domain.Lookup("Broadway")
	rules, err := Alternatives(context.Background(), tk, relation.NewTuple(crashes, b), 0, Options{})
	if err != nil || rules != nil {
		t.Errorf("k=0: rules=%v err=%v", rules, err)
	}
}
