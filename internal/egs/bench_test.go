package egs_test

import (
	"context"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/bench"
	"github.com/egs-synthesis/egs/internal/datagen/family"
	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/task"
)

// synthBenchTasks are representative sat tasks spanning the three
// benchmark categories, small enough to synthesize in milliseconds
// but large enough to exercise the context queue and the per-context
// rule evaluations.
var synthBenchTasks = []struct {
	name, path string
}{
	{"traffic", "../../testdata/benchmarks/knowledge-discovery/traffic.task"},
	{"kinship", "../../testdata/benchmarks/knowledge-discovery/kinship.task"},
	{"grandparent", "../../testdata/benchmarks/knowledge-discovery/grandparent.task"},
	{"sql01", "../../testdata/benchmarks/database-queries/sql01.task"},
	{"reach", "../../testdata/benchmarks/program-analysis/reach.task"},
}

// BenchmarkSynthesize measures end-to-end EGS synthesis: the
// ExplainCell worklist search with one candidate-rule evaluation per
// popped context (Section 4.3), the hot loop the tuple-identity layer
// exists to accelerate.
func BenchmarkSynthesize(b *testing.B) {
	ctx := context.Background()
	for _, tc := range synthBenchTasks {
		t, err := task.Load(tc.path)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var stats egs.Stats
			for i := 0; i < b.N; i++ {
				res, err := egs.Synthesize(ctx, t, egs.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Unsat {
					b.Fatalf("%s: unexpectedly unsat", tc.name)
				}
				stats = res.Stats
			}
			// The search is deterministic, so the last run's counters
			// are every run's counters.
			b.ReportMetric(float64(stats.RuleEvals), "ruleevals/op")
			b.ReportMetric(float64(stats.MemoHits), "memohits/op")
		})
	}
	// The scenario-factory axis: one generated instance per program
	// class at the small default scale, so end-to-end synthesis is
	// tracked over joins, stars, unions, and both negation forms that
	// the authored pick above does not systematically cover.
	for _, class := range family.Classes() {
		inst, err := family.Generate(family.Spec{Class: class, Domain: 12, Density: 1.5}, 1)
		if err != nil {
			b.Fatal(err)
		}
		t, err := task.Parse(strings.NewReader(inst.Content))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("fam-"+class+"-d12", func(b *testing.B) {
			b.ReportAllocs()
			var stats egs.Stats
			for i := 0; i < b.N; i++ {
				res, err := egs.Synthesize(ctx, t, egs.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Unsat {
					b.Fatalf("%s: unexpectedly unsat", inst.Name)
				}
				stats = res.Stats
			}
			b.ReportMetric(float64(stats.RuleEvals), "ruleevals/op")
			b.ReportMetric(float64(stats.MemoHits), "memohits/op")
		})
	}
	st, err := bench.ScaledTraffic(60)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("scaled-traffic-60", func(b *testing.B) {
		b.ReportAllocs()
		var stats egs.Stats
		for i := 0; i < b.N; i++ {
			res, err := egs.Synthesize(ctx, st, egs.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Unsat {
				b.Fatal("scaled traffic unexpectedly unsat")
			}
			stats = res.Stats
		}
		b.ReportMetric(float64(stats.RuleEvals), "ruleevals/op")
		b.ReportMetric(float64(stats.MemoHits), "memohits/op")
	})
}

// BenchmarkExplainCell isolates the worklist search of Algorithm 1:
// one ExplainTuple call (no union loop, no coverage subtraction) on a
// single positive target. This is the loop the assessment memo, the
// fingerprint visited set, and the arena allocator rebuilt; its
// allocs/op is the figure to watch.
func BenchmarkExplainCell(b *testing.B) {
	ctx := context.Background()
	cases := []struct {
		name string
		t    *task.Task
	}{}
	for _, tc := range synthBenchTasks {
		t, err := task.Load(tc.path)
		if err != nil {
			b.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			t    *task.Task
		}{tc.name, t})
	}
	st, err := bench.ScaledTraffic(60)
	if err != nil {
		b.Fatal(err)
	}
	cases = append(cases, struct {
		name string
		t    *task.Task
	}{"scaled-traffic-60", st})

	for _, tc := range cases {
		if err := tc.t.Prepare(); err != nil {
			b.Fatal(err)
		}
		target := tc.t.Pos[0]
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok, err := egs.ExplainOne(ctx, tc.t, target, egs.Options{}); err != nil || !ok {
					b.Fatalf("ExplainOne: ok=%v err=%v", ok, err)
				}
			}
		})
	}
}
