package egs

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/relation"
)

func TestExtendKeepsSorted(t *testing.T) {
	ids := []relation.TupleID{2, 5, 9}
	out, fresh := extend(ids, 7)
	if !fresh {
		t.Fatal("7 reported as duplicate")
	}
	want := []relation.TupleID{2, 5, 7, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("extend = %v, want %v", out, want)
		}
	}
	if _, fresh := extend(ids, 5); fresh {
		t.Error("duplicate insert reported fresh")
	}
	// The input must not be mutated.
	if len(ids) != 3 || ids[0] != 2 || ids[2] != 9 {
		t.Errorf("input mutated: %v", ids)
	}
	// Extend at the ends.
	out, _ = extend(ids, 1)
	if out[0] != 1 {
		t.Errorf("prepend failed: %v", out)
	}
	out, _ = extend(ids, 12)
	if out[3] != 12 {
		t.Errorf("append failed: %v", out)
	}
	// Extend the empty context.
	out, fresh = extend(nil, 4)
	if !fresh || len(out) != 1 || out[0] != 4 {
		t.Errorf("extend(nil) = %v, %v", out, fresh)
	}
}

func TestExtendQuick(t *testing.T) {
	f := func(raw []uint16, x uint16) bool {
		ids := make([]relation.TupleID, 0, len(raw))
		seen := map[relation.TupleID]bool{}
		for _, r := range raw {
			id := relation.TupleID(r)
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		out, fresh := extend(ids, relation.TupleID(x))
		if fresh == seen[relation.TupleID(x)] {
			return false
		}
		if !fresh {
			return true
		}
		if len(out) != len(ids)+1 {
			return false
		}
		for i := 0; i+1 < len(out); i++ {
			if out[i] >= out[i+1] {
				return false
			}
		}
		return containsID(out, relation.TupleID(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArenaExtendIsolation(t *testing.T) {
	var a idArena
	base := a.copy([]relation.TupleID{2, 5, 9})
	out := a.extend(base, 7)
	want := []relation.TupleID{2, 5, 7, 9}
	if len(out) != len(want) {
		t.Fatalf("extend = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("extend = %v, want %v", out, want)
		}
	}
	// The source context must not be mutated by the sorted insert.
	if base[0] != 2 || base[1] != 5 || base[2] != 9 {
		t.Errorf("base mutated: %v", base)
	}
	// Arena slices are capacity-capped: appending to one context must
	// not overwrite its arena neighbour.
	prepend := a.extend(base, 1)
	_ = append(base, 999)
	if prepend[0] != 1 || prepend[1] != 2 || prepend[3] != 9 {
		t.Errorf("append to neighbour bled into arena slice: %v", prepend)
	}
	// Allocations larger than a chunk still work.
	big := make([]relation.TupleID, arenaChunkIDs+5)
	for i := range big {
		big[i] = relation.TupleID(i)
	}
	got := a.copy(big)
	if len(got) != len(big) || got[arenaChunkIDs+4] != relation.TupleID(arenaChunkIDs+4) {
		t.Error("oversized arena copy corrupt")
	}
}

func TestContainsID(t *testing.T) {
	ids := []relation.TupleID{3, 8, 15}
	for _, id := range ids {
		if !containsID(ids, id) {
			t.Errorf("containsID(%d) = false", id)
		}
	}
	for _, id := range []relation.TupleID{0, 4, 99} {
		if containsID(ids, id) {
			t.Errorf("containsID(%d) = true", id)
		}
	}
}

func TestGeneralizeSharedConstants(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	db := tk.Input
	intersects, _ := tk.Schema.Lookup("Intersects")
	green, _ := tk.Schema.Lookup("GreenSignal")
	crashes, _ := tk.Schema.Lookup("Crashes")
	broadway, _ := tk.Domain.Lookup("Broadway")
	whitehall, _ := tk.Domain.Lookup("Whitehall")

	id1, ok1 := db.ID(relation.NewTuple(intersects, whitehall, broadway))
	id2, ok2 := db.ID(relation.NewTuple(green, whitehall))
	if !ok1 || !ok2 {
		t.Fatal("fixture tuples missing")
	}
	target := relation.NewTuple(crashes, whitehall)
	rule, ok := generalize(db, []relation.TupleID{id1, id2}, target, 1)
	if !ok {
		t.Fatal("generalize failed")
	}
	// Whitehall maps to one variable shared between head, the
	// Intersects literal, and the GreenSignal literal.
	headVar := rule.Head.Args[0].Var
	if rule.Body[0].Args[0].Var != headVar {
		t.Error("head constant not shared with first body literal")
	}
	if rule.Body[1].Args[0].Var != headVar {
		t.Error("head constant not shared with second body literal")
	}
	// Broadway gets a distinct variable.
	if rule.Body[0].Args[1].Var == headVar {
		t.Error("distinct constants merged")
	}
	if err := rule.Safe(); err != nil {
		t.Errorf("generalized rule unsafe: %v", err)
	}
}

func TestGeneralizeInadmissible(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	db := tk.Input
	green, _ := tk.Schema.Lookup("GreenSignal")
	crashes, _ := tk.Schema.Lookup("Crashes")
	broadway, _ := tk.Domain.Lookup("Broadway")
	whitehall, _ := tk.Domain.Lookup("Whitehall")
	id, _ := db.ID(relation.NewTuple(green, broadway))
	// Context {GreenSignal(Broadway)} cannot explain Crashes(Whitehall).
	if _, ok := generalize(db, []relation.TupleID{id}, relation.NewTuple(crashes, whitehall), 1); ok {
		t.Error("inadmissible context generalized")
	}
}

// TestGeneralizeIdentityDerivation: the rule r_{C -> t} always
// derives t via the identity valuation (the observation behind
// Theorem 4.1).
func TestGeneralizeIdentityDerivation(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	db := tk.Input
	crashes, _ := tk.Schema.Lookup("Crashes")
	whitehall, _ := tk.Domain.Lookup("Whitehall")
	target := relation.NewTuple(crashes, whitehall)
	// Any context containing the anchor works; use all tuples
	// mentioning Whitehall.
	ids := append([]relation.TupleID(nil), db.Mentioning(whitehall)...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rule, ok := generalize(db, ids, target, 1)
	if !ok {
		t.Fatal("generalize failed")
	}
	if !eval.Derives(rule, db, target) {
		t.Error("r_{C->t} does not derive t")
	}
}

func TestQueueP2Ordering(t *testing.T) {
	q := newCtxQueue(P2)
	q.push(&ectx{ids: []relation.TupleID{1}, score: 1.0, seq: 1})
	q.push(&ectx{ids: []relation.TupleID{1, 2}, score: 2.0, seq: 2})
	q.push(&ectx{ids: []relation.TupleID{3}, score: 2.0, seq: 3})
	q.push(&ectx{ids: []relation.TupleID{4}, score: 1.0, seq: 4})
	// Highest score first; ties by smaller size; ties by FIFO.
	order := []struct {
		score float64
		size  int
		seq   int
	}{
		{2.0, 1, 3}, {2.0, 2, 2}, {1.0, 1, 1}, {1.0, 1, 4},
	}
	for i, want := range order {
		got := q.pop()
		if got.score != want.score || got.size() != want.size || got.seq != want.seq {
			t.Fatalf("pop %d = {score %v size %d seq %d}, want %+v",
				i, got.score, got.size(), got.seq, want)
		}
	}
}

func TestQueueP1Ordering(t *testing.T) {
	q := newCtxQueue(P1)
	q.push(&ectx{ids: []relation.TupleID{1, 2, 3}, score: 9.0, seq: 1})
	q.push(&ectx{ids: []relation.TupleID{1}, score: 0.0, seq: 2})
	q.push(&ectx{ids: []relation.TupleID{2}, score: 5.0, seq: 3})
	// Smallest first regardless of score; ties FIFO.
	if got := q.pop(); got.seq != 2 {
		t.Fatalf("first pop seq = %d, want 2", got.seq)
	}
	if got := q.pop(); got.seq != 3 {
		t.Fatalf("second pop seq = %d, want 3", got.seq)
	}
	if got := q.pop(); got.seq != 1 {
		t.Fatalf("third pop seq = %d, want 1", got.seq)
	}
}

func TestPriorityString(t *testing.T) {
	if P1.String() != "p1" || P2.String() != "p2" {
		t.Error("Priority strings wrong")
	}
}

// TestAssessScoreMatchesDefinition recomputes the paper's score
// formula directly for a known context.
func TestAssessScoreMatchesDefinition(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	ex := tk.Example()
	db := tk.Input
	green, _ := tk.Schema.Lookup("GreenSignal")
	crashes, _ := tk.Schema.Lookup("Crashes")
	whitehall, _ := tk.Domain.Lookup("Whitehall")
	id, _ := db.ID(relation.NewTuple(green, whitehall))
	target := relation.NewTuple(crashes, whitehall)

	a := assessor{ex: ex, memo: NewMemo()}
	p := cellParams{target: target, i: 1}
	p.totalForbidden, p.countKnown = ex.CountForbidden(crashes, 1, 1)
	if !p.countKnown {
		t.Fatal("CountForbidden overflow")
	}
	c := &ectx{ids: []relation.TupleID{id}}
	a.assess(c, &p)
	if c.evals != 1 || c.memoHit {
		t.Errorf("first assessment: evals = %d, memoHit = %v", c.evals, c.memoHit)
	}
	// q1: Crashes(x) :- GreenSignal(x) derives 4 streets; Broadway
	// and Whitehall are positive, LibertySt and WilliamSt forbidden.
	// |F_1| = 3 (Liberty, Wall, William); eliminated = 3 - 2 = 1;
	// score = 1 / 1 literal = 1.0. And the context is inconsistent.
	if c.consistent {
		t.Error("over-general context reported consistent")
	}
	if c.score != 1.0 {
		t.Errorf("score = %v, want 1.0 (Section 4.3's worked example)", c.score)
	}

	// The alpha-equivalent context {GreenSignal(Broadway)} for target
	// Crashes(Broadway) generalizes to the same canonical rule, so it
	// must hit the memo and land on identical verdicts.
	broadway, _ := tk.Domain.Lookup("Broadway")
	id2, _ := db.ID(relation.NewTuple(green, broadway))
	p2 := cellParams{target: relation.NewTuple(crashes, broadway), i: 1}
	p2.totalForbidden, p2.countKnown = p.totalForbidden, p.countKnown
	c2 := &ectx{ids: []relation.TupleID{id2}}
	a.assess(c2, &p2)
	if !c2.memoHit || c2.evals != 0 {
		t.Errorf("alpha-equivalent context missed memo: evals = %d, memoHit = %v", c2.evals, c2.memoHit)
	}
	if c2.consistent != c.consistent || c2.score != c.score {
		t.Errorf("memoized verdict diverged: consistent %v/%v, score %v/%v",
			c2.consistent, c.consistent, c2.score, c.score)
	}

	// An inadmissible context (head constant absent from the body) is
	// never consistent and sorts below every admissible context.
	libertySt, _ := tk.Domain.Lookup("LibertySt")
	c3 := &ectx{ids: []relation.TupleID{id}}
	a.assess(c3, &cellParams{target: relation.NewTuple(crashes, libertySt), i: 1})
	if c3.consistent || !math.IsInf(c3.score, -1) {
		t.Errorf("inadmissible context: consistent = %v, score = %v", c3.consistent, c3.score)
	}
}
