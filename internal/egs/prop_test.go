package egs

import (
	"context"
	"math/rand"
	"testing"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// plantedInstance builds a random database, plants a random safe
// query (one or two rules), and labels the query's exact output as
// the positive set under closed-world semantics. By construction the
// resulting task is realizable.
func plantedInstance(rng *rand.Rand) (*task.Task, query.UCQ) {
	s := relation.NewSchema()
	d := relation.NewDomain()
	nRel := 1 + rng.Intn(3)
	rels := make([]relation.RelID, nRel)
	for i := range rels {
		rels[i] = s.MustDeclare("r"+string(rune('a'+i)), 1+rng.Intn(2), relation.Input)
	}
	outArity := 1 + rng.Intn(2)
	out := s.MustDeclare("out", outArity, relation.Output)

	t := &task.Task{Name: "planted", ClosedWorld: true, Schema: s, Domain: d}
	t.Input = relation.NewDatabase(s, d)
	nConst := 3 + rng.Intn(4)
	consts := make([]relation.Const, nConst)
	for i := range consts {
		consts[i] = d.Intern(string(rune('A' + i)))
	}
	nTuples := 3 + rng.Intn(10)
	for i := 0; i < nTuples; i++ {
		r := rels[rng.Intn(nRel)]
		args := make([]relation.Const, s.Arity(r))
		for j := range args {
			args[j] = consts[rng.Intn(nConst)]
		}
		t.Input.Insert(relation.Tuple{Rel: r, Args: args})
	}

	// Plant one or two random safe rules.
	var planted query.UCQ
	nRules := 1 + rng.Intn(2)
	for ri := 0; ri < nRules; ri++ {
		nBody := 1 + rng.Intn(2)
		nVars := 1 + rng.Intn(3)
		var body []query.Literal
		var bodyVars []query.Var
		seen := map[query.Var]bool{}
		for bi := 0; bi < nBody; bi++ {
			r := rels[rng.Intn(nRel)]
			args := make([]query.Term, s.Arity(r))
			for j := range args {
				v := query.Var(rng.Intn(nVars))
				args[j] = query.V(v)
				if !seen[v] {
					seen[v] = true
					bodyVars = append(bodyVars, v)
				}
			}
			body = append(body, query.Literal{Rel: r, Args: args})
		}
		head := query.Literal{Rel: out, Args: make([]query.Term, outArity)}
		for j := range head.Args {
			head.Args[j] = query.V(bodyVars[rng.Intn(len(bodyVars))])
		}
		planted.Rules = append(planted.Rules, query.Rule{Head: head, Body: body})
	}

	// Label the planted query's output as O+.
	for _, tu := range eval.UCQOutputs(planted, t.Input) {
		t.Pos = append(t.Pos, tu)
	}
	return t, planted
}

// TestSoundnessOnPlantedQueries: on instances known to be realizable
// (a planted query generated the labels), EGS must return a
// consistent program, never unsat. This exercises the full pipeline
// — slicing, unions, scoring — against the evaluator as an oracle.
func TestSoundnessOnPlantedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	solved := 0
	for trial := 0; trial < 300; trial++ {
		tk, planted := plantedInstance(rng)
		if len(tk.Pos) == 0 {
			continue // planted query derived nothing; vacuous
		}
		if err := tk.Prepare(); err != nil {
			t.Fatal(err)
		}
		res, err := Synthesize(context.Background(), tk, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Unsat {
			t.Fatalf("trial %d: realizable instance reported unsat; planted:\n%s",
				trial, planted.String(tk.Schema, tk.Domain))
		}
		if ok, why := tk.Example().Consistent(res.Query); !ok {
			t.Fatalf("trial %d: inconsistent result (%s):\n%s\nplanted:\n%s",
				trial, why, res.Query.String(tk.Schema, tk.Domain), planted.String(tk.Schema, tk.Domain))
		}
		solved++
	}
	if solved < 200 {
		t.Fatalf("only %d/300 trials were non-vacuous; generator broken?", solved)
	}
}

// TestP1AgreesWithP2OnVerdicts: both priority functions must agree
// on realizability for random planted instances (they differ only in
// search order).
func TestP1AgreesWithP2OnVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		tk, _ := plantedInstance(rng)
		if len(tk.Pos) == 0 {
			continue
		}
		if err := tk.Prepare(); err != nil {
			t.Fatal(err)
		}
		r2, err := Synthesize(context.Background(), tk, Options{Priority: P2})
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Synthesize(context.Background(), tk, Options{Priority: P1})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Unsat != r2.Unsat {
			t.Fatalf("trial %d: p1 unsat=%v, p2 unsat=%v", trial, r1.Unsat, r2.Unsat)
		}
		if r1.Unsat {
			continue
		}
		// p1 guarantees minimal size; p2 may be larger but not
		// smaller than the true minimum found by p1... p2 could find
		// a smaller union though, so compare per-instance totals
		// only loosely: both must be consistent (checked inside
		// Synthesize callers normally; re-check here).
		if ok, why := tk.Example().Consistent(r1.Query); !ok {
			t.Fatalf("trial %d: p1 inconsistent: %s", trial, why)
		}
	}
}

// TestRandomLabelsAlwaysDecided: with arbitrary (possibly
// unrealizable) labellings over a small domain, Synthesize must
// terminate with a verdict that matches a brute-force realizability
// check via Lemma 4.2 (r_{I->t} consistency per positive tuple).
func TestRandomLabelsAlwaysDecided(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		s := relation.NewSchema()
		d := relation.NewDomain()
		p := s.MustDeclare("p", 2, relation.Input)
		out := s.MustDeclare("out", 1, relation.Output)
		tk := &task.Task{Name: "rand", ClosedWorld: true, Schema: s, Domain: d}
		tk.Input = relation.NewDatabase(s, d)
		nConst := 2 + rng.Intn(3)
		consts := make([]relation.Const, nConst)
		for i := range consts {
			consts[i] = d.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 2+rng.Intn(5); i++ {
			tk.Input.Insert(relation.NewTuple(p, consts[rng.Intn(nConst)], consts[rng.Intn(nConst)]))
		}
		// Random positive labelling of out over the constants.
		for _, c := range consts {
			if rng.Intn(3) == 0 {
				tk.Pos = append(tk.Pos, relation.NewTuple(out, c))
			}
		}
		if len(tk.Pos) == 0 {
			continue
		}
		if err := tk.Prepare(); err != nil {
			t.Fatal(err)
		}

		res, err := Synthesize(context.Background(), tk, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: realizable iff for every positive tuple, the
		// maximal context's rule avoids all negatives (Lemma 4.2).
		realizable := true
		for _, pos := range tk.Pos {
			rule, ok := maximalRule(tk, pos)
			if !ok {
				realizable = false
				break
			}
			if !tk.Example().RuleConsistentWithNegatives(rule) {
				realizable = false
				break
			}
		}
		if res.Unsat == realizable {
			t.Fatalf("trial %d: egs unsat=%v but oracle realizable=%v", trial, res.Unsat, realizable)
		}
		if !res.Unsat {
			if ok, why := tk.Example().Consistent(res.Query); !ok {
				t.Fatalf("trial %d: inconsistent: %s", trial, why)
			}
		}
	}
}

// maximalRule builds r_{I -> t}: the generalization of the full
// input as a context for t. ok is false when some constant of t does
// not occur in the input.
func maximalRule(tk *task.Task, target relation.Tuple) (query.Rule, bool) {
	return generalize(tk.Input, tk.Input.AllIDs(), target, len(target.Args))
}
