package egs

import (
	"testing"

	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// memoFixture prepares the traffic task and a full-arity candidate
// rule Crashes(x) :- HasTraffic(x), GreenSignal(x) whose assessment
// the tests memoize by hand.
func memoFixture(t *testing.T) (*task.Task, *task.Example, query.Rule) {
	t.Helper()
	tk := mustTask(t, trafficSrc)
	if err := tk.Prepare(); err != nil {
		t.Fatal(err)
	}
	ex := tk.Example()
	rel := func(name string) relation.RelID {
		id, ok := tk.Schema.Lookup(name)
		if !ok {
			t.Fatalf("no relation %s", name)
		}
		return id
	}
	x := query.V(0)
	rule := query.Rule{
		Head: query.Literal{Rel: rel("Crashes"), Args: []query.Term{x}},
		Body: []query.Literal{
			{Rel: rel("HasTraffic"), Args: []query.Term{x}},
			{Rel: rel("GreenSignal"), Args: []query.Term{x}},
		},
	}
	return tk, ex, rule
}

func TestMemoStampsSurviveUnrelatedDeltas(t *testing.T) {
	tk, ex, rule := memoFixture(t)
	m := NewMemo()
	key := rule.CanonicalKey()
	derived, outs := forbiddenDerived(ex, rule, 1, 1)
	m.store(key, &rule, derived, outs)

	if got, hit := m.lookup(key, &rule, ex); !hit || got != derived {
		t.Fatalf("fresh lookup = %d,%v want %d,true", got, hit, derived)
	}

	// A fact delta on a relation the rule does not read cannot affect
	// the entry.
	intersects, _ := tk.Schema.Lookup("Intersects")
	m.BumpFact(intersects)
	if got, hit := m.lookup(key, &rule, ex); !hit || got != derived {
		t.Errorf("lookup after unrelated BumpFact = %d,%v want %d,true", got, hit, derived)
	}

	// An example delta on a different output relation cannot either.
	m.BumpExample(intersects) // any other rel id works as "other output"
	if got, hit := m.lookup(key, &rule, ex); !hit || got != derived {
		t.Errorf("lookup after unrelated BumpExample = %d,%v want %d,true", got, hit, derived)
	}
}

func TestMemoFactDeltaInvalidates(t *testing.T) {
	tk, ex, rule := memoFixture(t)
	m := NewMemo()
	key := rule.CanonicalKey()
	derived, outs := forbiddenDerived(ex, rule, 1, 1)
	m.store(key, &rule, derived, outs)

	hasTraffic, _ := tk.Schema.Lookup("HasTraffic")
	m.BumpFact(hasTraffic)
	if _, hit := m.lookup(key, &rule, ex); hit {
		t.Error("entry survived a fact delta on a body relation")
	}

	// Re-storing under the new epoch makes it valid again.
	m.store(key, &rule, derived, outs)
	if got, hit := m.lookup(key, &rule, ex); !hit || got != derived {
		t.Errorf("re-stored lookup = %d,%v want %d,true", got, hit, derived)
	}
}

// TestMemoExampleDeltaRevalidates: a pure example delta on the head
// relation must not cost a re-evaluation when the entry holds the
// rule's output ids — the memo re-probes the new labelling and
// returns a hit with the *updated* count.
func TestMemoExampleDeltaRevalidates(t *testing.T) {
	tk, ex, rule := memoFixture(t)
	m := NewMemo()
	key := rule.CanonicalKey()
	derived, outs := forbiddenDerived(ex, rule, 1, 1)
	if outs == nil {
		t.Fatal("full-arity assessment did not capture output ids")
	}
	m.store(key, &rule, derived, outs)

	crashes, _ := tk.Schema.Lookup("Crashes")
	m.BumpExample(crashes)

	// Revise: drop Crashes(Whitehall) from O+. Closed world makes it
	// forbidden, so the revalidated count must become 1 — computed
	// from the stored ids, not from a join.
	var pos []relation.Tuple
	for _, p := range tk.Pos {
		if tk.Domain.Name(p.Args[0]) != "Whitehall" {
			pos = append(pos, p)
		}
	}
	revised, err := tk.Revise(pos, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, hit := m.lookup(key, &rule, revised.Example())
	if !hit {
		t.Fatal("example-only delta missed despite stored output ids")
	}
	// Whitehall is among the rule's outputs and is now forbidden, so
	// the revalidated count grows by exactly one.
	if got != derived+1 {
		t.Errorf("revalidated derived = %d, want %d", got, derived+1)
	}
	_ = ex
}

func TestMemoExampleDeltaWithoutOutsMisses(t *testing.T) {
	tk, ex, rule := memoFixture(t)
	m := NewMemo()
	key := rule.CanonicalKey()
	derived, _ := forbiddenDerived(ex, rule, 1, 1)
	m.store(key, &rule, derived, nil) // proper-slice-style entry

	crashes, _ := tk.Schema.Lookup("Crashes")
	m.BumpExample(crashes)
	if _, hit := m.lookup(key, &rule, ex); hit {
		t.Error("entry without output ids survived an example delta on its head")
	}
}

func TestMemoDomainDeltaInvalidatesViaExampleStamp(t *testing.T) {
	_, ex, rule := memoFixture(t)
	m := NewMemo()
	key := rule.CanonicalKey()
	m.store(key, &rule, 3, nil)
	m.BumpDomain()
	if _, hit := m.lookup(key, &rule, ex); hit {
		t.Error("entry without output ids survived a domain delta")
	}
}

// TestSharedMemoAcrossRunsIsSound: two cold Synthesize runs of the
// same task sharing one Memo must agree byte-for-byte with an
// unshared run, and the second run must do strictly fewer rule
// evaluations.
func TestSharedMemoAcrossRunsIsSound(t *testing.T) {
	ref := synth(t, mustTask(t, trafficSrc), Options{})

	m := NewMemo()
	first := synth(t, mustTask(t, trafficSrc), Options{Memo: m})
	second := synth(t, mustTask(t, trafficSrc), Options{Memo: m})

	for _, res := range []Result{first, second} {
		if len(res.Query.Rules) != len(ref.Query.Rules) {
			t.Fatalf("shared-memo run learned %d rules, want %d", len(res.Query.Rules), len(ref.Query.Rules))
		}
		for i := range res.Query.Rules {
			if res.Query.Rules[i].CanonicalKey() != ref.Query.Rules[i].CanonicalKey() {
				t.Errorf("rule %d differs under shared memo", i)
			}
		}
	}
	if second.Stats.RuleEvals >= first.Stats.RuleEvals {
		t.Errorf("warm run evals = %d, want < %d", second.Stats.RuleEvals, first.Stats.RuleEvals)
	}
	if second.Stats.MemoHits <= first.Stats.MemoHits {
		t.Errorf("warm run memo hits = %d, want > %d", second.Stats.MemoHits, first.Stats.MemoHits)
	}
}
