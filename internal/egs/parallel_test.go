package egs

import (
	"context"
	"math/rand"
	"testing"
)

func TestParallelAgreesOnVerdicts(t *testing.T) {
	for _, src := range []string{trafficSrc, grandparentSrc, isomorphismSrc} {
		seqTk := mustTask(t, src)
		seq, err := Synthesize(context.Background(), seqTk, Options{})
		if err != nil {
			t.Fatal(err)
		}
		parTk := mustTask(t, src)
		par, err := SynthesizeParallel(context.Background(), parTk, Options{}, 4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Unsat != par.Unsat {
			t.Fatalf("verdicts differ: seq=%v par=%v", seq.Unsat, par.Unsat)
		}
		if !par.Unsat {
			if ok, why := parTk.Example().Consistent(par.Query); !ok {
				t.Fatalf("parallel result inconsistent: %s", why)
			}
		}
	}
}

func TestParallelSingleWorkerIsSequential(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	res, err := SynthesizeParallel(context.Background(), tk, Options{}, 1)
	if err != nil || res.Unsat {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestParallelOnPlantedInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		tk, _ := plantedInstance(rng)
		if len(tk.Pos) == 0 {
			continue
		}
		if err := tk.Prepare(); err != nil {
			t.Fatal(err)
		}
		res, err := SynthesizeParallel(context.Background(), tk, Options{}, 3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Unsat {
			t.Fatalf("trial %d: realizable instance reported unsat", trial)
		}
		if ok, why := tk.Example().Consistent(res.Query); !ok {
			t.Fatalf("trial %d: inconsistent: %s", trial, why)
		}
	}
}

func TestParallelBestEffort(t *testing.T) {
	src := trafficSrc + "+Crashes(Ghost).\n"
	tk := mustTask(t, src)
	res, err := SynthesizeParallel(context.Background(), tk, Options{BestEffort: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat || len(res.Uncovered) != 1 {
		t.Fatalf("unsat=%v uncovered=%d", res.Unsat, len(res.Uncovered))
	}
}

func TestParallelCancellation(t *testing.T) {
	tk := mustTask(t, trafficSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SynthesizeParallel(ctx, tk, Options{}, 4); err == nil {
		t.Fatal("cancelled parallel run returned no error")
	}
}
