package egs

import (
	"math"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// cellParams freezes the per-cell inputs of context assessment: the
// target tuple, the slice index, and |F_i|. CountForbidden can
// overflow uint64 on astronomically large closed-world domains;
// countKnown records that explicitly instead of smuggling a sentinel
// value into the score arithmetic.
type cellParams struct {
	target relation.Tuple
	i      int
	// totalForbidden is |F_i| when countKnown; meaningless otherwise.
	totalForbidden uint64
	countKnown     bool
}

// score computes the p2 priority of a context with |C| = size whose
// rule derives derivedForbidden forbidden i-slices. With |F_i| known
// this is the paper's |F_i \ [[r]]| / |C|. When |F_i| overflows, every
// context eliminates "astronomically many" slices and the comparison
// that actually matters is how many forbidden slices the rule still
// derives, normalized per literal — so we order by -derived/|C|
// without ever mixing a real numerator with a magic constant.
func (p *cellParams) score(derivedForbidden, size int) float64 {
	if p.countKnown {
		return (float64(p.totalForbidden) - float64(derivedForbidden)) / float64(size)
	}
	return -float64(derivedForbidden) / float64(size)
}

// assessor evaluates candidate contexts, memoizing rule evaluations
// by canonical rule key in a Memo.
//
// Soundness of the memo: generalize maps a context C to the rule
// r_{C -> t[1..i]}; two contexts whose generalizations share a
// CanonicalKey are alpha-equivalent, and alpha-equivalent rules have
// identical output sets on a database with identical body extents —
// evaluation is invariant under variable renaming and body
// reordering. The number of derived forbidden i-slices depends only
// on that output set and on F_i, which is fixed per (relation, i) —
// both encoded in the rule head — so the cached count is exact, never
// heuristic, for as long as the Memo's validity stamps attest that
// those inputs are unchanged. Equal keys also imply equal body length
// |C|, hence equal score denominators.
//
// The memo is shared at least across cells and targets of one
// searcher: rules learned while explaining different positive tuples
// of the same output relation frequently re-derive the same candidate
// bodies. Sessions (Options.Memo) widen the sharing across whole
// revisions.
type assessor struct {
	ex   *task.Example
	memo *Memo
}

// assess evaluates r_{C -> t[1..i]} against the example and fills the
// context's consistent/score fields (Step 3b of Algorithm 1 plus the
// Section 4.3 priority). A context whose head constants are missing
// from C is inadmissible: never consistent and of minimal priority.
// assess is safe for concurrent use; the only shared mutations are the
// memo (locked) and Database.InternTuple (lock-free once frozen).
func (a *assessor) assess(c *ectx, p *cellParams) {
	rule, ok := generalize(a.ex.DB, c.ids, p.target, p.i)
	if !ok {
		c.consistent, c.score = false, math.Inf(-1)
		return
	}
	key := rule.CanonicalKey()
	derived, hit := a.memo.lookup(key, &rule, a.ex)
	if hit {
		c.memoHit = true
	} else {
		var outs []relation.TupleID
		derived, outs = forbiddenDerived(a.ex, rule, p.i, len(p.target.Args))
		c.evals = 1
		a.memo.store(key, &rule, derived, outs)
	}
	c.consistent = derived == 0
	c.score = p.score(derived, len(c.ids))
}

// forbiddenDerived counts the i-slices derived by rule that lie in
// the forbidden set F_i — one full evaluation of the candidate rule.
// For full-arity rules it also returns the derived output ids (in
// emission order, with multiplicity, capped at memoOutsCap) so the
// memo can revalidate the count after an example-only delta; proper
// slices have no ids and return nil.
func forbiddenDerived(ex *task.Example, rule query.Rule, i, k int) (int, []relation.TupleID) {
	derived := 0
	if i == k {
		// Full-arity heads are ground output tuples: stay on the
		// dense-id plane and test forbiddenness as a bitset probe.
		outs := make([]relation.TupleID, 0, 16)
		eval.EvalRuleIDs(rule, ex.DB, func(id relation.TupleID) bool {
			if ex.IsNegativeID(id) {
				derived++
			}
			if outs != nil {
				if len(outs) < memoOutsCap {
					outs = append(outs, id)
				} else {
					outs = nil
				}
			}
			return true
		})
		return derived, outs
	}
	// Proper slices are not ground tuples and have no TupleID;
	// their forbidden sets stay keyed by slice prefix.
	eval.EvalRule(rule, ex.DB, func(t relation.Tuple) bool {
		if ex.ForbiddenPrefixKey(t.Key(), i) {
			derived++
		}
		return true
	})
	return derived, nil
}
