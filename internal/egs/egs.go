package egs

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
)

// Options configures the synthesizer.
type Options struct {
	// Priority selects p1 or p2 (Section 4.3); the default (zero
	// value) is P2, as in the paper's experiments.
	Priority Priority
	// QuickUnsat enables the Lemma 4.2 fast path: before searching a
	// cell, check whether the maximal context r_{I -> t[1..i]} is
	// consistent; if not, report unsat immediately instead of
	// exhausting the context space. The paper's tool does not use
	// this shortcut (its unsat proofs enumerate the space); we expose
	// it as an ablation.
	QuickUnsat bool
	// MaxContexts caps the number of contexts popped per cell as a
	// safety valve; 0 means unlimited.
	MaxContexts int
	// BestEffort tolerates noise in the examples (a Section 8
	// extension): positive tuples that admit no consistent
	// explanation are skipped and reported in Result.Uncovered
	// instead of failing the whole task. The returned program still
	// derives no negative tuple.
	BestEffort bool
}

// Stats summarizes the work performed by one synthesis run.
type Stats struct {
	ContextsPushed int
	ContextsPopped int
	RuleEvals      int
	MaxQueue       int
	CellsSolved    int
	RulesLearned   int
	Duration       time.Duration
}

// Result is the outcome of a synthesis run: either a consistent UCQ,
// or a proof of unrealizability (Unsat true), per Problem 3.1.
type Result struct {
	Query query.UCQ
	Unsat bool
	// Witness documents an Unsat verdict (nil otherwise).
	Witness *UnsatWitness
	// Uncovered lists positive tuples left unexplained in
	// best-effort mode (empty otherwise).
	Uncovered []relation.Tuple
	Stats     Stats
}

// UnsatWitness is the completeness argument behind an unsat verdict:
// the positive tuple that cannot be explained, the field (slice) at
// which its search failed, and the size of the exhausted context
// space. By Theorem 4.3 / Lemma 5.1, exhausting the space proves
// that no consistent conjunctive query explains the tuple, and hence
// (Lemma 5.2) no union of conjunctive queries is consistent with the
// example. With QuickUnsat the verdict instead cites Lemma 4.2: the
// maximal context r_{I -> t} is itself inconsistent.
type UnsatWitness struct {
	// Target is the unexplainable positive tuple.
	Target relation.Tuple
	// FailedSlice is the 1-based field index whose ExplainCell
	// search failed.
	FailedSlice int
	// ContextsExhausted counts the enumeration contexts explored for
	// the failing cell (0 when the anchor constant does not occur in
	// the input at all, or when the Lemma 4.2 fast path fired).
	ContextsExhausted int
	// ViaLemma42 is true when the fast path decided the verdict.
	ViaLemma42 bool
}

// String renders the witness as a one-paragraph explanation.
func (w *UnsatWitness) String(s *relation.Schema, d *relation.Domain) string {
	target := w.Target.String(s, d)
	if w.ViaLemma42 {
		return fmt.Sprintf("unsat: the maximal context rule r_{I -> %s} derives a forbidden tuple at field %d, so by Lemma 4.2 no consistent query exists",
			target, w.FailedSlice)
	}
	if w.ContextsExhausted == 0 {
		return fmt.Sprintf("unsat: field %d of %s contains a constant that occurs in no input tuple, so no context can explain it (Theorem 4.1)",
			w.FailedSlice, target)
	}
	return fmt.Sprintf("unsat: all %d enumeration contexts reachable for field %d of %s were exhausted without finding a consistent rule, so by Theorem 4.3 no consistent query exists",
		w.ContextsExhausted, w.FailedSlice, target)
}

// ErrBudgetExceeded reports that MaxContexts was exhausted before the
// search completed; no conclusion about realizability follows.
var ErrBudgetExceeded = errors.New("egs: context budget exceeded")

// Synthesize runs the EGS algorithm (Algorithm 3) on a prepared task:
// it returns a union of conjunctive queries consistent with the
// task's example, or Unsat if the completeness argument of Theorem
// 4.3 / Lemma 5.2 proves that none exists. The context ctx bounds the
// search (cancellation and deadlines are honoured between context
// expansions).
func Synthesize(ctx context.Context, t *task.Task, opts Options) (Result, error) {
	if err := t.Prepare(); err != nil {
		return Result{}, err
	}
	start := time.Now()
	s := &searcher{
		ctx:  ctx,
		ex:   t.Example(),
		opts: opts,
	}

	// Algorithm 3: explain each still-unexplained positive tuple with
	// a conjunctive query, removing everything the new rule derives.
	unexplained := append([]relation.Tuple(nil), t.Pos...)
	var rules []query.Rule
	var uncovered []relation.Tuple
	for len(unexplained) > 0 {
		target := unexplained[0]
		ids, ok, err := s.explainTuple(target)
		if err != nil {
			return Result{Stats: s.statsWith(start)}, err
		}
		if !ok {
			if opts.BestEffort {
				uncovered = append(uncovered, target)
				unexplained = unexplained[1:]
				continue
			}
			return Result{Unsat: true, Witness: s.failure, Stats: s.statsWith(start)}, nil
		}
		rule, admissible := generalize(s.ex.DB, ids, target, len(target.Args))
		if !admissible {
			// Cannot happen for a context returned by explainTuple;
			// guard against future refactors.
			return Result{Stats: s.statsWith(start)}, fmt.Errorf("egs: internal error: inadmissible explaining context for %s",
				target.String(t.Schema, t.Domain))
		}
		outs := eval.RuleOutputIDs(rule, s.ex.DB)
		var still []relation.Tuple
		for _, u := range unexplained {
			if !outs.Has(s.ex.DB.InternTuple(u)) {
				still = append(still, u)
			}
		}
		if len(still) == len(unexplained) {
			return Result{Stats: s.statsWith(start)}, fmt.Errorf("egs: internal error: learned rule does not derive its target %s",
				target.String(t.Schema, t.Domain))
		}
		unexplained = still
		rules = append(rules, rule)
	}
	s.stats.RulesLearned = len(rules)
	return Result{
		Query:     query.UCQ{Rules: rules},
		Uncovered: uncovered,
		Stats:     s.statsWith(start),
	}, nil
}

type searcher struct {
	ctx   context.Context
	ex    *task.Example
	opts  Options
	stats Stats
	seq   int
	// failure records why the most recent explainCell exhausted,
	// for unsat witnesses.
	failure *UnsatWitness
}

func (s *searcher) statsWith(start time.Time) Stats {
	st := s.stats
	st.Duration = time.Since(start)
	return st
}

// explainTuple implements Algorithm 2: explain the fields of the
// target tuple one at a time, growing the context C_1 ⊆ ... ⊆ C_k.
// It returns the final context and ok=false when some cell is
// unrealizable.
func (s *searcher) explainTuple(target relation.Tuple) ([]relation.TupleID, bool, error) {
	var base []relation.TupleID
	for i := 1; i <= len(target.Args); i++ {
		next, ok, err := s.explainCell(base, target, i)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if s.failure == nil {
				s.failure = &UnsatWitness{}
			}
			s.failure.Target = target
			s.failure.FailedSlice = i
			return nil, false, nil
		}
		base = next
	}
	return base, true, nil
}

// explainCell implements Algorithm 1 (with the Section 5.1
// generalization): starting from the prior slice's context, find a
// context whose generalized rule derives no forbidden i-slice.
func (s *searcher) explainCell(base []relation.TupleID, target relation.Tuple, i int) ([]relation.TupleID, bool, error) {
	cs, err := s.explainCellMulti(base, target, i, 1)
	if err != nil || len(cs) == 0 {
		return nil, false, err
	}
	return cs[0], true, nil
}

// explainCellMulti is explainCell generalized to collect up to k
// distinct consistent contexts, in priority order. It powers the
// Alternatives API: the search simply keeps popping after the first
// success instead of returning.
func (s *searcher) explainCellMulti(base []relation.TupleID, target relation.Tuple, i, k int) ([][]relation.TupleID, error) {
	ex := s.ex
	db := ex.DB
	arity := len(target.Args)
	anchor := target.Args[i-1]

	totalForbiddenU, okCount := ex.CountForbidden(target.Rel, i, arity)
	totalForbidden := float64(totalForbiddenU)
	if !okCount {
		totalForbidden = float64(1 << 62)
	}

	if s.opts.QuickUnsat {
		// Lemma 4.2 fast path: the maximal context base ∪ I. Since
		// base ⊆ I this is just all of I.
		all := db.AllIDs()
		if consistent, _, _ := assess(ex, all, target, i, totalForbidden); !consistent {
			s.failure = &UnsatWitness{ViaLemma42: true}
			return nil, nil
		}
	}

	visited := make(map[string]bool)
	queue := newCtxQueue(s.opts.Priority)

	push := func(ids []relation.TupleID) {
		key := ctxKey(ids)
		if visited[key] {
			return
		}
		visited[key] = true
		consistent, score, evals := assess(ex, ids, target, i, totalForbidden)
		s.stats.RuleEvals += evals
		s.seq++
		queue.push(&ectx{ids: ids, consistent: consistent, score: score, seq: s.seq})
		s.stats.ContextsPushed++
		if queue.Len() > s.stats.MaxQueue {
			s.stats.MaxQueue = queue.Len()
		}
	}

	// Initialization (Equation 6 for i = 1, Equation 8 for i > 1):
	// extend the prior context with each tuple containing the
	// anchor constant t[i]. When the anchor already occurs in the
	// prior context, the prior context itself is admissible and is
	// seeded too (this covers targets with repeated constants such
	// as sibling(Kopa, Kopa)).
	if len(base) > 0 {
		baseConsts := db.ConstantsOf(base)
		for _, c := range baseConsts {
			if c == anchor {
				push(append([]relation.TupleID(nil), base...))
				break
			}
		}
	}
	for _, id := range db.Mentioning(anchor) {
		if ids, fresh := extend(base, id); fresh {
			push(ids)
		}
	}

	var found [][]relation.TupleID
	popped := 0
	for queue.Len() > 0 {
		if popped%64 == 0 {
			select {
			case <-s.ctx.Done():
				return nil, s.ctx.Err()
			default:
			}
		}
		cur := queue.pop()
		popped++
		s.stats.ContextsPopped++
		if s.opts.MaxContexts > 0 && popped > s.opts.MaxContexts {
			return nil, ErrBudgetExceeded
		}
		if cur.consistent {
			if len(found) == 0 {
				s.stats.CellsSolved++
			}
			found = append(found, cur.ids)
			if len(found) >= k {
				return found, nil
			}
			continue
		}
		// Step 3(c): successors are the input tuples adjacent to the
		// context in the co-occurrence graph — those sharing at
		// least one constant with C.
		for _, c := range db.ConstantsOf(cur.ids) {
			for _, id := range db.Mentioning(c) {
				if containsID(cur.ids, id) {
					continue
				}
				if ids, fresh := extend(cur.ids, id); fresh {
					push(ids)
				}
			}
		}
	}
	// Queue exhausted: by Theorem 4.3 / Lemma 5.1, fewer than k
	// explaining contexts exist; in particular an empty result proves
	// the cell unrealizable.
	if len(found) == 0 {
		s.failure = &UnsatWitness{ContextsExhausted: popped}
	}
	return found, nil
}

// Alternatives synthesizes up to k distinct conjunctive queries,
// each consistent with (I, {target}, O-), in the priority order the
// search discovers them. The leading fields of target are explained
// as in Algorithm 2; the final cell's worklist is then drained until
// k explanations accumulate. Alternatives underpin disambiguation
// workflows: when several queries explain the data, their differing
// outputs suggest which example to label next.
func Alternatives(ctx context.Context, t *task.Task, target relation.Tuple, k int, opts Options) ([]query.Rule, error) {
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, nil
	}
	s := &searcher{ctx: ctx, ex: t.Example(), opts: opts}
	var base []relation.TupleID
	arity := len(target.Args)
	for i := 1; i < arity; i++ {
		next, ok, err := s.explainCell(base, target, i)
		if err != nil || !ok {
			return nil, err
		}
		base = next
	}
	contexts, err := s.explainCellMulti(base, target, arity, k)
	if err != nil {
		return nil, err
	}
	var rules []query.Rule
	seen := make(map[string]bool)
	for _, ids := range contexts {
		rule, ok := generalize(s.ex.DB, ids, target, arity)
		if !ok {
			continue
		}
		key := rule.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		rules = append(rules, rule)
	}
	return rules, nil
}

// ExplainOne exposes the single-tuple ExplainTuple procedure for
// examples and tools: it synthesizes one conjunctive query explaining
// target, or reports unsat.
func ExplainOne(ctx context.Context, t *task.Task, target relation.Tuple, opts Options) (query.Rule, bool, error) {
	if err := t.Prepare(); err != nil {
		return query.Rule{}, false, err
	}
	s := &searcher{ctx: ctx, ex: t.Example(), opts: opts}
	ids, ok, err := s.explainTuple(target)
	if err != nil || !ok {
		return query.Rule{}, false, err
	}
	rule, _ := generalize(s.ex.DB, ids, target, len(target.Args))
	return rule, true, nil
}
