package egs

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/query"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// Options configures the synthesizer.
type Options struct {
	// Priority selects p1 or p2 (Section 4.3); the default (zero
	// value) is P2, as in the paper's experiments.
	Priority Priority
	// QuickUnsat enables the Lemma 4.2 fast path: before searching a
	// cell, check whether the maximal context r_{I -> t[1..i]} is
	// consistent; if not, report unsat immediately instead of
	// exhausting the context space. The paper's tool does not use
	// this shortcut (its unsat proofs enumerate the space); we expose
	// it as an ablation.
	QuickUnsat bool
	// MaxContexts caps the number of contexts popped per cell as a
	// safety valve; 0 means unlimited.
	MaxContexts int
	// BestEffort tolerates noise in the examples (a Section 8
	// extension): positive tuples that admit no consistent
	// explanation are skipped and reported in Result.Uncovered
	// instead of failing the whole task. The returned program still
	// derives no negative tuple.
	BestEffort bool
	// AssessParallelism bounds the worker pool that assesses the
	// successors of each popped context concurrently; values <= 1 run
	// sequentially. Learned rules, unsat verdicts, and exploration
	// order are bit-identical across settings: deduplication and seq
	// assignment stay sequential in generation order, assessment
	// results are pure functions of the context, and results enter
	// the queue in generation order, so the worklist's total order
	// (score, size, seq) is unchanged. Only Stats.RuleEvals/MemoHits
	// may differ, when two copies of one canonical rule land in the
	// same batch and both miss the memo.
	AssessParallelism int
	// Memo, when non-nil, is the shared assessment cache the run reads
	// and fills instead of a fresh per-searcher one. Incremental
	// sessions pass the same Memo across revisions (with validity
	// stamps bumped per delta) so a warm revision skips most rule
	// evaluations. Sharing a Memo never changes learned rules or unsat
	// verdicts — cached counts equal recomputed ones — but
	// Stats.RuleEvals/MemoHits shift toward hits.
	Memo *Memo
	// Trace receives structured search events: cell spans, context
	// pops, assessment batches, memo hits, pool round-trips, pooled-
	// evaluator traffic, and worklist high-water marks. nil disables
	// tracing; the hot path then pays one pointer comparison per event
	// site and never reads a clock (timestamps are taken by the
	// recorder, in internal/trace). Tracing cannot alter the search:
	// learned rules, unsat verdicts, and Stats are identical with
	// tracing on or off.
	Trace trace.Recorder
}

// Stats summarizes the work performed by one synthesis run.
type Stats struct {
	ContextsPushed int
	ContextsPopped int
	// RuleEvals counts candidate-rule evaluations actually executed;
	// MemoHits counts assessments answered from the canonical-rule
	// cache instead. Their sum is the number of admissible contexts
	// assessed.
	RuleEvals    int
	MemoHits     int
	MaxQueue     int
	CellsSolved  int
	RulesLearned int
	Duration     time.Duration
}

// Result is the outcome of a synthesis run: either a consistent UCQ,
// or a proof of unrealizability (Unsat true), per Problem 3.1.
type Result struct {
	Query query.UCQ
	Unsat bool
	// Witness documents an Unsat verdict (nil otherwise).
	Witness *UnsatWitness
	// Uncovered lists positive tuples left unexplained in
	// best-effort mode (empty otherwise).
	Uncovered []relation.Tuple
	Stats     Stats
}

// UnsatWitness is the completeness argument behind an unsat verdict:
// the positive tuple that cannot be explained, the field (slice) at
// which its search failed, and the size of the exhausted context
// space. By Theorem 4.3 / Lemma 5.1, exhausting the space proves
// that no consistent conjunctive query explains the tuple, and hence
// (Lemma 5.2) no union of conjunctive queries is consistent with the
// example. With QuickUnsat the verdict instead cites Lemma 4.2: the
// maximal context r_{I -> t} is itself inconsistent.
type UnsatWitness struct {
	// Target is the unexplainable positive tuple.
	Target relation.Tuple
	// FailedSlice is the 1-based field index whose ExplainCell
	// search failed.
	FailedSlice int
	// ContextsExhausted counts the enumeration contexts explored for
	// the failing cell (0 when the anchor constant does not occur in
	// the input at all, or when the Lemma 4.2 fast path fired).
	ContextsExhausted int
	// ViaLemma42 is true when the fast path decided the verdict.
	ViaLemma42 bool
}

// String renders the witness as a one-paragraph explanation.
func (w *UnsatWitness) String(s *relation.Schema, d *relation.Domain) string {
	target := w.Target.String(s, d)
	if w.ViaLemma42 {
		return fmt.Sprintf("unsat: the maximal context rule r_{I -> %s} derives a forbidden tuple at field %d, so by Lemma 4.2 no consistent query exists",
			target, w.FailedSlice)
	}
	if w.ContextsExhausted == 0 {
		return fmt.Sprintf("unsat: field %d of %s contains a constant that occurs in no input tuple, so no context can explain it (Theorem 4.1)",
			w.FailedSlice, target)
	}
	return fmt.Sprintf("unsat: all %d enumeration contexts reachable for field %d of %s were exhausted without finding a consistent rule, so by Theorem 4.3 no consistent query exists",
		w.ContextsExhausted, w.FailedSlice, target)
}

// ErrBudgetExceeded reports that MaxContexts was exhausted before the
// search completed; no conclusion about realizability follows.
var ErrBudgetExceeded = errors.New("egs: context budget exceeded")

// Synthesize runs the EGS algorithm (Algorithm 3) on a prepared task:
// it returns a union of conjunctive queries consistent with the
// task's example, or Unsat if the completeness argument of Theorem
// 4.3 / Lemma 5.2 proves that none exists. The context ctx bounds the
// search (cancellation and deadlines are honoured between context
// expansions).
func Synthesize(ctx context.Context, t *task.Task, opts Options) (Result, error) {
	if err := t.Prepare(); err != nil {
		return Result{}, err
	}
	//lint:ignore egslint/nodetsource wall-clock start feeds only Stats.Duration, never a search decision
	start := time.Now()
	s := newSearcher(ctx, t.Example(), opts)
	defer s.close()

	// Algorithm 3: explain each still-unexplained positive tuple with
	// a conjunctive query, removing everything the new rule derives.
	unexplained := append([]relation.Tuple(nil), t.Pos...)
	var rules []query.Rule
	var uncovered []relation.Tuple
	for len(unexplained) > 0 {
		target := unexplained[0]
		ids, ok, err := s.explainTuple(target)
		if err != nil {
			return Result{Stats: s.statsWith(start)}, err
		}
		if !ok {
			if opts.BestEffort {
				uncovered = append(uncovered, target)
				unexplained = unexplained[1:]
				continue
			}
			return Result{Unsat: true, Witness: s.failure, Stats: s.statsWith(start)}, nil
		}
		rule, admissible := generalize(s.ex.DB, ids, target, len(target.Args))
		if !admissible {
			// Cannot happen for a context returned by explainTuple;
			// guard against future refactors.
			return Result{Stats: s.statsWith(start)}, fmt.Errorf("egs: internal error: inadmissible explaining context for %s",
				target.String(t.Schema, t.Domain))
		}
		outs := eval.RuleOutputIDs(rule, s.ex.DB)
		var still []relation.Tuple
		for _, u := range unexplained {
			if !outs.Has(s.ex.DB.InternTuple(u)) {
				still = append(still, u)
			}
		}
		if len(still) == len(unexplained) {
			return Result{Stats: s.statsWith(start)}, fmt.Errorf("egs: internal error: learned rule does not derive its target %s",
				target.String(t.Schema, t.Domain))
		}
		unexplained = still
		rules = append(rules, rule)
	}
	s.stats.RulesLearned = len(rules)
	return Result{
		Query:     query.UCQ{Rules: rules},
		Uncovered: uncovered,
		Stats:     s.statsWith(start),
	}, nil
}

type searcher struct {
	ctx   context.Context
	ex    *task.Example
	opts  Options
	stats Stats
	seq   int
	// id names this searcher in traces; SynthesizeParallel assigns
	// distinct ids so per-searcher trace shards merge
	// deterministically.
	id int32
	// tr is the trace sink (nil = tracing off). Cells re-read it into
	// a local once, so untraced searches pay one pointer comparison
	// per event site.
	tr trace.Recorder
	// evalTraced records that this searcher enabled the pooled-
	// evaluator counters and must disable them on close.
	evalTraced bool
	// failure records why the most recent explainCell exhausted,
	// for unsat witnesses.
	failure *UnsatWitness

	// asr memoizes rule evaluations by canonical key across the whole
	// run; pool (nil when AssessParallelism <= 1) fans batches of
	// assessments out to workers.
	asr  assessor
	pool *assessPool
	// arena and slab own the memory of every context generated by
	// this searcher; visited and pending are per-cell scratch reused
	// across cells.
	arena   idArena
	slab    ectxSlab
	visited relation.HashSet64
	pending []*ectx
}

func newSearcher(ctx context.Context, ex *task.Example, opts Options) *searcher {
	s := &searcher{ctx: ctx, ex: ex, opts: opts, tr: opts.Trace}
	s.asr.ex = ex
	if opts.Memo != nil {
		s.asr.memo = opts.Memo
	} else {
		s.asr.memo = NewMemo()
	}
	if opts.AssessParallelism > 1 {
		s.pool = newAssessPool(opts.AssessParallelism)
	}
	if s.tr != nil {
		eval.EnablePoolTracing()
		s.evalTraced = true
	}
	return s
}

// close releases the searcher's worker pool, if any, and retires its
// tracing hooks. The searcher must not be used afterwards.
func (s *searcher) close() {
	if s.evalTraced {
		eval.DisablePoolTracing()
		s.evalTraced = false
	}
	if s.pool != nil {
		s.pool.close()
		s.pool = nil
	}
}

func (s *searcher) statsWith(start time.Time) Stats {
	st := s.stats
	//lint:ignore egslint/nodetsource Duration is reporting-only; excluded from determinism comparisons
	st.Duration = time.Since(start)
	return st
}

// explainTuple implements Algorithm 2: explain the fields of the
// target tuple one at a time, growing the context C_1 ⊆ ... ⊆ C_k.
// It returns the final context and ok=false when some cell is
// unrealizable.
func (s *searcher) explainTuple(target relation.Tuple) ([]relation.TupleID, bool, error) {
	var base []relation.TupleID
	for i := 1; i <= len(target.Args); i++ {
		next, ok, err := s.explainCell(base, target, i)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if s.failure == nil {
				s.failure = &UnsatWitness{}
			}
			s.failure.Target = target
			s.failure.FailedSlice = i
			return nil, false, nil
		}
		base = next
	}
	return base, true, nil
}

// explainCell implements Algorithm 1 (with the Section 5.1
// generalization): starting from the prior slice's context, find a
// context whose generalized rule derives no forbidden i-slice.
func (s *searcher) explainCell(base []relation.TupleID, target relation.Tuple, i int) ([]relation.TupleID, bool, error) {
	cs, err := s.explainCellMulti(base, target, i, 1)
	if err != nil || len(cs) == 0 {
		return nil, false, err
	}
	return cs[0], true, nil
}

// explainCellMulti is explainCell generalized to collect up to k
// distinct consistent contexts, in priority order. It powers the
// Alternatives API: the search simply keeps popping after the first
// success instead of returning.
//
// The inner loop is organized as stage/flush: candidate successors
// are deduplicated (by 64-bit id-set fingerprint, computed without
// materializing the candidate) and seq-stamped sequentially in
// generation order, then the batch is assessed — in parallel when the
// searcher has a pool — and pushed in staging order. Assessment is a
// pure function of the context, so the queue's contents and total
// order (score, size, seq) are identical to a fully sequential run.
func (s *searcher) explainCellMulti(base []relation.TupleID, target relation.Tuple, i, k int) ([][]relation.TupleID, error) {
	ex := s.ex
	db := ex.DB
	arity := len(target.Args)
	anchor := target.Args[i-1]

	p := cellParams{target: target, i: i}
	p.totalForbidden, p.countKnown = ex.CountForbidden(target.Rel, i, arity)

	if s.opts.QuickUnsat {
		// Lemma 4.2 fast path: the maximal context base ∪ I. Since
		// base ⊆ I this is just all of I.
		probe := &ectx{ids: db.AllIDs()}
		s.asr.assess(probe, &p)
		if !probe.consistent {
			s.failure = &UnsatWitness{ViaLemma42: true}
			return nil, nil
		}
	}

	// visited holds fingerprints of every id set generated for this
	// cell (distinct cells may legitimately regenerate the same set,
	// so it resets here). A fingerprint collision would silently drop
	// a context; at 2^-64 per pair that is negligible against the
	// ~2^17 contexts of the largest benchmarks, and it lets duplicate
	// candidates be rejected without allocating their id sets.
	s.visited.Reset()
	queue := newCtxQueue(s.opts.Priority)
	pending := s.pending[:0]
	// Every exit below — success, queue exhaustion, cancellation,
	// budget errors — must hand the staged-batch buffer back to the
	// searcher, or the next cell on a reused searcher re-slices a
	// buffer whose grown capacity was lost (and whose tail still pins
	// stale contexts). Centralized here so new exit paths cannot
	// reintroduce the leak.
	defer func() { s.pending = pending[:0] }()

	// Tracing is resolved once per cell; with tr == nil every event
	// site below is a single pointer comparison and no clock is read.
	tr := s.tr
	popped := 0
	staged := 0
	if tr != nil {
		cellStart := tr.Now()
		rt0, fresh0 := eval.PoolCounters()
		batch0, bt0, _ := eval.StrategyCounters()
		tr.Record(trace.Event{Kind: trace.KindCellStart, Searcher: s.id, Slice: int32(i), TS: cellStart, Target: target.String(db.Schema, db.Domain)})
		defer func() {
			end := tr.Now()
			rt, fresh := eval.PoolCounters()
			batch, bt, frontierHW := eval.StrategyCounters()
			tr.Record(trace.Event{Kind: trace.KindEvalPool, Searcher: s.id, Slice: int32(i), TS: end, N: int64(rt - rt0), M: int64(fresh - fresh0)})
			tr.Record(trace.Event{Kind: trace.KindEvalStrategy, Searcher: s.id, Slice: int32(i), TS: end,
				N: int64(batch - batch0), M: int64(bt - bt0), Target: strconv.FormatUint(frontierHW, 10)})
			tr.Record(trace.Event{Kind: trace.KindCellEnd, Searcher: s.id, Slice: int32(i), TS: cellStart, Dur: end - cellStart, N: int64(popped), M: int64(staged), Target: target.String(db.Schema, db.Domain)})
		}()
	}

	// stage admits a deduplicated candidate (already arena-allocated)
	// into the current batch, stamping its seq in generation order.
	stage := func(ids []relation.TupleID) {
		s.seq++
		staged++
		c := s.slab.alloc()
		c.ids, c.seq = ids, s.seq
		pending = append(pending, c)
	}
	// flush assesses the staged batch and pushes results in staging
	// order. Stats are merged here, on the searcher's goroutine —
	// which also makes the trace events below deterministic: evals
	// and memo verdicts are read after the pool barrier, so the shard
	// records the same events in the same order at any parallelism.
	flush := func() {
		if len(pending) == 0 {
			return
		}
		var batchStart int64
		var preEvals, preHits int
		if tr != nil {
			batchStart = tr.Now()
			preEvals, preHits = s.stats.RuleEvals, s.stats.MemoHits
		}
		pooled := s.pool != nil && len(pending) > 1
		if pooled {
			var wg sync.WaitGroup
			wg.Add(len(pending))
			for _, c := range pending {
				s.pool.submit(assessJob{c: c, p: &p, a: &s.asr, wg: &wg})
			}
			wg.Wait()
		} else {
			for _, c := range pending {
				s.asr.assess(c, &p)
			}
		}
		var assessed int64
		if tr != nil {
			assessed = tr.Now()
		}
		for _, c := range pending {
			s.stats.RuleEvals += int(c.evals)
			if c.memoHit {
				s.stats.MemoHits++
			}
			queue.push(c)
		}
		s.stats.ContextsPushed += len(pending)
		if queue.Len() > s.stats.MaxQueue {
			s.stats.MaxQueue = queue.Len()
			if tr != nil {
				tr.Record(trace.Event{Kind: trace.KindQueueHighWater, Searcher: s.id, Slice: int32(i), TS: assessed, N: int64(queue.Len())})
			}
		}
		if tr != nil {
			if pooled {
				tr.Record(trace.Event{Kind: trace.KindPoolRoundTrip, Searcher: s.id, Slice: int32(i), TS: batchStart, Dur: assessed - batchStart, N: int64(len(pending))})
			}
			tr.Record(trace.Event{Kind: trace.KindAssessBatch, Searcher: s.id, Slice: int32(i), TS: batchStart, Dur: assessed - batchStart, N: int64(s.stats.RuleEvals - preEvals), M: int64(len(pending))})
			if hits := s.stats.MemoHits - preHits; hits > 0 {
				tr.Record(trace.Event{Kind: trace.KindMemoHit, Searcher: s.id, Slice: int32(i), TS: assessed, N: int64(hits)})
			}
		}
		pending = pending[:0]
	}

	// Initialization (Equation 6 for i = 1, Equation 8 for i > 1):
	// extend the prior context with each tuple containing the
	// anchor constant t[i]. When the anchor already occurs in the
	// prior context, the prior context itself is admissible and is
	// seeded too (this covers targets with repeated constants such
	// as sibling(Kopa, Kopa)).
	if len(base) > 0 {
		for _, c := range db.ConstantsOf(base) {
			if c == anchor {
				if s.visited.Add(relation.IDSetHash(base)) {
					stage(s.arena.copy(base))
				}
				break
			}
		}
	}
	for _, id := range db.Mentioning(anchor) {
		if containsID(base, id) {
			continue
		}
		if s.visited.Add(relation.IDSetHashExtend(base, id)) {
			stage(s.arena.extend(base, id))
		}
	}
	flush()

	var found [][]relation.TupleID
	for queue.Len() > 0 {
		if popped%64 == 0 {
			select {
			case <-s.ctx.Done():
				return nil, s.ctx.Err()
			default:
			}
		}
		cur := queue.pop()
		popped++
		s.stats.ContextsPopped++
		if tr != nil {
			tr.Record(trace.Event{Kind: trace.KindPop, Searcher: s.id, Slice: int32(i), TS: tr.Now(), N: int64(cur.size()), M: int64(queue.Len())})
		}
		if s.opts.MaxContexts > 0 && popped > s.opts.MaxContexts {
			return nil, ErrBudgetExceeded
		}
		if cur.consistent {
			if len(found) == 0 {
				s.stats.CellsSolved++
			}
			found = append(found, cur.ids)
			if len(found) >= k {
				return found, nil
			}
			continue
		}
		// Step 3(c): successors are the input tuples adjacent to the
		// context in the co-occurrence graph — those sharing at
		// least one constant with C. The whole batch is staged before
		// flushing, so one pop costs at most one pool round-trip.
		for _, c := range db.ConstantsOf(cur.ids) {
			for _, id := range db.Mentioning(c) {
				if containsID(cur.ids, id) {
					continue
				}
				if s.visited.Add(relation.IDSetHashExtend(cur.ids, id)) {
					stage(s.arena.extend(cur.ids, id))
				}
			}
		}
		flush()
	}
	// Queue exhausted: by Theorem 4.3 / Lemma 5.1, fewer than k
	// explaining contexts exist; in particular an empty result proves
	// the cell unrealizable.
	if len(found) == 0 {
		s.failure = &UnsatWitness{ContextsExhausted: popped}
	}
	return found, nil
}

// Alternatives synthesizes up to k distinct conjunctive queries,
// each consistent with (I, {target}, O-), in the priority order the
// search discovers them. The leading fields of target are explained
// as in Algorithm 2; the final cell's worklist is then drained until
// k explanations accumulate. Alternatives underpin disambiguation
// workflows: when several queries explain the data, their differing
// outputs suggest which example to label next.
func Alternatives(ctx context.Context, t *task.Task, target relation.Tuple, k int, opts Options) ([]query.Rule, error) {
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, nil
	}
	s := newSearcher(ctx, t.Example(), opts)
	defer s.close()
	var base []relation.TupleID
	arity := len(target.Args)
	for i := 1; i < arity; i++ {
		next, ok, err := s.explainCell(base, target, i)
		if err != nil || !ok {
			return nil, err
		}
		base = next
	}
	contexts, err := s.explainCellMulti(base, target, arity, k)
	if err != nil {
		return nil, err
	}
	var rules []query.Rule
	seen := make(map[string]bool)
	for _, ids := range contexts {
		rule, ok := generalize(s.ex.DB, ids, target, arity)
		if !ok {
			continue
		}
		key := rule.CanonicalKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		rules = append(rules, rule)
	}
	return rules, nil
}

// ExplainOne exposes the single-tuple ExplainTuple procedure for
// examples and tools: it synthesizes one conjunctive query explaining
// target, or reports unsat.
func ExplainOne(ctx context.Context, t *task.Task, target relation.Tuple, opts Options) (query.Rule, bool, error) {
	if err := t.Prepare(); err != nil {
		return query.Rule{}, false, err
	}
	s := newSearcher(ctx, t.Example(), opts)
	defer s.close()
	ids, ok, err := s.explainTuple(target)
	if err != nil || !ok {
		return query.Rule{}, false, err
	}
	rule, _ := generalize(s.ex.DB, ids, target, len(target.Args))
	return rule, true, nil
}
