package egs

import "container/heap"

// Priority selects the queue ordering of Section 4.3.
type Priority uint8

const (
	// P2 orders contexts lexicographically by (score, -|C|): highest
	// explanatory power per literal first, then smallest. This is the
	// paper's default and the one used in its experiments.
	P2 Priority = iota
	// P1 orders contexts by ascending size only, guaranteeing the
	// syntactically smallest solution.
	P1
)

func (p Priority) String() string {
	if p == P1 {
		return "p1"
	}
	return "p2"
}

// ctxQueue is a max-first priority queue of enumeration contexts.
type ctxQueue struct {
	items []*ectx
	prio  Priority
}

func newCtxQueue(p Priority) *ctxQueue {
	q := &ctxQueue{prio: p}
	heap.Init(q)
	return q
}

func (q *ctxQueue) Len() int { return len(q.items) }

// Less reports whether item i should be popped before item j.
func (q *ctxQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.prio == P2 {
		if a.score != b.score {
			return a.score > b.score
		}
	}
	if a.size() != b.size() {
		return a.size() < b.size()
	}
	return a.seq < b.seq
}

func (q *ctxQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *ctxQueue) Push(x any) { q.items = append(q.items, x.(*ectx)) }

func (q *ctxQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

func (q *ctxQueue) push(c *ectx) { heap.Push(q, c) }

func (q *ctxQueue) pop() *ectx { return heap.Pop(q).(*ectx) }
