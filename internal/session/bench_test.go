package session

import (
	"context"
	"testing"

	"github.com/egs-synthesis/egs/internal/bench"
	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/task"
)

// benchCases are the session benchmark instances: the synthetic
// scaling family's largest suite member and a small real benchmark
// with materialized negation.
func benchCases(b *testing.B) map[string]func() *task.Task {
	b.Helper()
	return map[string]func() *task.Task{
		"scaled-traffic-60": func() *task.Task {
			t, err := bench.ScaledTraffic(60)
			if err != nil {
				b.Fatal(err)
			}
			return t
		},
		"grandparent": func() *task.Task {
			t, err := task.Load("../../testdata/benchmarks/knowledge-discovery/grandparent.task")
			if err != nil {
				b.Fatal(err)
			}
			return t
		},
	}
}

// BenchmarkSessionCold measures a from-scratch synthesis of the full
// task — the baseline a warm revision is compared against.
func BenchmarkSessionCold(b *testing.B) {
	for name, load := range benchCases(b) {
		b.Run(name, func(b *testing.B) {
			tk := load()
			if err := tk.Prepare(); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			var evals int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := egs.Synthesize(ctx, tk, egs.Options{})
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Stats.RuleEvals
			}
			b.ReportMetric(float64(evals), "ruleevals/op")
		})
	}
}

// BenchmarkSessionRevision measures one warm revision: toggle the
// last positive example (remove + re-add, restoring the original
// labelling) and re-solve through the session's stamped memo.
func BenchmarkSessionRevision(b *testing.B) {
	for name, load := range benchCases(b) {
		b.Run(name, func(b *testing.B) {
			sess, err := New(load())
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			if _, err := sess.Solve(ctx, egs.Options{}, 1); err != nil {
				b.Fatal(err)
			}
			tk := sess.Task()
			last := tk.Pos[len(tk.Pos)-1]
			args := make([]string, len(last.Args))
			for i, c := range last.Args {
				args[i] = tk.Domain.Name(c)
			}
			rel := tk.Schema.Name(last.Rel)
			var evals int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.RemoveExample(rel, args...); err != nil {
					b.Fatal(err)
				}
				if err := sess.AddExample(true, rel, args...); err != nil {
					b.Fatal(err)
				}
				res, err := sess.Solve(ctx, egs.Options{}, 1)
				if err != nil {
					b.Fatal(err)
				}
				evals = res.Stats.RuleEvals
			}
			b.ReportMetric(float64(evals), "ruleevals/op")
		})
	}
}
