// Package session implements incremental synthesis sessions: the
// interactive-feedback loop of Section 8 of the EGS paper, where a
// user adds an example, drops one, relabels a disputed tuple, or
// supplies a new fact, and the task is re-synthesized after each
// revision.
//
// A Session owns the warm state that makes revisions cheap:
//
//   - the interned relation.Database, whose TupleIDs stay stable
//     across fact deltas (post-freeze inserts land in generation-
//     stamped overlays, see relation.Database's Generations section);
//   - the constant co-occurrence structure, which lives in that same
//     database's indexes (Mentioning/AtColumn/Extent) and is extended
//     in place by overlay inserts;
//   - the assess memo (egs.Memo), whose validity stamps let entries
//     survive every delta that cannot affect them.
//
// Deltas mutate only label lists and epochs; the revision task itself
// is built lazily at Solve via task.Revise, sharing the database.
// The package never reads a clock (the egslint nodetsource analyzer
// enforces this): session TTLs and eviction are the HTTP layer's
// business, timestamps in traces come from the trace.Recorder.
//
// A Session serializes its methods with an internal mutex: deltas
// never race a running solve. Concurrency across sessions is the
// caller's affair (the server runs each solve through its worker
// pool).
package session

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// Session is one incremental synthesis task, revised by deltas.
type Session struct {
	mu sync.Mutex

	// base is the first prepared revision; it owns the shared database
	// and is the receiver of every task.Revise call.
	base *task.Task
	// cur is the task of the current revision (== base until the first
	// delta is solved).
	cur *task.Task
	// pos and neg are the current example labelling, in label order —
	// the order drives rule learning, so deltas maintain it carefully.
	pos, neg []relation.Tuple

	memo *egs.Memo

	revision int
	deltas   int
	dirty    bool
	// inFactDelta reports that the current delta batch has already
	// opened a new database generation.
	inFactDelta bool
}

// New starts a session from a task. The task is prepared here; its
// database, schema, and domain become session-owned — the caller must
// not mutate them afterwards.
func New(t *task.Task) (*Session, error) {
	if err := t.Prepare(); err != nil {
		return nil, err
	}
	return &Session{
		base: t,
		cur:  t,
		pos:  append([]relation.Tuple(nil), t.Pos...),
		neg:  append([]relation.Tuple(nil), t.Neg...),
		memo: egs.NewMemo(),
	}, nil
}

// resolve translates a named ground atom into a tuple over the
// session's schema and domain, interning constants not seen before
// when intern is true (examples and facts may mention fresh
// constants; lookups must not create them).
func (s *Session) resolve(rel string, kind relation.Kind, intern bool, args []string) (relation.Tuple, relation.RelID, error) {
	id, ok := s.base.Schema.Lookup(rel)
	if !ok {
		return relation.Tuple{}, 0, fmt.Errorf("session: unknown relation %q", rel)
	}
	info := s.base.Schema.Info(id)
	if info.Kind != kind {
		return relation.Tuple{}, 0, fmt.Errorf("session: relation %s is %s, not %s", rel, info.Kind, kind)
	}
	if info.Arity != len(args) {
		return relation.Tuple{}, 0, fmt.Errorf("session: relation %s has arity %d, got %d args", rel, info.Arity, len(args))
	}
	consts := make([]relation.Const, len(args))
	for i, a := range args {
		if c, ok := s.base.Domain.Lookup(a); ok {
			consts[i] = c
			continue
		}
		if !intern {
			return relation.Tuple{}, 0, fmt.Errorf("session: unknown constant %q", a)
		}
		consts[i] = s.base.Domain.Intern(a)
	}
	return relation.Tuple{Rel: id, Args: consts}, id, nil
}

// AddFact inserts a new fact tuple into the session's database. The
// tuple lands in a fresh overlay generation (one per delta batch), so
// every id issued earlier stays stable. Adding a fact that is already
// present is a no-op.
//
// Fact deltas are rejected for tasks with materialized negation
// (negate/neq directives): their complement relations are computed
// from the fact closure at Prepare time and would silently go stale.
func (s *Session) AddFact(rel string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.base.NegateRels) > 0 || s.base.AddNeq {
		return fmt.Errorf("session: fact deltas are not supported for tasks with materialized negation (negate/neq)")
	}
	t, relID, err := s.resolve(rel, relation.Input, true, args)
	if err != nil {
		return err
	}
	db := s.base.Input
	if db.Contains(t) {
		return nil
	}
	if !s.inFactDelta {
		db.BeginGeneration()
		s.inFactDelta = true
	}
	// A constant never mentioned by any fact enters the data domain D
	// with this insert; forbidden-set sizes over D^k change with it.
	domainGrew := false
	for _, c := range t.Args {
		if len(db.Mentioning(c)) == 0 {
			domainGrew = true
			break
		}
	}
	db.Insert(t)
	s.memo.BumpFact(relID)
	if domainGrew {
		s.memo.BumpDomain()
	}
	s.deltas++
	s.dirty = true
	return nil
}

// AddExample appends a labelled example. Labelling a tuple twice with
// the same polarity is a no-op; labelling it with the opposite
// polarity is an error (use RelabelTuple). Closed-world tasks have no
// explicit negatives: every unlabelled tuple already is one.
func (s *Session) AddExample(positive bool, rel string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, relID, err := s.resolve(rel, relation.Output, true, args)
	if err != nil {
		return err
	}
	if !positive && s.base.ClosedWorld {
		return fmt.Errorf("session: closed-world tasks have no explicit negatives; remove the positive label instead")
	}
	key := t.Key()
	if findTuple(s.pos, key) >= 0 {
		if positive {
			return nil
		}
		return fmt.Errorf("session: tuple is labelled positive; use RelabelTuple")
	}
	if findTuple(s.neg, key) >= 0 {
		if !positive {
			return nil
		}
		return fmt.Errorf("session: tuple is labelled negative; use RelabelTuple")
	}
	if positive {
		s.pos = append(s.pos, t)
	} else {
		s.neg = append(s.neg, t)
	}
	s.memo.BumpExample(relID)
	s.deltas++
	s.dirty = true
	return nil
}

// RemoveExample drops a tuple's label. Under closed-world labelling
// removing a positive makes the tuple (implicitly) negative.
func (s *Session) RemoveExample(rel string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, relID, err := s.resolve(rel, relation.Output, false, args)
	if err != nil {
		return err
	}
	key := t.Key()
	if i := findTuple(s.pos, key); i >= 0 {
		s.pos = append(s.pos[:i:i], s.pos[i+1:]...)
	} else if i := findTuple(s.neg, key); i >= 0 {
		s.neg = append(s.neg[:i:i], s.neg[i+1:]...)
	} else {
		return fmt.Errorf("session: tuple is not labelled")
	}
	s.memo.BumpExample(relID)
	s.deltas++
	s.dirty = true
	return nil
}

// RelabelTuple sets a tuple's label to the given polarity, replacing
// any existing label. Under closed-world labelling, relabelling to
// negative removes the positive label (the closed world supplies the
// negative); relabelling an already-correct label is a no-op.
func (s *Session) RelabelTuple(positive bool, rel string, args ...string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, relID, err := s.resolve(rel, relation.Output, true, args)
	if err != nil {
		return err
	}
	key := t.Key()
	pi, ni := findTuple(s.pos, key), findTuple(s.neg, key)
	switch {
	case positive && pi >= 0, !positive && s.base.ClosedWorld && pi < 0, !positive && !s.base.ClosedWorld && ni >= 0:
		return nil // already labelled as requested
	}
	if pi >= 0 {
		s.pos = append(s.pos[:pi:pi], s.pos[pi+1:]...)
	}
	if ni >= 0 {
		s.neg = append(s.neg[:ni:ni], s.neg[ni+1:]...)
	}
	if positive {
		s.pos = append(s.pos, t)
	} else if !s.base.ClosedWorld {
		s.neg = append(s.neg, t)
	}
	s.memo.BumpExample(relID)
	s.deltas++
	s.dirty = true
	return nil
}

// Solve synthesizes the current revision, reusing the session's warm
// state: the shared database (with all overlay generations) and the
// stamped memo. workers > 1 selects wave-parallel per-tuple
// explanation, exactly as in the one-shot API. Any Memo in opts is
// replaced by the session's own.
//
// When opts.Trace is set, a session-revision event summarizing the
// run (revision number, rule evaluations, memo hits) is recorded
// after the solve.
func (s *Session) Solve(ctx context.Context, opts egs.Options, workers int) (egs.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		rev, err := s.base.Revise(s.pos, s.neg)
		if err != nil {
			return egs.Result{}, err
		}
		s.cur = rev
		s.revision++
		s.dirty = false
		s.inFactDelta = false
	}
	opts.Memo = s.memo
	var res egs.Result
	var err error
	if workers > 1 {
		res, err = egs.SynthesizeParallel(ctx, s.cur, opts, workers)
	} else {
		res, err = egs.Synthesize(ctx, s.cur, opts)
	}
	if tr := opts.Trace; tr != nil && err == nil {
		tr.Record(trace.Event{
			Kind:     trace.KindSessionRevision,
			Searcher: -1,
			TS:       tr.Now(),
			N:        int64(res.Stats.RuleEvals),
			M:        int64(res.Stats.MemoHits),
			Target:   strconv.Itoa(s.revision),
		})
	}
	return res, err
}

// Task returns the task of the most recently solved revision (the
// base task before the first post-delta Solve). Callers use it to
// render results; they must not mutate it.
func (s *Session) Task() *task.Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Revision reports how many revisions have been built by Solve; 0
// means only the base task has been (or would be) solved.
func (s *Session) Revision() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revision
}

// Deltas reports the number of deltas applied over the session's
// lifetime.
func (s *Session) Deltas() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltas
}

// Pending reports whether deltas have been applied since the last
// Solve (the next Solve will build a new revision).
func (s *Session) Pending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty
}

// Examples reports the current labelling sizes (|O+|, |O-|).
func (s *Session) Examples() (pos, neg int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pos), len(s.neg)
}

// Facts reports the current fact count of the shared database,
// including complement/neq tuples materialized at Prepare.
func (s *Session) Facts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.base.Input.Size()
}

// MemoSize reports the number of assessments cached in the session
// memo.
func (s *Session) MemoSize() int { return s.memo.Len() }

// findTuple returns the index of the tuple with the given key, or -1.
func findTuple(ts []relation.Tuple, key string) int {
	for i := range ts {
		if ts[i].Key() == key {
			return i
		}
	}
	return -1
}
