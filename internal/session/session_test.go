package session

import (
	"context"
	"testing"

	"github.com/egs-synthesis/egs/internal/bench"
	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/relation"
	"github.com/egs-synthesis/egs/internal/task"
	"github.com/egs-synthesis/egs/internal/trace"
)

// suiteTasks is the 11-task differential suite, mirroring
// internal/egs's determinismTasks: realizable tasks of several
// shapes plus unrealizable ones.
var suiteTasks = []string{
	"../../testdata/benchmarks/knowledge-discovery/traffic.task",
	"../../testdata/benchmarks/knowledge-discovery/grandparent.task",
	"../../testdata/benchmarks/knowledge-discovery/kinship.task",
	"../../testdata/benchmarks/knowledge-discovery/predecessor.task",
	"../../testdata/benchmarks/knowledge-discovery/undirected-edge.task",
	"../../testdata/benchmarks/database-queries/sql01.task",
	"../../testdata/benchmarks/database-queries/sql05.task",
	"../../testdata/benchmarks/program-analysis/reach.task",
	"../../testdata/benchmarks/program-analysis/block-succ.task",
	"../../testdata/benchmarks/unrealizable/isomorphism.task",
	"../../testdata/benchmarks/unrealizable/traffic-partial.task",
}

// render reduces a run to the exact bytes a user would see: the
// printed UCQ for realizable tasks, the rendered witness otherwise.
func render(tk *task.Task, res egs.Result) string {
	if res.Unsat {
		return "UNSAT\n" + res.Witness.String(tk.Schema, tk.Domain)
	}
	return res.Query.String(tk.Schema, tk.Domain)
}

// atomName renders a tuple back into the (rel, args...) string form
// the delta API takes.
func atomName(s *relation.Schema, d *relation.Domain, t relation.Tuple) (string, []string) {
	args := make([]string, len(t.Args))
	for i, c := range t.Args {
		args[i] = d.Name(c)
	}
	return s.Name(t.Rel), args
}

// scriptedSession builds a session that starts from a reduced form of
// the parsed (unprepared) task — roughly half the examples and, for
// tasks without materialized negation, the last two facts held out —
// then replays deltas to reach the full task, solving along the way
// with a bounded budget to keep intermediate (possibly unsat)
// revisions cheap. The final state's label order equals the file
// order, which the byte-identity assertion depends on.
func scriptedSession(t *testing.T, full *task.Task, par int) (*Session, egs.Result) {
	t.Helper()

	canAddFacts := len(full.NegateRels) == 0 && !full.AddNeq
	heldFacts := 0
	if canAddFacts && full.Input.Size() > 2 {
		heldFacts = 2
	}
	nFacts := full.Input.Size() - heldFacts
	hp := (len(full.Pos) + 1) / 2
	hn := (len(full.Neg) + 1) / 2

	start := &task.Task{
		Name:          full.Name,
		Category:      full.Category,
		ClosedWorld:   full.ClosedWorld,
		NegateRels:    full.NegateRels,
		AddNeq:        full.AddNeq,
		TypedNegation: full.TypedNegation,
		Modes:         full.Modes,
		Schema:        full.Schema,
		Domain:        full.Domain,
		Input:         relation.NewDatabase(full.Schema, full.Domain),
		Pos:           append([]relation.Tuple(nil), full.Pos[:hp]...),
		Neg:           append([]relation.Tuple(nil), full.Neg[:hn]...),
	}
	for id := 0; id < nFacts; id++ {
		start.Input.Insert(full.Input.Tuple(relation.TupleID(id)))
	}

	sess, err := New(start)
	if err != nil {
		t.Fatalf("session.New: %v", err)
	}

	ctx := context.Background()
	// Intermediate revisions may be unsatisfiable (closed world: a
	// dropped positive is an implicit negative) and an exhaustive
	// unsat proof can be large; cap the budget and ignore the result.
	interOpts := egs.Options{MaxContexts: 2000, AssessParallelism: par}
	solveInter := func() {
		_, _ = sess.Solve(ctx, interOpts, 1)
	}
	solveInter()

	// Delta 1: the held-out facts, in file order (a suffix, so the
	// facts' relative id order — which fixes body literal order and
	// variable naming in rendered rules — matches the cold run).
	for id := nFacts; id < full.Input.Size(); id++ {
		rel, args := atomName(full.Schema, full.Domain, full.Input.Tuple(relation.TupleID(id)))
		if err := sess.AddFact(rel, args...); err != nil {
			t.Fatalf("AddFact(%s): %v", rel, err)
		}
	}
	solveInter()

	// Delta 2: the remaining examples, in file order.
	for _, p := range full.Pos[hp:] {
		rel, args := atomName(full.Schema, full.Domain, p)
		if err := sess.AddExample(true, rel, args...); err != nil {
			t.Fatalf("AddExample(+%s): %v", rel, err)
		}
	}
	for _, n := range full.Neg[hn:] {
		rel, args := atomName(full.Schema, full.Domain, n)
		if err := sess.AddExample(false, rel, args...); err != nil {
			t.Fatalf("AddExample(-%s): %v", rel, err)
		}
	}
	solveInter()

	// Delta 3: remove and re-add the last positive — exercising
	// RemoveExample while restoring the original label order.
	last := full.Pos[len(full.Pos)-1]
	rel, args := atomName(full.Schema, full.Domain, last)
	if err := sess.RemoveExample(rel, args...); err != nil {
		t.Fatalf("RemoveExample(%s): %v", rel, err)
	}
	if err := sess.AddExample(true, rel, args...); err != nil {
		t.Fatalf("re-AddExample(%s): %v", rel, err)
	}

	res, err := sess.Solve(ctx, egs.Options{AssessParallelism: par}, 1)
	if err != nil {
		t.Fatalf("final Solve: %v", err)
	}
	return sess, res
}

// TestSessionDifferentialByteIdentical is the session counterpart of
// the byte-golden determinism test: for every suite task, a scripted
// session that starts small and reaches the full task through deltas
// must render the exact same query or unsat witness as a cold
// one-shot on the final state, at sequential and parallel assessment
// alike.
func TestSessionDifferentialByteIdentical(t *testing.T) {
	for _, path := range suiteTasks {
		for _, par := range []int{1, 8} {
			cold, err := task.Load(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			coldRes, err := egs.Synthesize(context.Background(), cold, egs.Options{AssessParallelism: par})
			if err != nil {
				t.Fatalf("%s cold: %v", path, err)
			}
			want := render(cold, coldRes)

			full, err := task.Load(path)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			sess, res := scriptedSession(t, full, par)
			got := render(sess.Task(), res)
			if got != want {
				t.Errorf("%s (par=%d): session output diverges from cold run\ncold:\n%s\nsession:\n%s",
					path, par, want, got)
			}
		}
	}
}

// explicitScaledTraffic converts bench.ScaledTraffic(n) into an
// explicitly labelled task (every non-crashing street a labelled
// negative) so that a held-out positive is merely unlabelled — the
// warm-path experiment needs a satisfiable revision 0.
func explicitScaledTraffic(t *testing.T, n int) *task.Task {
	t.Helper()
	st, err := bench.ScaledTraffic(n)
	if err != nil {
		t.Fatal(err)
	}
	crashes, ok := st.Schema.Lookup("Crashes")
	if !ok {
		t.Fatal("no Crashes relation")
	}
	pos := map[relation.Const]bool{}
	for _, p := range st.Pos {
		pos[p.Args[0]] = true
	}
	var neg []relation.Tuple
	for _, c := range st.Input.ConstantsOf(st.Input.AllIDs()) {
		if !pos[c] {
			neg = append(neg, relation.NewTuple(crashes, c))
		}
	}
	return &task.Task{
		Name:   st.Name + "-explicit",
		Schema: st.Schema,
		Domain: st.Domain,
		Input:  st.Input,
		Pos:    append([]relation.Tuple(nil), st.Pos...),
		Neg:    neg,
	}
}

// TestSessionWarmPathSkipsWork is the acceptance experiment: on
// scaled-traffic-60, a single-example delta revision must execute
// fewer than half the rule evaluations of a cold run on the same
// final task — the memo's revalidation path answers assessments from
// stored output ids — while producing byte-identical output.
func TestSessionWarmPathSkipsWork(t *testing.T) {
	ctx := context.Background()

	// Cold reference: the full task, one shot.
	coldTask := explicitScaledTraffic(t, 60)
	coldRes, err := egs.Synthesize(ctx, coldTask, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Unsat {
		t.Fatal("cold scaled-traffic-60 unexpectedly unsat")
	}
	want := render(coldTask, coldRes)

	// Session: start with the last positive unlabelled, solve, then
	// deliver it as a delta and re-solve warm.
	warmTask := explicitScaledTraffic(t, 60)
	held := warmTask.Pos[len(warmTask.Pos)-1]
	warmTask.Pos = warmTask.Pos[:len(warmTask.Pos)-1]
	sess, err := New(warmTask)
	if err != nil {
		t.Fatal(err)
	}
	rev0, err := sess.Solve(ctx, egs.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rev0.Unsat {
		t.Fatal("revision 0 unexpectedly unsat")
	}

	rel, args := atomName(warmTask.Schema, warmTask.Domain, held)
	if err := sess.AddExample(true, rel, args...); err != nil {
		t.Fatal(err)
	}
	col := trace.NewCollector()
	warmRes, err := sess.Solve(ctx, egs.Options{Trace: col}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(sess.Task(), warmRes); got != want {
		t.Errorf("warm revision output diverges from cold run\ncold:\n%s\nwarm:\n%s", want, got)
	}

	coldEvals, warmEvals := coldRes.Stats.RuleEvals, warmRes.Stats.RuleEvals
	if warmEvals*2 >= coldEvals {
		t.Errorf("warm revision executed %d rule evals, want < 50%% of cold's %d", warmEvals, coldEvals)
	}
	if warmRes.Stats.MemoHits == 0 {
		t.Error("warm revision reported no memo hits")
	}

	// The trace must carry the proof: a session-revision event whose
	// memo-hit counter dominates its eval counter, plus per-batch
	// memo-hit events from the search itself.
	var revEvents, memoHits int
	for _, e := range col.Events() {
		switch e.Kind {
		case trace.KindSessionRevision:
			revEvents++
			if e.N != int64(warmEvals) || e.M != int64(warmRes.Stats.MemoHits) {
				t.Errorf("session-revision event N=%d M=%d, stats say %d/%d",
					e.N, e.M, warmEvals, warmRes.Stats.MemoHits)
			}
			if e.Target != "1" {
				t.Errorf("session-revision event revision = %q, want \"1\"", e.Target)
			}
		case trace.KindMemoHit:
			memoHits++
		}
	}
	if revEvents != 1 {
		t.Errorf("got %d session-revision events, want 1", revEvents)
	}
	if memoHits == 0 {
		t.Error("trace has no memo-hit events despite warm revision")
	}
}

// TestSessionDeltaValidation covers the delta API's error surface.
func TestSessionDeltaValidation(t *testing.T) {
	full, err := task.Load("../../testdata/benchmarks/knowledge-discovery/grandparent.task")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(full)
	if err != nil {
		t.Fatal(err)
	}
	if full.AddNeq {
		if err := sess.AddFact("father", "Mufasa", "Nala"); err == nil {
			t.Error("AddFact accepted despite materialized neq")
		}
	}
	if err := sess.AddExample(true, "nosuch", "a"); err == nil {
		t.Error("AddExample accepted unknown relation")
	}
	if err := sess.AddExample(true, "father", "Mufasa", "Simba"); err == nil {
		t.Error("AddExample accepted input relation as example")
	}
	if err := sess.AddExample(true, "grandparent", "Mufasa"); err == nil {
		t.Error("AddExample accepted wrong arity")
	}
	if err := sess.RemoveExample("grandparent", "Mufasa", "Mufasa"); err == nil {
		t.Error("RemoveExample accepted unlabelled tuple")
	}
	// Opposite-polarity re-label must go through RelabelTuple.
	if err := sess.AddExample(false, "grandparent", "Mufasa", "Kiara"); err == nil {
		t.Error("AddExample flipped an existing label")
	}
	if err := sess.RelabelTuple(false, "grandparent", "Mufasa", "Kiara"); err != nil {
		t.Errorf("RelabelTuple: %v", err)
	}
	if err := sess.RelabelTuple(true, "grandparent", "Mufasa", "Kiara"); err != nil {
		t.Errorf("RelabelTuple back: %v", err)
	}
	if !sess.Pending() {
		t.Error("session not dirty after deltas")
	}
	if sess.Deltas() == 0 {
		t.Error("delta counter did not advance")
	}
}

// TestSessionFactDeltaChangesResult: facts added through the session
// must actually reach the solver — a query learnable only with the
// new fact appears after the delta.
func TestSessionFactDeltaChangesResult(t *testing.T) {
	full, err := task.Load("../../testdata/benchmarks/knowledge-discovery/traffic.task")
	if err != nil {
		t.Fatal(err)
	}
	// Hold out every HasTraffic fact: the intended rule cannot be
	// learned without them.
	var kept, held []relation.Tuple
	for id := 0; id < full.Input.Size(); id++ {
		tu := full.Input.Tuple(relation.TupleID(id))
		if full.Schema.Name(tu.Rel) == "HasTraffic" {
			held = append(held, tu)
		} else {
			kept = append(kept, tu)
		}
	}
	start := &task.Task{
		Name:        full.Name,
		ClosedWorld: full.ClosedWorld,
		Schema:      full.Schema,
		Domain:      full.Domain,
		Input:       relation.NewDatabase(full.Schema, full.Domain),
		Pos:         full.Pos,
	}
	for _, tu := range kept {
		start.Input.Insert(tu)
	}
	sess, err := New(start)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Facts()
	for _, tu := range held {
		rel, args := atomName(full.Schema, full.Domain, tu)
		if err := sess.AddFact(rel, args...); err != nil {
			t.Fatalf("AddFact: %v", err)
		}
	}
	if sess.Facts() != before+len(held) {
		t.Errorf("Facts = %d, want %d", sess.Facts(), before+len(held))
	}
	res, err := sess.Solve(context.Background(), egs.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unsat {
		t.Fatal("post-delta task unexpectedly unsat")
	}
	out := render(sess.Task(), res)
	cold, err := task.Load("../../testdata/benchmarks/knowledge-discovery/traffic.task")
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := egs.Synthesize(context.Background(), cold, egs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := render(cold, coldRes); out != want {
		t.Errorf("fact-delta session diverges from cold run\ncold:\n%s\nsession:\n%s", want, out)
	}
}
