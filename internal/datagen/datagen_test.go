package datagen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/egs"
	"github.com/egs-synthesis/egs/internal/task"

	"context"
)

// TestGeneratorsMatchCommittedFiles enforces determinism: the
// committed benchmark files must be byte-identical to a fresh
// generation. A failure means either the generator changed without
// regenerating (run `go run ./cmd/egs-datagen`) or nondeterminism
// crept in.
func TestGeneratorsMatchCommittedFiles(t *testing.T) {
	for _, g := range Generators {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			path := filepath.Join("..", "..", "testdata", "benchmarks", g.Domain, g.Name+".task")
			committed, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got := g.Gen(); got != string(committed) {
				t.Errorf("generated %s differs from committed file; run `go run ./cmd/egs-datagen`", g.Name)
			}
		})
	}
}

// TestGeneratedTasksWellFormed parses every generated instance and
// checks its intended program is consistent — the consistency-by-
// construction guarantee.
func TestGeneratedTasksWellFormed(t *testing.T) {
	for _, g := range Generators {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			tk, err := task.Parse(strings.NewReader(g.Gen()))
			if err != nil {
				t.Fatal(err)
			}
			if len(tk.Pos) == 0 {
				t.Fatal("no positive tuples generated")
			}
			if !tk.HasIntended() {
				t.Fatal("no intended program")
			}
			if ok, why := tk.Example().Consistent(tk.Intended()); !ok {
				t.Fatalf("intended program inconsistent: %s", why)
			}
			res, err := egs.Synthesize(context.Background(), tk, egs.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Unsat {
				t.Fatal("generated task unrealizable")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Generators {
		if g.Gen() != g.Gen() {
			t.Errorf("%s: two generations differ", g.Name)
		}
	}
}

func TestLCGStream(t *testing.T) {
	a, b := newLCG(1), newLCG(1)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed streams diverge")
		}
	}
	c := newLCG(2)
	same := true
	a2 := newLCG(1)
	for i := 0; i < 10; i++ {
		if a2.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produce identical streams")
	}
	r := newLCG(3)
	for i := 0; i < 1000; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
}

// TestLCGIntnRejectsBadBounds pins the bound guard: non-positive
// bounds panic (previously n == 0 crashed with a divide-by-zero and
// n < 0 silently wrapped), while positive bounds keep the exact
// stream the committed instances were generated with.
func TestLCGIntnRejectsBadBounds(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("intn(%d) did not panic", n)
				}
			}()
			newLCG(1).intn(n)
		}()
	}
}

func TestTaskBuilderOutput(t *testing.T) {
	b := &taskBuilder{}
	b.head("task x", "input p(1)")
	b.fact("p", "a")
	b.positive("out", "b", "c")
	b.positive("out", "a", "z")
	out := b.build()
	if !strings.Contains(out, "p(a).") {
		t.Errorf("fact missing:\n%s", out)
	}
	// Positives keep insertion order: the EGS union loop explains
	// tuples in file order, so the order is part of the benchmark.
	ia := strings.Index(out, "+out(a, z).")
	ib := strings.Index(out, "+out(b, c).")
	if ia < 0 || ib < 0 || ib > ia {
		t.Errorf("positives not in insertion order:\n%s", out)
	}
}
