package family

import (
	"sort"
	"strings"
	"testing"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/task"
)

// TestGenerateDeterministic proves the byte-determinism invariant:
// generating the same (spec, seed) twice yields identical bytes, and
// changing the seed changes them.
func TestGenerateDeterministic(t *testing.T) {
	for _, gp := range DefaultGrid() {
		a, err := Generate(gp.Spec, gp.Seed)
		if err != nil {
			t.Fatalf("Generate(%+v, %d): %v", gp.Spec, gp.Seed, err)
		}
		b, err := Generate(gp.Spec, gp.Seed)
		if err != nil {
			t.Fatalf("Generate(%+v, %d) second run: %v", gp.Spec, gp.Seed, err)
		}
		if a.Content != b.Content {
			t.Errorf("%s: two generations differ", a.Name)
		}
		c, err := Generate(gp.Spec, gp.Seed+1)
		if err != nil {
			t.Fatalf("Generate(%+v, %d): %v", gp.Spec, gp.Seed+1, err)
		}
		if a.Content == c.Content {
			t.Errorf("%s: seed %d and %d generated identical bytes", a.Name, gp.Seed, gp.Seed+1)
		}
	}
}

// positiveSet renders a task's positive examples as sorted atom
// strings, the same rendering Generate uses for labels.
func positiveSet(tk *task.Task) map[string]bool {
	set := make(map[string]bool, len(tk.Pos))
	for _, tup := range tk.Pos {
		set[tup.String(tk.Schema, tk.Domain)] = true
	}
	return set
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestGridConsistency is the consistency property test over the full
// default grid (5 classes x 3 scales): parse each generated task, run
// the intended program through both the reference evaluator and the
// forced batch strategy, and require the example labels to match the
// derived outputs exactly.
func TestGridConsistency(t *testing.T) {
	for _, gp := range DefaultGrid() {
		gp := gp
		inst, err := Generate(gp.Spec, gp.Seed)
		if err != nil {
			t.Fatalf("Generate(%+v, %d): %v", gp.Spec, gp.Seed, err)
		}
		t.Run(inst.Name, func(t *testing.T) {
			tk, err := task.Parse(strings.NewReader(inst.Content))
			if err != nil {
				t.Fatalf("generated instance does not parse: %v", err)
			}
			labels := positiveSet(tk)

			naive := make(map[string]bool)
			for _, rule := range tk.Intended().Rules {
				for _, tup := range eval.EvalRuleNaive(rule, tk.Input) {
					naive[tup.String(tk.Schema, tk.Domain)] = true
				}
			}
			batch := make(map[string]bool)
			restore := eval.ForceStrategy(eval.StrategyBatch)
			for _, rule := range tk.Intended().Rules {
				for _, tup := range eval.RuleOutputs(rule, tk.Input) {
					batch[tup.String(tk.Schema, tk.Domain)] = true
				}
			}
			restore()

			if got, want := sortedKeys(naive), sortedKeys(labels); !equalStrings(got, want) {
				t.Errorf("EvalRuleNaive outputs != labels:\n  eval: %v\n  task: %v", got, want)
			}
			if got, want := sortedKeys(batch), sortedKeys(labels); !equalStrings(got, want) {
				t.Errorf("batch-strategy outputs != labels:\n  eval: %v\n  task: %v", got, want)
			}
			if ok, why := tk.Example().Consistent(tk.Intended()); !ok {
				t.Errorf("intended program inconsistent with its own instance: %s", why)
			}
			if tk.Expect != task.ExpectSat {
				t.Errorf("noise-free instance should declare expect sat, got %v", tk.Expect)
			}
		})
	}
}

// TestNoisePerturbsOnlyDeclaredLabels pins the noise contract: the
// labels of a noisy instance differ from the intended program's
// outputs exactly at the atoms declared in Dropped and Added, and the
// facts themselves are untouched.
func TestNoisePerturbsOnlyDeclaredLabels(t *testing.T) {
	spec := Spec{Class: "chain", Domain: 12, Density: 1.5, Noise: 0.2}
	inst, err := Generate(spec, 3)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(inst.Dropped) == 0 && len(inst.Added) == 0 {
		t.Fatalf("noise 0.2 produced no label flips; pick a different seed for this test")
	}
	tk, err := task.Parse(strings.NewReader(inst.Content))
	if err != nil {
		t.Fatalf("noisy instance does not parse: %v", err)
	}
	if strings.Contains(inst.Content, "expect sat") {
		t.Errorf("noisy instance must not declare expect sat")
	}

	intended := make(map[string]bool)
	for _, rule := range tk.Intended().Rules {
		for _, tup := range eval.EvalRuleNaive(rule, tk.Input) {
			intended[tup.String(tk.Schema, tk.Domain)] = true
		}
	}
	want := make(map[string]bool)
	for atom := range intended {
		want[atom] = true
	}
	for _, atom := range inst.Dropped {
		if !intended[atom] {
			t.Errorf("Dropped atom %q is not an intended positive", atom)
		}
		delete(want, atom)
	}
	for _, atom := range inst.Added {
		if intended[atom] {
			t.Errorf("Added atom %q is already an intended positive", atom)
		}
		want[atom] = true
	}
	if got, wantKeys := sortedKeys(positiveSet(tk)), sortedKeys(want); !equalStrings(got, wantKeys) {
		t.Errorf("noisy labels != (intended \\ Dropped) + Added:\n  got:  %v\n  want: %v", got, wantKeys)
	}

	// The same spec without noise flips nothing and matches the
	// intended outputs exactly — noise changes labels, never facts.
	clean, err := Generate(Spec{Class: spec.Class, Domain: spec.Domain, Density: spec.Density}, 3)
	if err != nil {
		t.Fatalf("Generate clean: %v", err)
	}
	if len(clean.Dropped) != 0 || len(clean.Added) != 0 {
		t.Errorf("noise-free instance declared flips: dropped=%v added=%v", clean.Dropped, clean.Added)
	}
	factsOf := func(content string) string {
		// Facts are the unlabelled atom lines; labels start with '+'.
		var facts []string
		for _, line := range strings.Split(content, "\n") {
			if line != "" && !strings.HasPrefix(line, "+") && !strings.HasPrefix(line, "#") && strings.HasSuffix(line, ".") && !strings.Contains(line, " ") {
				facts = append(facts, line)
			}
		}
		return strings.Join(facts, "\n")
	}
	if factsOf(clean.Content) != factsOf(inst.Content) {
		t.Errorf("noise changed the fact stream; it must only flip labels")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Class: "chain", Domain: 32, Density: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Class: "nosuch", Domain: 32, Density: 2},
		{Class: "chain", Domain: 4, Density: 2},
		{Class: "chain", Domain: 4096, Density: 2},
		{Class: "chain", Domain: 32, Density: 0},
		{Class: "chain", Domain: 32, Density: 100},
		{Class: "chain", Domain: 32, Density: 2, Noise: 1},
		{Class: "chain", Domain: 32, Density: 2, Noise: -0.1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid spec", s)
		}
		if _, err := Generate(s, 1); err == nil {
			t.Errorf("Generate(%+v) accepted an invalid spec", s)
		}
	}
}

func TestSpecName(t *testing.T) {
	cases := []struct {
		spec Spec
		seed uint64
		want string
	}{
		{Spec{Class: "chain", Domain: 32, Density: 2}, 1, "fam-chain-d32-x2-s1"},
		{Spec{Class: "union", Domain: 12, Density: 1.5, Noise: 0.2}, 7, "fam-union-d12-x1p5-n0p2-s7"},
	}
	for _, c := range cases {
		if got := c.spec.Name(c.seed); got != c.want {
			t.Errorf("Name(%+v, %d) = %q, want %q", c.spec, c.seed, got, c.want)
		}
	}
}

func TestDefaultGridShape(t *testing.T) {
	grid := DefaultGrid()
	if want := len(Classes()) * len(DefaultScales()); len(grid) != want {
		t.Fatalf("DefaultGrid has %d points, want %d", len(grid), want)
	}
	seen := make(map[string]bool)
	for _, gp := range grid {
		name := gp.Spec.Name(gp.Seed)
		if seen[name] {
			t.Errorf("duplicate grid point %s", name)
		}
		seen[name] = true
		if err := gp.Spec.Validate(); err != nil {
			t.Errorf("grid point %s invalid: %v", name, err)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("intn(0) did not panic")
		}
	}()

	r := newRNG(42)
	// Same seed, same stream.
	r2 := newRNG(42)
	for i := 0; i < 100; i++ {
		if a, b := r.intn(97), r2.intn(97); a != b {
			t.Fatalf("draw %d: %d != %d with equal seeds", i, a, b)
		}
	}
	// Bounds hold and every residue is reachable for a bound that
	// does not divide 2^31 (the case modulo reduction would bias).
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		v := r.intn(3)
		if v < 0 || v >= 3 {
			t.Fatalf("intn(3) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("intn(3) residue %d drawn %d/3000 times; want near-uniform", v, c)
		}
	}
	for i := 0; i < 100; i++ {
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float() = %g out of [0, 1)", f)
		}
	}

	newRNG(1).intn(0) // must panic
}

func TestInstanceSeedSpreads(t *testing.T) {
	seen := make(map[uint64]string)
	for _, gp := range DefaultGrid() {
		for seed := uint64(1); seed <= 3; seed++ {
			s := instanceSeed(gp.Spec, seed)
			name := gp.Spec.Name(seed)
			if prev, dup := seen[s]; dup {
				t.Errorf("instanceSeed collision: %s and %s", prev, name)
			}
			seen[s] = name
		}
	}
}
