// Package family generalizes internal/datagen's six hand-coded
// instance generators into a parameterized generator of synthesis
// task *families* (ROADMAP item 4): a Spec names a schema shape and
// intended-program class (chain joins, star joins, unions, negation,
// typed domains), a data scale (domain size, fact density), and an
// optional label-noise knob for best-effort workloads. Facts are
// drawn from seeded template streams; the output labels are computed
// by applying the intended program to the drawn facts, so every
// instance is consistent by construction — and every instance is
// byte-deterministic in (spec, seed): the same pair renders the same
// task file byte for byte, on every platform, forever.
//
// The generated instances feed four consumers: cmd/egs-datagen's
// -family/-grid modes write them to disk, internal/load replays them
// as request bodies (the "family:<class>" template source), the
// benchmark suites in internal/eval and internal/egs use them as a
// grid axis, and the differential fuzz/property tests use them as a
// corpus far beyond the authored suite.
package family

import (
	"fmt"
	"sort"
	"strings"

	"github.com/egs-synthesis/egs/internal/eval"
	"github.com/egs-synthesis/egs/internal/task"
)

// Spec parameterizes one task family. Instances of the family are
// drawn by Generate(spec, seed); the zero Noise value yields
// consistent-by-construction labels, a positive Noise flips labels
// with the given probability (recorded per flip, for best-effort
// synthesis workloads).
type Spec struct {
	// Class is the schema shape and intended-program class: one of
	// Classes() — chain, star, union, negation, typed.
	Class string `json:"class"`
	// Domain is the constant-pool size (per pool for the typed class).
	Domain int `json:"domain"`
	// Density scales the fact count: each binary input relation draws
	// about Density×Domain facts (unary relations half that).
	Density float64 `json:"density"`
	// Noise is the per-label flip probability. Zero (the default)
	// keeps the instance consistent with its intended program; a
	// positive value drops each intended positive with probability
	// Noise and injects about Noise×|O+| spurious positives, each
	// flip declared in the instance and in Instance.Dropped/Added.
	Noise float64 `json:"noise,omitempty"`
}

// Validate checks the spec is inside the supported envelope.
func (s Spec) Validate() error {
	if _, ok := classes[s.Class]; !ok {
		return fmt.Errorf("family: unknown class %q (want one of %s)", s.Class, strings.Join(Classes(), ", "))
	}
	if s.Domain < 8 || s.Domain > 2048 {
		return fmt.Errorf("family: domain %d out of range [8, 2048]", s.Domain)
	}
	if s.Density <= 0 || s.Density > 64 {
		return fmt.Errorf("family: density %g out of range (0, 64]", s.Density)
	}
	if s.Noise < 0 || s.Noise >= 1 {
		return fmt.Errorf("family: noise %g out of range [0, 1)", s.Noise)
	}
	return nil
}

// Name renders the canonical instance name for this spec and seed,
// e.g. "fam-chain-d32-x2-s1" or "fam-union-d12-x1p5-n0p2-s7". The
// name doubles as the task name and the suggested file stem.
func (s Spec) Name(seed uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fam-%s-d%d-x%s", s.Class, s.Domain, numToken(s.Density))
	if s.Noise > 0 {
		fmt.Fprintf(&b, "-n%s", numToken(s.Noise))
	}
	fmt.Fprintf(&b, "-s%d", seed)
	return b.String()
}

// numToken renders a float compactly with '.' replaced by 'p', so the
// result is safe in task names and file stems: 1.5 -> "1p5".
func numToken(f float64) string {
	return strings.ReplaceAll(fmt.Sprintf("%g", f), ".", "p")
}

// Instance is one generated task.
type Instance struct {
	Spec    Spec
	Seed    uint64
	Name    string
	Content string // the task file, byte-deterministic in (Spec, Seed)
	// Dropped lists intended-positive atoms the noise knob removed
	// (negative by closed-world in the emitted instance); Added lists
	// the spurious positives it injected. Both empty at Noise 0.
	Dropped []string
	Added   []string
}

// Classes lists the supported program classes in canonical order.
func Classes() []string {
	return []string{"chain", "star", "union", "negation", "typed"}
}

// Scale is one (domain, density) point of the default grid.
type Scale struct {
	Domain  int
	Density float64
}

// DefaultScales are the canonical small/medium/large scale points.
func DefaultScales() []Scale {
	return []Scale{{12, 1.5}, {32, 2}, {96, 2.5}}
}

// GridPoint pairs a spec with a seed.
type GridPoint struct {
	Spec Spec
	Seed uint64
}

// DefaultGrid returns the canonical family grid: every class at every
// default scale, seed 1 — the grid scripts/families-smoke.sh and the
// family property tests sweep.
func DefaultGrid() []GridPoint {
	var pts []GridPoint
	for _, cl := range Classes() {
		for _, sc := range DefaultScales() {
			pts = append(pts, GridPoint{Spec{Class: cl, Domain: sc.Domain, Density: sc.Density}, 1})
		}
	}
	return pts
}

// classDef is the static shape of one program class: declarations,
// modes, the intended program, and the seeded fact-template stream.
type classDef struct {
	summary  string   // one-line description for the file header
	inputs   []string // input declarations in emission order
	output   string   // output declaration
	outRel   string
	outArity int
	modes    string
	features string // "" | "disjunction" | "negation"
	negate   string // relation complemented via the negate directive
	typed    bool   // typed-negation over disjoint constant pools
	intended []string
	facts    func(s Spec, r *rng, em *emitter)
}

var classes = map[string]*classDef{
	"chain": {
		summary:  "two-hop chain join over binary relations",
		inputs:   []string{"r1(2)", "r2(2)"},
		output:   "out(2)",
		outRel:   "out",
		outArity: 2,
		modes:    "maxv=3 r1=1 r2=1",
		intended: []string{"out(x, z) :- r1(x, y), r2(y, z)."},
		facts:    chainFacts,
	},
	"star": {
		summary:  "star join: two spokes and a tag sharing the center",
		inputs:   []string{"spoke1(2)", "spoke2(2)", "tag(1)"},
		output:   "out(1)",
		outRel:   "out",
		outArity: 1,
		modes:    "maxv=3 spoke1=1 spoke2=1 tag=1",
		intended: []string{"out(x) :- spoke1(x, y), spoke2(x, z), tag(x)."},
		facts:    starFacts,
	},
	"union": {
		summary:  "two-rule union: a link into either of two unary sets",
		inputs:   []string{"link(2)", "qa(1)", "qb(1)"},
		output:   "out(1)",
		outRel:   "out",
		outArity: 1,
		modes:    "maxv=2 link=1 qa=1 qb=1",
		features: "disjunction",
		intended: []string{
			"out(x) :- link(x, y), qa(y).",
			"out(x) :- link(x, y), qb(y).",
		},
		facts: unionFacts,
	},
	"negation": {
		summary:  "edge into a good set, guarded by a negated bad set",
		inputs:   []string{"edge(2)", "good(1)", "bad(1)"},
		output:   "out(1)",
		outRel:   "out",
		outArity: 1,
		modes:    "maxv=2 edge=1 good=1 not_bad=1",
		features: "negation",
		negate:   "bad",
		intended: []string{"out(x) :- edge(x, y), good(y), not_bad(x)."},
		facts:    negationFacts,
	},
	"typed": {
		summary:  "typed domains: person/city pools with a typed complement",
		inputs:   []string{"lives(2)", "hub(1)", "visited(1)"},
		output:   "out(1)",
		outRel:   "out",
		outArity: 1,
		modes:    "maxv=2 lives=1 hub=1 not_visited=1",
		features: "negation",
		negate:   "visited",
		typed:    true,
		intended: []string{"out(x) :- lives(x, y), hub(y), not_visited(x)."},
		facts:    typedFacts,
	},
}

// emitter accumulates fact atoms in insertion order, deduplicating,
// and tracks the constants actually used in facts (the pool spurious
// noisy positives may draw from without growing the data domain).
type emitter struct {
	atoms []string
	seen  map[string]bool
	used  map[string]bool
}

func newEmitter() *emitter {
	return &emitter{seen: make(map[string]bool), used: make(map[string]bool)}
}

func (e *emitter) fact(rel string, args ...string) {
	atom := rel + "(" + strings.Join(args, ", ") + ")"
	if e.seen[atom] {
		return
	}
	e.seen[atom] = true
	e.atoms = append(e.atoms, atom)
	for _, a := range args {
		e.used[a] = true
	}
}

// usedPool returns the sorted fact constants, optionally filtered to
// one typed pool by prefix.
func (e *emitter) usedPool(prefix string) []string {
	var cs []string
	for c := range e.used {
		if strings.HasPrefix(c, prefix) {
			cs = append(cs, c)
		}
	}
	sort.Strings(cs)
	return cs
}

// pool returns the deterministic constant pool prefix000..prefixN-1.
func pool(prefix string, n int) []string {
	cs := make([]string, n)
	for i := range cs {
		cs[i] = fmt.Sprintf("%s%03d", prefix, i)
	}
	return cs
}

// pairCount is the fact budget for a binary relation; unaryCount the
// (halved) budget for a unary one.
func pairCount(s Spec) int {
	n := int(s.Density * float64(s.Domain))
	if n < 2 {
		return 2
	}
	return n
}

func unaryCount(s Spec) int {
	n := pairCount(s) / 2
	if n < 1 {
		return 1
	}
	return n
}

// witnessCount is how many intended-program witnesses each class
// plants so instances are non-vacuous (at least one positive) at
// every scale.
func witnessCount(s Spec) int { return 1 + s.Domain/8 }

func chainFacts(s Spec, r *rng, em *emitter) {
	n := s.Domain
	cs := pool("c", n)
	for i := 0; i < witnessCount(s); i++ {
		a, b, d := cs[(3*i)%n], cs[(3*i+1)%n], cs[(3*i+2)%n]
		em.fact("r1", a, b)
		em.fact("r2", b, d)
	}
	for i := 0; i < pairCount(s); i++ {
		em.fact("r1", cs[r.intn(n)], cs[r.intn(n)])
	}
	for i := 0; i < pairCount(s); i++ {
		em.fact("r2", cs[r.intn(n)], cs[r.intn(n)])
	}
}

func starFacts(s Spec, r *rng, em *emitter) {
	n := s.Domain
	m := n - 3 // top three constants reserved for decoys
	cs := pool("c", n)
	for i := 0; i < witnessCount(s); i++ {
		a, b, d := cs[(3*i)%m], cs[(3*i+1)%m], cs[(3*i+2)%m]
		em.fact("spoke1", a, b)
		em.fact("spoke2", a, d)
		em.fact("tag", a)
	}
	// Decoys pin the intended three-literal shape: a tagged center
	// with only one spoke (one per spoke relation), and a
	// double-spoked center with no tag. Random draws below never use
	// a reserved constant as a center or a tag, so each decoy head
	// stays a closed-world negative and every proper sub-rule of the
	// intended rule over-derives.
	em.fact("spoke1", cs[n-1], cs[0])
	em.fact("tag", cs[n-1])
	em.fact("spoke2", cs[n-2], cs[0])
	em.fact("tag", cs[n-2])
	em.fact("spoke1", cs[n-3], cs[1])
	em.fact("spoke2", cs[n-3], cs[1])
	for i := 0; i < pairCount(s); i++ {
		em.fact("spoke1", cs[r.intn(m)], cs[r.intn(n)])
	}
	for i := 0; i < pairCount(s); i++ {
		em.fact("spoke2", cs[r.intn(m)], cs[r.intn(n)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("tag", cs[r.intn(m)])
	}
}

func unionFacts(s Spec, r *rng, em *emitter) {
	n := s.Domain
	m := n - 3 // top three constants reserved for decoys
	cs := pool("c", n)
	for i := 0; i < witnessCount(s); i++ {
		a, b := cs[(2*i)%m], cs[(2*i+1)%m]
		em.fact("link", a, b)
		// Alternate which disjunct the witness exercises, so neither
		// rule of the union is vacuous.
		if i%2 == 0 {
			em.fact("qa", b)
		} else {
			em.fact("qb", b)
		}
	}
	// Decoys: a link whose target is in neither qa nor qb (kills the
	// bare-link rule), plus one qa-only and one qb-only witness whose
	// targets the random draws below can never label with the other
	// set — each disjunct has a tuple only it derives.
	em.fact("link", cs[n-1], cs[n-1])
	em.fact("link", cs[0], cs[n-2])
	em.fact("qa", cs[n-2])
	em.fact("link", cs[1], cs[n-3])
	em.fact("qb", cs[n-3])
	for i := 0; i < pairCount(s); i++ {
		em.fact("link", cs[r.intn(m)], cs[r.intn(m)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("qa", cs[r.intn(m)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("qb", cs[r.intn(m)])
	}
}

func negationFacts(s Spec, r *rng, em *emitter) {
	n := s.Domain
	half := n / 2
	m := n - 1 // top constant reserved for the decoy
	cs := pool("c", n)
	// Witnesses live in the lower half of the pool; the bad set is
	// drawn from the upper half, so every witness head survives the
	// not_bad guard by construction.
	for i := 0; i < witnessCount(s); i++ {
		a, b := cs[(2*i)%half], cs[(2*i+1)%half]
		em.fact("edge", a, b)
		em.fact("good", b)
	}
	// Decoys: an edge into a never-good target from a never-bad head
	// (kills bare not_bad and edge+not_bad), and a bad head with an
	// edge into a good target (kills edge+good without the guard).
	em.fact("edge", cs[n-1], cs[n-1])
	em.fact("bad", cs[half])
	em.fact("edge", cs[half], cs[1])
	em.fact("good", cs[1])
	for i := 0; i < pairCount(s); i++ {
		em.fact("edge", cs[r.intn(m)], cs[r.intn(m)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("good", cs[r.intn(m)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("bad", cs[half+r.intn(n-1-half)])
	}
}

func typedFacts(s Spec, r *rng, em *emitter) {
	n := s.Domain
	half := n / 2
	m := n - 1 // top constant of each pool reserved for the decoys
	ps := pool("p", n)
	ts := pool("t", n)
	// Same guard discipline as the negation class, over the person
	// pool: visited is drawn from the upper half only.
	for i := 0; i < witnessCount(s); i++ {
		pp, tt := ps[(2*i)%half], ts[(2*i+1)%m]
		em.fact("lives", pp, tt)
		em.fact("hub", tt)
	}
	// Decoys: a loner living in a never-hub city (kills bare
	// not_visited and lives+not_visited), and a visited person living
	// in a hub (kills lives+hub without the guard).
	em.fact("lives", ps[n-1], ts[n-1])
	em.fact("visited", ps[half])
	em.fact("lives", ps[half], ts[1])
	em.fact("hub", ts[1])
	for i := 0; i < pairCount(s); i++ {
		em.fact("lives", ps[r.intn(m)], ts[r.intn(m)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("hub", ts[r.intn(m)])
	}
	for i := 0; i < unaryCount(s); i++ {
		em.fact("visited", ps[half+r.intn(n-1-half)])
	}
}

// Generate draws one instance of the family. The result is
// byte-deterministic in (spec, seed) and, at Noise 0, consistent by
// construction: the intended program applied to the drawn facts *is*
// the positive labelling (closed-world supplies the negatives).
func Generate(spec Spec, seed uint64) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cl := classes[spec.Class]
	r := newRNG(instanceSeed(spec, seed))
	name := spec.Name(seed)

	em := newEmitter()
	cl.facts(spec, r, em)

	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}
	line("# %s: %s.", name, cl.summary)
	line("# Generated by internal/datagen/family (cmd/egs-datagen -family/-grid);")
	line("# byte-deterministic in (spec, seed), labels computed from the intended")
	line("# program so the instance is consistent by construction.")
	line("# Spec: class=%s domain=%d density=%g noise=%g seed=%d", spec.Class, spec.Domain, spec.Density, spec.Noise, seed)
	line("# Intended program:")
	for _, src := range cl.intended {
		line("#   %s", src)
	}
	line("task %s", name)
	line("domain synthetic")
	line("closed-world true")
	if spec.Noise == 0 {
		line("expect sat")
	} else {
		// A noisy labelling may or may not stay realizable; the
		// instance targets best-effort synthesis, so no expectation
		// is declared.
		line("# no expect directive: noise made the labelling best-effort")
	}
	if cl.features != "" {
		line("features %s", cl.features)
	}
	if cl.negate != "" {
		line("negate %s", cl.negate)
	}
	if cl.typed {
		line("typed-negation true")
	}
	line("modes %s", cl.modes)
	for _, src := range cl.intended {
		line("intended %s", src)
	}
	for _, in := range cl.inputs {
		line("input %s", in)
	}
	line("output %s", cl.output)
	line("")
	for _, atom := range em.atoms {
		line("%s.", atom)
	}

	// Compute the labels by running the intended program over the
	// facts through the real parser and reference evaluator — the
	// same semantics (complement materialization, typed domains) the
	// consistency tests check against.
	base := b.String()
	tk, err := task.Parse(strings.NewReader(base))
	if err != nil {
		return nil, fmt.Errorf("family: generated facts for %s do not parse: %w", name, err)
	}
	outs := make(map[string]bool)
	for _, rule := range tk.Intended().Rules {
		for _, tup := range eval.EvalRuleNaive(rule, tk.Input) {
			outs[tup.String(tk.Schema, tk.Domain)] = true
		}
	}
	positives := make([]string, 0, len(outs))
	for atom := range outs {
		positives = append(positives, atom)
	}
	sort.Strings(positives)

	inst := &Instance{Spec: spec, Seed: seed, Name: name}
	if spec.Noise > 0 {
		positives = inst.applyNoise(cl, em, r, positives)
	}

	line("")
	for _, atom := range inst.Dropped {
		line("# noise: dropped %s", atom)
	}
	for _, atom := range inst.Added {
		line("# noise: added %s", atom)
	}
	for _, atom := range positives {
		line("+%s.", atom)
	}
	inst.Content = b.String()
	return inst, nil
}

// applyNoise flips labels: each intended positive is dropped with
// probability Noise (becoming negative under closed-world), and about
// Noise×|O+| spurious positives over fact constants are injected.
// Every flip is recorded in Dropped/Added, so consumers know exactly
// where the labelling departs from the intended program.
func (inst *Instance) applyNoise(cl *classDef, em *emitter, r *rng, positives []string) []string {
	spec := inst.Spec
	posSet := make(map[string]bool, len(positives))
	for _, a := range positives {
		posSet[a] = true
	}
	kept := positives[:0]
	for _, a := range positives {
		if r.chance(spec.Noise) {
			inst.Dropped = append(inst.Dropped, a)
		} else {
			kept = append(kept, a)
		}
	}
	// Spurious positives draw from constants already used in facts,
	// so the data domain (and, for the typed class, the inferred
	// person type) is unchanged by noise.
	prefix := ""
	if cl.typed {
		prefix = "p"
	}
	cands := em.usedPool(prefix)
	nFlips := len(posSet)
	for i := 0; i < nFlips && len(cands) > 0; i++ {
		if !r.chance(spec.Noise) {
			continue
		}
		for try := 0; try < 32; try++ {
			args := make([]string, cl.outArity)
			for j := range args {
				args[j] = cands[r.intn(len(cands))]
			}
			atom := cl.outRel + "(" + strings.Join(args, ", ") + ")"
			if posSet[atom] {
				continue
			}
			posSet[atom] = true
			inst.Added = append(inst.Added, atom)
			kept = append(kept, atom)
			break
		}
	}
	sort.Strings(kept)
	return kept
}
