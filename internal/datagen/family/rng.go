package family

import "fmt"

// rng is the family generator's deterministic pseudo-random stream.
// It shares the legacy datagen LCG's transition (Knuth MMIX
// constants, top 31 bits per draw) but not its draw discipline: intn
// rejects non-positive bounds loudly and uses rejection sampling, so
// family draws are exactly uniform. The legacy lcg in
// internal/datagen keeps its biased modulo reduction deliberately —
// its streams are pinned byte-for-byte by the committed instances.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 31-bit draw.
func (r *rng) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state >> 33
}

// intn returns a uniform value in [0, n). The bound must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("family: intn bound %d, want > 0", n))
	}
	bound := uint64(n)
	// Largest multiple of bound that fits in the 31-bit draw range;
	// rejecting draws at or above it removes the modulo bias.
	limit := (uint64(1) << 31) / bound * bound
	for {
		if v := r.next(); v < limit {
			return int(v % bound)
		}
	}
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()) / float64(uint64(1)<<31)
}

// chance returns true with probability p.
func (r *rng) chance(p float64) bool { return r.float() < p }

// instanceSeed mixes a spec and a caller seed into one well-spread
// stream seed: FNV-1a over the spec's canonical rendering, xor'd with
// the golden-ratio-scaled seed, then a SplitMix64 finalizer. Distinct
// (spec, seed) pairs get distinct, decorrelated streams.
func instanceSeed(s Spec, seed uint64) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(fmt.Sprintf("%s|%d|%g|%g", s.Class, s.Domain, s.Density, s.Noise)) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	x := h ^ (seed * 0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
